#!/usr/bin/env bash
# Repository CI: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
