#!/usr/bin/env bash
# Repository CI: build, test, lint, bench report + trace-analysis smoke.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# run_twice_cmp NAME CMD [ARGS...] — the determinism gate shared by
# every byte-identical-replay check below. Runs CMD twice, substituting
# the literal argv token OUT with "$tmp/NAME" on the first run and
# "$tmp/NAME.rerun" on the second, and requires both the artifact pair
# and the captured stdout pair to match byte-for-byte (a tool that
# echoes its output path gets it normalized back to OUT first). Stderr
# lands in "$tmp/NAME.stderr" for later greps (not compared — cargo may
# chat there). Commands without an OUT token compare stdout only.
run_twice_cmp() {
    local name="$1"; shift
    local a="$tmp/$name" b="$tmp/$name.rerun"
    "${@/OUT/$a}" > "$a.stdout.raw" 2> "$a.stderr"
    "${@/OUT/$b}" > "$b.stdout.raw" 2> "$b.stderr"
    [ ! -e "$a" ] || cmp "$a" "$b"
    sed "s|$b|OUT|g; s|$a|OUT|g" "$a.stdout.raw" > "$a.stdout"
    sed "s|$b|OUT|g; s|$a|OUT|g" "$b.stdout.raw" > "$b.stdout"
    cmp "$a.stdout" "$b.stdout"
}

# Bench report: run the OMB matrix + traced workload, write the
# machine-readable report at the repo root, and prove determinism by
# re-running and comparing byte-for-byte.
cargo run --release -q -p omb --bin bench_omb BENCH_omb.json "$tmp/trace.json" "$tmp/sweep.json"
run_twice_cmp BENCH.json cargo run --release -q -p omb --bin bench_omb OUT
cmp BENCH_omb.json "$tmp/BENCH.json"

# gdrprof smoke: the traced workload must analyze to a nonzero critical
# path with the expected anchor lines.
out="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/trace.json" --json "$tmp/report.json")"
grep -Eq 'ops-analyzed: [1-9]' <<<"$out"
grep -q 'critical path' <<<"$out"
# the v2 report carries latency quantile sketches
grep -q 'latency quantiles' <<<"$out"
grep -q '"quantiles"' "$tmp/report.json"
grep -q '"p999_us"' "$tmp/report.json"
# a self-diff must report no regressions
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/report.json" "$tmp/report.json" --threshold 5 >/dev/null
# ... and --json writes the machine-readable diff document
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/report.json" "$tmp/report.json" --json "$tmp/diff.json" >/dev/null
grep -q '"schema":"gdrprof-diff-v1"' "$tmp/diff.json"

# Crossover profiler: the sweep trace must yield latency curves and at
# least one observed protocol switch per socket relation, each tagged
# with the governing threshold's provenance; the profile is
# deterministic (byte-identical across re-runs) and --suggest emits a
# loadable thresholds-v1 artifact.
run_twice_cmp x.json cargo run --release -q -p obs-analyze --bin gdrprof -- \
    crossover "$tmp/sweep.json" --json OUT --suggest "$tmp/suggest.json"
grep -q 'crossover .*/intra-socket:' "$tmp/x.json.stdout"
grep -q 'crossover .*/inter-socket:' "$tmp/x.json.stdout"
grep -q 'threshold gdr_put_limit=32768, builtin' "$tmp/x.json.stdout"
grep -q 'threshold proxy_get_min=524288, builtin' "$tmp/x.json.stdout"
grep -q '"schema":"thresholds-v1"' "$tmp/suggest.json"

# What-if replay: re-deciding every recorded protocol choice under the
# currently-tuned table must be a no-op (delta exactly zero), and the
# degraded fixture table (GDR get disabled, proxy floor collapsed)
# must predict a strictly positive latency delta.
wout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- whatif "$tmp/sweep.json" \
    --thresholds tests/golden/thresholds_current.json)"
grep -q 'decisions-changed: 0' <<<"$wout"
grep -q 'predicted-delta-us: +0.000' <<<"$wout"
dgout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- whatif "$tmp/sweep.json" \
    --thresholds tests/golden/thresholds_degraded.json)"
grep -Eq 'decisions-changed: [1-9]' <<<"$dgout"
grep -Eq 'predicted-delta-us: \+[0-9]' <<<"$dgout"
awk '/predicted-delta-us:/ { sub(/\+/, "", $2); exit !($2 > 0) }' <<<"$dgout"

# Link-contention gate: the fixture pair holds latencies flat while one
# link's contended fraction grows past the threshold — diff must trip
# with the contention-specific exit code 5, not the latency code 4.
set +e
cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_contention_base.json tests/golden/report_contention_regressed.json \
    --threshold 10 > "$tmp/cont.txt"
rc=$?
set -e
if [ "$rc" -ne 5 ]; then
    echo "gdrprof diff contention gate: expected exit 5, got $rc" >&2
    exit 1
fi
grep -q 'link-contention' "$tmp/cont.txt"
grep -q 'REGRESSED' "$tmp/cont.txt"

# and a malformed trace must fail with a nonzero exit code
printf '{"traceEvents":[' > "$tmp/bad.json"
if cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/bad.json" 2>/dev/null; then
    echo "gdrprof accepted a malformed trace" >&2
    exit 1
fi

# Chaos gate: the seeded fault-injection suite must hold on two fixed
# seed trajectories (each seed replays its faults deterministically).
GDR_CHAOS_SEED=7 cargo test --release -q --test chaos
GDR_CHAOS_SEED=11 cargo test --release -q --test chaos

# gdrprof over a faulted trace: the report must surface the injected
# faults, the retries they cost, and the capability-fault fallback.
cargo run --release -q -p omb --bin chaos_trace "$tmp/chaos.json"
cout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/chaos.json" --json "$tmp/chaos_rep.json")"
grep -q 'fault injection:' <<<"$cout"
grep -Eq 'retried [1-9]' <<<"$cout"
grep -Eq 'fallbacks [1-9]' <<<"$cout"
grep -q 'put/proxy-pipeline' <<<"$cout"
# a healthy run self-diffs clean, including the recovery-rate gate
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/chaos_rep.json" "$tmp/chaos_rep.json" --threshold 5 >/dev/null

# Recovery-rate regression gate: a degraded run (retry budget starved)
# must trip `gdrprof diff` against the healthy report ...
cargo run --release -q -p omb --bin chaos_trace "$tmp/chaos_bad.json" --degraded
cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/chaos_bad.json" --json "$tmp/chaos_bad_rep.json" >/dev/null
if cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/chaos_rep.json" "$tmp/chaos_bad_rep.json" --threshold 10 >/dev/null; then
    echo "gdrprof diff missed a recovery-rate regression" >&2
    exit 1
fi
# ... and the checked-in regression fixture must keep tripping it too
if cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_recovery_base.json tests/golden/report_recovery_regressed.json \
    --threshold 10 >/dev/null; then
    echo "gdrprof diff missed the fixture recovery-rate regression" >&2
    exit 1
fi

# Chunk-recovery gate: the pipeline fault plan (large D-D put, chunk
# posts drawing from the CQE stream with a retry budget of one) must
# record chunk replays and a typed partial delivery in the trace, must
# replay byte-identically, and gdrprof must surface both.
run_twice_cmp pipe.json cargo run --release -q -p omb --bin chaos_trace OUT --pipeline
grep -q '"name":"chunk-retry"' "$tmp/pipe.json"
grep -q '"name":"partial-delivery"' "$tmp/pipe.json"
pout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/pipe.json" --json "$tmp/pipe_rep.json")"
grep -Eq 'chunk-retries [1-9]' <<<"$pout"
grep -Eq 'partial-deliveries [1-9]' <<<"$pout"
# the partial-delivery diff gate: a clean report against the partial one
# must trip, exit code 4 like every regression ...
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/chaos_rep.json" "$tmp/pipe_rep.json" --threshold 10 >/dev/null && {
    echo "gdrprof diff missed a partial-delivery regression" >&2
    exit 1
}
# ... and the fixture pair isolates that gate: identical latency and
# recovery rates, only the delivered-byte fraction fell
if cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_partial_base.json tests/golden/report_partial_regressed.json \
    --threshold 10 >/dev/null; then
    echo "gdrprof diff missed the fixture partial-delivery regression" >&2
    exit 1
fi

# Burst-recovery gate: a correlated burst window with the health
# breaker armed must drive the full circuit lifecycle — demote on
# sustained failure, half-open probe after cooldown, promote on the
# probe's success — all visible as trace instants, with the trace
# replaying byte-identically under its seed ...
run_twice_cmp burst.json cargo run --release -q -p omb --bin chaos_trace OUT --burst
grep -q '"cqe-burst"' "$tmp/burst.json"
grep -q '"name":"demote"' "$tmp/burst.json"
grep -q '"name":"probe"' "$tmp/burst.json"
grep -q '"name":"promote"' "$tmp/burst.json"
# ... and in gdrprof's health section
bout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/burst.json" --json "$tmp/burst_rep.json")"
grep -q 'protocol health:' <<<"$bout"
grep -Eq 'demotes [1-9]' <<<"$bout"
grep -Eq 'promotes [1-9]' <<<"$bout"
# a completed lifecycle self-diffs clean, including the promote-rate gate
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/burst_rep.json" "$tmp/burst_rep.json" --threshold 5 >/dev/null
# the fixture pair isolates the promote-rate gate (a run whose breaker
# never re-promotes) and the stage-level attribution of a regressed
# mean (the rdma leg grew; the diff must say so)
dout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_health_base.json tests/golden/report_health_regressed.json \
    --threshold 10)" && {
    echo "gdrprof diff missed the fixture promote-rate regression" >&2
    exit 1
}
grep -q 'promote-rate' <<<"$dout"
grep -q 'stage rdma' <<<"$dout"

# Timeline gate: the burst trace carries the windowed metrics plane —
# gdrprof timeline must align the fault burst with a change-point, fold
# in the demote -> probe -> promote lifecycle, and place the single SLO
# violation (the burst window's collapsed recovery rate) inside the
# burst and nowhere else. The timeline itself is deterministic.
run_twice_cmp tl.json cargo run --release -q -p obs-analyze --bin gdrprof -- \
    timeline "$tmp/burst.json" --json OUT
grep -q '"schema":"gdrprof-timeline-v1"' "$tmp/tl.json"
grep -q 'CHANGE-POINT' "$tmp/tl.json.stdout"
grep -q 'fault burst: windows 3..3, aligned with a p99/contention change-point' "$tmp/tl.json.stdout"
grep -q 'lifecycle direct-gdr: demote @w3' "$tmp/tl.json.stdout"
grep -q 'slo-violations: 1 in 1 windows (first w3, last w3)' "$tmp/tl.json.stdout"
grep -q '"name":"window-snapshot"' "$tmp/burst.json"
grep -q '"name":"slo-violation"' "$tmp/burst.json"

# SLO-violation-count gate: the fixture pair holds every latency and
# fault metric flat while the candidate's windowed plane breaches more
# budgets — diff must trip with the SLO-specific exit code 6.
set +e
cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_slo_base.json tests/golden/report_slo_regressed.json \
    --threshold 10 > "$tmp/slo.txt"
rc=$?
set -e
if [ "$rc" -ne 6 ]; then
    echo "gdrprof diff slo gate: expected exit 6, got $rc" >&2
    exit 1
fi
grep -q 'slo-violations' "$tmp/slo.txt"
grep -q 'REGRESSED' "$tmp/slo.txt"

# the bench report's analysis carries the timeline rollup, and the
# additive partitions rollup stays all-zero on an unfaulted run
grep -q '"timeline":{"windows":' BENCH_omb.json
grep -q '"partitions":{"partitions":0,"fences":0,"heals":0' BENCH_omb.json

# Campaign gate: a seeded fuzzing campaign over generated fault plans
# must complete with zero invariant violations, and two runs of the
# same seed must render byte-identical summaries. A second seed guards
# against a trajectory that happens to dodge the fault space.
run_twice_cmp camp7 cargo run --release -q -p chaos --bin gdrchaos -- run --seed 7 --trials 200
grep -q '^violations: 0$' "$tmp/camp7.stdout"
cargo run --release -q -p chaos --bin gdrchaos -- run --seed 11 --trials 200 > "$tmp/camp11.txt"
grep -q '^violations: 0$' "$tmp/camp11.txt"

# Shrinker gate: the committed known-bad fixture plan must still
# violate (exit 3), and must shrink to exactly the committed minimal
# repro — the shrinker and the golden file move together.
set +e
cargo run --release -q -p chaos --bin gdrchaos -- fixture --repro-out "$tmp/repro.txt" > "$tmp/fixture.txt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "gdrchaos fixture: expected exit 3 (violation found), got $rc" >&2
    exit 1
fi
cmp "$tmp/repro.txt" tests/golden/chaos_minimal_repro.txt
grep -q 'shrunk to' "$tmp/fixture.txt"

# ... and the minimal repro grammar replays byte-identically through
# chaos_trace --plan (the plan it ran under is echoed on stderr)
repro_grammar="$(grep -v '^#' "$tmp/repro.txt")"
run_twice_cmp replan.json cargo run --release -q -p omb --bin chaos_trace OUT --plan "$repro_grammar"
grep -q 'chaos_trace: plan: seed=1 cqe=450 retries=1' "$tmp/replan.json.stderr"
grep -q '"name":"partial-delivery"' "$tmp/replan.json"

# Crash-campaign gate: with the crash dimension armed the fuzzing
# campaign must stay violation-free (the survivor-bytes and
# view-convergence oracles hold), exercise the full fail-stop
# lifecycle (pe-dead -> evict -> view-change -> rejoin, plus the
# rejoin path's half-open probe and promote), and replay
# byte-identically under its seed.
run_twice_cmp crash_camp cargo run --release -q -p chaos --bin gdrchaos -- run --seed 11 --trials 200 --crash
grep -q '^violations: 0$' "$tmp/crash_camp.stdout"
grep -q 'survivor-bytes' "$tmp/crash_camp.stdout"
grep -q 'view-convergence' "$tmp/crash_camp.stdout"
for what in pe-dead evict view-change rejoin; do
    grep -Eq "  $what/membership: [1-9]" "$tmp/crash_camp.stdout"
done
grep -Eq '  probe/host-rdma: [1-9]' "$tmp/crash_camp.stdout"
grep -Eq '  promote/host-rdma: [1-9]' "$tmp/crash_camp.stdout"

# Crash-shrinker gate: the crash fixture plan must violate (a survivor
# that never checks membership trips the no-peer-dead oracle) and
# shrink to exactly the committed minimal `crash=` repro.
set +e
cargo run --release -q -p chaos --bin gdrchaos -- fixture --crash --repro-out "$tmp/crash_repro.txt" > "$tmp/crash_fixture.txt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "gdrchaos fixture --crash: expected exit 3 (violation found), got $rc" >&2
    exit 1
fi
cmp "$tmp/crash_repro.txt" tests/golden/chaos_crash_minimal_repro.txt
grep -q 'shrunk to "seed=1 crash=1:20000:1200000"' "$tmp/crash_fixture.txt"
# ... and the minimal crash repro replays byte-identically through
# chaos_trace --plan, landing the fail-stop instant on the trace
crash_grammar="$(grep -v '^#' "$tmp/crash_repro.txt")"
run_twice_cmp crashplan.json cargo run --release -q -p omb --bin chaos_trace OUT --plan "$crash_grammar"
grep -q '"name":"pe-dead"' "$tmp/crashplan.json"

# Membership gate: the crash trace carries the full lifecycle as
# instants, gdrprof folds them into the membership section with the
# view-convergence-time metric at exactly the detection bound, and the
# trace replays byte-identically.
run_twice_cmp crash.json cargo run --release -q -p omb --bin chaos_trace OUT --crash
for name in pe-dead evict view-change rejoin probe promote; do
    grep -q "\"name\":\"$name\"" "$tmp/crash.json"
done
mout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/crash.json" --json "$tmp/crash_rep.json")"
grep -q 'membership:' <<<"$mout"
grep -Eq 'pe-dead 1 +evicts 1 +view-changes 1 +rejoins 1' <<<"$mout"
grep -q 'view-convergence 150.000us' <<<"$mout"
grep -q '"membership":{"pe_dead":1' "$tmp/crash_rep.json"
# a completed crash/rejoin lifecycle self-diffs clean
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/crash_rep.json" "$tmp/crash_rep.json" --threshold 5 >/dev/null

# Membership-regression gate: the fixture pair holds every latency and
# fault metric flat while the candidate converges its view slower and
# leaves an eviction without a rejoin — diff must trip with the
# membership-specific exit code 7.
set +e
cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_membership_base.json tests/golden/report_membership_regressed.json \
    --threshold 10 > "$tmp/member.txt"
rc=$?
set -e
if [ "$rc" -ne 7 ]; then
    echo "gdrprof diff membership gate: expected exit 7, got $rc" >&2
    exit 1
fi
grep -q 'membership (fail-stop view):' "$tmp/member.txt"
grep -q 'unrecovered' "$tmp/member.txt"
grep -q 'REGRESSED' "$tmp/member.txt"

# Partition-campaign gate: with the reachability dimension armed the
# campaign must stay violation-free (the split-brain, quorum-progress
# and heal-convergence oracles hold), exercise the quorum-fence
# lifecycle (partition -> fence -> heal), and replay byte-identically
# under its seed. A second seed guards against a dodging trajectory.
run_twice_cmp part7 cargo run --release -q -p chaos --bin gdrchaos -- run --seed 7 --trials 200 --partition
grep -q '^violations: 0$' "$tmp/part7.stdout"
run_twice_cmp part11 cargo run --release -q -p chaos --bin gdrchaos -- run --seed 11 --trials 200 --partition
grep -q '^violations: 0$' "$tmp/part11.stdout"
grep -q 'split-brain' "$tmp/part11.stdout"
grep -q 'quorum-progress' "$tmp/part11.stdout"
grep -q 'heal-convergence' "$tmp/part11.stdout"
for what in partition fence heal; do
    grep -Eq "  $what/membership: [1-9]" "$tmp/part11.stdout"
done

# Partition-shrinker gate: the partition fixture plan must violate (a
# strict trial that forbids typed Partitioned errors trips the
# no-partitioned oracle) and shrink to exactly the committed minimal
# `partition=` repro.
set +e
cargo run --release -q -p chaos --bin gdrchaos -- fixture --partition --repro-out "$tmp/part_repro.txt" > "$tmp/part_fixture.txt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "gdrchaos fixture --partition: expected exit 3 (violation found), got $rc" >&2
    exit 1
fi
cmp "$tmp/part_repro.txt" tests/golden/chaos_partition_minimal_repro.txt
grep -q 'shrunk to "seed=1 partition=split:2:20000:1200000"' "$tmp/part_fixture.txt"
# ... and the minimal partition repro replays byte-identically through
# chaos_trace --plan, landing the partition + fence instants (the
# replay harness's ops end before the heal instant would land)
part_grammar="$(grep -v '^#' "$tmp/part_repro.txt")"
run_twice_cmp partplan.json cargo run --release -q -p omb --bin chaos_trace OUT --plan "$part_grammar"
grep -q '"name":"partition"' "$tmp/partplan.json"
grep -q '"name":"fence"' "$tmp/partplan.json"

# Partition gate: the --partition trace carries the quorum-fence
# lifecycle (partition -> fence -> heal) as instants plus the cut's
# reroute onto the proxy path, gdrprof folds them into the partitions
# section with the heal-convergence metric, and the trace replays
# byte-identically under its seed.
run_twice_cmp part.json cargo run --release -q -p omb --bin chaos_trace OUT --partition
for name in partition fence heal fallback proxy-request; do
    grep -q "\"name\":\"$name\"" "$tmp/part.json"
done
ptout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/part.json" --json "$tmp/part_rep.json")"
grep -q 'partitions:' <<<"$ptout"
grep -Eq 'partitions 2 +fences 1 +heals 1 +last-epoch 2' <<<"$ptout"
grep -q 'heal-convergence 280.000us' <<<"$ptout"
grep -q '"partitions":{"partitions":2,"fences":1,"heals":1,"last_epoch":2' "$tmp/part_rep.json"
# a healed split self-diffs clean
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/part_rep.json" "$tmp/part_rep.json" --threshold 5 >/dev/null

# Partition-regression gate: the fixture pair holds every other metric
# flat while the candidate heals its quorum-fenced view slower — diff
# must trip with the partition-specific exit code 8.
set +e
cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_partition_base.json tests/golden/report_partition_regressed.json \
    --threshold 10 > "$tmp/part_diff.txt"
rc=$?
set -e
if [ "$rc" -ne 8 ]; then
    echo "gdrprof diff partition gate: expected exit 8, got $rc" >&2
    exit 1
fi
grep -q 'partitions (quorum-fenced view):' "$tmp/part_diff.txt"
grep -q 'heal-convergence' "$tmp/part_diff.txt"
grep -q 'REGRESSED' "$tmp/part_diff.txt"

# Usage honesty: the CLIs advertise exactly the modes and exit codes
# the gates above rely on.
cargo run --release -q -p obs-analyze --bin gdrprof -- --help \
    | grep -q '8  diff found a partition (quorum-fenced view) regression'
cargo run --release -q -p omb --bin chaos_trace -- --help > "$tmp/ct_usage.txt"
grep -q -- '--partition  quorum fence/heal lifecycle + cut reroute' "$tmp/ct_usage.txt"
grep -q 'GDR_CHAOS_PART_SEED' "$tmp/ct_usage.txt"
gcu="$(cargo run --release -q -p chaos --bin gdrchaos -- --help 2>&1 || true)"
grep -q -- '\[--crash | --partition\]' <<<"$gcu"

echo "ci: OK"
