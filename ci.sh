#!/usr/bin/env bash
# Repository CI: build, test, lint, bench report + trace-analysis smoke.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Bench report: run the OMB matrix + traced workload, write the
# machine-readable report at the repo root, and prove determinism by
# re-running and comparing byte-for-byte.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p omb --bin bench_omb BENCH_omb.json "$tmp/trace.json"
cargo run --release -q -p omb --bin bench_omb "$tmp/BENCH_rerun.json"
cmp BENCH_omb.json "$tmp/BENCH_rerun.json"

# gdrprof smoke: the traced workload must analyze to a nonzero critical
# path with the expected anchor lines.
out="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/trace.json" --json "$tmp/report.json")"
grep -Eq 'ops-analyzed: [1-9]' <<<"$out"
grep -q 'critical path' <<<"$out"
# a self-diff must report no regressions
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/report.json" "$tmp/report.json" --threshold 5 >/dev/null

# and a malformed trace must fail with a nonzero exit code
printf '{"traceEvents":[' > "$tmp/bad.json"
if cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/bad.json" 2>/dev/null; then
    echo "gdrprof accepted a malformed trace" >&2
    exit 1
fi

echo "ci: OK"
