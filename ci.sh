#!/usr/bin/env bash
# Repository CI: build, test, lint, bench report + trace-analysis smoke.
# Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Bench report: run the OMB matrix + traced workload, write the
# machine-readable report at the repo root, and prove determinism by
# re-running and comparing byte-for-byte.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q -p omb --bin bench_omb BENCH_omb.json "$tmp/trace.json" "$tmp/sweep.json"
cargo run --release -q -p omb --bin bench_omb "$tmp/BENCH_rerun.json"
cmp BENCH_omb.json "$tmp/BENCH_rerun.json"

# gdrprof smoke: the traced workload must analyze to a nonzero critical
# path with the expected anchor lines.
out="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/trace.json" --json "$tmp/report.json")"
grep -Eq 'ops-analyzed: [1-9]' <<<"$out"
grep -q 'critical path' <<<"$out"
# the v2 report carries latency quantile sketches
grep -q 'latency quantiles' <<<"$out"
grep -q '"quantiles"' "$tmp/report.json"
grep -q '"p999_us"' "$tmp/report.json"
# a self-diff must report no regressions
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/report.json" "$tmp/report.json" --threshold 5 >/dev/null
# ... and --json writes the machine-readable diff document
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/report.json" "$tmp/report.json" --json "$tmp/diff.json" >/dev/null
grep -q '"schema":"gdrprof-diff-v1"' "$tmp/diff.json"

# Crossover profiler: the sweep trace must yield latency curves and at
# least one observed protocol switch per socket relation, each tagged
# with the governing threshold's provenance; the profile is
# deterministic (byte-identical across re-runs) and --suggest emits a
# loadable thresholds-v1 artifact.
cargo run --release -q -p obs-analyze --bin gdrprof -- crossover "$tmp/sweep.json" \
    --json "$tmp/x1.json" --suggest "$tmp/suggest.json" > "$tmp/x1.txt"
grep -q 'crossover .*/intra-socket:' "$tmp/x1.txt"
grep -q 'crossover .*/inter-socket:' "$tmp/x1.txt"
grep -q 'threshold gdr_put_limit=32768, builtin' "$tmp/x1.txt"
grep -q 'threshold proxy_get_min=524288, builtin' "$tmp/x1.txt"
grep -q '"schema":"thresholds-v1"' "$tmp/suggest.json"
cargo run --release -q -p obs-analyze --bin gdrprof -- crossover "$tmp/sweep.json" \
    --json "$tmp/x2.json" > "$tmp/x2.txt"
cmp "$tmp/x1.json" "$tmp/x2.json"
cmp "$tmp/x1.txt" "$tmp/x2.txt"

# What-if replay: re-deciding every recorded protocol choice under the
# currently-tuned table must be a no-op (delta exactly zero), and the
# degraded fixture table (GDR get disabled, proxy floor collapsed)
# must predict a strictly positive latency delta.
wout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- whatif "$tmp/sweep.json" \
    --thresholds tests/golden/thresholds_current.json)"
grep -q 'decisions-changed: 0' <<<"$wout"
grep -q 'predicted-delta-us: +0.000' <<<"$wout"
dgout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- whatif "$tmp/sweep.json" \
    --thresholds tests/golden/thresholds_degraded.json)"
grep -Eq 'decisions-changed: [1-9]' <<<"$dgout"
grep -Eq 'predicted-delta-us: \+[0-9]' <<<"$dgout"
awk '/predicted-delta-us:/ { sub(/\+/, "", $2); exit !($2 > 0) }' <<<"$dgout"

# Link-contention gate: the fixture pair holds latencies flat while one
# link's contended fraction grows past the threshold — diff must trip
# with the contention-specific exit code 5, not the latency code 4.
set +e
cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_contention_base.json tests/golden/report_contention_regressed.json \
    --threshold 10 > "$tmp/cont.txt"
rc=$?
set -e
if [ "$rc" -ne 5 ]; then
    echo "gdrprof diff contention gate: expected exit 5, got $rc" >&2
    exit 1
fi
grep -q 'link-contention' "$tmp/cont.txt"
grep -q 'REGRESSED' "$tmp/cont.txt"

# and a malformed trace must fail with a nonzero exit code
printf '{"traceEvents":[' > "$tmp/bad.json"
if cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/bad.json" 2>/dev/null; then
    echo "gdrprof accepted a malformed trace" >&2
    exit 1
fi

# Chaos gate: the seeded fault-injection suite must hold on two fixed
# seed trajectories (each seed replays its faults deterministically).
GDR_CHAOS_SEED=7 cargo test --release -q --test chaos
GDR_CHAOS_SEED=11 cargo test --release -q --test chaos

# gdrprof over a faulted trace: the report must surface the injected
# faults, the retries they cost, and the capability-fault fallback.
cargo run --release -q -p omb --bin chaos_trace "$tmp/chaos.json"
cout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/chaos.json" --json "$tmp/chaos_rep.json")"
grep -q 'fault injection:' <<<"$cout"
grep -Eq 'retried [1-9]' <<<"$cout"
grep -Eq 'fallbacks [1-9]' <<<"$cout"
grep -q 'put/proxy-pipeline' <<<"$cout"
# a healthy run self-diffs clean, including the recovery-rate gate
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/chaos_rep.json" "$tmp/chaos_rep.json" --threshold 5 >/dev/null

# Recovery-rate regression gate: a degraded run (retry budget starved)
# must trip `gdrprof diff` against the healthy report ...
cargo run --release -q -p omb --bin chaos_trace "$tmp/chaos_bad.json" --degraded
cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/chaos_bad.json" --json "$tmp/chaos_bad_rep.json" >/dev/null
if cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/chaos_rep.json" "$tmp/chaos_bad_rep.json" --threshold 10 >/dev/null; then
    echo "gdrprof diff missed a recovery-rate regression" >&2
    exit 1
fi
# ... and the checked-in regression fixture must keep tripping it too
if cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_recovery_base.json tests/golden/report_recovery_regressed.json \
    --threshold 10 >/dev/null; then
    echo "gdrprof diff missed the fixture recovery-rate regression" >&2
    exit 1
fi

# Chunk-recovery gate: the pipeline fault plan (large D-D put, chunk
# posts drawing from the CQE stream with a retry budget of one) must
# record chunk replays and a typed partial delivery in the trace, and
# gdrprof must surface both.
cargo run --release -q -p omb --bin chaos_trace "$tmp/pipe.json" --pipeline
grep -q '"name":"chunk-retry"' "$tmp/pipe.json"
grep -q '"name":"partial-delivery"' "$tmp/pipe.json"
pout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/pipe.json" --json "$tmp/pipe_rep.json")"
grep -Eq 'chunk-retries [1-9]' <<<"$pout"
grep -Eq 'partial-deliveries [1-9]' <<<"$pout"
# the partial-delivery diff gate: a clean report against the partial one
# must trip, exit code 4 like every regression ...
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/chaos_rep.json" "$tmp/pipe_rep.json" --threshold 10 >/dev/null && {
    echo "gdrprof diff missed a partial-delivery regression" >&2
    exit 1
}
# ... and the fixture pair isolates that gate: identical latency and
# recovery rates, only the delivered-byte fraction fell
if cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_partial_base.json tests/golden/report_partial_regressed.json \
    --threshold 10 >/dev/null; then
    echo "gdrprof diff missed the fixture partial-delivery regression" >&2
    exit 1
fi
# the pipeline fault trace replays byte-identically
cargo run --release -q -p omb --bin chaos_trace "$tmp/pipe2.json" --pipeline
cmp "$tmp/pipe.json" "$tmp/pipe2.json"

# Burst-recovery gate: a correlated burst window with the health
# breaker armed must drive the full circuit lifecycle — demote on
# sustained failure, half-open probe after cooldown, promote on the
# probe's success — all visible as trace instants ...
cargo run --release -q -p omb --bin chaos_trace "$tmp/burst.json" --burst
grep -q '"cqe-burst"' "$tmp/burst.json"
grep -q '"name":"demote"' "$tmp/burst.json"
grep -q '"name":"probe"' "$tmp/burst.json"
grep -q '"name":"promote"' "$tmp/burst.json"
# ... and in gdrprof's health section
bout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/burst.json" --json "$tmp/burst_rep.json")"
grep -q 'protocol health:' <<<"$bout"
grep -Eq 'demotes [1-9]' <<<"$bout"
grep -Eq 'promotes [1-9]' <<<"$bout"
# a completed lifecycle self-diffs clean, including the promote-rate gate
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/burst_rep.json" "$tmp/burst_rep.json" --threshold 5 >/dev/null
# the fixture pair isolates the promote-rate gate (a run whose breaker
# never re-promotes) and the stage-level attribution of a regressed
# mean (the rdma leg grew; the diff must say so)
dout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_health_base.json tests/golden/report_health_regressed.json \
    --threshold 10)" && {
    echo "gdrprof diff missed the fixture promote-rate regression" >&2
    exit 1
}
grep -q 'promote-rate' <<<"$dout"
grep -q 'stage rdma' <<<"$dout"
# the burst trace replays byte-identically under its seed
cargo run --release -q -p omb --bin chaos_trace "$tmp/burst2.json" --burst
cmp "$tmp/burst.json" "$tmp/burst2.json"

# Timeline gate: the burst trace carries the windowed metrics plane —
# gdrprof timeline must align the fault burst with a change-point, fold
# in the demote -> probe -> promote lifecycle, and place the single SLO
# violation (the burst window's collapsed recovery rate) inside the
# burst and nowhere else.
cargo run --release -q -p obs-analyze --bin gdrprof -- timeline "$tmp/burst.json" \
    --json "$tmp/tl1.json" > "$tmp/tl1.txt"
grep -q '"schema":"gdrprof-timeline-v1"' "$tmp/tl1.json"
grep -q 'CHANGE-POINT' "$tmp/tl1.txt"
grep -q 'fault burst: windows 3..3, aligned with a p99/contention change-point' "$tmp/tl1.txt"
grep -q 'lifecycle direct-gdr: demote @w3' "$tmp/tl1.txt"
grep -q 'slo-violations: 1 in 1 windows (first w3, last w3)' "$tmp/tl1.txt"
grep -q '"name":"window-snapshot"' "$tmp/burst.json"
grep -q '"name":"slo-violation"' "$tmp/burst.json"
# the timeline itself is deterministic: byte-identical against the
# replayed burst trace
cargo run --release -q -p obs-analyze --bin gdrprof -- timeline "$tmp/burst2.json" \
    --json "$tmp/tl2.json" > "$tmp/tl2.txt"
cmp "$tmp/tl1.json" "$tmp/tl2.json"
cmp "$tmp/tl1.txt" "$tmp/tl2.txt"

# SLO-violation-count gate: the fixture pair holds every latency and
# fault metric flat while the candidate's windowed plane breaches more
# budgets — diff must trip with the SLO-specific exit code 6.
set +e
cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_slo_base.json tests/golden/report_slo_regressed.json \
    --threshold 10 > "$tmp/slo.txt"
rc=$?
set -e
if [ "$rc" -ne 6 ]; then
    echo "gdrprof diff slo gate: expected exit 6, got $rc" >&2
    exit 1
fi
grep -q 'slo-violations' "$tmp/slo.txt"
grep -q 'REGRESSED' "$tmp/slo.txt"

# the bench report's analysis carries the timeline rollup
grep -q '"timeline":{"windows":' BENCH_omb.json

# Campaign gate: a seeded fuzzing campaign over generated fault plans
# must complete with zero invariant violations, and two runs of the
# same seed must render byte-identical summaries. A second seed guards
# against a trajectory that happens to dodge the fault space.
cargo run --release -q -p chaos --bin gdrchaos -- run --seed 7 --trials 200 > "$tmp/camp7a.txt"
cargo run --release -q -p chaos --bin gdrchaos -- run --seed 7 --trials 200 > "$tmp/camp7b.txt"
cmp "$tmp/camp7a.txt" "$tmp/camp7b.txt"
grep -q '^violations: 0$' "$tmp/camp7a.txt"
cargo run --release -q -p chaos --bin gdrchaos -- run --seed 11 --trials 200 > "$tmp/camp11.txt"
grep -q '^violations: 0$' "$tmp/camp11.txt"

# Shrinker gate: the committed known-bad fixture plan must still
# violate (exit 3), and must shrink to exactly the committed minimal
# repro — the shrinker and the golden file move together.
set +e
cargo run --release -q -p chaos --bin gdrchaos -- fixture --repro-out "$tmp/repro.txt" > "$tmp/fixture.txt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "gdrchaos fixture: expected exit 3 (violation found), got $rc" >&2
    exit 1
fi
cmp "$tmp/repro.txt" tests/golden/chaos_minimal_repro.txt
grep -q 'shrunk to' "$tmp/fixture.txt"

# ... and the minimal repro grammar replays byte-identically through
# chaos_trace --plan (the plan it ran under is echoed on stderr)
repro_grammar="$(grep -v '^#' "$tmp/repro.txt")"
cargo run --release -q -p omb --bin chaos_trace "$tmp/replan1.json" --plan "$repro_grammar" 2> "$tmp/replan.err"
grep -q 'chaos_trace: plan: seed=1 cqe=450 retries=1' "$tmp/replan.err"
cargo run --release -q -p omb --bin chaos_trace "$tmp/replan2.json" --plan "$repro_grammar" 2>/dev/null
cmp "$tmp/replan1.json" "$tmp/replan2.json"
grep -q '"name":"partial-delivery"' "$tmp/replan1.json"

# Crash-campaign gate: with the crash dimension armed the fuzzing
# campaign must stay violation-free (the survivor-bytes and
# view-convergence oracles hold), exercise the full fail-stop
# lifecycle (pe-dead -> evict -> view-change -> rejoin, plus the
# rejoin path's half-open probe and promote), and replay
# byte-identically under its seed.
cargo run --release -q -p chaos --bin gdrchaos -- run --seed 11 --trials 200 --crash > "$tmp/crash_a.txt"
cargo run --release -q -p chaos --bin gdrchaos -- run --seed 11 --trials 200 --crash > "$tmp/crash_b.txt"
cmp "$tmp/crash_a.txt" "$tmp/crash_b.txt"
grep -q '^violations: 0$' "$tmp/crash_a.txt"
grep -q 'survivor-bytes' "$tmp/crash_a.txt"
grep -q 'view-convergence' "$tmp/crash_a.txt"
for what in pe-dead evict view-change rejoin; do
    grep -Eq "  $what/membership: [1-9]" "$tmp/crash_a.txt"
done
grep -Eq '  probe/host-rdma: [1-9]' "$tmp/crash_a.txt"
grep -Eq '  promote/host-rdma: [1-9]' "$tmp/crash_a.txt"

# Crash-shrinker gate: the crash fixture plan must violate (a survivor
# that never checks membership trips the no-peer-dead oracle) and
# shrink to exactly the committed minimal `crash=` repro.
set +e
cargo run --release -q -p chaos --bin gdrchaos -- fixture --crash --repro-out "$tmp/crash_repro.txt" > "$tmp/crash_fixture.txt"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
    echo "gdrchaos fixture --crash: expected exit 3 (violation found), got $rc" >&2
    exit 1
fi
cmp "$tmp/crash_repro.txt" tests/golden/chaos_crash_minimal_repro.txt
grep -q 'shrunk to "seed=1 crash=1:20000:1200000"' "$tmp/crash_fixture.txt"
# ... and the minimal crash repro replays byte-identically through
# chaos_trace --plan, landing the fail-stop instant on the trace
crash_grammar="$(grep -v '^#' "$tmp/crash_repro.txt")"
cargo run --release -q -p omb --bin chaos_trace "$tmp/crashplan1.json" --plan "$crash_grammar" 2>/dev/null
cargo run --release -q -p omb --bin chaos_trace "$tmp/crashplan2.json" --plan "$crash_grammar" 2>/dev/null
cmp "$tmp/crashplan1.json" "$tmp/crashplan2.json"
grep -q '"name":"pe-dead"' "$tmp/crashplan1.json"

# Membership gate: the crash trace carries the full lifecycle as
# instants, gdrprof folds them into the membership section with the
# view-convergence-time metric at exactly the detection bound, and the
# trace replays byte-identically.
cargo run --release -q -p omb --bin chaos_trace "$tmp/crash.json" --crash
for name in pe-dead evict view-change rejoin probe promote; do
    grep -q "\"name\":\"$name\"" "$tmp/crash.json"
done
mout="$(cargo run --release -q -p obs-analyze --bin gdrprof -- analyze "$tmp/crash.json" --json "$tmp/crash_rep.json")"
grep -q 'membership:' <<<"$mout"
grep -Eq 'pe-dead 1 +evicts 1 +view-changes 1 +rejoins 1' <<<"$mout"
grep -q 'view-convergence 150.000us' <<<"$mout"
grep -q '"membership":{"pe_dead":1' "$tmp/crash_rep.json"
# a completed crash/rejoin lifecycle self-diffs clean
cargo run --release -q -p obs-analyze --bin gdrprof -- diff "$tmp/crash_rep.json" "$tmp/crash_rep.json" --threshold 5 >/dev/null
cargo run --release -q -p omb --bin chaos_trace "$tmp/crash_replay.json" --crash
cmp "$tmp/crash.json" "$tmp/crash_replay.json"

# Membership-regression gate: the fixture pair holds every latency and
# fault metric flat while the candidate converges its view slower and
# leaves an eviction without a rejoin — diff must trip with the
# membership-specific exit code 7.
set +e
cargo run --release -q -p obs-analyze --bin gdrprof -- diff \
    tests/golden/report_membership_base.json tests/golden/report_membership_regressed.json \
    --threshold 10 > "$tmp/member.txt"
rc=$?
set -e
if [ "$rc" -ne 7 ]; then
    echo "gdrprof diff membership gate: expected exit 7, got $rc" >&2
    exit 1
fi
grep -q 'membership (fail-stop view):' "$tmp/member.txt"
grep -q 'unrecovered' "$tmp/member.txt"
grep -q 'REGRESSED' "$tmp/member.txt"

echo "ci: OK"
