//! Stencil2D (SHOC) on a simulated 16-GPU cluster: full-physics run
//! validated against the serial reference, then a design comparison.
//!
//! ```text
//! cargo run --release --example stencil2d
//! ```

use gdr_shmem::apps::stencil2d::{self, serial_reference, StencilParams};
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, RuntimeConfig, ShmemMachine};

fn main() {
    // --- full physics on a small grid: verify against the serial code
    let n = 64;
    let iters = 10;
    let machine = ShmemMachine::build(
        ClusterSpec::wilkes(2, 2), // 4 PEs
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let res = stencil2d::run(&machine, StencilParams::validate(n, iters));
    let want: f64 = serial_reference(n, iters).iter().sum();
    let got = res.checksum.expect("full mode returns a checksum");
    println!(
        "validation {n}x{n}, {iters} iters: distributed checksum {got:.6}, serial {want:.6}"
    );
    assert!((got - want).abs() < 1e-9 * want.abs());
    println!("  -> matches the serial reference\n");

    // --- design comparison at 16 GPUs, 1K x 1K, scaled fidelity
    let iters = 100;
    println!("Stencil2D 1024x1024 on 16 GPUs, {iters} iterations:");
    for design in [Design::Naive, Design::HostPipeline, Design::EnhancedGdr] {
        // Naive cannot run GPU-resident halos; emulate the user staging
        // by simply reporting it as unsupported.
        if design == Design::Naive {
            println!("  {:<16} (requires manual cudaMemcpy staging — see paper Table I)", design.name());
            continue;
        }
        let m = ShmemMachine::build(ClusterSpec::wilkes(16, 1), RuntimeConfig::tuned(design));
        let r = stencil2d::run(&m, StencilParams::bench(1024, iters));
        println!(
            "  {:<16} {:>10.2} ms  ({:.1} us/iter)",
            design.name(),
            r.elapsed.as_ms_f64(),
            r.per_iter_us
        );
        // GDR_SHMEM_OBS=spans GDR_SHMEM_TRACE=stencil.json writes a
        // Chrome trace of the last design's halo exchanges.
        if let Some(p) = m.write_trace_if_requested() {
            println!("    trace -> {}", p.display());
        }
        if m.obs().counters_on() {
            eprintln!("{}", m.obs_report());
        }
    }
}
