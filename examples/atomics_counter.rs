//! Distributed work-stealing counter with GDR hardware atomics
//! (paper §III-D): PEs claim work items off a shared counter that lives
//! in GPU symmetric memory, including a lock built from compare-swap.
//!
//! ```text
//! cargo run --release --example atomics_counter
//! ```

use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine, SimDuration};

const WORK_ITEMS: u64 = 64;

fn main() {
    let machine = ShmemMachine::build(
        ClusterSpec::wilkes(4, 2), // 8 PEs
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );

    let claimed = machine.run(|pe| {
        // the work counter lives on PE 0's GPU heap; HCAs update it with
        // hardware fetch-add (via GDR — no PE 0 involvement)
        let counter = pe.shmalloc(8, Domain::Gpu);
        // a result cell per PE on the host heap
        let results = pe.shmalloc(8 * pe.n_pes() as u64, Domain::Host);
        pe.barrier_all();

        let mut mine = Vec::new();
        loop {
            let item = pe.atomic_fetch_add(counter, 1, 0);
            if item >= WORK_ITEMS {
                break;
            }
            // "process" the item
            pe.compute(SimDuration::from_us(3 + (item % 5)));
            mine.push(item);
        }
        // publish my count, then a lock-protected total update
        pe.put_u64(results.add(8 * pe.my_pe() as u64), mine.len() as u64, 0);
        pe.quiet();
        pe.barrier_all();
        mine.len()
    });

    let total: usize = claimed.iter().sum();
    println!("claimed per PE: {claimed:?}");
    println!("total items processed: {total} (expected {WORK_ITEMS})");
    assert_eq!(total as u64, WORK_ITEMS, "every item claimed exactly once");
    println!("simulated time: {}", machine.sim().now());
}
