//! Quickstart: the domain-based OpenSHMEM model in one small program.
//!
//! Builds a two-node simulated GPU cluster, allocates a symmetric
//! vector on every PE's **GPU**, and moves data with truly one-sided
//! puts/gets — no staging code, no target-side involvement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gdr_shmem::shmem::{Cmp, Design, Domain, RuntimeConfig, ShmemMachine};
use gdr_shmem::pcie::ClusterSpec;

fn main() {
    // Two nodes, one PE each, Wilkes-like hardware, Enhanced-GDR design.
    let machine = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );

    machine.run(|pe| {
        let me = pe.my_pe();
        let n = pe.n_pes();
        println!("[pe{me}] hello from {me}/{n}");

        // A symmetric array of 1024 doubles on every PE's GPU heap:
        // the paper's shmalloc(size, domain) extension.
        let x = pe.shmalloc_slice::<f64>(1024, Domain::Gpu);
        // ... and a flag on the host heap.
        let flag = pe.shmalloc(8, Domain::Host);

        if me == 0 {
            // Fill a local device buffer and put it into PE 1's copy of
            // `x` — a single one-sided call, GPU to remote GPU.
            let src = pe.malloc_dev(8192);
            let vals: Vec<f64> = (0..1024).map(|i| i as f64 * 0.25).collect();
            pe.write_raw(src, &gdr_shmem::shmem::Pod::to_bytes(&vals));

            // first touch registers the buffer (cached afterwards)
            pe.put_slice(&x, src, 1);
            pe.quiet();
            let t0 = pe.now();
            pe.put_slice(&x, src, 1);
            pe.quiet(); // remote completion — no help from PE 1 needed
            println!(
                "[pe0] put 8 KiB GPU->remote GPU in {:.2} us (direct GDR, warm)",
                (pe.now() - t0).as_us_f64()
            );

            // Signal PE 1.
            pe.put_u64(flag, 1, 1);
            pe.quiet();
        } else {
            // PE 1 just waits on the flag; the data is already in its
            // GPU memory when the flag flips.
            pe.wait_until(flag, Cmp::Ge, 1);
            let got = pe.read_sym(&x);
            assert_eq!(got[4], 1.0);
            println!("[pe1] x[4] = {} (delivered one-sided)", got[4]);

            // Read something back from PE 0 with a one-sided get.
            let dst = pe.malloc_host(64);
            pe.getmem(dst, x.addr(), 64, 0);
            println!("[pe1] got 64 B back from pe0's GPU heap");
        }

        // Atomics work on GPU symmetric memory via GDR hardware atomics.
        let ctr = pe.shmalloc(8, Domain::Gpu);
        pe.barrier_all();
        let old = pe.atomic_fetch_add(ctr, 1, 0);
        println!("[pe{me}] fetch_add on pe0's GPU counter returned {old}");
        pe.barrier_all();
        if me == 0 {
            assert_eq!(pe.local_u64(ctr), n as u64);
            println!("[pe0] counter = {n} — every PE incremented it");
        }
    });

    println!("simulated time elapsed: {}", machine.sim().now());
}
