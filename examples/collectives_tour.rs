//! A tour of the collective and synchronization API on GPU symmetric
//! memory: broadcast, fcollect, alltoall, typed reductions, locks, and
//! the threshold auto-tuner.
//!
//! ```text
//! cargo run --release --example collectives_tour
//! ```

use gdr_shmem::omb::autotune::autotune;
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RedOp, RuntimeConfig, ShmemMachine};

fn main() {
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(4, 2), // 8 PEs on 4 nodes
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );

    m.run(|pe| {
        let me = pe.my_pe();
        let n = pe.n_pes();

        // broadcast from PE 3, GPU-domain payload
        let bdata = pe.shmalloc_slice::<u64>(8, Domain::Gpu);
        if me == 3 {
            pe.write_sym(&bdata, &[7; 8]);
        }
        pe.broadcast(bdata.addr(), bdata.byte_len(), 3);
        assert_eq!(pe.read_sym(&bdata), vec![7; 8]);

        // fcollect: everyone's rank, gathered everywhere
        let mine = pe.shmalloc_slice::<u64>(1, Domain::Gpu);
        let all = pe.shmalloc_slice::<u64>(n, Domain::Gpu);
        pe.write_sym(&mine, &[me as u64]);
        pe.barrier_all();
        pe.fcollect(&all, &mine);
        assert_eq!(pe.read_sym(&all), (0..n as u64).collect::<Vec<_>>());
        if me == 0 {
            println!("fcollect gathered ranks: {:?}", pe.read_sym(&all));
        }

        // alltoall transpose
        let src = pe.shmalloc_slice::<u32>(n, Domain::Host);
        let dst = pe.shmalloc_slice::<u32>(n, Domain::Host);
        let vals: Vec<u32> = (0..n as u32).map(|j| (me as u32) * 10 + j).collect();
        pe.write_sym(&src, &vals);
        pe.barrier_all();
        pe.alltoall(&dst, &src, 1);
        let got = pe.read_sym(&dst);
        assert!(got.iter().enumerate().all(|(i, &v)| v == (i as u32) * 10 + me as u32));

        // typed reductions
        let rs = pe.shmalloc_slice::<i64>(1, Domain::Host);
        let rd = pe.shmalloc_slice::<i64>(1, Domain::Host);
        pe.write_sym(&rs, &[(me as i64) - 3]);
        pe.reduce(&rs, &rd, RedOp::Min, 0);
        if me == 0 {
            println!("min over (rank-3): {:?}", pe.read_sym(&rd));
        }
        pe.barrier_all();

        // a lock-protected critical section
        let lock = pe.shmalloc(8, Domain::Host);
        let log = pe.shmalloc_slice::<u64>(n + 1, Domain::Host);
        pe.barrier_all();
        pe.set_lock(lock);
        let slot = pe.get_one::<u64>(log.at(0), 0);
        pe.put_one::<u64>(log.at(1 + slot as usize), me as u64, 0);
        pe.put_one::<u64>(log.at(0), slot + 1, 0);
        pe.quiet();
        pe.clear_lock(lock);
        pe.barrier_all();
        if me == 0 {
            let order = pe.read_sym(&log);
            println!("lock acquisition order: {:?}", &order[1..=n]);
            assert_eq!(order[0] as usize, n);
        }
    });

    // threshold auto-tuning on a probe machine
    let tuned = autotune(RuntimeConfig::tuned(Design::EnhancedGdr));
    println!(
        "\nauto-tuned thresholds: loopback H-D {} B, D-D {} B, direct-GDR put {} B",
        tuned.loopback_put_limit, tuned.loopback_dd_limit, tuned.gdr_put_limit
    );
    println!("simulated time: {}", m.sim().now());
}
