//! The one-sidedness demonstration of paper Fig. 10, as a runnable demo:
//! watch the baseline's communication time track the target's compute
//! while Enhanced-GDR stays flat.
//!
//! ```text
//! cargo run --release --example overlap_demo
//! ```

use gdr_shmem::omb::overlap::overlap_put;
use gdr_shmem::shmem::{Design, RuntimeConfig};

fn main() {
    let bytes = 8 << 10;
    println!("inter-node D-D put of 8 KiB while the target computes:\n");
    println!(
        "{:>18} {:>22} {:>22}",
        "target busy (us)", "Host-Pipeline (us)", "Enhanced-GDR (us)"
    );
    for busy in [0u64, 25, 50, 100, 200, 400, 800] {
        let base = overlap_put(
            Design::HostPipeline,
            RuntimeConfig::tuned(Design::HostPipeline),
            bytes,
            busy,
        );
        let gdr = overlap_put(
            Design::EnhancedGdr,
            RuntimeConfig::tuned(Design::EnhancedGdr),
            bytes,
            busy,
        );
        println!(
            "{busy:>18} {:>22.1} {:>22.1}",
            base.comm_time_us, gdr.comm_time_us
        );
    }
    println!();
    println!("The baseline's final H2D copy waits for the target process to");
    println!("enter the OpenSHMEM library; the GDR design needs no help from");
    println!("the target — truly one-sided communication (paper §III, Fig 10).");
}
