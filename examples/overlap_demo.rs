//! The one-sidedness demonstration of paper Fig. 10, as a runnable demo:
//! watch the baseline's communication time track the target's compute
//! while Enhanced-GDR stays flat.
//!
//! ```text
//! cargo run --release --example overlap_demo
//! ```

use gdr_shmem::obs::ObsLevel;
use gdr_shmem::omb::overlap::overlap_put;
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};

fn main() {
    let bytes = 8 << 10;
    println!("inter-node D-D put of 8 KiB while the target computes:\n");
    println!(
        "{:>18} {:>22} {:>22}",
        "target busy (us)", "Host-Pipeline (us)", "Enhanced-GDR (us)"
    );
    for busy in [0u64, 25, 50, 100, 200, 400, 800] {
        let base = overlap_put(
            Design::HostPipeline,
            RuntimeConfig::tuned(Design::HostPipeline),
            bytes,
            busy,
        );
        let gdr = overlap_put(
            Design::EnhancedGdr,
            RuntimeConfig::tuned(Design::EnhancedGdr),
            bytes,
            busy,
        );
        println!(
            "{busy:>18} {:>22.1} {:>22.1}",
            base.comm_time_us, gdr.comm_time_us
        );
    }
    println!();
    println!("The baseline's final H2D copy waits for the target process to");
    println!("enter the OpenSHMEM library; the GDR design needs no help from");
    println!("the target — truly one-sided communication (paper §III, Fig 10).");

    // --- observability demo: trace one overlapped put at span level
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr).with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(1 << 20, Domain::Gpu);
        let src = pe.malloc_dev(1 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            pe.putmem(dest, src, 1 << 20, 1); // pipelined GDR write
            pe.quiet();
        }
        pe.barrier_all();
    });
    println!("\nobservability (one traced 1 MiB D-D put, ObsLevel::Spans):");
    print!("{}", m.obs_report());
    if let Some(p) = m.write_trace_if_requested() {
        println!("chrome trace -> {}", p.display());
    } else {
        println!("(set GDR_SHMEM_TRACE=overlap.json to dump the Chrome trace)");
    }
}
