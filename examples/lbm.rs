//! GPULBM redesigned with OpenSHMEM (paper §IV): physics validation,
//! then the CUDA-aware-MPI vs OpenSHMEM-GDR Evolution comparison.
//!
//! ```text
//! cargo run --release --example lbm
//! ```

use gdr_shmem::apps::lbm::{self, LbmParams, LbmVariant};
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, RuntimeConfig, ShmemMachine};

fn main() {
    // --- full-physics validation: D3Q19 mass conservation across ranks
    let machine = ShmemMachine::build(
        ClusterSpec::wilkes(2, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let res = lbm::run(&machine, LbmParams::validate(8, 5, LbmVariant::ShmemGdr));
    println!(
        "validation 8^3, 5 steps on 4 PEs: total mass {:.6} (conserved)",
        res.mass.unwrap()
    );

    // --- Evolution phase: original MPI version vs the redesign
    let steps = 50;
    println!("\nLBM 128^3 strong scaling on 16 GPUs, {steps} Evolution steps:");
    for variant in [LbmVariant::CudaAwareMpi, LbmVariant::ShmemGdr] {
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(16, 1),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        let r = lbm::run(&m, LbmParams::bench(128, 128, 128, steps, variant));
        println!(
            "  {variant:<16?} {:>10.2} ms  ({:.1} us/step)",
            r.evolution.as_ms_f64(),
            r.per_step_us
        );
    }
    println!("\nThe redesign moves halos straight from GPU symmetric memory");
    println!("with one-sided puts — no host staging, no target involvement.");
}
