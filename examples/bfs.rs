//! Distributed BFS over one-sided puts and GDR hardware atomics — the
//! irregular-communication workload class the paper's introduction
//! motivates PGAS with.
//!
//! ```text
//! cargo run --release --example bfs
//! ```

use gdr_shmem::apps::bfs::{self, serial_reference, BfsParams};
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, RuntimeConfig, ShmemMachine};

fn main() {
    let p = BfsParams::small(4096, 6);
    let want = serial_reference(&p);

    let m = ShmemMachine::build(
        ClusterSpec::wilkes(4, 2), // 8 PEs
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let res = bfs::run(&m, p);
    assert_eq!(res.dist, want, "distributed BFS must match the serial run");

    let reached = res.dist.iter().filter(|&&d| d != u64::MAX).count();
    println!(
        "BFS over {} vertices (degree {}) on 8 GPUs: {} levels, {} reachable",
        p.vertices, p.degree, res.levels, reached
    );
    println!("evolution time: {:.1} us (virtual)", res.elapsed.as_us_f64());

    let report = m.report();
    println!("\nruntime activity:\n{}", report.render());
    println!("every frontier block travelled as a one-sided put after a");
    println!("fetch-add slot reservation on the owner's GPU-resident inbox.");
}
