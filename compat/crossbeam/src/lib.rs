//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the API surface this workspace uses is provided:
//! `crossbeam::thread::scope` with spawned handles whose closures take
//! the scope as an (ignored) argument. Backed by `std::thread::scope`.

pub mod thread {
    use std::any::Any;
    use std::panic::AssertUnwindSafe;

    /// Result of a scope or a joined scoped thread: `Err` carries the
    /// panic payload, as in crossbeam.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// The scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` is the panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. Crossbeam passes the scope
        /// to the closure; the workspace ignores it (`|_|`), so the
        /// stand-in passes `()` — same inference, no lifetime plumbing.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined
    /// before this returns. `Err` carries the payload of a panicking
    /// unjoined thread (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU32, Ordering};

        #[test]
        fn scope_joins_all_threads() {
            let n = AtomicU32::new(0);
            super::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..4 {
                    handles.push(scope.spawn(|_| n.fetch_add(1, Ordering::SeqCst)));
                }
                for h in handles {
                    h.join().unwrap();
                }
            })
            .unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn joined_panic_is_reported_on_the_handle() {
            let r = super::scope(|scope| {
                let h = scope.spawn(|_| panic!("boom"));
                h.join()
            })
            .unwrap();
            assert!(r.is_err());
        }
    }
}
