//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment resolves crates offline, so the real
//! `parking_lot` is unavailable. This crate wraps `std::sync`
//! primitives behind parking_lot's API surface: `lock()` returns the
//! guard directly and **poisoning is ignored** (parking_lot has no
//! poisoning), which the simulation engine relies on when a panicking
//! task unwinds while holding the engine lock.

use std::ops::{Deref, DerefMut};

/// A mutex with parking_lot semantics: no poisoning, `lock()` -> guard.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// A condition variable compatible with [`MutexGuard`]. Like
/// parking_lot's, `wait` takes the guard by `&mut` and re-acquires the
/// lock before returning.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    #[inline]
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("re-entrant condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock with parking_lot semantics (no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("boom");
        });
        // parking_lot semantics: no poisoning, lock still usable
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u64);
        assert_eq!(*l.read(), 5);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
