//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates hardware-profile and config types with
//! `#[derive(Serialize, Deserialize)]` so that the real serde can be
//! dropped in when the build environment has network access. The
//! stand-in traits in `compat/serde` are empty markers (wire formats
//! are hand rolled — see `obs::json`), so the derives only need to
//! emit empty `impl` blocks. The type name is found by scanning the
//! token stream for the ident after `struct`/`enum`/`union`; generic
//! types are not supported (none in this workspace derive serde).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    panic!("serde stand-in derive: no struct/enum name found");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
