//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (trait + derive-macro
//! namespaces, like the real crate) so annotated types compile without
//! network access. The traits are empty markers; no serialization
//! machinery exists here. The `obs` crate hand-rolls its JSON wire
//! format instead of going through these traits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
