//! Campaign-engine suite: the `gdrchaos` chaos campaign end to end.
//!
//! The chaos suite (`tests/chaos.rs`) hand-writes fault scenarios; this
//! suite exercises the *generator* on top: seeded fault-plan fuzzing
//! across the workload menu, the invariant-oracle registry, and the
//! delta-debugging shrinker. Everything runs in virtual time, so a
//! short campaign is both fast and bit-reproducible — the properties
//! asserted here are the same ones the CI gates `cmp`/grep for.

use gdr_shmem::chaos::{
    self, crash_fixture_plan, fixture_plan, partition_fixture_plan, render_repro, run_campaign,
    run_campaign_mode, run_campaign_with, run_crash_fixture, run_fixture, run_partition_fixture,
    run_trial, CampaignMode, TrialSpec, Workload,
};
use gdr_shmem::faults::{FaultPlan, GEN_HORIZON_NS};

/// A short campaign over generated plans is violation-free and renders
/// a byte-identical summary on every run of the same seed — the in-repo
/// version of the two-run CI gate.
#[test]
fn short_campaign_two_runs_render_byte_identical_summaries() {
    let (s1, f1) = run_campaign(7, 48);
    let (s2, _) = run_campaign(7, 48);
    assert_eq!(s1.render(), s2.render());
    assert!(
        f1.is_empty(),
        "campaign seed 7 found violations:\n{}",
        s1.render()
    );
    // the menu rotates: every workload appears in 48 trials
    assert_eq!(s1.workloads.len(), Workload::ALL.len());
    // generated plans actually inject: the summed counters are nonzero
    let injected: u64 = s1
        .fault_counters
        .iter()
        .filter(|((what, _), _)| what == "injected")
        .map(|(_, n)| n)
        .sum();
    assert!(injected > 0, "48 generated plans never injected a fault");
}

/// Different campaign seeds take different trajectories (the fuzzer is
/// seeded, not fixed).
#[test]
fn campaign_seeds_diverge() {
    let (s1, _) = run_campaign(7, 16);
    let (s2, _) = run_campaign(8, 16);
    assert_ne!(s1.render(), s2.render());
}

/// Generated plans respect the generator horizon: every window the
/// plan schedules ends by `GEN_HORIZON_NS`, so the breaker-recovery
/// oracle's "faults are over" probe time is sound. Partition windows
/// leave room for the heal bound too, so the quorum-fence lifecycle
/// completes inside the horizon.
#[test]
fn generated_plans_fit_the_horizon() {
    for trial in 0..64 {
        let p = FaultPlan::generate(7, trial);
        for w in p.link_windows() {
            assert!(w.end_ns <= GEN_HORIZON_NS);
        }
        for s in p.proxy_stalls() {
            assert!(s.end_ns <= GEN_HORIZON_NS);
        }
        for b in p.burst_windows() {
            assert!(b.end_ns <= GEN_HORIZON_NS);
        }
        let pp = FaultPlan::generate_with_partitions(7, trial);
        for f in pp.partitions() {
            assert!(f.end_ns + gdr_shmem::shmem::HEAL_BOUND_NS <= GEN_HORIZON_NS);
        }
    }
}

/// The committed known-bad fixture: the plan violates the strict
/// `no-partial-delivery` oracle, the shrinker strips every noise
/// dimension, and the rendered repro document matches the committed
/// golden file byte for byte.
#[test]
fn fixture_shrinks_to_committed_golden_repro() {
    let (failure, minimal, probes) = run_fixture().expect("fixture plan must violate");
    assert_eq!(failure.oracle, "no-partial-delivery");
    // the original plan carries five noise dimensions...
    let original = fixture_plan().to_string();
    assert!(original.contains("link=") && original.contains("burst="));
    // ...and none survive shrinking
    let grammar = minimal.to_string();
    assert_eq!(grammar, "seed=1 cqe=450 retries=1");
    assert!(probes > 0);

    let doc = render_repro(&failure, &minimal, probes);
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chaos_minimal_repro.txt"
    ))
    .expect("committed golden repro");
    assert_eq!(doc, golden, "shrunk repro drifted from the committed golden");
}

/// The minimal grammar replays byte-identically: parsing the committed
/// repro line and re-running the trial reproduces the exact violation,
/// twice.
#[test]
fn committed_repro_grammar_replays_byte_identically() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chaos_minimal_repro.txt"
    ))
    .expect("committed golden repro");
    let grammar = golden
        .lines()
        .find(|l| !l.starts_with('#'))
        .expect("repro file carries a bare grammar line");
    let spec = TrialSpec {
        campaign_seed: chaos::FIXTURE_SEED,
        trial: 0,
        workload: Workload::PipelineDd,
        plan: FaultPlan::parse(grammar),
        strict_no_partial: true,
        strict_no_peer_dead: false,
        strict_no_partitioned: false,
    };
    let a = run_trial(&spec);
    let b = run_trial(&spec);
    assert_eq!(a.report, b.report);
    assert!(a
        .violations
        .iter()
        .any(|(oracle, _)| oracle == "no-partial-delivery"));
    assert_eq!(a.violations, b.violations);
}

/// A crash-dimension campaign is violation-free (the survivor-bytes and
/// view-convergence oracles hold on every trial), byte-identical across
/// reruns, and actually exercises the fail-stop machinery: the summed
/// lifecycle counters show evictions and at least one full rejoin.
#[test]
fn crash_campaign_is_clean_and_exercises_the_lifecycle() {
    let (s1, f1) = run_campaign_with(11, 200, true);
    let (s2, _) = run_campaign_with(11, 200, true);
    assert_eq!(s1.render(), s2.render());
    assert!(
        f1.is_empty(),
        "crash campaign seed 11 found violations:\n{}",
        s1.render()
    );
    let c = |what: &str| -> u64 {
        s1.fault_counters
            .iter()
            .filter(|((w, _), _)| w == what)
            .map(|(_, n)| n)
            .sum()
    };
    assert!(c("pe-dead") > 0, "no crash was ever detected");
    assert_eq!(c("pe-dead"), c("evict"));
    assert_eq!(c("evict"), c("view-change"));
    assert!(c("rejoin") > 0, "no rejoin lifecycle ran");
    assert!(c("probe") >= c("rejoin"), "rejoin without a HalfOpen probe");
}

/// Disabling the crash dimension reproduces the base campaign byte for
/// byte: the crash draws ride on fresh generator salts, so crash-free
/// trajectories are unperturbed.
#[test]
fn crash_flag_off_matches_base_campaign() {
    let (base, _) = run_campaign(7, 24);
    let (off, _) = run_campaign_with(7, 24, false);
    assert_eq!(base.render(), off.render());
}

/// The explicit-mode entry point keeps both historic trajectories byte
/// for byte: `Base` matches `run_campaign`, `Crash` matches the crash
/// flag, and the partition draws (salted streams of their own) never
/// perturb either.
#[test]
fn campaign_modes_preserve_historic_trajectories() {
    let (base, _) = run_campaign(7, 24);
    let (base_mode, _) = run_campaign_mode(7, 24, CampaignMode::Base);
    assert_eq!(base.render(), base_mode.render());
    let (crash, _) = run_campaign_with(11, 24, true);
    let (crash_mode, _) = run_campaign_mode(11, 24, CampaignMode::Crash);
    assert_eq!(crash.render(), crash_mode.render());
}

/// A partition-dimension campaign is violation-free (the split-brain,
/// quorum-progress and heal-convergence oracles hold on every trial),
/// byte-identical across reruns, and actually exercises the
/// quorum-fence machinery: the summed lifecycle counters show fences
/// that all heal inside the horizon.
#[test]
fn partition_campaign_is_clean_and_exercises_the_lifecycle() {
    let (s1, f1) = run_campaign_mode(11, 200, CampaignMode::Partition);
    let (s2, _) = run_campaign_mode(11, 200, CampaignMode::Partition);
    assert_eq!(s1.render(), s2.render());
    assert!(
        f1.is_empty(),
        "partition campaign seed 11 found violations:\n{}",
        s1.render()
    );
    let c = |what: &str| -> u64 {
        s1.fault_counters
            .iter()
            .filter(|((w, _), _)| w == what)
            .map(|(_, n)| n)
            .sum()
    };
    assert!(c("partition") > 0, "no partition was ever observed");
    assert!(c("fence") > 0, "no split ever reached a quorum fence");
    assert_eq!(c("fence"), c("heal"), "a fence never healed");
    // partition campaigns draw no crashes: fail-stop stays quiet
    assert_eq!(c("pe-dead"), 0);
    assert_eq!(c("evict"), 0);
}

/// The split-PE fixture: an app tier that treats any typed
/// `Partitioned` as fatal violates `no-partitioned`, and the shrinker
/// strips every noise dimension down to the minimal `partition=` repro,
/// which replays byte-identically through the grammar.
#[test]
fn partition_fixture_shrinks_to_minimal_partition_repro() {
    let (failure, minimal, probes) =
        run_partition_fixture().expect("partition fixture must violate");
    assert_eq!(failure.oracle, "no-partitioned");
    let original = partition_fixture_plan().to_string();
    assert!(original.contains("link=") && original.contains("stall="));
    assert_eq!(minimal.to_string(), "seed=1 partition=split:2:20000:1200000");
    assert!(probes > 0);

    // grammar round-trip + byte-identical violation replay
    let replay = FaultPlan::parse(&minimal.to_string());
    assert_eq!(replay, minimal);
    let spec = TrialSpec {
        campaign_seed: chaos::FIXTURE_SEED,
        trial: 0,
        workload: Workload::RmaRandom,
        plan: replay,
        strict_no_partial: false,
        strict_no_peer_dead: false,
        strict_no_partitioned: true,
    };
    let a = run_trial(&spec);
    let b = run_trial(&spec);
    assert_eq!(a.report, b.report);
    // the shrunk plan's timing differs from the noisy original, so the
    // first Partitioned op may differ — the oracle must reproduce, the
    // specific op detail need not
    assert!(a.violations.iter().any(|(o, _)| o == "no-partitioned"));
    assert_eq!(a.violations, b.violations);

    // the rendered repro document matches the committed golden file
    let doc = render_repro(&failure, &minimal, probes);
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chaos_partition_minimal_repro.txt"
    ))
    .expect("committed golden partition repro");
    assert_eq!(doc, golden, "shrunk repro drifted from the committed golden");
}

/// The crashed-PE fixture: an app tier that treats any typed `PeerDead`
/// as fatal violates `no-peer-dead`, and the shrinker strips every
/// noise dimension down to the minimal `crash=` repro, which replays
/// byte-identically through the grammar.
#[test]
fn crash_fixture_shrinks_to_minimal_crash_repro() {
    let (failure, minimal, probes) = run_crash_fixture().expect("crash fixture must violate");
    assert_eq!(failure.oracle, "no-peer-dead");
    let original = crash_fixture_plan().to_string();
    assert!(original.contains("link=") && original.contains("stall="));
    assert_eq!(minimal.to_string(), "seed=1 crash=1:20000:1200000");
    assert!(probes > 0);

    // grammar round-trip + byte-identical violation replay
    let replay = FaultPlan::parse(&minimal.to_string());
    assert_eq!(replay, minimal);
    let spec = TrialSpec {
        campaign_seed: chaos::FIXTURE_SEED,
        trial: 0,
        workload: Workload::RmaRandom,
        plan: replay,
        strict_no_partial: false,
        strict_no_peer_dead: true,
        strict_no_partitioned: false,
    };
    let a = run_trial(&spec);
    let b = run_trial(&spec);
    assert_eq!(a.report, b.report);
    // the shrunk plan's timing differs from the noisy original, so the
    // first PeerDead op may differ — the oracle must reproduce, the
    // specific op detail need not
    assert!(a.violations.iter().any(|(o, _)| o == "no-peer-dead"));
    assert_eq!(a.violations, b.violations);
}
