//! Chaos suite: randomized RMA programs under seeded fault plans.
//!
//! Every scenario is driven by a deterministic [`FaultPlan`], so a
//! failure names the seed and replays exactly. The properties under
//! test are the robustness acceptance criteria: byte-correct symmetric
//! heaps, no hangs, typed errors instead of panics when a fault defeats
//! every retry, fallbacks when a capability is gone, and bit-identical
//! traces for identical (workload seed, fault seed) pairs.
//!
//! `GDR_CHAOS_SEED` shifts the randomized scenarios onto a different
//! deterministic trajectory (the CI gate runs two fixed seeds).

use gdr_shmem::faults::{FaultPlan, LinkScope, LinkWindow, ProxyStall, ALL};
use gdr_shmem::obs::ObsLevel;
use gdr_shmem::obs_analyze;
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RedOp, RuntimeConfig, ShmemMachine, TransferError};
use gdr_shmem::sim::SimDuration;

/// xorshift64* — same generator as the randomized-RMA suite.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next() % (hi - lo)
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Base seed for the randomized scenarios; `GDR_CHAOS_SEED` moves the
/// whole suite onto a different deterministic trajectory.
fn chaos_seed() -> u64 {
    std::env::var("GDR_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[derive(Clone, Debug)]
enum ChaosOp {
    Put {
        target: usize,
        domain: bool,
        off: u64,
        len: u64,
        seed: u8,
    },
    Get {
        from: usize,
        domain: bool,
        off: u64,
        len: u64,
    },
    FetchAdd {
        target: usize,
        cell: u64,
        val: u64,
    },
}

const REGION: u64 = 64 << 10;
const CELLS: u64 = 8;

fn random_op(rng: &mut Rng, npes: usize) -> ChaosOp {
    match rng.range(0, 3) {
        0 => ChaosOp::Put {
            target: rng.range(0, npes as u64) as usize,
            domain: rng.flip(),
            off: rng.range(0, REGION - 4096),
            len: rng.range(1, 4096),
            seed: rng.range(0, 256) as u8,
        },
        1 => ChaosOp::Get {
            from: rng.range(0, npes as u64) as usize,
            domain: rng.flip(),
            off: rng.range(0, REGION - 4096),
            len: rng.range(1, 4096),
        },
        _ => ChaosOp::FetchAdd {
            target: rng.range(0, npes as u64) as usize,
            cell: rng.range(0, CELLS),
            val: rng.range(1, 100),
        },
    }
}

fn payload(len: u64, seed: u8) -> Vec<u8> {
    (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
}

/// Randomized programs under 10% transient CQE errors plus occasional
/// late completions: every op either succeeds (possibly after retries)
/// or surfaces a typed error, nothing panics, nothing hangs, and the
/// final heaps match a reference model that applies exactly the ops
/// that reported success.
#[test]
fn transient_cqe_errors_recover_byte_correct() {
    let base = chaos_seed();
    for case in 0..6u64 {
        let mut rng = Rng::new(0xC4A05 ^ (base.wrapping_mul(0x1_0001) + case));
        let design = if rng.flip() {
            Design::EnhancedGdr
        } else {
            Design::HostPipeline
        };
        let nops = rng.range(4, 28) as usize;
        // the baseline does not support inter-node H-D/D-H (paper
        // Table I): under it, force every op onto the host domain
        let ops: Vec<ChaosOp> = (0..nops)
            .map(|_| {
                let op = random_op(&mut rng, 4);
                match (design, op) {
                    (Design::HostPipeline, ChaosOp::Put { target, off, len, seed, .. }) => {
                        ChaosOp::Put { target, domain: false, off, len, seed }
                    }
                    (Design::HostPipeline, ChaosOp::Get { from, off, len, .. }) => {
                        ChaosOp::Get { from, domain: false, off, len }
                    }
                    (_, op) => op,
                }
            })
            .collect();
        let plan = FaultPlan::default()
            .with_seed(base.wrapping_mul(31).wrapping_add(case))
            .with_cqe_errors(100)
            .with_late_completions(100, 10_000);
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(2, 2),
            RuntimeConfig::tuned(design).with_faults(plan),
        );
        let ops2 = ops.clone();
        let results = m.run(move |pe| {
            let host = pe.shmalloc(REGION, Domain::Host);
            let gpu = pe.shmalloc(REGION, Domain::Gpu);
            let cells = pe.shmalloc(8 * CELLS, Domain::Host);
            pe.barrier_all();
            let mut ok = Vec::new();
            if pe.my_pe() == 0 {
                let scratch = pe.malloc_host(8192);
                for op in &ops2 {
                    match *op {
                        ChaosOp::Put { target, domain, off, len, seed } => {
                            let sym = if domain { gpu } else { host };
                            pe.write_raw(scratch, &payload(len, seed));
                            ok.push(pe.try_putmem(sym.add(off), scratch, len, target).is_ok());
                            pe.fence();
                        }
                        ChaosOp::Get { from, domain, off, len } => {
                            let sym = if domain { gpu } else { host };
                            ok.push(pe.try_getmem(scratch, sym.add(off), len, from).is_ok());
                        }
                        ChaosOp::FetchAdd { target, cell, val } => {
                            ok.push(
                                pe.try_atomic_fetch_add(cells.add(8 * cell), val, target)
                                    .is_ok(),
                            );
                        }
                    }
                }
                pe.quiet();
            }
            pe.barrier_all();
            let me = pe.my_pe();
            let h = pe.read_raw(pe.addr_of(host, me), REGION);
            let g = pe.read_raw(pe.addr_of(gpu, me), REGION);
            let mut c = Vec::new();
            for k in 0..CELLS {
                c.push(pe.local_u64(cells.add(8 * k)));
            }
            (ok, h, g, c)
        });
        // reference model: apply exactly the ops that reported success
        let succeeded = &results[0].0;
        assert_eq!(succeeded.len(), ops.len(), "case {case}: one verdict per op");
        let mut ref_mem = vec![vec![vec![0u8; REGION as usize]; 2]; 4];
        let mut ref_cells = vec![vec![0u64; CELLS as usize]; 4];
        for (op, &ok) in ops.iter().zip(succeeded) {
            if !ok {
                continue;
            }
            match *op {
                ChaosOp::Put { target, domain, off, len, seed } => {
                    let d = domain as usize;
                    ref_mem[target][d][off as usize..(off + len) as usize]
                        .copy_from_slice(&payload(len, seed));
                }
                ChaosOp::Get { .. } => {}
                ChaosOp::FetchAdd { target, cell, val } => {
                    ref_cells[target][cell as usize] =
                        ref_cells[target][cell as usize].wrapping_add(val);
                }
            }
        }
        for (peid, (_, h, g, c)) in results.iter().enumerate() {
            assert_eq!(&ref_mem[peid][0], h, "case {case}: host mem of pe{peid}");
            assert_eq!(&ref_mem[peid][1], g, "case {case}: gpu mem of pe{peid}");
            assert_eq!(&ref_cells[peid], c, "case {case}: cells of pe{peid}");
        }
    }
}

/// A CQE stream that fails every post defeats the bounded retry budget:
/// the op surfaces `RetriesExhausted` as a value — no panic, no hang —
/// and the counters record the exhaustion. Single node so the barrier
/// flags ride same-node CPU stores (never faulted) while the loopback
/// D-D put still posts RDMA and draws every fault.
#[test]
fn exhausted_retries_surface_typed_error() {
    let plan = FaultPlan::default()
        .with_cqe_errors(1000)
        .with_retry(2, 2_000, 64_000);
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(1, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_obs(ObsLevel::Counters),
    );
    let errs = m.run(|pe| {
        let dest = pe.shmalloc(2048, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(2048);
            Some(pe.try_putmem(dest, src, 2048, 1))
        } else {
            None
        }
    });
    match errs[0] {
        Some(Err(TransferError::RetriesExhausted { attempts, .. })) => {
            assert_eq!(attempts, 3, "initial attempt + 2 retries");
        }
        ref other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    let counters = m.obs().fault_counters();
    assert!(
        counters.iter().any(|((what, _), n)| *what == "exhausted" && *n > 0),
        "exhaustion must be tallied: {counters:?}"
    );
}

/// With GDR disabled on the target node, a device-destination put must
/// re-route through a GDR-free protocol, record the decision as a
/// first-class `fallback` event, and still deliver correct bytes.
#[test]
fn gdr_capability_fault_triggers_fallback() {
    let plan = FaultPlan::default().with_gdr_disabled(1);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let len = 256u64 << 10;
    let results = m.run(move |pe| {
        let dest = pe.shmalloc(len, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(len);
            pe.write_raw(src, &payload(len, 0x5A));
            pe.putmem(dest, src, len, 1);
            pe.quiet();
        }
        pe.barrier_all();
        pe.read_raw(pe.addr_of(dest, pe.my_pe()), len)
    });
    assert_eq!(results[1], payload(len, 0x5A), "fallback path must stay byte-correct");
    let tr = obs_analyze::Trace::parse(&m.obs().chrome_trace()).unwrap();
    assert!(
        !tr.fallbacks.is_empty(),
        "capability fault must record a fallback event"
    );
    assert!(
        tr.fallbacks.iter().all(|f| !f.to.contains("gdr")),
        "fallback target must be GDR-free: {:?}",
        tr.fallbacks
    );
    let counters = m.obs().fault_counters();
    assert!(
        counters.iter().any(|((what, _), n)| *what == "fallback" && *n > 0),
        "fallback must be tallied: {counters:?}"
    );
}

/// Atomics have no GDR-free fallback that preserves atomicity: with GDR
/// disabled at the target, an atomic on GPU symmetric memory is a typed
/// capability error, not a silent rerouting.
#[test]
fn atomic_on_gdr_disabled_gpu_heap_is_capability_error() {
    let plan = FaultPlan::default().with_gdr_disabled(1);
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr).with_faults(plan),
    );
    let errs = m.run(|pe| {
        let cell = pe.shmalloc(8, Domain::Gpu);
        pe.barrier_all();
        let r = if pe.my_pe() == 0 {
            Some(pe.try_atomic_fetch_add(cell, 7, 1))
        } else {
            None
        };
        pe.barrier_all();
        r
    });
    match errs[0] {
        Some(Err(TransferError::CapabilityDisabled { node, .. })) => assert_eq!(node, 1),
        ref other => panic!("expected CapabilityDisabled, got {other:?}"),
    }
}

/// A full HCA blackout window delays transfers that try to start inside
/// it; the program still completes with correct bytes, after the window.
#[test]
fn link_blackout_delays_but_completes() {
    let plan = FaultPlan::default().with_link_window(LinkWindow {
        scope: LinkScope::HcaTx,
        index: ALL,
        start_ns: 0,
        end_ns: 200_000,
        bw_permille: 0,
    });
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr).with_faults(plan),
    );
    let len = 64u64 << 10;
    let results = m.run(move |pe| {
        let dest = pe.shmalloc(len, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_host(len);
            pe.write_raw(src, &payload(len, 0x33));
            pe.putmem(dest, src, len, 1);
            pe.quiet();
        }
        pe.barrier_all();
        (
            pe.read_raw(pe.addr_of(dest, pe.my_pe()), len),
            pe.now().as_us_f64(),
        )
    });
    assert_eq!(results[1].0, payload(len, 0x33));
    for (_, t) in &results {
        assert!(
            *t >= 200.0,
            "nothing can finish before the 200us blackout lifts: ended at {t}us"
        );
    }
}

/// When every completion is delivered later than the per-op timeout,
/// the op surfaces `Timeout` as a value instead of hanging.
#[test]
fn late_completion_past_timeout_is_typed_error() {
    let plan = FaultPlan::default()
        .with_late_completions(1000, 2_000_000)
        .with_op_timeout_ns(100_000);
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr).with_faults(plan),
    );
    let errs = m.run(|pe| {
        let dest = pe.shmalloc(64 << 10, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_host(64 << 10);
            Some(pe.try_putmem(dest, src, 64 << 10, 1))
        } else {
            None
        }
    });
    match errs[0] {
        Some(Err(TransferError::Timeout { after_ns, .. })) => assert_eq!(after_ns, 100_000),
        ref other => panic!("expected Timeout, got {other:?}"),
    }
}

/// The quiesce watchdog: a deliberately-lost completion (every local
/// completion delayed far past the deadline, retries disabled so
/// nothing re-posts) must surface as a typed `Timeout` whose diagnostic
/// names the stuck op's token — never a hang or a deadlock panic. The
/// plan sets no per-op timeout; the config-level watchdog is the only
/// bound.
#[test]
fn quiesce_watchdog_converts_lost_completion_into_typed_timeout() {
    let plan = FaultPlan::default()
        .with_late_completions(1000, 50_000_000)
        .with_retry(0, 2_000, 64_000);
    assert_eq!(plan.op_timeout_ns, 0, "watchdog test must rely on quiesce_ns alone");
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_quiesce_ns(100_000),
    );
    let errs = m.run(|pe| {
        let dest = pe.shmalloc(64 << 10, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_host(64 << 10);
            Some(pe.try_putmem(dest, src, 64 << 10, 1))
        } else {
            None
        }
    });
    match errs[0] {
        Some(Err(TransferError::Timeout { after_ns, ref diag })) => {
            assert_eq!(after_ns, 100_000);
            // PE0's tokens are ((0+1)<<32)|seq: the diagnostic must name
            // the stuck op and carry the engine's blocked-task dump
            assert!(diag.contains("op 0x1"), "diag must name the token: {diag}");
            assert!(diag.contains("stuck at completion>=1"), "diag: {diag}");
            assert!(diag.contains("events pending"), "diag must embed the dump: {diag}");
        }
        ref other => panic!("expected Timeout with diagnostic, got {other:?}"),
    }
}

/// A stalled target-side progress agent (crash + restart modeled as a
/// long stall) delays the baseline's delivery work without corrupting
/// it: bytes land intact, and nothing finishes before the stall is paid.
#[test]
fn proxy_stall_delays_baseline_delivery_but_stays_correct() {
    let plan = FaultPlan::default().with_proxy_stall(ProxyStall {
        node: 1,
        start_ns: 0,
        end_ns: 5_000_000,
        extra_ns: 300_000,
    });
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::HostPipeline).with_faults(plan),
    );
    let len = 256u64 << 10;
    let results = m.run(move |pe| {
        let dest = pe.shmalloc(len, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // the baseline supports D-D inter-node (host-staged); the
            // final H2D delivery is the stalled target-side work
            let src = pe.malloc_dev(len);
            pe.write_raw(src, &payload(len, 0x77));
            pe.putmem(dest, src, len, 1);
            pe.quiet();
        }
        pe.barrier_all();
        (
            pe.read_raw(pe.addr_of(dest, pe.my_pe()), len),
            pe.now().as_us_f64(),
        )
    });
    assert_eq!(results[1].0, payload(len, 0x77));
    for (_, t) in &results {
        assert!(*t >= 300.0, "the 300us stall must be paid: ended at {t}us");
    }
}

/// A large D-D put whose pipeline chunk posts draw from a seeded CQE
/// stream: the default retry budget absorbs every chunk fault, the
/// delivered bytes are correct, and the trace records the chunk replays
/// as first-class `chunk-retry` events.
#[test]
fn pipeline_chunk_faults_recover_byte_correct() {
    let len = 4u64 << 20; // 8 chunks at the tuned 512 KiB chunk size
    let plan = FaultPlan::default().with_seed(4).with_cqe_errors(150);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let results = m.run(move |pe| {
        let dest = pe.shmalloc(len, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(len);
            pe.write_raw(src, &payload(len, 0xAB));
            pe.try_putmem(dest, src, len, 1)
                .expect("the default retry budget must absorb 15% chunk CQE errors");
            pe.quiet();
        }
        pe.barrier_all();
        pe.read_raw(pe.addr_of(dest, pe.my_pe()), len)
    });
    assert_eq!(results[1], payload(len, 0xAB), "replayed chunks must land correct bytes");
    let counters = m.obs().fault_counters();
    let chunk_retried: u64 = counters
        .iter()
        .filter(|((what, _), _)| *what == "chunk-retried")
        .map(|(_, n)| n)
        .sum();
    assert!(chunk_retried > 0, "seed 4 must exercise chunk replays: {counters:?}");
    let tr = obs_analyze::Trace::parse(&m.obs().chrome_trace()).unwrap();
    assert!(!tr.chunk_retries.is_empty(), "chunk replays must be traced");
    assert!(
        tr.chunk_retries.iter().all(|r| r.protocol == "pipeline-gdr-write"),
        "replays belong to the pipeline protocol: {:?}",
        tr.chunk_retries
    );
}

/// With the chunk retry budget capped at zero, a heavy CQE stream
/// defeats some chunks mid-transfer: the op returns a typed
/// `PartialDelivery` naming the delivered byte count — no panic, no
/// hang — and every staging credit is back (no leak from the failed
/// chunks, no credit deadlock from the replayed ones).
#[test]
fn partial_delivery_is_typed_and_leaks_no_staging() {
    let len = 4u64 << 20;
    let plan = FaultPlan::default()
        .with_seed(4)
        .with_cqe_errors(400)
        .with_retry(0, 2_000, 64_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let results = m.run(move |pe| {
        let dest = pe.shmalloc(len, Domain::Gpu);
        pe.barrier_all();
        let r = if pe.my_pe() == 0 {
            let src = pe.malloc_dev(len);
            let r = pe.try_putmem(dest, src, len, 1);
            pe.quiet(); // poisoned completions keep quiet from hanging
            Some(r)
        } else {
            None
        };
        pe.barrier_all();
        r
    });
    match results[0] {
        Some(Err(TransferError::PartialDelivery { delivered, total })) => {
            assert_eq!(total, len);
            assert!(delivered < total, "a partial delivery must miss bytes");
            assert_eq!(delivered % (512 << 10), 0, "delivery is whole-chunk");
        }
        ref other => panic!("expected PartialDelivery, got {other:?}"),
    }
    for pe in [0u32, 1] {
        assert_eq!(
            m.staging_in_use(gdr_shmem::shmem::ProcId(pe)),
            0,
            "pe{pe} staging must be fully released after the partial failure"
        );
    }
    let counters = m.obs().fault_counters();
    assert!(
        counters.iter().any(|((what, _), n)| *what == "partial" && *n > 0),
        "partial delivery must be tallied: {counters:?}"
    );
    let tr = obs_analyze::Trace::parse(&m.obs().chrome_trace()).unwrap();
    assert_eq!(tr.partials.len(), 1, "one op, one partial-delivery instant");
    assert_eq!(tr.partials[0].total, len);
}

/// The serve-get reply path (baseline host-pipeline get) draws from the
/// *serving* side's fault stream: with no retry budget the requester
/// sees the typed partial delivery, and both PEs' staging areas drain.
#[test]
fn serve_get_chunk_faults_surface_partial_delivery_to_requester() {
    let len = 2u64 << 20;
    let plan = FaultPlan::default()
        .with_seed(3)
        .with_cqe_errors(350)
        .with_retry(0, 2_000, 64_000);
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::HostPipeline).with_faults(plan),
    );
    let results = m.run(move |pe| {
        let src_sym = pe.shmalloc(len, Domain::Gpu);
        pe.barrier_all();
        let r = if pe.my_pe() == 0 {
            let dst = pe.malloc_dev(len);
            Some(pe.try_getmem(dst, src_sym, len, 1))
        } else {
            None
        };
        pe.barrier_all();
        r
    });
    match results[0] {
        Some(Err(TransferError::PartialDelivery { delivered, total })) => {
            assert_eq!(total, len);
            assert!(delivered > 0 && delivered < total, "mid-transfer failure");
        }
        ref other => panic!("expected PartialDelivery, got {other:?}"),
    }
    for pe in [0u32, 1] {
        assert_eq!(
            m.staging_in_use(gdr_shmem::shmem::ProcId(pe)),
            0,
            "pe{pe} staging must drain after the partial serve-get"
        );
    }
}

/// One traced faulted run: mixed D/H traffic with enough RDMA posts to
/// draw several transient faults. Returns the artifacts the determinism
/// contract covers.
fn traced_faulted_run(
    fault_seed: u64,
) -> (
    String,
    std::collections::BTreeMap<(&'static str, &'static str), u64>,
    String,
) {
    let plan = FaultPlan::default()
        .with_seed(fault_seed)
        .with_cqe_errors(150)
        .with_late_completions(100, 10_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        let hdest = pe.shmalloc(64 << 10, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(4 << 20);
            let hsrc = pe.malloc_host(64 << 10);
            for i in 0..12u64 {
                let _ = pe.try_putmem(hdest.add(512 * i), hsrc, 512, 1);
                let _ = pe.try_putmem(dest.add(4096 * i), src, 4096, 1);
            }
            pe.quiet();
            let _ = pe.try_getmem(hsrc, hdest, 4096, 1);
        }
        pe.barrier_all();
    });
    let trace = m.obs().chrome_trace();
    let report = obs_analyze::analyze_str(&trace).unwrap().to_json();
    (trace, m.obs().fault_counters(), report)
}

/// Determinism contract (and retry/backoff determinism): identical
/// (workload, fault seed) pairs replay the same faults, the same retry
/// counts, byte-identical Chrome traces, and identical analyzer output.
#[test]
fn identical_fault_seeds_replay_identical_traces_and_retries() {
    let (tr_a, cnt_a, rep_a) = traced_faulted_run(42);
    let (tr_b, cnt_b, rep_b) = traced_faulted_run(42);
    assert_eq!(tr_a, tr_b, "same seeds must produce byte-identical traces");
    assert_eq!(cnt_a, cnt_b, "same seeds must produce identical fault counters");
    assert_eq!(rep_a, rep_b, "same seeds must produce identical gdrprof reports");
    let retried = cnt_a
        .iter()
        .filter(|((what, _), _)| *what == "retried")
        .map(|(_, n)| n)
        .sum::<u64>();
    assert!(retried > 0, "the 15% CQE plan must exercise retries: {cnt_a:?}");
    // a different fault seed must visibly change the fault trajectory
    let (_, cnt_c, _) = traced_faulted_run(43);
    assert_ne!(cnt_a, cnt_c, "different fault seeds should diverge");
}

/// One traced chunk-faulted pipeline run (retry budget 1, heavy CQE
/// stream): chunk replays, an exhausted chunk, and a partial delivery.
fn traced_pipeline_run(
    fault_seed: u64,
) -> (
    String,
    std::collections::BTreeMap<(&'static str, &'static str), u64>,
    String,
) {
    let plan = FaultPlan::default()
        .with_seed(fault_seed)
        .with_cqe_errors(450)
        .with_retry(1, 2_000, 64_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(4 << 20);
            let _ = pe.try_putmem(dest, src, 4 << 20, 1);
            pe.quiet();
        }
        pe.barrier_all();
    });
    let trace = m.obs().chrome_trace();
    let report = obs_analyze::analyze_str(&trace).unwrap().to_json();
    (trace, m.obs().fault_counters(), report)
}

/// Chunk-level determinism: the same fault seed replays identical chunk
/// retry counts, identical partial-delivery outcomes, byte-identical
/// traces, and identical gdrprof reports.
#[test]
fn identical_seeds_replay_identical_chunk_retries_and_partials() {
    let (tr_a, cnt_a, rep_a) = traced_pipeline_run(7);
    let (tr_b, cnt_b, rep_b) = traced_pipeline_run(7);
    assert_eq!(tr_a, tr_b, "same seed must replay a byte-identical chunk-fault trace");
    assert_eq!(cnt_a, cnt_b, "same seed must replay identical chunk retry counts");
    assert_eq!(rep_a, rep_b, "same seed must produce identical gdrprof reports");
    let chunk_retried: u64 = cnt_a
        .iter()
        .filter(|((what, _), _)| *what == "chunk-retried")
        .map(|(_, n)| n)
        .sum();
    assert!(chunk_retried > 0, "the heavy plan must exercise chunk replays: {cnt_a:?}");
}

/// Collectives under a lossy cross-node sync-flag stream: barrier,
/// reduce, and fcollect replay their lost flag/data writes (idempotent
/// generation flags) and complete byte-correct — typed errors never
/// escape while the replay budget holds, and no staging leaks.
#[test]
fn collectives_recover_from_sync_flag_faults_byte_correct() {
    let plan = FaultPlan::default()
        .with_seed(9)
        .with_cqe_errors(200)
        .with_retry(2, 2_000, 16_000);
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_obs(ObsLevel::Counters),
    );
    let results = m.run(|pe| {
        let n = pe.n_pes();
        let me = pe.my_pe() as u64;
        let red_src = pe.shmalloc_slice::<u64>(4, Domain::Host);
        let red_dst = pe.shmalloc_slice::<u64>(4, Domain::Host);
        let fc_src = pe.shmalloc_slice::<u64>(2, Domain::Host);
        let fc_dst = pe.shmalloc_slice::<u64>(2 * n, Domain::Host);
        pe.try_barrier_all()?;
        for round in 0..8u64 {
            pe.write_sym(&red_src, &[me + 1, round, me * 10, 7]);
            pe.try_reduce(&red_src, &red_dst, RedOp::Sum, 0)?;
            pe.write_sym(&fc_src, &[me * 100 + round, me]);
            pe.try_fcollect(&fc_dst, &fc_src)?;
            pe.try_barrier_all()?;
        }
        Ok::<_, TransferError>((pe.read_sym(&red_dst), pe.read_sym(&fc_dst)))
    });
    for (peid, r) in results.iter().enumerate() {
        let (red, fc) = r.as_ref().unwrap_or_else(|e| {
            panic!("pe{peid}: collective surfaced an error under flag faults: {e}")
        });
        // sum over me in {0,1} of [me+1, 7, me*10, 7] at the last round
        assert_eq!(red, &[3, 14, 10, 14], "pe{peid}: reduce result");
        assert_eq!(fc, &[7, 0, 107, 1], "pe{peid}: fcollect result");
    }
    let counters = m.obs().fault_counters();
    assert!(
        counters
            .iter()
            .any(|((_, label), n)| *label == "sync-flag" && *n > 0),
        "the sync-flag stream must draw faults: {counters:?}"
    );
    assert!(
        counters
            .iter()
            .any(|((what, label), n)| *what == "recovered" && *label == "sync-flag" && *n > 0),
        "lost flag writes must be retried to success: {counters:?}"
    );
    for pe in [0u32, 1] {
        assert_eq!(
            m.staging_in_use(gdr_shmem::shmem::ProcId(pe)),
            0,
            "pe{pe}: collectives must not leak staging"
        );
    }
}

/// A correlated burst window knocks out every in-flight post: the
/// health monitor demotes the direct-GDR path (`demote`), routes
/// traffic through the host-staged fallback during the cooldown,
/// re-admits a trial op after it (`probe`), and re-promotes on its
/// success (`promote`). Ops the burst defeated outright are re-issued
/// after it and the full region ends byte-correct.
#[test]
fn burst_window_drives_demote_probe_promote_lifecycle() {
    let plan = FaultPlan::default()
        .with_seed(5)
        .with_burst_window(150_000, 200_000)
        .with_retry(2, 2_000, 16_000)
        .with_health(50_000, 3, 150_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let len = 8u64 << 10;
    let iters = 48u64;
    let results = m.run(move |pe| {
        let dest = pe.shmalloc(len * iters, Domain::Gpu);
        pe.barrier_all();
        let mut failed = Vec::new();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(len);
            pe.write_raw(src, &payload(len, 0x3C));
            for i in 0..iters {
                if pe.try_putmem(dest.add(len * i), src, len, 1).is_err() {
                    failed.push(i);
                }
                pe.quiet();
                pe.compute(SimDuration::from_us(5));
            }
            // burst-defeated ops re-issue clean once the window is over
            for &i in &failed {
                pe.try_putmem(dest.add(len * i), src, len, 1)
                    .expect("post-burst re-issue must succeed");
            }
            pe.quiet();
        }
        pe.barrier_all();
        (failed, pe.read_raw(pe.addr_of(dest, pe.my_pe()), len * iters))
    });
    let want: Vec<u8> = (0..iters).flat_map(|_| payload(len, 0x3C)).collect();
    assert_eq!(results[1].1, want, "every region must end byte-correct");
    assert!(
        !results[0].0.is_empty(),
        "the burst must defeat at least one op outright"
    );
    let counters = m.obs().fault_counters();
    for event in ["demote", "probe", "promote"] {
        assert!(
            counters
                .iter()
                .any(|((what, proto), n)| *what == event && *proto == "direct-gdr" && *n > 0),
            "breaker lifecycle must tally a direct-gdr {event}: {counters:?}"
        );
    }
    let tr = obs_analyze::Trace::parse(&m.obs().chrome_trace()).unwrap();
    assert!(
        tr.faults.iter().any(|f| f.kind == "cqe-burst"),
        "burst faults must carry their own kind in the trace"
    );
    for pe in [0u32, 1] {
        assert_eq!(m.staging_in_use(gdr_shmem::shmem::ProcId(pe)), 0);
    }
}

/// One traced burst run for the replay contract below.
fn traced_burst_run(
    fault_seed: u64,
) -> (
    String,
    std::collections::BTreeMap<(&'static str, &'static str), u64>,
) {
    let plan = FaultPlan::default()
        .with_seed(fault_seed)
        .with_burst_window(150_000, 200_000)
        .with_retry(2, 2_000, 16_000)
        .with_health(50_000, 3, 150_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let len = 8u64 << 10;
    m.run(move |pe| {
        let dest = pe.shmalloc(len * 32, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(len);
            for i in 0..32u64 {
                let _ = pe.try_putmem(dest.add(len * i), src, len, 1);
                pe.quiet();
                pe.compute(SimDuration::from_us(5));
            }
        }
        pe.barrier_all();
    });
    (m.obs().chrome_trace(), m.obs().fault_counters())
}

/// Burst determinism: the same fault seed replays identical retry and
/// demotion/promotion counters and a byte-identical trace.
#[test]
fn identical_burst_seeds_replay_identical_health_transitions() {
    let (tr_a, cnt_a) = traced_burst_run(5);
    let (tr_b, cnt_b) = traced_burst_run(5);
    assert_eq!(tr_a, tr_b, "same seed must replay a byte-identical burst trace");
    assert_eq!(cnt_a, cnt_b, "same seed must replay identical health counters");
    let demotes: u64 = cnt_a
        .iter()
        .filter(|((what, _), _)| *what == "demote")
        .map(|(_, n)| n)
        .sum();
    assert!(demotes > 0, "the burst must trip the breaker: {cnt_a:?}");
}
