//! Randomized property tests: random RMA programs against a flat
//! reference memory model, allocator invariants, and link-schedule laws.
//!
//! Generation is driven by a hand-rolled deterministic xorshift PRNG
//! over fixed seeds (the build environment resolves crates offline, so
//! no `proptest`). Failures name the seed, which reproduces exactly.

use gdr_shmem::pcie::alloc::RangeAlloc;
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};
use gdr_shmem::sim::{Link, LinkSpec, SimDuration, SimTime};

/// xorshift64* — deterministic, seedable, good enough to explore the
/// op space; never use 0 as state.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next() % (hi - lo)
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// One random RMA operation in a generated program.
#[derive(Clone, Debug)]
enum RmaOp {
    Put {
        target: usize,
        domain: bool, // true = GPU
        off: u64,
        len: u64,
        seed: u8,
    },
    Get {
        from: usize,
        domain: bool,
        off: u64,
        len: u64,
    },
    FetchAdd {
        target: usize,
        cell: u64,
        val: u64,
    },
}

const REGION: u64 = 64 << 10; // per-domain symmetric test region
const CELLS: u64 = 8;

fn random_op(rng: &mut Rng, npes: usize) -> RmaOp {
    match rng.range(0, 3) {
        0 => RmaOp::Put {
            target: rng.range(0, npes as u64) as usize,
            domain: rng.flip(),
            off: rng.range(0, REGION - 4096),
            len: rng.range(1, 4096),
            seed: rng.range(0, 256) as u8,
        },
        1 => RmaOp::Get {
            from: rng.range(0, npes as u64) as usize,
            domain: rng.flip(),
            off: rng.range(0, REGION - 4096),
            len: rng.range(1, 4096),
        },
        _ => RmaOp::FetchAdd {
            target: rng.range(0, npes as u64) as usize,
            cell: rng.range(0, CELLS),
            val: rng.range(1, 100),
        },
    }
}

fn payload(len: u64, seed: u8) -> Vec<u8> {
    (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
}

/// A random single-writer program (PE 0 issues all ops, quiets, then
/// everyone compares against a flat reference model).
#[test]
fn random_program_matches_reference_model() {
    for case in 0..12u64 {
        let mut rng = Rng::new(0xA11CE + case);
        let design = if rng.flip() {
            Design::EnhancedGdr
        } else {
            Design::HostPipeline
        };
        let nops = rng.range(1, 25) as usize;
        // the baseline does not support inter-node H-D/D-H (paper Table
        // I); under it, force every op onto the host domain
        let ops: Vec<RmaOp> = (0..nops)
            .map(|_| match (design, random_op(&mut rng, 4)) {
                (
                    Design::HostPipeline,
                    RmaOp::Put {
                        target,
                        off,
                        len,
                        seed,
                        ..
                    },
                ) => RmaOp::Put {
                    target,
                    domain: false,
                    off,
                    len,
                    seed,
                },
                (Design::HostPipeline, RmaOp::Get { from, off, len, .. }) => RmaOp::Get {
                    from,
                    domain: false,
                    off,
                    len,
                },
                (_, op) => op,
            })
            .collect();
        let m = ShmemMachine::build(ClusterSpec::wilkes(2, 2), RuntimeConfig::tuned(design));
        let npes = 4usize;
        // reference model: [pe][domain] -> bytes; atomic cells separate
        let mut ref_mem = vec![vec![vec![0u8; REGION as usize]; 2]; npes];
        let mut ref_cells = vec![vec![0u64; CELLS as usize]; npes];
        for op in &ops {
            match *op {
                RmaOp::Put {
                    target,
                    domain,
                    off,
                    len,
                    seed,
                } => {
                    let d = domain as usize;
                    ref_mem[target][d][off as usize..(off + len) as usize]
                        .copy_from_slice(&payload(len, seed));
                }
                RmaOp::Get { .. } => {}
                RmaOp::FetchAdd { target, cell, val } => {
                    ref_cells[target][cell as usize] =
                        ref_cells[target][cell as usize].wrapping_add(val);
                }
            }
        }
        let ops2 = ops.clone();
        let results = m.run(move |pe| {
            let host = pe.shmalloc(REGION, Domain::Host);
            let gpu = pe.shmalloc(REGION, Domain::Gpu);
            let cells = pe.shmalloc(8 * CELLS, Domain::Host);
            pe.barrier_all();
            if pe.my_pe() == 0 {
                let scratch = pe.malloc_host(8192);
                for op in &ops2 {
                    match *op {
                        RmaOp::Put {
                            target,
                            domain,
                            off,
                            len,
                            seed,
                        } => {
                            let sym = if domain { gpu } else { host };
                            pe.write_raw(scratch, &payload(len, seed));
                            pe.putmem(sym.add(off), scratch, len, target);
                            // same-location overwrites must apply in
                            // program order: fence between puts
                            pe.fence();
                        }
                        RmaOp::Get {
                            from,
                            domain,
                            off,
                            len,
                        } => {
                            let sym = if domain { gpu } else { host };
                            pe.getmem(scratch, sym.add(off), len, from);
                        }
                        RmaOp::FetchAdd { target, cell, val } => {
                            pe.atomic_fetch_add(cells.add(8 * cell), val, target);
                        }
                    }
                }
                pe.quiet();
            }
            pe.barrier_all();
            // dump my state for comparison
            let me = pe.my_pe();
            let h = pe.read_raw(pe.addr_of(host, me), REGION);
            let g = pe.read_raw(pe.addr_of(gpu, me), REGION);
            let mut c = Vec::new();
            for k in 0..CELLS {
                c.push(pe.local_u64(cells.add(8 * k)));
            }
            (h, g, c)
        });
        for (peid, (h, g, c)) in results.iter().enumerate() {
            assert_eq!(&ref_mem[peid][0], h, "case {case}: host mem of pe{peid}");
            assert_eq!(&ref_mem[peid][1], g, "case {case}: gpu mem of pe{peid}");
            assert_eq!(&ref_cells[peid], c, "case {case}: cells of pe{peid}");
        }
    }
}

/// Allocator: arbitrary alloc/free sequences never produce overlapping
/// live blocks and fully coalesce at the end.
#[test]
fn allocator_never_overlaps() {
    for case in 0..12u64 {
        let mut rng = Rng::new(0xB0B + case);
        let nreqs = rng.range(1, 60) as usize;
        let reqs: Vec<u64> = (0..nreqs).map(|_| rng.range(1, 5000)).collect();
        let mut a = RangeAlloc::new(1 << 20, 64);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, &r) in reqs.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                let (off, len) = live.swap_remove(i % live.len());
                a.free(off, len);
            } else if let Ok(off) = a.alloc(r) {
                // no overlap with any live block
                let aligned = r.div_ceil(64) * 64;
                for &(o, l) in &live {
                    let al = l.div_ceil(64) * 64;
                    assert!(
                        off + aligned <= o || o + al <= off,
                        "case {case}: overlap [{off},{aligned}) vs [{o},{al})"
                    );
                }
                live.push((off, r));
            }
        }
        for (off, len) in live.drain(..) {
            a.free(off, len);
        }
        assert_eq!(a.allocated(), 0, "case {case}");
        assert_eq!(a.total_free(), 1 << 20, "case {case}");
    }
}

/// Link schedules: grants are FIFO, non-overlapping, and never start
/// before the request.
#[test]
fn link_grants_are_fifo_and_disjoint() {
    for case in 0..12u64 {
        let mut rng = Rng::new(0x11_4B + case);
        let njobs = rng.range(1, 50) as usize;
        let mut link = Link::new(LinkSpec::new(SimDuration::from_ns(500), 6.4e9));
        let mut now = SimTime::ZERO;
        let mut prev_depart = SimTime::ZERO;
        for _ in 0..njobs {
            now += SimDuration::from_ns(rng.range(0, 10_000));
            let g = link.reserve(now, rng.range(1, 1_000_000));
            assert!(g.start >= now, "case {case}");
            assert!(g.start >= prev_depart, "case {case}: overlapping occupancy");
            assert!(g.depart >= g.start, "case {case}");
            assert!(g.arrive >= g.depart, "case {case}");
            prev_depart = g.depart;
        }
    }
}

/// Stencil: random (grid, iteration, PE-count) combinations match the
/// serial reference exactly.
#[test]
fn stencil_matches_reference_for_random_shapes() {
    for case in 0..6u64 {
        let mut rng = Rng::new(0x57E_4C11 + case);
        let mult = rng.range(1, 5) as usize;
        let iters = rng.range(1, 5) as usize;
        let ppn = rng.range(1, 3) as usize;
        use gdr_shmem::apps::stencil2d::{self, StencilParams};
        let nodes = 2usize;
        let npes = nodes * ppn;
        let (py, px) = gdr_shmem::apps::grid_2d(npes);
        let n = (py * px).max(2) * 8 * mult; // divisible by the PE grid
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(nodes, ppn),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        let res = stencil2d::run(&m, StencilParams::validate(n, iters));
        let want: f64 = stencil2d::serial_reference(n, iters).iter().sum();
        let got = res.checksum.unwrap();
        assert!(
            (got - want).abs() < 1e-9 * want.abs().max(1.0),
            "case {case}: n={n} iters={iters} npes={npes}: {got} vs {want}"
        );
    }
}

/// Barrier: under arbitrary compute skews nobody escapes early and
/// everyone leaves together.
#[test]
fn barrier_correct_under_random_skew() {
    for case in 0..6u64 {
        let mut rng = Rng::new(0xBA44 + case);
        let skews: Vec<u64> = (0..4).map(|_| rng.range(0, 300)).collect();
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(2, 2),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        let skews2 = skews.clone();
        let times = m.run(move |pe| {
            pe.compute(SimDuration::from_us(skews2[pe.my_pe()]));
            pe.barrier_all();
            pe.now()
        });
        let slowest = *skews.iter().max().unwrap() as f64;
        let max = times.iter().max().unwrap();
        for t in &times {
            assert!(t.as_us_f64() >= slowest, "case {case}: escaped early: {t}");
            assert!(
                (*max - *t).as_us_f64() < 10.0,
                "case {case}: left too far apart"
            );
        }
    }
}
