//! Property-based tests: random RMA programs against a flat reference
//! memory model, allocator invariants, and link-schedule laws.

use gdr_shmem::pcie::alloc::RangeAlloc;
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};
use gdr_shmem::sim::{Link, LinkSpec, SimDuration, SimTime};
use proptest::prelude::*;

/// One random RMA operation in a generated program.
#[derive(Clone, Debug)]
enum RmaOp {
    Put {
        target: usize,
        domain: bool, // true = GPU
        off: u64,
        len: u64,
        seed: u8,
    },
    Get {
        from: usize,
        domain: bool,
        off: u64,
        len: u64,
    },
    FetchAdd {
        target: usize,
        cell: u64,
        val: u64,
    },
}

const REGION: u64 = 64 << 10; // per-domain symmetric test region
const CELLS: u64 = 8;

fn op_strategy(npes: usize) -> impl Strategy<Value = RmaOp> {
    prop_oneof![
        (
            0..npes,
            any::<bool>(),
            0..(REGION - 4096),
            1u64..4096,
            any::<u8>()
        )
            .prop_map(|(target, domain, off, len, seed)| RmaOp::Put {
                target,
                domain,
                off,
                len,
                seed,
            }),
        (0..npes, any::<bool>(), 0..(REGION - 4096), 1u64..4096).prop_map(
            |(from, domain, off, len)| RmaOp::Get {
                from,
                domain,
                off,
                len,
            }
        ),
        (0..npes, 0..CELLS, 1u64..100).prop_map(|(target, cell, val)| RmaOp::FetchAdd {
            target,
            cell,
            val,
        }),
    ]
}

fn payload(len: u64, seed: u8) -> Vec<u8> {
    (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random single-writer program (PE 0 issues all ops, quiets, then
    /// everyone compares against a flat reference model).
    #[test]
    fn random_program_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(4), 1..25),
        design_pick in any::<bool>(),
    ) {
        let design = if design_pick { Design::EnhancedGdr } else { Design::HostPipeline };
        // the baseline does not support inter-node H-D/D-H (paper Table
        // I); under it, force every op onto the host domain
        let ops: Vec<RmaOp> = ops
            .into_iter()
            .map(|op| match (design, op) {
                (Design::HostPipeline, RmaOp::Put { target, off, len, seed, .. }) => RmaOp::Put {
                    target,
                    domain: false,
                    off,
                    len,
                    seed,
                },
                (Design::HostPipeline, RmaOp::Get { from, off, len, .. }) => RmaOp::Get {
                    from,
                    domain: false,
                    off,
                    len,
                },
                (_, op) => op,
            })
            .collect();
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(2, 2),
            RuntimeConfig::tuned(design),
        );
        let npes = 4usize;
        // reference model: [pe][domain] -> bytes; atomic cells separate
        let mut ref_mem = vec![vec![vec![0u8; REGION as usize]; 2]; npes];
        let mut ref_cells = vec![vec![0u64; CELLS as usize]; npes];
        for op in &ops {
            match *op {
                RmaOp::Put { target, domain, off, len, seed } => {
                    let d = domain as usize;
                    ref_mem[target][d][off as usize..(off + len) as usize]
                        .copy_from_slice(&payload(len, seed));
                }
                RmaOp::Get { .. } => {}
                RmaOp::FetchAdd { target, cell, val } => {
                    ref_cells[target][cell as usize] =
                        ref_cells[target][cell as usize].wrapping_add(val);
                }
            }
        }
        let ops2 = ops.clone();
        let results = m.run(move |pe| {
            let host = pe.shmalloc(REGION, Domain::Host);
            let gpu = pe.shmalloc(REGION, Domain::Gpu);
            let cells = pe.shmalloc(8 * CELLS, Domain::Host);
            pe.barrier_all();
            if pe.my_pe() == 0 {
                let scratch = pe.malloc_host(8192);
                for op in &ops2 {
                    match *op {
                        RmaOp::Put { target, domain, off, len, seed } => {
                            let sym = if domain { gpu } else { host };
                            pe.write_raw(scratch, &payload(len, seed));
                            pe.putmem(sym.add(off), scratch, len, target);
                            // same-location overwrites must apply in
                            // program order: fence between puts
                            pe.fence();
                        }
                        RmaOp::Get { from, domain, off, len } => {
                            let sym = if domain { gpu } else { host };
                            pe.getmem(scratch, sym.add(off), len, from);
                        }
                        RmaOp::FetchAdd { target, cell, val } => {
                            pe.atomic_fetch_add(cells.add(8 * cell), val, target);
                        }
                    }
                }
                pe.quiet();
            }
            pe.barrier_all();
            // dump my state for comparison
            let me = pe.my_pe();
            let h = pe.read_raw(pe.addr_of(host, me), REGION);
            let g = pe.read_raw(pe.addr_of(gpu, me), REGION);
            let mut c = Vec::new();
            for k in 0..CELLS {
                c.push(pe.local_u64(cells.add(8 * k)));
            }
            (h, g, c)
        });
        for (peid, (h, g, c)) in results.iter().enumerate() {
            prop_assert_eq!(&ref_mem[peid][0], h, "host mem of pe{}", peid);
            prop_assert_eq!(&ref_mem[peid][1], g, "gpu mem of pe{}", peid);
            prop_assert_eq!(&ref_cells[peid], c, "cells of pe{}", peid);
        }
    }

    /// Allocator: arbitrary alloc/free sequences never produce
    /// overlapping live blocks and fully coalesce at the end.
    #[test]
    fn allocator_never_overlaps(
        reqs in proptest::collection::vec(1u64..5000, 1..60),
    ) {
        let mut a = RangeAlloc::new(1 << 20, 64);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, &r) in reqs.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                let (off, len) = live.swap_remove(i % live.len());
                a.free(off, len);
            } else if let Ok(off) = a.alloc(r) {
                // no overlap with any live block
                let aligned = r.div_ceil(64) * 64;
                for &(o, l) in &live {
                    let al = l.div_ceil(64) * 64;
                    prop_assert!(off + aligned <= o || o + al <= off,
                        "overlap: [{off},{aligned}) vs [{o},{al})");
                }
                live.push((off, r));
            }
        }
        for (off, len) in live.drain(..) {
            a.free(off, len);
        }
        prop_assert_eq!(a.allocated(), 0);
        prop_assert_eq!(a.total_free(), 1 << 20);
    }

    /// Link schedules: grants are FIFO, non-overlapping, and never start
    /// before the request.
    #[test]
    fn link_grants_are_fifo_and_disjoint(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..1_000_000), 1..50),
    ) {
        let mut link = Link::new(LinkSpec::new(SimDuration::from_ns(500), 6.4e9));
        let mut now = SimTime::ZERO;
        let mut prev_depart = SimTime::ZERO;
        for &(gap, bytes) in &jobs {
            now += SimDuration::from_ns(gap);
            let g = link.reserve(now, bytes);
            prop_assert!(g.start >= now);
            prop_assert!(g.start >= prev_depart, "overlapping occupancy");
            prop_assert!(g.depart >= g.start);
            prop_assert!(g.arrive >= g.depart);
            prev_depart = g.depart;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Stencil: any (grid, iteration, PE-count) combination matches the
    /// serial reference exactly.
    #[test]
    fn stencil_matches_reference_for_random_shapes(
        mult in 1usize..5,
        iters in 1usize..5,
        ppn in 1usize..3,
    ) {
        use gdr_shmem::apps::stencil2d::{self, StencilParams};
        let nodes = 2usize;
        let npes = nodes * ppn;
        let (py, px) = gdr_shmem::apps::grid_2d(npes);
        let n = (py * px).max(2) * 8 * mult; // divisible by the PE grid
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(nodes, ppn),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        let res = stencil2d::run(&m, StencilParams::validate(n, iters));
        let want: f64 = stencil2d::serial_reference(n, iters).iter().sum();
        let got = res.checksum.unwrap();
        prop_assert!((got - want).abs() < 1e-9 * want.abs().max(1.0),
            "n={n} iters={iters} npes={npes}: {got} vs {want}");
    }

    /// Barrier: under arbitrary compute skews nobody escapes early and
    /// everyone leaves together.
    #[test]
    fn barrier_correct_under_random_skew(
        skews in proptest::collection::vec(0u64..300, 4),
    ) {
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(2, 2),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        let skews2 = skews.clone();
        let times = m.run(move |pe| {
            pe.compute(SimDuration::from_us(skews2[pe.my_pe()]));
            pe.barrier_all();
            pe.now()
        });
        let slowest = *skews.iter().max().unwrap() as f64;
        let max = times.iter().max().unwrap();
        for t in &times {
            prop_assert!(t.as_us_f64() >= slowest, "escaped early: {t}");
            prop_assert!((*max - *t).as_us_f64() < 10.0, "left too far apart");
        }
    }
}
