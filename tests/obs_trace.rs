//! Observability integration tests: determinism of span recording on a
//! real 2-PE inter-node D-D run, level gating, and a golden-file check
//! of the Chrome-trace wire format.

use gdr_shmem::obs::{self, Decision, ObsLevel, Payload, Recorder, TrackKind};
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};
use gdr_shmem::sim::{SimDuration, SimTime};

/// Two inter-node PEs, GPU-resident symmetric heap: one small put
/// (direct GDR), one large put (pipelined GDR write), one large get
/// (proxy pipeline), plus the surrounding barriers.
fn traced_machine(level: ObsLevel) -> std::sync::Arc<ShmemMachine> {
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr).with_obs(level);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        let src = pe.malloc_dev(4 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            pe.putmem(dest, src, 64, 1);
            pe.putmem(dest, src, 2 << 20, 1);
            pe.quiet();
            pe.getmem(src, dest, 2 << 20, 1);
        }
        pe.barrier_all();
    });
    m
}

#[test]
fn span_trace_is_deterministic_across_runs() {
    let a = traced_machine(ObsLevel::Spans);
    let b = traced_machine(ObsLevel::Spans);
    let ta = a.obs().chrome_trace();
    let tb = b.obs().chrome_trace();
    assert_eq!(ta, tb, "two identical runs must serialize identical traces");

    assert!(a.obs().decision_count() >= 1, "no protocol-decision records");
    let doc = obs::json::parse(&ta).expect("trace must be valid JSON");
    let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(evs.len() > 10, "suspiciously small trace: {} events", evs.len());
    for e in evs {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        if ph != "M" {
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= 0.0 && ts.is_finite());
        }
    }
}

#[test]
fn windowed_trace_is_deterministic_and_gated() {
    // the same workload with the 50us metrics plane armed: replays must
    // stay byte-identical, and the metrics track must carry snapshots
    let windowed = || {
        let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_obs(ObsLevel::Spans)
            .with_obs_window(50);
        let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
        m.run(|pe| {
            let dest = pe.shmalloc(4 << 20, Domain::Gpu);
            let src = pe.malloc_dev(4 << 20);
            pe.barrier_all();
            if pe.my_pe() == 0 {
                pe.putmem(dest, src, 64, 1);
                pe.putmem(dest, src, 2 << 20, 1);
                pe.quiet();
                pe.getmem(src, dest, 2 << 20, 1);
            }
            pe.barrier_all();
        });
        m
    };
    let a = windowed();
    let b = windowed();
    let ta = a.obs().chrome_trace();
    assert_eq!(
        ta,
        b.obs().chrome_trace(),
        "windowed replays must serialize identical traces"
    );
    assert!(ta.contains("\"window-snapshot\""), "missing snapshot instants");
    assert!(ta.contains("\"metrics\""), "missing metrics track metadata");
    // windowless runs must not grow a metrics track: the golden wire
    // format stays untouched by the plane
    let plain = traced_machine(ObsLevel::Spans).obs().chrome_trace();
    assert!(!plain.contains("\"window-snapshot\""));
    assert!(!plain.contains("\"metrics\""));
    // window boundaries land on exact multiples of the width: every
    // snapshot's end_us - start_us equals the configured 50us
    let doc = obs::json::parse(&ta).expect("windowed trace must be valid JSON");
    let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut snaps = 0;
    for e in evs {
        if e.get("name").and_then(|n| n.as_str()) == Some("window-snapshot") {
            snaps += 1;
            let args = e.get("args").unwrap();
            let s = args.get("start_us").unwrap().as_f64().unwrap();
            let en = args.get("end_us").unwrap().as_f64().unwrap();
            assert_eq!(en - s, 50.0, "window width drifted");
            assert_eq!(s % 50.0, 0.0, "window start not aligned to the width");
        }
    }
    assert!(snaps >= 1, "expected at least one window snapshot");
}

#[test]
fn pipeline_chunk_spans_are_monotone() {
    let m = traced_machine(ObsLevel::Spans);
    // (stage -> [(chunk index, start ps)]) for the pipelined-write path
    let mut stages: std::collections::BTreeMap<&'static str, Vec<(u32, u64)>> =
        std::collections::BTreeMap::new();
    m.obs().for_each_event(|_, _, e| {
        if let Payload::Chunk { protocol, stage, index, .. } = e.payload {
            if protocol == "pipeline-gdr-write" {
                stages.entry(stage).or_default().push((index, e.ts.as_ps()));
            }
        }
    });
    assert!(stages.contains_key("d2h"), "missing d2h chunk spans: {stages:?}");
    assert!(stages.contains_key("rdma"), "missing rdma chunk spans: {stages:?}");
    for (stage, mut v) in stages {
        assert!(v.len() >= 2, "{stage}: expected multiple chunks, got {v:?}");
        v.sort_unstable();
        for w in v.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "{stage}: chunk {} (ts {}) starts before chunk {} (ts {})",
                w[1].0, w[1].1, w[0].0, w[0].1
            );
        }
    }
}

#[test]
fn off_level_records_nothing() {
    let m = traced_machine(ObsLevel::Off);
    assert_eq!(m.obs().event_count(), 0);
    assert_eq!(m.obs().decision_count(), 0);
    assert!(m.obs().histograms().is_empty());
    assert!(m.obs().agent_counters().is_empty());
}

#[test]
fn counters_level_fills_histograms_without_spans() {
    let m = traced_machine(ObsLevel::Counters);
    assert_eq!(m.obs().event_count(), 0, "counters level must not buffer events");
    assert!(!m.obs().histograms().is_empty());
    assert!(!m.obs().agent_counters().is_empty());
}

/// The exporter's exact wire format, pinned against a committed file.
/// Regenerate after an intentional format change with
/// `GDR_OBS_BLESS=1 cargo test --test obs_trace`.
#[test]
fn chrome_trace_matches_golden_file() {
    let r = Recorder::new(ObsLevel::Spans);
    let pe0 = r.track(TrackKind::Pe, 0);
    let t = |us: u64| SimTime(us * 1_000_000);

    let mut d = Decision {
        op: "put",
        size: 64,
        src_pe: 0,
        dst_pe: 1,
        src_dev: true,
        dst_dev: true,
        same_node: false,
        chosen: "direct-gdr",
        ..Default::default()
    };
    d.candidates.push("direct-gdr");
    d.candidates.push("pipeline-gdr-write");
    d.thresholds.push("gdr_put_limit", 32768);
    r.decision(pe0, t(1), d);
    r.span(
        pe0,
        "put",
        t(1),
        t(5),
        Payload::Op {
            op: "put",
            protocol: "direct-gdr",
            size: 64,
            src_pe: 0,
            dst_pe: 1,
            src_dev: true,
            dst_dev: true,
            same_node: false,
            op_id: 7,
        },
    );
    r.span(
        pe0,
        "chunk-d2h",
        t(6),
        t(7),
        Payload::Chunk {
            protocol: "pipeline-gdr-write",
            stage: "d2h",
            index: 0,
            size: 1024,
            op_id: 7,
        },
    );
    r.instant(
        r.track(TrackKind::Proxy, 0),
        "proxy-request",
        t(8),
        Payload::Proxy { kind: "put", size: 4096, origin_pe: 0 },
    );
    r.agent_bytes(TrackKind::Hca, 0, t(9), 4096, SimDuration::from_us(2));

    let got = r.chrome_trace();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/obs_trace.json");
    if std::env::var_os("GDR_OBS_BLESS").is_some() {
        std::fs::write(path, &got).unwrap();
    }
    let want = std::fs::read_to_string(path)
        .expect("missing golden file; regenerate with GDR_OBS_BLESS=1");
    assert_eq!(got, want, "trace format drifted from tests/golden/obs_trace.json");

    // and the golden trace round-trips through the parser
    let doc = obs::json::parse(&got).unwrap();
    let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let decision = evs
        .iter()
        .find(|e| e.get("name").map(|n| n.as_str()) == Some(Some("protocol-decision")))
        .expect("decision record in golden trace");
    assert_eq!(
        decision.get("args").unwrap().get("chosen").unwrap().as_str().unwrap(),
        "direct-gdr"
    );
}
