//! Sampled span recording (`GDR_SHMEM_OBS_SAMPLE`): deterministic 1-in-N
//! span selection by op sequence number, with counters staying exact.

use gdr_shmem::obs::ObsLevel;
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};

/// Eight same-pattern puts/gets so a 1-in-4 sample keeps some ops and
/// drops others, inter-node D-D like the paper's measured configuration.
fn run_workload(sample: u64) -> std::sync::Arc<ShmemMachine> {
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_obs(ObsLevel::Spans)
        .with_obs_sample(sample);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        let src = pe.malloc_dev(4 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            for i in 0..4u64 {
                pe.putmem(dest, src, 64 << i, 1);
                pe.putmem(dest, src, 1 << 20, 1);
            }
            pe.quiet();
            pe.getmem(src, dest, 1 << 20, 1);
        }
        pe.barrier_all();
    });
    m
}

/// The same workload with the windowed metrics plane armed (50us
/// windows) on top of span sampling.
fn run_windowed(sample: u64) -> std::sync::Arc<ShmemMachine> {
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_obs(ObsLevel::Spans)
        .with_obs_sample(sample)
        .with_obs_window(50);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        let src = pe.malloc_dev(4 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            for i in 0..4u64 {
                pe.putmem(dest, src, 64 << i, 1);
                pe.putmem(dest, src, 1 << 20, 1);
            }
            pe.quiet();
            pe.getmem(src, dest, 1 << 20, 1);
        }
        pe.barrier_all();
    });
    m
}

#[test]
fn window_snapshots_are_counter_exact_under_sampling() {
    // the plane is fed from the exact counter path, not the sampled
    // span path: a 1-in-4 run must roll up the same windows as a full
    // run, byte for byte
    let full = run_windowed(1);
    let sampled = run_windowed(4);
    let fs: Vec<String> = full.obs().window_report().iter().map(|w| w.args_json()).collect();
    let ss: Vec<String> = sampled
        .obs()
        .window_report()
        .iter()
        .map(|w| w.args_json())
        .collect();
    assert!(!fs.is_empty(), "windowed run must emit snapshots");
    assert_eq!(fs, ss, "window snapshots must be exact under span sampling");
}

#[test]
fn window_boundaries_identical_across_replays() {
    let a = run_windowed(4);
    let b = run_windowed(4);
    let ta = a.obs().chrome_trace();
    assert_eq!(
        ta,
        b.obs().chrome_trace(),
        "windowed replays of the same seed must serialize identical traces"
    );
    assert!(
        ta.contains("window-snapshot"),
        "armed plane must emit snapshot instants"
    );
    // the metrics track only exists when the plane is armed
    let plain = run_workload(4);
    assert!(!plain.obs().chrome_trace().contains("window-snapshot"));
}

#[test]
fn sampled_trace_is_deterministic_across_runs() {
    let a = run_workload(4);
    let b = run_workload(4);
    assert_eq!(
        a.obs().chrome_trace(),
        b.obs().chrome_trace(),
        "sampling is keyed on op sequence numbers, so two identical runs \
         must select the same ops"
    );
}

#[test]
fn counters_stay_exact_under_sampling() {
    let full = run_workload(1);
    let sampled = run_workload(4);
    assert_eq!(
        full.obs().histograms(),
        sampled.obs().histograms(),
        "latency histograms must be exact regardless of span sampling"
    );
    assert_eq!(
        format!("{:?}", full.obs().agent_counters()),
        format!("{:?}", sampled.obs().agent_counters()),
        "hardware utilization counters must be exact regardless of sampling"
    );
}

#[test]
fn sampling_drops_op_spans_but_not_all() {
    let full = run_workload(1);
    let sampled = run_workload(4);
    let nf = full.obs().event_count();
    let ns = sampled.obs().event_count();
    assert!(
        ns < nf,
        "1-in-4 sampling must record fewer events ({ns} vs {nf})"
    );
    assert!(ns > 0, "sampling must not drop everything");
    // decisions ride with their op's sample token: the workload issues
    // 9 RMA ops on PE 0 (8 puts + 1 get), and 1-in-4 keeps seq 0, 4, 8
    assert_eq!(full.obs().decision_count(), 9);
    assert_eq!(sampled.obs().decision_count(), 3);
}

#[test]
fn sample_one_matches_unsampled_config() {
    let explicit = run_workload(1);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr).with_obs(ObsLevel::Spans);
    assert_eq!(cfg.obs_sample, 1, "default sample rate is 1 (record all)");
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        let src = pe.malloc_dev(4 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            for i in 0..4u64 {
                pe.putmem(dest, src, 64 << i, 1);
                pe.putmem(dest, src, 1 << 20, 1);
            }
            pe.quiet();
            pe.getmem(src, dest, 1 << 20, 1);
        }
        pe.barrier_all();
    });
    assert_eq!(
        explicit.obs().chrome_trace(),
        m.obs().chrome_trace(),
        "sample=1 must be bit-identical to the unsampled default"
    );
}
