//! Fail-stop fault tolerance end to end: crash faults, virtual-time
//! membership, degraded collectives, and the full PE rejoin lifecycle.
//! Network-partition tolerance rides the same machinery: `partition=`
//! plans fence the minority side behind a quorum at the detection
//! bound, majority collectives re-form and stay byte-comparable to a
//! smaller reference cluster, and the heal merges the views back at a
//! higher epoch.
//!
//! Everything here is a pure virtual-time replay of a fault plan —
//! the membership view is a function of (plan, virtual time), so every
//! assertion is deterministic and the degraded results are exactly
//! byte-comparable against a smaller reference cluster.

use gdr_shmem::shmem::{
    Design, Domain, FaultPlan, RedOp, RuntimeConfig, ShmemMachine, SimDuration, TransferError,
    DETECT_BOUND_NS, HEAL_BOUND_NS,
};
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::obs::ObsLevel;

const CRASH_AT_NS: u64 = 120_000;
const REJOIN_NS: u64 = 500_000;

/// Run `rounds` of sum-reduce-to-root-0 on `spec` under `plan`. Each PE
/// contributes `[me + 1, round, me * 10, 7]` per round; the per-PE
/// result is the last round's dst (or the first typed error).
fn reduce_rounds(
    spec: ClusterSpec,
    plan: FaultPlan,
    rounds: u64,
) -> Vec<Result<Vec<u64>, TransferError>> {
    let m = ShmemMachine::build(
        spec,
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_obs(ObsLevel::Counters),
    );
    m.run(move |pe| {
        let me = pe.my_pe() as u64;
        let src = pe.shmalloc_slice::<u64>(4, Domain::Host);
        let dst = pe.shmalloc_slice::<u64>(4, Domain::Host);
        pe.try_barrier_all()?;
        for round in 0..rounds {
            pe.write_sym(&src, &[me + 1, round, me * 10, 7]);
            pe.try_reduce(&src, &dst, RedOp::Sum, 0)?;
            pe.compute(SimDuration::from_us(10));
        }
        Ok(pe.read_sym(&dst))
    })
}

/// An 8-PE reduce with one non-root PE crashing mid-run re-forms over
/// the survivors, and the survivors' final result is byte-identical to
/// a 7-PE reference cluster that never contained the dead PE.
#[test]
fn degraded_reduce_matches_smaller_reference_cluster() {
    // PE 7 (its own node on wilkes(8, 1)) dies mid-run, never rejoins
    let plan = FaultPlan::default().with_seed(3).with_crash(7, CRASH_AT_NS, 0);
    let degraded = reduce_rounds(ClusterSpec::wilkes(8, 1), plan, 24);
    let reference = reduce_rounds(ClusterSpec::wilkes(7, 1), FaultPlan::default(), 24);

    // the crashed PE's own activity fails typed (a self-report carries
    // the epoch at the instant it failed, which precedes detection)
    match &degraded[7] {
        Err(TransferError::PeerDead { pe: 7, .. }) => {}
        other => panic!("crashed PE must observe its own fail-stop, got {other:?}"),
    }
    // every survivor finished all rounds and holds the 7-PE sum
    let want = reference[0].as_ref().expect("reference cluster is unfaulted");
    for (peid, r) in degraded.iter().take(7).enumerate() {
        let got = r.as_ref().unwrap_or_else(|e| {
            panic!("survivor pe{peid} must complete the degraded reduce: {e}")
        });
        assert_eq!(got, want, "survivor pe{peid} diverged from the 7-PE reference");
    }
    // sanity: the degraded sum actually lost PE 7's contribution
    let full: u64 = (1..=8).sum();
    let shrunk: u64 = (1..=7).sum();
    assert_eq!(want[0], shrunk);
    assert_ne!(want[0], full);
}

/// A transparent blip (rejoin inside the detection bound) is never
/// observable: no eviction, no typed errors, full-cluster results.
#[test]
fn transparent_blip_is_unobservable_in_results() {
    let blip = FaultPlan::default()
        .with_seed(3)
        .with_crash(7, CRASH_AT_NS, CRASH_AT_NS + DETECT_BOUND_NS - 1);
    let out = reduce_rounds(ClusterSpec::wilkes(8, 1), blip, 24);
    let full: u64 = (1..=8).sum();
    for (peid, r) in out.iter().enumerate() {
        let got = r.as_ref().unwrap_or_else(|e| panic!("pe{peid}: blip leaked: {e}"));
        assert_eq!(got[0], full, "pe{peid}: blip must keep the full-cluster sum");
    }
}

/// The full rejoin lifecycle over an inter-node put stream: the peer's
/// crash is detected within the bound (`pe-dead`/`evict`/`view-change`),
/// in-flight puts fail typed, and the rejoin re-registers the heap and
/// walks the health breaker's HalfOpen probe back to a promote —
/// after which puts to the rejoined PE succeed again.
#[test]
fn rejoin_walks_eviction_then_halfopen_probe_to_promote() {
    let plan = FaultPlan::default().with_seed(5).with_crash(1, CRASH_AT_NS, REJOIN_NS);
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_obs(ObsLevel::Spans),
    );
    let outs = m.run(move |pe| {
        let me = pe.my_pe();
        let dst = pe.shmalloc(4096, Domain::Host);
        let src = pe.malloc_host(4096);
        if me != 0 {
            return Vec::new();
        }
        let payload = vec![0xA5u8; 4096];
        pe.write_raw(src, &payload);
        let mut outcomes = Vec::new();
        for _ in 0..40 {
            outcomes.push(match pe.try_putmem(dst, src, 4096, 1) {
                Ok(()) => "ok",
                Err(TransferError::PeerDead { pe: 1, .. }) => "dead",
                Err(e) => panic!("unexpected error class: {e}"),
            });
            pe.compute(SimDuration::from_us(20));
        }
        outcomes
    });

    // the put stream must see all three phases, in order: alive, dead
    // window, alive again after rejoin
    let stream = outs[0].join(",");
    assert!(stream.starts_with("ok"), "puts before the crash must land: {stream}");
    assert!(stream.contains("dead"), "the dead window must fail typed: {stream}");
    assert!(stream.ends_with("ok"), "puts after rejoin must land: {stream}");
    assert!(!stream.contains("dead,ok,dead"), "the dead window must be contiguous: {stream}");

    // lifecycle counters: one eviction, one rejoin, probe then promote
    let counters = m.obs().fault_counters();
    let c = |what: &str, label: &str| -> u64 {
        counters
            .iter()
            .filter(|((w, l), _)| *w == what && *l == label)
            .map(|(_, n)| n)
            .sum()
    };
    assert_eq!(c("pe-dead", "membership"), 1);
    assert_eq!(c("evict", "membership"), 1);
    assert_eq!(c("view-change", "membership"), 1);
    assert_eq!(c("rejoin", "membership"), 1);
    assert!(c("probe", "host-rdma") >= 1, "rejoin must probe through HalfOpen");
    assert!(c("promote", "host-rdma") >= 1, "the probe success must promote");

    // the lifecycle instants land on the trace with their epochs
    let trace = m.obs().chrome_trace();
    for name in ["pe-dead", "evict", "view-change", "rejoin"] {
        assert!(trace.contains(&format!("\"{name}\"")), "trace lacks {name} instant");
    }
    assert!(trace.contains("\"epoch\""), "membership instants must carry the epoch");
}

/// The membership lifecycle flows through the analyzer: the trace's
/// `pe-dead`/`evict`/`view-change`/`rejoin` instants land in the
/// report's `membership` section with the view-convergence-time metric
/// at exactly the detection bound, the section round-trips through the
/// report JSON, and zeroing the candidate's rejoins trips the diff's
/// membership gate (`gdrprof` exit code 7).
#[test]
fn gdrprof_membership_section_reports_convergence_and_gates_diff() {
    use gdr_shmem::obs_analyze;

    let plan = FaultPlan::default().with_seed(5).with_crash(1, CRASH_AT_NS, REJOIN_NS);
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_obs(ObsLevel::Spans),
    );
    m.run(move |pe| {
        let dst = pe.shmalloc(4096, Domain::Host);
        let src = pe.malloc_host(4096);
        if pe.my_pe() != 0 {
            return;
        }
        for _ in 0..40 {
            let _ = pe.try_putmem(dst, src, 4096, 1);
            pe.compute(SimDuration::from_us(20));
        }
    });

    let tr = obs_analyze::Trace::parse(&m.obs().chrome_trace()).expect("trace parses");
    assert_eq!(tr.membership.len(), 4, "one full lifecycle = 4 instants");
    let rep = obs_analyze::analyze(&tr);
    let ms = &rep.membership;
    assert_eq!((ms.pe_dead, ms.evicts, ms.view_changes, ms.rejoins), (1, 1, 1, 1));
    // pe-dead lands at the crash instant, evict at detection: the
    // convergence metric is exactly the detection bound
    assert_eq!(ms.convergence_us, DETECT_BOUND_NS as f64 / 1000.0);
    assert!(rep.text().contains("membership:"), "text report lacks the section");

    // the section survives the report JSON round-trip
    let rt = obs_analyze::Report::from_json_str(&rep.to_json()).expect("report round-trips");
    assert_eq!(rt.membership, rep.membership);

    // a candidate that stopped rejoining (more unrecovered evictions)
    // trips the membership gate — and only that gate
    let mut worse = rep.clone();
    worse.membership.rejoins = 0;
    let d = obs_analyze::diff(&rep, &worse, 10.0);
    assert_eq!(d.membership_regressions(), 1);
    assert_eq!(d.latency_regressions(), 0);
    // identical sides are clean
    let clean = obs_analyze::diff(&rep, &rep, 10.0);
    assert_eq!(clean.regressions(), 0);
}

const SPLIT_AT_NS: u64 = 120_000;

/// An 8-PE reduce with one PE split off behind a quorum fence for the
/// rest of the run: the fenced minority fails typed `Partitioned`
/// naming itself and the fence epoch, while the majority re-forms and
/// its final result is byte-identical to a 7-PE reference cluster that
/// never contained the minority PE.
#[test]
fn quorum_fenced_reduce_matches_smaller_reference_cluster() {
    // PE 7 is alone on the minority side; the split outlives the run
    let plan = FaultPlan::default()
        .with_seed(3)
        .with_partition_split(1 << 7, SPLIT_AT_NS, 2_000_000);
    let fenced = reduce_rounds(ClusterSpec::wilkes(8, 1), plan, 24);
    let reference = reduce_rounds(ClusterSpec::wilkes(7, 1), FaultPlan::default(), 24);

    // the minority side lacks quorum: its own collective fails typed
    // with the fence epoch (this is what forbids split-brain writes)
    match &fenced[7] {
        Err(TransferError::Partitioned { pe: 7, epoch: 1 }) => {}
        other => panic!("minority PE must observe its own fence, got {other:?}"),
    }
    // every majority PE finished all rounds and holds the 7-PE sum
    let want = reference[0].as_ref().expect("reference cluster is unfaulted");
    for (peid, r) in fenced.iter().take(7).enumerate() {
        let got = r.as_ref().unwrap_or_else(|e| {
            panic!("majority pe{peid} must complete the fenced reduce: {e}")
        });
        assert_eq!(got, want, "majority pe{peid} diverged from the 7-PE reference");
    }
    // sanity: the fenced sum actually lost PE 7's contribution
    assert_eq!(want[0], (1..=7).sum::<u64>());
}

/// The heal merges the views back: a mid-fence reduce splits the
/// cluster (minority typed `Partitioned`, majority on the 7-PE sum),
/// and after the merge a post-heal reduce over all eight PEs is
/// byte-identical to an unfaulted full cluster.
#[test]
fn heal_merges_views_and_post_heal_collectives_match_full_cluster() {
    // fence at 270us, heal at 550us; the epilogue barriers past both
    let body = |pe: &mut gdr_shmem::shmem::Pe| {
        let me = pe.my_pe() as u64;
        let src = pe.shmalloc_slice::<u64>(4, Domain::Host);
        let dst = pe.shmalloc_slice::<u64>(4, Domain::Host);
        pe.try_barrier_all().expect("pre-split barrier");
        pe.compute(SimDuration::from_ns(300_000)); // inside the fence window
        pe.write_sym(&src, &[me + 1, 100, me * 10, 7]);
        let mid = pe.try_reduce(&src, &dst, RedOp::Sum, 0).map(|()| pe.read_sym(&dst));
        pe.compute(SimDuration::from_ns(400_000)); // past the heal instant
        pe.try_barrier_all().expect("post-heal barrier spans the merge");
        pe.write_sym(&src, &[me + 1, 200, me * 10, 9]);
        pe.try_reduce(&src, &dst, RedOp::Sum, 0).expect("post-heal reduce");
        (mid, pe.read_sym(&dst))
    };
    let plan = FaultPlan::default()
        .with_seed(3)
        .with_partition_split(1 << 7, SPLIT_AT_NS, 500_000);
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(8, 1),
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_obs(ObsLevel::Counters),
    );
    let healed = m.run(move |pe| body(pe));
    let r = ShmemMachine::build(
        ClusterSpec::wilkes(8, 1),
        RuntimeConfig::tuned(Design::EnhancedGdr).with_obs(ObsLevel::Counters),
    );
    let reference = r.run(move |pe| body(pe));

    // mid-fence: minority typed, majority holds the 7-PE sum
    match &healed[7].0 {
        Err(TransferError::Partitioned { pe: 7, epoch: 1 }) => {}
        other => panic!("minority mid-fence reduce must fail typed, got {other:?}"),
    }
    let majority_mid =
        healed[0].0.as_ref().expect("majority mid-fence reduce succeeds on the quorum side");
    assert_eq!(majority_mid[0], (1..=7).sum::<u64>());
    for (peid, out) in healed.iter().take(7).enumerate() {
        assert_eq!(
            out.0.as_ref().expect("majority mid reduce"),
            majority_mid,
            "majority pe{peid} mid-fence reduce diverged"
        );
    }
    // post-heal: every PE (minority included) matches the unfaulted
    // full cluster byte for byte
    for (peid, (out, want)) in healed.iter().zip(&reference).enumerate() {
        assert_eq!(out.1, want.1, "pe{peid} post-heal reduce diverged from full cluster");
    }
    assert_eq!(reference[0].1[0], (1..=8).sum::<u64>());
}

/// Quorum-fence instants are exact functions of the plan: the fence
/// lands at split start + `DETECT_BOUND_NS` at epoch 1, the heal at
/// split end + `HEAL_BOUND_NS` at epoch 2, the view drops exactly the
/// minority in between, and a blip split (shorter than the detection
/// bound) never fences at all.
#[test]
fn fence_and_heal_instants_are_exact() {
    let plan =
        FaultPlan::default().with_seed(5).with_partition_split(0b10, SPLIT_AT_NS, 500_000);
    let ms = gdr_shmem::shmem::Membership::new(&plan, 2);
    assert!(ms.armed());
    let s = ms.split_schedules()[0];
    assert_eq!(s.minority, 0b10);
    assert_eq!(s.fence_ns, SPLIT_AT_NS + DETECT_BOUND_NS);
    assert_eq!(s.heal_ns, 500_000 + HEAL_BOUND_NS);
    assert_eq!((s.fence_epoch, s.heal_epoch), (1, 2));
    // full view before the fence, minority dropped while fenced,
    // merged back (higher epoch) at the heal
    let before = ms.view_at(s.fence_ns - 1);
    assert_eq!(before.epoch, 0);
    assert!(before.is_member(1));
    let fenced = ms.view_at(s.fence_ns);
    assert_eq!(fenced.epoch, 1);
    assert!(fenced.is_member(0) && !fenced.is_member(1));
    let healed = ms.view_at(s.heal_ns);
    assert_eq!(healed.epoch, 2);
    assert!(healed.is_member(0) && healed.is_member(1));
    // a blip split never fences: no schedule, no view change
    let blip = FaultPlan::default()
        .with_partition_split(0b10, SPLIT_AT_NS, SPLIT_AT_NS + DETECT_BOUND_NS - 1);
    let bms = gdr_shmem::shmem::Membership::new(&blip, 2);
    assert!(bms.split_schedules().is_empty());
    assert_eq!(bms.view_at(SPLIT_AT_NS + DETECT_BOUND_NS).epoch, 0);
}

/// The partition lifecycle flows through the analyzer: a put stream
/// across a fenced split sees ok → partitioned → ok phases, the
/// trace's `partition`/`fence`/`heal` instants land in the report's
/// `partitions` section with the heal-convergence metric at exactly
/// (heal − fence), the section round-trips through the report JSON,
/// and slowing the candidate's heal trips the diff's partition gate
/// (`gdrprof` exit code 8) — and only that gate.
#[test]
fn gdrprof_partitions_section_reports_heal_convergence_and_gates_diff() {
    use gdr_shmem::obs_analyze;

    let plan =
        FaultPlan::default().with_seed(5).with_partition_split(0b10, SPLIT_AT_NS, 500_000);
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_obs(ObsLevel::Spans),
    );
    let outs = m.run(move |pe| {
        let dst = pe.shmalloc(4096, Domain::Host);
        let src = pe.malloc_host(4096);
        if pe.my_pe() != 0 {
            return Vec::new();
        }
        let mut outcomes = Vec::new();
        for _ in 0..40 {
            outcomes.push(match pe.try_putmem(dst, src, 4096, 1) {
                Ok(()) => "ok",
                Err(TransferError::Partitioned { pe: 1, .. }) => "fenced",
                Err(e) => panic!("unexpected error class: {e}"),
            });
            pe.compute(SimDuration::from_us(20));
        }
        outcomes
    });
    let stream = outs[0].join(",");
    assert!(stream.starts_with("ok"), "puts before the split must land: {stream}");
    assert!(stream.contains("fenced"), "the fence window must fail typed: {stream}");
    assert!(stream.ends_with("ok"), "puts after the heal must land: {stream}");
    assert!(!stream.contains("fenced,ok,fenced"), "the fence window must be contiguous: {stream}");

    let tr = obs_analyze::Trace::parse(&m.obs().chrome_trace()).expect("trace parses");
    assert_eq!(tr.partitions.len(), 3, "one split lifecycle = partition + fence + heal");
    let rep = obs_analyze::analyze(&tr);
    let p = &rep.partitions;
    assert_eq!((p.partitions, p.fences, p.heals, p.last_epoch), (1, 1, 1, 2));
    // fence at start + DETECT_BOUND, heal at end + HEAL_BOUND: the
    // worst observed heal convergence is exactly their distance
    let want_us = (500_000 + HEAL_BOUND_NS - SPLIT_AT_NS - DETECT_BOUND_NS) as f64 / 1000.0;
    assert_eq!(p.heal_convergence_us, want_us);
    assert!(rep.text().contains("partitions:"), "text report lacks the section");

    // the section survives the report JSON round-trip
    let rt = obs_analyze::Report::from_json_str(&rep.to_json()).expect("report round-trips");
    assert_eq!(rt.partitions, rep.partitions);

    // a candidate whose heal converges slower trips the partition gate
    // — and only that gate
    let mut worse = rep.clone();
    worse.partitions.heal_convergence_us *= 2.0;
    let d = obs_analyze::diff(&rep, &worse, 10.0);
    assert_eq!(d.partition_regressions(), 1);
    assert_eq!(d.membership_regressions(), 0);
    assert_eq!(d.latency_regressions(), 0);
    // identical sides are clean
    let clean = obs_analyze::diff(&rep, &rep, 10.0);
    assert_eq!(clean.regressions(), 0);
}

/// Membership detection is bounded: survivors observe the eviction at
/// exactly `at_ns + DETECT_BOUND_NS` in virtual time, independent of
/// when they first touch the dead peer.
#[test]
fn eviction_epoch_and_detection_bound_are_exact() {
    let plan = FaultPlan::default().with_seed(5).with_crash(1, CRASH_AT_NS, 0);
    let ms = gdr_shmem::shmem::Membership::new(&plan, 2);
    assert!(ms.armed());
    assert_eq!(ms.detect_ns(1), Some(CRASH_AT_NS + DETECT_BOUND_NS));
    assert_eq!(ms.eviction_epoch(1), Some(1));
    let v = ms.view_at(CRASH_AT_NS + DETECT_BOUND_NS);
    assert_eq!(v.epoch, 1);
    assert!(!v.is_member(1));
    assert!(v.is_member(0));
    // one tick earlier the view is still full
    let before = ms.view_at(CRASH_AT_NS + DETECT_BOUND_NS - 1);
    assert_eq!(before.epoch, 0);
    assert!(before.is_member(1));
}
