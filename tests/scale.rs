//! Scale smoke tests: the full stack at the paper's largest configuration
//! (64 nodes) stays correct and the simulator stays fast enough to run it.

use gdr_shmem::apps::bfs::{self, BfsParams};
use gdr_shmem::apps::stencil2d::{self, StencilParams};
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};

fn scale_config(design: Design) -> RuntimeConfig {
    let mut rc = RuntimeConfig::tuned(design);
    rc.host_heap = 2 << 20;
    rc.gpu_heap = 8 << 20;
    rc.staging = 2 << 20;
    rc.dev_mem = 16 << 20;
    rc.private_host = 4 << 20;
    rc
}

#[test]
fn sixty_four_nodes_all_to_one_and_barrier() {
    let m = ShmemMachine::build(ClusterSpec::wilkes(64, 1), scale_config(Design::EnhancedGdr));
    m.run(|pe| {
        let n = pe.n_pes();
        let slots = pe.shmalloc_slice::<u64>(n, Domain::Gpu);
        let ctr = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();
        // everyone stamps its slot on PE 0 and bumps the counter
        pe.put_one::<u64>(slots.at(pe.my_pe()), pe.my_pe() as u64 + 1, 0);
        pe.quiet();
        pe.atomic_fetch_add(ctr, 1, 0);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            assert_eq!(pe.local_u64(ctr), n as u64);
            let v = pe.read_sym(&slots);
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, i as u64 + 1, "slot {i}");
            }
        }
    });
}

#[test]
fn ring_neighbor_exchange_at_scale() {
    let m = ShmemMachine::build(ClusterSpec::wilkes(32, 2), scale_config(Design::EnhancedGdr));
    m.run(|pe| {
        let n = pe.n_pes();
        let me = pe.my_pe();
        let inbox = pe.shmalloc(64 << 10, Domain::Gpu);
        let src = pe.malloc_dev(64 << 10);
        pe.write_raw(src, &vec![me as u8; 64 << 10]);
        pe.barrier_all();
        pe.putmem(inbox, src, 64 << 10, (me + 1) % n);
        pe.barrier_all();
        let got = pe.read_raw(pe.addr_of(inbox, me), 64 << 10);
        let left = ((me + n - 1) % n) as u8;
        assert!(got.iter().all(|&b| b == left), "pe{me} ring payload");
    });
}

#[test]
fn stencil_validates_on_16_pes() {
    let m = ShmemMachine::build(ClusterSpec::wilkes(8, 2), scale_config(Design::EnhancedGdr));
    let res = stencil2d::run(&m, StencilParams::validate(64, 3));
    let want: f64 = stencil2d::serial_reference(64, 3).iter().sum();
    let got = res.checksum.unwrap();
    assert!((got - want).abs() < 1e-9 * want.abs());
}

#[test]
fn bfs_validates_on_16_pes() {
    let p = BfsParams::small(1024, 5);
    let want = bfs::serial_reference(&p);
    let m = ShmemMachine::build(ClusterSpec::wilkes(8, 2), scale_config(Design::EnhancedGdr));
    let got = bfs::run(&m, p);
    assert_eq!(got.dist, want);
}

#[test]
fn collectives_at_scale() {
    let m = ShmemMachine::build(ClusterSpec::wilkes(16, 2), scale_config(Design::EnhancedGdr));
    m.run(|pe| {
        let n = pe.n_pes();
        let mine = pe.shmalloc_slice::<u64>(1, Domain::Host);
        let all = pe.shmalloc_slice::<u64>(n, Domain::Host);
        pe.write_sym(&mine, &[pe.my_pe() as u64 * 3]);
        pe.barrier_all();
        pe.fcollect(&all, &mine);
        let got = pe.read_sym(&all);
        assert_eq!(got, (0..n as u64).map(|i| i * 3).collect::<Vec<_>>());
        pe.barrier_all();
    });
}
