//! Failure injection: the stack must fail loudly and precisely, never
//! corrupt silently.

use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};

fn catches(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let r = std::panic::catch_unwind(f);
    match r {
        Ok(()) => panic!("expected a panic"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            // a non-string payload would otherwise collapse to "" and
            // vacuously fail the message assertions: name its type so
            // the test failure says what was actually thrown
            .unwrap_or_else(|| {
                panic!(
                    "panic payload is neither String nor &str: {:?}",
                    (*p).type_id()
                )
            }),
    }
}

#[test]
fn symmetric_heap_oom_names_the_domain() {
    let msg = catches(|| {
        let m = ShmemMachine::build(
            ClusterSpec::internode_pair(),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        m.run(|pe| {
            let _ = pe.shmalloc(1 << 40, Domain::Gpu);
        });
    });
    assert!(msg.contains("gpu") && msg.contains("exhausted"), "{msg}");
}

#[test]
fn device_memory_oom_reports_fragmentation() {
    let msg = catches(|| {
        let m = ShmemMachine::build(
            ClusterSpec::internode_pair(),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        m.run(|pe| {
            // default dev_mem is 64 MiB per GPU; heap takes 8
            let _a = pe.malloc_dev(40 << 20);
            let _b = pe.malloc_dev(40 << 20);
        });
    });
    assert!(msg.contains("out of memory"), "{msg}");
}

#[test]
fn oversized_staging_request_is_rejected_with_advice() {
    let mut cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
    cfg.staging = 256 << 10;
    cfg.gpu_heap = 32 << 20;
    cfg.dev_mem = 96 << 20;
    let msg = catches(move || {
        let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
        m.run(|pe| {
            // a single >staging-sized two-sided device message cannot be
            // staged
            let dev = pe.malloc_dev(1 << 20);
            if pe.my_pe() == 0 {
                pe.send(1, dev, 1 << 20);
            } else {
                pe.recv(0, dev, 1 << 20);
            }
        });
    });
    assert!(msg.contains("staging"), "{msg}");
}

#[test]
fn naive_design_panic_explains_the_fix() {
    let msg = catches(|| {
        let m = ShmemMachine::build(
            ClusterSpec::internode_pair(),
            RuntimeConfig::tuned(Design::Naive),
        );
        m.run(|pe| {
            let d = pe.shmalloc(64, Domain::Gpu);
            if pe.my_pe() == 0 {
                let s = pe.malloc_host(64);
                pe.putmem(d, s, 64, 1);
            }
        });
    });
    assert!(msg.contains("cudaMemcpy"), "should point at manual staging: {msg}");
}

#[test]
fn one_task_panic_does_not_hang_the_job() {
    // the engine must poison siblings instead of deadlocking
    let t0 = std::time::Instant::now();
    let _ = std::panic::catch_unwind(|| {
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(2, 2),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        m.run(|pe| {
            if pe.my_pe() == 2 {
                panic!("injected failure");
            }
            pe.barrier_all(); // the others wait here forever without poison
        });
    });
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "panic propagation took too long"
    );
}

#[test]
fn wait_until_on_gpu_domain_is_rejected() {
    let msg = catches(|| {
        let m = ShmemMachine::build(
            ClusterSpec::internode_pair(),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        m.run(|pe| {
            let g = pe.shmalloc(8, Domain::Gpu);
            pe.wait_until(g, gdr_shmem::shmem::Cmp::Ge, 1);
        });
    });
    assert!(msg.contains("host"), "{msg}");
}
