//! End-to-end: record a real 2-PE inter-node D-D workload, export the
//! Chrome trace, and run the `obs-analyze` critical-path analyzer over
//! it — the same path `gdrprof` and `bench_omb` take.

use gdr_shmem::obs::ObsLevel;
use gdr_shmem::obs_analyze;
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Design, Domain, RuntimeConfig, ShmemMachine};

/// Small put (direct GDR), large put (pipelined GDR write), quiet,
/// large get (proxy pipeline).
fn traced_machine() -> std::sync::Arc<ShmemMachine> {
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr).with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        let src = pe.malloc_dev(4 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            pe.putmem(dest, src, 64, 1);
            pe.putmem(dest, src, 2 << 20, 1);
            pe.quiet();
            pe.getmem(src, dest, 2 << 20, 1);
        }
        pe.barrier_all();
    });
    m
}

#[test]
fn analyzer_reconstructs_critical_paths_from_live_trace() {
    let m = traced_machine();
    let rep = obs_analyze::analyze_str(&m.obs().chrome_trace()).unwrap();

    assert_eq!(rep.ops_analyzed, 3, "put + put + get");
    assert!(
        rep.flow_linkage() >= 0.95,
        "flow events must link ops to their completions: {:.2} ({}/{})",
        rep.flow_linkage(),
        rep.flow_matched,
        rep.ops_analyzed
    );

    // the small put goes direct over GDR: single-leg critical path
    let direct = &rep.protocols["put/direct-gdr"];
    assert_eq!(direct.count, 1);
    assert!(direct.stages.contains_key("direct"), "{:?}", direct.stages);

    // the large put pipelines: its critical path decomposes into the
    // d2h staging and rdma legs the paper's §III-C pipeline describes
    let pipe = &rep.protocols["put/pipeline-gdr-write"];
    assert!(pipe.stages.contains_key("d2h"), "{:?}", pipe.stages);
    assert!(pipe.stages.contains_key("rdma"), "{:?}", pipe.stages);
    assert!(pipe.stages["d2h"] > 0.0 && pipe.stages["rdma"] > 0.0);
    // and the stage breakdown is consistent: no stage exceeds the path
    let total = pipe.mean_us();
    for (stage, us) in &pipe.stages {
        assert!(us <= &total, "stage {stage} ({us}us) > critical path ({total}us)");
    }

    // stage breakdown matches what the runtime said it decided
    assert_eq!(rep.decisions["put/direct-gdr"], 1);
    assert_eq!(rep.decisions["put/pipeline-gdr-write"], 1);
    assert_eq!(rep.decisions["get/proxy-pipeline"], 1);

    // link tracks carry real utilization: the d2h staging link and the
    // HCA tx link were both busy moving the 2 MiB payloads
    let d2h = rep
        .links
        .iter()
        .find(|(k, _)| k.contains("/d2h"))
        .map(|(_, v)| v)
        .expect("d2h link track missing");
    assert!(d2h.bytes >= (2 << 20) && d2h.busy_us > 0.0);
    let hca = rep
        .links
        .iter()
        .find(|(k, _)| k.starts_with("ib/"))
        .map(|(_, v)| v)
        .expect("ib link track missing");
    assert!(hca.bytes >= (2 << 20) && hca.busy_us > 0.0);
}

#[test]
fn report_json_is_deterministic_for_identical_runs() {
    let a = obs_analyze::analyze_str(&traced_machine().obs().chrome_trace())
        .unwrap()
        .to_json();
    let b = obs_analyze::analyze_str(&traced_machine().obs().chrome_trace())
        .unwrap()
        .to_json();
    assert_eq!(a, b);
}
