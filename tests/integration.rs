//! End-to-end integration: full stack (engine → PCIe/GPU/IB models →
//! runtime → applications) exercised through the umbrella crate.

use gdr_shmem::apps::lbm::{self, LbmParams, LbmVariant};
use gdr_shmem::apps::stencil2d::{self, StencilParams};
use gdr_shmem::pcie::ClusterSpec;
use gdr_shmem::shmem::{Cmp, Design, Domain, RuntimeConfig, ShmemMachine, SimDuration};

#[test]
fn full_stack_pingpong_all_designs() {
    for design in [Design::HostPipeline, Design::EnhancedGdr] {
        let m = ShmemMachine::build(ClusterSpec::internode_pair(), RuntimeConfig::tuned(design));
        m.run(|pe| {
            let ball = pe.shmalloc(4096, Domain::Gpu);
            let flag = pe.shmalloc(16, Domain::Host);
            let me = pe.my_pe();
            let other = 1 - me;
            let local = pe.malloc_dev(4096);
            for round in 1..=5u64 {
                if round % 2 == (me as u64 + 1) % 2 {
                    // my turn to send
                    pe.putmem(ball, local, 1024, other);
                    pe.quiet();
                    pe.put_u64(flag, round, other);
                    pe.quiet();
                } else {
                    pe.wait_until(flag, Cmp::Ge, round);
                }
            }
            pe.barrier_all();
        });
    }
}

#[test]
fn both_apps_agree_across_designs_and_match_references() {
    // Stencil: checksums identical under both designs
    let p = StencilParams::validate(32, 4);
    let m1 = ShmemMachine::build(
        ClusterSpec::wilkes(2, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let c1 = stencil2d::run(&m1, p).checksum.unwrap();
    let want: f64 = stencil2d::serial_reference(32, 4).iter().sum();
    assert!((c1 - want).abs() < 1e-9 * want.abs());

    // LBM: both variants bit-identical to the serial field
    let serial = lbm::serial_reference(8, 8, 8, 2);
    for v in [LbmVariant::ShmemGdr, LbmVariant::CudaAwareMpi] {
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(2, 1),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        let r = lbm::run(&m, LbmParams::validate(8, 2, v));
        let serial_mass: f64 = {
            // serial field includes halo planes; sum interior only
            let n = 8;
            let plane = n * n;
            let mut s = 0.0;
            for q in 0..lbm::Q {
                for z in 1..=n {
                    let o = (q * (n + 2) + z) * plane;
                    s += serial[o..o + plane].iter().map(|&x| x as f64).sum::<f64>();
                }
            }
            s
        };
        assert!((r.mass.unwrap() - serial_mass).abs() < 1e-3);
    }
}

#[test]
fn four_node_eight_pe_mixed_workload() {
    // A busy job: atomics + collectives + puts of mixed sizes + barrier,
    // everything interleaved across 8 PEs on 4 nodes.
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(4, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let sums = m.run(|pe| {
        let n = pe.n_pes();
        let me = pe.my_pe();
        let data = pe.shmalloc_slice::<u64>(n * 16, Domain::Gpu);
        let ctr = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();

        // everyone writes its pattern into everyone's slot
        let src = pe.malloc_host(128);
        pe.write_raw(src, &gdr_shmem::shmem::Pod::to_bytes(&[me as u64 + 1; 16]));
        for t in 0..n {
            pe.putmem(data.at(me * 16), src, 128, t);
        }
        pe.quiet();
        pe.atomic_fetch_add(ctr, 1, 0);
        pe.barrier_all();

        // check my copy has every slot filled, then reduce a checksum
        let mine = pe.read_sym(&data);
        let mut sum = 0u64;
        for t in 0..n {
            for k in 0..16 {
                assert_eq!(mine[t * 16 + k], t as u64 + 1, "slot {t}");
                sum += mine[t * 16 + k];
            }
        }
        if me == 0 {
            assert_eq!(pe.local_u64(ctr), n as u64);
        }
        sum
    });
    assert!(sums.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn determinism_same_program_same_virtual_time() {
    let run_once = || {
        let m = ShmemMachine::build(
            ClusterSpec::wilkes(2, 2),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        let t = m.run(|pe| {
            let x = pe.shmalloc(64 << 10, Domain::Gpu);
            if pe.my_pe() == 0 {
                let src = pe.malloc_dev(64 << 10);
                for _ in 0..10 {
                    pe.putmem(x, src, 64 << 10, 3);
                    pe.quiet();
                }
            }
            pe.barrier_all();
            pe.now()
        });
        t[0]
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "virtual end times diverged between identical runs");
}

#[test]
fn cross_design_timing_ordering_holds_everywhere() {
    // For every configuration the enhanced design must be at least as
    // fast as the baseline at small sizes (the paper's core result).
    for (intra, src_dev, dst_gpu) in [
        (true, false, true),
        (true, true, true),
        (true, true, false),
        (false, true, true),
    ] {
        let lat = |design: Design| {
            let spec = if intra {
                ClusterSpec::intranode_pair()
            } else {
                ClusterSpec::internode_pair()
            };
            let m = ShmemMachine::build(spec, RuntimeConfig::tuned(design));
            let out = m.run(move |pe| {
                let d = pe.shmalloc(
                    8192,
                    if dst_gpu { Domain::Gpu } else { Domain::Host },
                );
                pe.barrier_all();
                if pe.my_pe() == 0 {
                    let s = if src_dev {
                        pe.malloc_dev(8192)
                    } else {
                        pe.malloc_host(8192)
                    };
                    // warm the registration cache (one-time cost)
                    pe.putmem(d, s, 512, 1);
                    pe.quiet();
                    let t0 = pe.now();
                    for _ in 0..10 {
                        pe.putmem(d, s, 512, 1);
                        pe.quiet();
                    }
                    let dt = pe.now() - t0;
                    pe.barrier_all();
                    dt
                } else {
                    pe.barrier_all();
                    SimDuration::ZERO
                }
            });
            out[0]
        };
        let base = lat(Design::HostPipeline);
        let gdr = lat(Design::EnhancedGdr);
        assert!(
            gdr < base,
            "enhanced not faster: intra={intra} src_dev={src_dev} dst_gpu={dst_gpu}: {gdr} vs {base}"
        );
    }
}

#[test]
fn substrate_reachable_through_umbrella() {
    // the re-exports expose the full stack
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    assert_eq!(m.cluster().topo().nprocs(), 2);
    assert_eq!(m.gpus().gpus().len(), 4);
    assert_eq!(m.ib().hcas().len(), 4);
    let stats = m.sim().stats();
    let _ = stats.events_executed;
}
