//! # pcie-sim — node & cluster hardware model
//!
//! The physical substrate beneath the GDR-aware OpenSHMEM runtime:
//!
//! - [`ids`] — cluster-global identifiers ([`NodeId`], [`ProcId`],
//!   [`GpuId`], [`HcaId`], …);
//! - [`mem`] — byte-accurate simulated memory: [`Arena`]s for host,
//!   shared-segment and device spaces, addressed by UVA-style [`MemRef`]s;
//! - [`topo`] — dual-socket node topology with GPU/HCA placement and the
//!   intra-/inter-socket distinction that drives the paper's P2P caps;
//! - [`profile`] — every timing constant ([`HwProfile`]), calibrated to
//!   the paper's Wilkes platform (Tables II and III);
//! - [`cluster`] — the [`Cluster`] bundle the device models build on.

pub mod alloc;
pub mod cluster;
pub mod ids;
pub mod mem;
pub mod profile;
pub mod topo;

pub use alloc::{OutOfMemory, RangeAlloc};
pub use cluster::Cluster;
pub use ids::{GpuId, HcaId, NodeId, ProcId, SegId, SocketId};
pub use mem::{Arena, MemError, MemRef, MemSpace, MemoryMap};
pub use profile::{GpuProfile, HostProfile, HwProfile, IbProfile, P2pDir, PcieProfile};
pub use topo::{ClusterSpec, PlacementPolicy, Topology};
