//! The [`Cluster`]: topology + memory map + hardware profile in one bundle.
//!
//! Device models (GPUs in `gpu-sim`, HCAs in `ib-sim`) and the OpenSHMEM
//! runtime are all constructed over a shared `Arc<Cluster>`.

use crate::ids::{NodeId, ProcId};
use crate::mem::{Arena, MemSpace, MemoryMap};
use crate::profile::HwProfile;
use crate::topo::{ClusterSpec, Topology};
use std::sync::Arc;

/// A simulated cluster: who is where, what memory exists, how fast the
/// hardware is.
pub struct Cluster {
    topo: Topology,
    mem: MemoryMap,
    hw: HwProfile,
}

impl Cluster {
    pub fn new(spec: ClusterSpec, hw: HwProfile) -> Arc<Cluster> {
        Arc::new(Cluster {
            topo: Topology::new(spec),
            mem: MemoryMap::new(),
            hw,
        })
    }

    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    pub fn mem(&self) -> &MemoryMap {
        &self.mem
    }

    pub fn hw(&self) -> &HwProfile {
        &self.hw
    }

    /// Create the private host arena for a process.
    pub fn create_host_arena(&self, p: ProcId, size: usize) -> Arc<Arena> {
        self.mem.create(MemSpace::Host(p), size)
    }

    /// Create the node-wide shared segment for a node.
    pub fn create_shared_segment(&self, n: NodeId, size: usize) -> Arc<Arena> {
        self.mem.create(MemSpace::Shared(self.topo.seg_of_node(n)), size)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cluster({} nodes x {} procs)",
            self.topo.nnodes(),
            self.topo.spec().procs_per_node
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemRef;

    #[test]
    fn cluster_bundles_everything() {
        let c = Cluster::new(ClusterSpec::wilkes(2, 2), HwProfile::wilkes());
        assert_eq!(c.topo().nprocs(), 4);
        let a = c.create_host_arena(ProcId(0), 128);
        assert_eq!(a.size(), 128);
        c.create_shared_segment(NodeId(0), 256);
        let r = MemRef::new(MemSpace::Host(ProcId(0)), 0);
        c.mem().write_bytes(r, &[7; 4]).unwrap();
        assert_eq!(c.mem().read_bytes(r, 4).unwrap(), vec![7; 4]);
    }
}
