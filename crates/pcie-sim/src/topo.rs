//! Cluster and node topology: sockets, device placement, process binding.
//!
//! Mirrors the evaluation platform of the paper (the Wilkes "Tesla"
//! partition): dual-socket nodes, one GPU and one HCA per socket, and MPI
//! ranks bound round-robin to sockets with the socket-local GPU and HCA.
//! The placement policy is configurable so the inter-socket P2P bottleneck
//! (paper Table III, §II-B) can be exercised deliberately.

use crate::ids::{GpuId, HcaId, NodeId, ProcId, SegId, SocketId};
use serde::{Deserialize, Serialize};

/// How processes are bound to their GPU and HCA.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// GPU and HCA on the process's own socket (intra-socket; the tuned
    /// production configuration).
    #[default]
    Affinity,
    /// GPU on the process's socket but HCA on the *other* socket, forcing
    /// every GDR transfer across the inter-socket chipset path.
    CrossSocket,
}

/// Shape of the simulated cluster.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub nodes: usize,
    pub procs_per_node: usize,
    pub gpus_per_node: usize,
    pub hcas_per_node: usize,
    pub sockets_per_node: usize,
    pub placement: PlacementPolicy,
}

impl ClusterSpec {
    /// A Wilkes-like node: 2 sockets, 2 K20 GPUs, 2 FDR HCAs.
    pub fn wilkes(nodes: usize, procs_per_node: usize) -> Self {
        ClusterSpec {
            nodes,
            procs_per_node,
            gpus_per_node: 2,
            hcas_per_node: 2,
            sockets_per_node: 2,
            placement: PlacementPolicy::Affinity,
        }
    }

    /// Two PEs on one node (the paper's intra-node micro-benchmarks).
    pub fn intranode_pair() -> Self {
        Self::wilkes(1, 2)
    }

    /// One PE on each of two nodes (the inter-node micro-benchmarks).
    pub fn internode_pair() -> Self {
        Self::wilkes(2, 1)
    }

    pub fn with_placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    pub fn total_procs(&self) -> usize {
        self.nodes * self.procs_per_node
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::wilkes(2, 1)
    }
}

/// Resolved topology with all placement questions answered.
#[derive(Clone, Debug)]
pub struct Topology {
    spec: ClusterSpec,
}

impl Topology {
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.nodes > 0, "need at least one node");
        assert!(spec.procs_per_node > 0, "need at least one proc per node");
        assert!(spec.gpus_per_node > 0, "need at least one GPU per node");
        assert!(spec.hcas_per_node > 0, "need at least one HCA per node");
        assert!(spec.sockets_per_node > 0, "need at least one socket");
        Topology { spec }
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn nprocs(&self) -> usize {
        self.spec.total_procs()
    }

    pub fn nnodes(&self) -> usize {
        self.spec.nodes
    }

    pub fn ngpus(&self) -> usize {
        self.spec.nodes * self.spec.gpus_per_node
    }

    pub fn nhcas(&self) -> usize {
        self.spec.nodes * self.spec.hcas_per_node
    }

    pub fn node_of(&self, p: ProcId) -> NodeId {
        NodeId((p.index() / self.spec.procs_per_node) as u32)
    }

    /// Rank of `p` among the processes of its node.
    pub fn local_rank(&self, p: ProcId) -> usize {
        p.index() % self.spec.procs_per_node
    }

    pub fn procs_on(&self, n: NodeId) -> impl Iterator<Item = ProcId> + '_ {
        let base = n.index() * self.spec.procs_per_node;
        (base..base + self.spec.procs_per_node).map(|i| ProcId(i as u32))
    }

    pub fn same_node(&self, a: ProcId, b: ProcId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Socket a process is bound to (round-robin by local rank).
    pub fn socket_of_proc(&self, p: ProcId) -> SocketId {
        SocketId((self.local_rank(p) % self.spec.sockets_per_node) as u32)
    }

    /// The GPU a process uses (socket-local by local rank).
    pub fn gpu_of(&self, p: ProcId) -> GpuId {
        let n = self.node_of(p);
        let local_gpu = self.local_rank(p) % self.spec.gpus_per_node;
        GpuId((n.index() * self.spec.gpus_per_node + local_gpu) as u32)
    }

    /// The HCA a process posts to; depends on the placement policy.
    pub fn hca_of(&self, p: ProcId) -> HcaId {
        let n = self.node_of(p);
        let local = match self.spec.placement {
            PlacementPolicy::Affinity => self.local_rank(p) % self.spec.hcas_per_node,
            PlacementPolicy::CrossSocket => {
                (self.local_rank(p) + 1) % self.spec.hcas_per_node.max(2)
                    % self.spec.hcas_per_node
            }
        };
        HcaId((n.index() * self.spec.hcas_per_node + local) as u32)
    }

    pub fn node_of_gpu(&self, g: GpuId) -> NodeId {
        NodeId((g.index() / self.spec.gpus_per_node) as u32)
    }

    pub fn node_of_hca(&self, h: HcaId) -> NodeId {
        NodeId((h.index() / self.spec.hcas_per_node) as u32)
    }

    pub fn socket_of_gpu(&self, g: GpuId) -> SocketId {
        SocketId(((g.index() % self.spec.gpus_per_node) % self.spec.sockets_per_node) as u32)
    }

    pub fn socket_of_hca(&self, h: HcaId) -> SocketId {
        SocketId(((h.index() % self.spec.hcas_per_node) % self.spec.sockets_per_node) as u32)
    }

    /// True when a P2P transfer between this GPU and HCA stays within one
    /// socket's PCIe root complex (the fast case of Table III).
    pub fn gpu_hca_intra_socket(&self, g: GpuId, h: HcaId) -> bool {
        self.node_of_gpu(g) == self.node_of_hca(h) && self.socket_of_gpu(g) == self.socket_of_hca(h)
    }

    /// The shared-memory segment of a node (one per node).
    pub fn seg_of_node(&self, n: NodeId) -> SegId {
        SegId(n.0)
    }

    /// Inverse of [`Topology::seg_of_node`].
    pub fn node_of_seg(&self, s: SegId) -> NodeId {
        NodeId(s.0)
    }

    /// The node that physically hosts a memory space.
    pub fn node_of_space(&self, space: crate::mem::MemSpace) -> NodeId {
        match space {
            crate::mem::MemSpace::Host(p) => self.node_of(p),
            crate::mem::MemSpace::Shared(s) => self.node_of_seg(s),
            crate::mem::MemSpace::Device(g) => self.node_of_gpu(g),
        }
    }

    pub fn all_procs(&self) -> impl Iterator<Item = ProcId> {
        (0..self.nprocs()).map(|i| ProcId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilkes_shape() {
        let t = Topology::new(ClusterSpec::wilkes(4, 2));
        assert_eq!(t.nprocs(), 8);
        assert_eq!(t.nnodes(), 4);
        assert_eq!(t.ngpus(), 8);
        assert_eq!(t.nhcas(), 8);
    }

    #[test]
    fn proc_to_node_mapping() {
        let t = Topology::new(ClusterSpec::wilkes(3, 2));
        assert_eq!(t.node_of(ProcId(0)), NodeId(0));
        assert_eq!(t.node_of(ProcId(1)), NodeId(0));
        assert_eq!(t.node_of(ProcId(2)), NodeId(1));
        assert_eq!(t.node_of(ProcId(5)), NodeId(2));
        assert!(t.same_node(ProcId(0), ProcId(1)));
        assert!(!t.same_node(ProcId(1), ProcId(2)));
        assert_eq!(t.local_rank(ProcId(3)), 1);
    }

    #[test]
    fn affinity_placement_is_socket_local() {
        let t = Topology::new(ClusterSpec::wilkes(2, 2));
        for p in t.all_procs() {
            let g = t.gpu_of(p);
            let h = t.hca_of(p);
            assert_eq!(t.node_of_gpu(g), t.node_of(p));
            assert_eq!(t.node_of_hca(h), t.node_of(p));
            assert_eq!(t.socket_of_gpu(g), t.socket_of_proc(p));
            assert!(t.gpu_hca_intra_socket(g, h));
        }
    }

    #[test]
    fn cross_socket_placement_splits_gpu_and_hca() {
        let t = Topology::new(
            ClusterSpec::wilkes(2, 2).with_placement(PlacementPolicy::CrossSocket),
        );
        for p in t.all_procs() {
            let g = t.gpu_of(p);
            let h = t.hca_of(p);
            assert_eq!(t.node_of_hca(h), t.node_of(p));
            assert!(!t.gpu_hca_intra_socket(g, h), "expected cross-socket for {p}");
        }
    }

    #[test]
    fn procs_on_node_enumerates_in_rank_order() {
        let t = Topology::new(ClusterSpec::wilkes(2, 3));
        let v: Vec<_> = t.procs_on(NodeId(1)).collect();
        assert_eq!(v, vec![ProcId(3), ProcId(4), ProcId(5)]);
    }

    #[test]
    fn single_gpu_node_shares_device() {
        let mut spec = ClusterSpec::wilkes(1, 2);
        spec.gpus_per_node = 1;
        spec.hcas_per_node = 1;
        let t = Topology::new(spec);
        assert_eq!(t.gpu_of(ProcId(0)), t.gpu_of(ProcId(1)));
        assert_eq!(t.hca_of(ProcId(0)), t.hca_of(ProcId(1)));
    }

    #[test]
    fn pair_helpers() {
        let intra = Topology::new(ClusterSpec::intranode_pair());
        assert_eq!(intra.nprocs(), 2);
        assert!(intra.same_node(ProcId(0), ProcId(1)));
        let inter = Topology::new(ClusterSpec::internode_pair());
        assert_eq!(inter.nprocs(), 2);
        assert!(!inter.same_node(ProcId(0), ProcId(1)));
    }

    #[test]
    fn seg_ids_follow_nodes() {
        let t = Topology::new(ClusterSpec::wilkes(3, 1));
        assert_eq!(t.seg_of_node(NodeId(2)), SegId(2));
    }
}
