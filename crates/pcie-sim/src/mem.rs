//! Simulated memory: arenas, unified addresses, and the global memory map.
//!
//! Every byte the runtime moves is a real byte in an [`Arena`] — host
//! process memory, a node-wide shared segment, or GPU device memory — so
//! correctness of every protocol is testable end to end. [`MemRef`] is the
//! moral equivalent of a CUDA UVA pointer: a single address type that can
//! name any space, with a queryable kind.

use crate::ids::{GpuId, ProcId, SegId};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which physical memory an address lives in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum MemSpace {
    /// Private host memory of one process.
    Host(ProcId),
    /// A node-wide shared-memory segment (POSIX shm style).
    Shared(SegId),
    /// GPU device memory.
    Device(GpuId),
}

impl MemSpace {
    /// True if the address is in GPU device memory (UVA "device pointer").
    pub fn is_device(self) -> bool {
        matches!(self, MemSpace::Device(_))
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Host(p) => write!(f, "host[{p}]"),
            MemSpace::Shared(s) => write!(f, "shm[{s}]"),
            MemSpace::Device(g) => write!(f, "dev[{g}]"),
        }
    }
}

/// A unified address: space + byte offset. The simulated analogue of a
/// UVA pointer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MemRef {
    pub space: MemSpace,
    pub offset: u64,
}

impl MemRef {
    pub fn new(space: MemSpace, offset: u64) -> Self {
        MemRef { space, offset }
    }

    /// Address `bytes` further into the same space.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Self {
        MemRef {
            space: self.space,
            offset: self.offset + bytes,
        }
    }

    pub fn is_device(self) -> bool {
        self.space.is_device()
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.space, self.offset)
    }
}

/// Errors raised by arena accesses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The space has no arena in the map.
    UnknownSpace(MemSpace),
    /// Access past the end of the arena.
    OutOfBounds {
        space: MemSpace,
        offset: u64,
        len: u64,
        size: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::UnknownSpace(s) => write!(f, "no arena mapped for {s}"),
            MemError::OutOfBounds {
                space,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset:#x}..{:#x}) out of bounds of {space} (size {size:#x})",
                offset + len
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// A contiguous chunk of simulated physical memory.
pub struct Arena {
    space: MemSpace,
    data: RwLock<Box<[u8]>>,
}

impl Arena {
    pub fn new(space: MemSpace, size: usize) -> Arc<Arena> {
        Arc::new(Arena {
            space,
            data: RwLock::new(vec![0u8; size].into_boxed_slice()),
        })
    }

    pub fn space(&self) -> MemSpace {
        self.space
    }

    pub fn size(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), MemError> {
        let size = self.size();
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(MemError::OutOfBounds {
                space: self.space,
                offset,
                len,
                size,
            });
        }
        Ok(())
    }

    /// Copy bytes out of the arena.
    pub fn read(&self, offset: u64, out: &mut [u8]) -> Result<(), MemError> {
        self.check(offset, out.len() as u64)?;
        let d = self.data.read();
        out.copy_from_slice(&d[offset as usize..offset as usize + out.len()]);
        Ok(())
    }

    /// Copy bytes into the arena.
    pub fn write(&self, offset: u64, src: &[u8]) -> Result<(), MemError> {
        self.check(offset, src.len() as u64)?;
        let mut d = self.data.write();
        d[offset as usize..offset as usize + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Read a little-endian u64 (for atomics and flags).
    pub fn read_u64(&self, offset: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64.
    pub fn write_u64(&self, offset: u64, v: u64) -> Result<(), MemError> {
        self.write(offset, &v.to_le_bytes())
    }

    /// Apply `f` to the u64 at `offset` atomically with respect to other
    /// arena accesses; returns the previous value. This is the primitive
    /// under simulated HCA atomics.
    pub fn fetch_update_u64(
        &self,
        offset: u64,
        f: impl FnOnce(u64) -> u64,
    ) -> Result<u64, MemError> {
        self.check(offset, 8)?;
        let mut d = self.data.write();
        let i = offset as usize;
        let mut b = [0u8; 8];
        b.copy_from_slice(&d[i..i + 8]);
        let old = u64::from_le_bytes(b);
        let new = f(old);
        d[i..i + 8].copy_from_slice(&new.to_le_bytes());
        Ok(old)
    }
}

impl fmt::Debug for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Arena({}, {} bytes)", self.space, self.size())
    }
}

/// Registry of every arena in the simulated cluster.
#[derive(Default)]
pub struct MemoryMap {
    arenas: RwLock<HashMap<MemSpace, Arc<Arena>>>,
}

impl MemoryMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create and register an arena for `space`. Panics if already mapped.
    pub fn create(&self, space: MemSpace, size: usize) -> Arc<Arena> {
        let arena = Arena::new(space, size);
        let prev = self.arenas.write().insert(space, arena.clone());
        assert!(prev.is_none(), "arena for {space} created twice");
        arena
    }

    pub fn get(&self, space: MemSpace) -> Result<Arc<Arena>, MemError> {
        self.arenas
            .read()
            .get(&space)
            .cloned()
            .ok_or(MemError::UnknownSpace(space))
    }

    /// Move `len` bytes from `src` to `dst`, across any pair of spaces.
    /// Overlapping copies within the same space behave like `memmove`.
    pub fn copy(&self, src: MemRef, dst: MemRef, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let sa = self.get(src.space)?;
        let da = self.get(dst.space)?;
        let mut buf = vec![0u8; len as usize];
        sa.read(src.offset, &mut buf)?;
        da.write(dst.offset, &buf)?;
        Ok(())
    }

    /// Read a typed value (plain-old-data via byte copy).
    pub fn read_bytes(&self, src: MemRef, len: u64) -> Result<Vec<u8>, MemError> {
        let a = self.get(src.space)?;
        let mut buf = vec![0u8; len as usize];
        a.read(src.offset, &mut buf)?;
        Ok(buf)
    }

    pub fn write_bytes(&self, dst: MemRef, data: &[u8]) -> Result<(), MemError> {
        let a = self.get(dst.space)?;
        a.write(dst.offset, data)
    }
}

impl fmt::Debug for MemoryMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemoryMap({} arenas)", self.arenas.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(space: MemSpace, size: usize) -> MemoryMap {
        let m = MemoryMap::new();
        m.create(space, size);
        m
    }

    #[test]
    fn read_write_round_trip() {
        let m = map_with(MemSpace::Host(ProcId(0)), 64);
        let r = MemRef::new(MemSpace::Host(ProcId(0)), 8);
        m.write_bytes(r, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(r, 4).unwrap(), vec![1, 2, 3, 4]);
        // untouched bytes stay zero
        assert_eq!(m.read_bytes(r.add(4), 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn cross_space_copy() {
        let m = MemoryMap::new();
        m.create(MemSpace::Host(ProcId(0)), 32);
        m.create(MemSpace::Device(GpuId(0)), 32);
        let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
        let d = MemRef::new(MemSpace::Device(GpuId(0)), 16);
        m.write_bytes(h, b"hello").unwrap();
        m.copy(h, d, 5).unwrap();
        assert_eq!(m.read_bytes(d, 5).unwrap(), b"hello");
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        let m = map_with(MemSpace::Host(ProcId(1)), 16);
        let base = MemRef::new(MemSpace::Host(ProcId(1)), 0);
        m.write_bytes(base, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        m.copy(base, base.add(2), 6).unwrap();
        assert_eq!(
            m.read_bytes(base, 8).unwrap(),
            vec![1, 2, 1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let m = map_with(MemSpace::Host(ProcId(0)), 8);
        let r = MemRef::new(MemSpace::Host(ProcId(0)), 6);
        let err = m.write_bytes(r, &[0; 4]).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
        // offset overflow must not wrap
        let r2 = MemRef::new(MemSpace::Host(ProcId(0)), u64::MAX - 1);
        assert!(m.read_bytes(r2, 4).is_err());
    }

    #[test]
    fn unknown_space_rejected() {
        let m = MemoryMap::new();
        let r = MemRef::new(MemSpace::Device(GpuId(9)), 0);
        assert!(matches!(
            m.read_bytes(r, 1).unwrap_err(),
            MemError::UnknownSpace(_)
        ));
    }

    #[test]
    fn duplicate_create_panics() {
        let m = MemoryMap::new();
        m.create(MemSpace::Shared(SegId(0)), 8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.create(MemSpace::Shared(SegId(0)), 8)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn u64_helpers_and_fetch_update() {
        let m = map_with(MemSpace::Shared(SegId(1)), 16);
        let a = m.get(MemSpace::Shared(SegId(1))).unwrap();
        a.write_u64(8, 41).unwrap();
        let old = a.fetch_update_u64(8, |v| v + 1).unwrap();
        assert_eq!(old, 41);
        assert_eq!(a.read_u64(8).unwrap(), 42);
    }

    #[test]
    fn zero_length_copy_needs_no_arena() {
        let m = MemoryMap::new();
        let r = MemRef::new(MemSpace::Host(ProcId(5)), 0);
        m.copy(r, r, 0).unwrap();
    }

    #[test]
    fn memref_display_and_add() {
        let r = MemRef::new(MemSpace::Device(GpuId(2)), 0x10);
        assert_eq!(r.add(0x10).offset, 0x20);
        assert!(format!("{r}").contains("dev[gpu2]"));
        assert!(r.is_device());
    }
}
