//! Cluster-global identifiers for hardware and software entities.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl $name {
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type!(
    /// A physical node (server) in the cluster.
    NodeId,
    "node"
);
id_type!(
    /// A process / processing element, globally ranked across the cluster.
    ProcId,
    "pe"
);
id_type!(
    /// A GPU device, globally numbered across the cluster.
    GpuId,
    "gpu"
);
id_type!(
    /// An InfiniBand-like host channel adapter, globally numbered.
    HcaId,
    "hca"
);
id_type!(
    /// A System-V-style shared memory segment (one per node by default).
    SegId,
    "seg"
);
id_type!(
    /// A CPU socket within a node (0-based within the node).
    SocketId,
    "skt"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_and_compare() {
        assert_eq!(format!("{}", ProcId(3)), "pe3");
        assert_eq!(format!("{:?}", GpuId(1)), "gpu1");
        assert!(NodeId(0) < NodeId(2));
        assert_eq!(HcaId(7).index(), 7);
    }
}
