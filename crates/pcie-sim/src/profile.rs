//! Hardware timing profile.
//!
//! Every latency and bandwidth constant in the simulation lives here, in
//! one serializable structure, so experiments can swap profiles and the
//! calibration tests can pin the headline numbers from the paper.
//!
//! The default profile is calibrated against the paper's published
//! measurements on the Wilkes Tesla partition (dual IvyBridge, Tesla K20,
//! FDR ConnectX-3): Table II (4 B put latencies), Table III (P2P
//! bandwidth), and the micro-benchmark figures (§V-B).
//!
//! Bandwidths are quoted in MB/s with 1 MB = 1e6 bytes (Mellanox
//! convention, as in the paper's "6,397 MB/s" FDR figure).

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

const MB: f64 = 1e6;

/// Direction of a PCIe peer-to-peer transfer relative to the GPU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum P2pDir {
    /// HCA (or peer) reads from GPU memory.
    ReadFromGpu,
    /// HCA (or peer) writes into GPU memory.
    WriteToGpu,
}

/// PCIe fabric constants.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PcieProfile {
    /// Native bandwidth of a GPU's PCIe port (bytes/s).
    pub port_bw: f64,
    /// One-way PCIe transaction latency.
    pub latency: SimDuration,
    /// P2P read from GPU, devices on the same socket (Table III).
    pub p2p_read_intra: f64,
    /// P2P read from GPU, devices on different sockets (Table III).
    pub p2p_read_inter: f64,
    /// P2P write to GPU, same socket (Table III).
    pub p2p_write_intra: f64,
    /// P2P write to GPU, different sockets (Table III).
    pub p2p_write_inter: f64,
}

impl PcieProfile {
    /// Effective P2P bandwidth cap for a transfer.
    pub fn p2p_bw(&self, dir: P2pDir, intra_socket: bool) -> f64 {
        match (dir, intra_socket) {
            (P2pDir::ReadFromGpu, true) => self.p2p_read_intra,
            (P2pDir::ReadFromGpu, false) => self.p2p_read_inter,
            (P2pDir::WriteToGpu, true) => self.p2p_write_intra,
            (P2pDir::WriteToGpu, false) => self.p2p_write_inter,
        }
    }
}

/// GPU device constants (Tesla K20-class).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuProfile {
    /// Host->device DMA engine effective bandwidth (bytes/s).
    pub h2d_bw: f64,
    /// Device->host DMA engine effective bandwidth (bytes/s).
    pub d2h_bw: f64,
    /// On-device copy bandwidth (bytes/s).
    pub d2d_bw: f64,
    /// Driver/launch overhead of one synchronous cudaMemcpy call.
    pub memcpy_overhead: SimDuration,
    /// Launch overhead of an asynchronous cudaMemcpyAsync (the CPU-side
    /// cost only; the DMA proceeds in the background).
    pub memcpy_async_launch: SimDuration,
    /// Extra overhead the first time an IPC-mapped buffer is used;
    /// amortized by the runtime's mapping cache (opening the handle).
    pub ipc_open_cost: SimDuration,
    /// Kernel launch overhead (used by the application cost models).
    pub kernel_launch: SimDuration,
}

/// Host memory constants.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HostProfile {
    /// Single-core memcpy bandwidth host<->host / host<->shm (bytes/s).
    pub memcpy_bw: f64,
    /// Fixed overhead of a host memcpy call.
    pub memcpy_overhead: SimDuration,
}

/// InfiniBand-like fabric constants (FDR ConnectX-3-class).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IbProfile {
    /// Wire payload bandwidth (bytes/s): the paper's 6,397 MB/s.
    pub wire_bw: f64,
    /// CPU cost of posting one work request (doorbell + WQE write).
    pub post_overhead: SimDuration,
    /// Sender HCA work-request processing time.
    pub hca_wqe: SimDuration,
    /// Wire propagation latency (cable + serdes), per traversal.
    pub wire_latency: SimDuration,
    /// Per-switch-hop latency; inter-node paths cross one switch.
    pub switch_latency: SimDuration,
    /// Target HCA processing before issuing the DMA.
    pub remote_hca: SimDuration,
    /// PCIe DMA latency into host memory at the target.
    pub host_dma: SimDuration,
    /// Extra PCIe P2P latency when the DMA targets/sources GPU memory
    /// (the GDR BAR path is slower than the host path for small messages).
    pub gdr_dma: SimDuration,
    /// Shortcut latency when source and destination HCA are the same
    /// physical adapter (loopback RDMA, used by the intra-node designs).
    pub loopback: SimDuration,
    /// Execution time of a 64-bit atomic in the target HCA's atomic unit.
    pub atomic_unit: SimDuration,
    /// Fixed base cost of one memory-registration call (cold).
    pub reg_base_cost: SimDuration,
    /// Incremental cost per registered page (cold).
    pub reg_page_cost: SimDuration,
    /// Page size used for registration accounting.
    pub reg_page_bytes: u64,
    /// Completion-queue poll / interrupt delivery delay back to software.
    pub cq_delivery: SimDuration,
}

/// The full hardware profile.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HwProfile {
    pub pcie: PcieProfile,
    pub gpu: GpuProfile,
    pub host: HostProfile,
    pub ib: IbProfile,
}

impl HwProfile {
    /// Profile calibrated to the paper's Wilkes numbers.
    pub fn wilkes() -> Self {
        HwProfile {
            pcie: PcieProfile {
                port_bw: 12_000.0 * MB,
                latency: SimDuration::from_ns(300),
                p2p_read_intra: 3_421.0 * MB,
                p2p_read_inter: 247.0 * MB,
                p2p_write_intra: 6_396.0 * MB,
                p2p_write_inter: 1_179.0 * MB,
            },
            gpu: GpuProfile {
                h2d_bw: 6_000.0 * MB,
                d2h_bw: 6_500.0 * MB,
                d2d_bw: 140_000.0 * MB,
                memcpy_overhead: SimDuration::from_ns(5_300),
                memcpy_async_launch: SimDuration::from_ns(1_200),
                ipc_open_cost: SimDuration::from_us(90),
                kernel_launch: SimDuration::from_us(7),
            },
            host: HostProfile {
                memcpy_bw: 6_000.0 * MB,
                memcpy_overhead: SimDuration::from_ns(200),
            },
            ib: IbProfile {
                wire_bw: 6_397.0 * MB,
                post_overhead: SimDuration::from_ns(150),
                hca_wqe: SimDuration::from_ns(450),
                wire_latency: SimDuration::from_ns(500),
                switch_latency: SimDuration::from_ns(100),
                remote_hca: SimDuration::from_ns(350),
                host_dma: SimDuration::from_ns(250),
                gdr_dma: SimDuration::from_ns(550),
                loopback: SimDuration::from_ns(200),
                atomic_unit: SimDuration::from_ns(400),
                reg_base_cost: SimDuration::from_us(30),
                reg_page_cost: SimDuration::from_ns(350),
                reg_page_bytes: 4096,
                cq_delivery: SimDuration::from_ns(250),
            },
        }
    }
}

impl Default for HwProfile {
    fn default() -> Self {
        Self::wilkes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_caps_are_encoded() {
        let p = HwProfile::wilkes().pcie;
        assert_eq!(p.p2p_bw(P2pDir::ReadFromGpu, true), 3_421.0 * MB);
        assert_eq!(p.p2p_bw(P2pDir::ReadFromGpu, false), 247.0 * MB);
        assert_eq!(p.p2p_bw(P2pDir::WriteToGpu, true), 6_396.0 * MB);
        assert_eq!(p.p2p_bw(P2pDir::WriteToGpu, false), 1_179.0 * MB);
    }

    #[test]
    fn intra_socket_write_saturates_fdr() {
        // The paper notes P2P write intra-socket delivers 100% of FDR.
        let hw = HwProfile::wilkes();
        let ratio = hw.pcie.p2p_bw(P2pDir::WriteToGpu, true) / hw.ib.wire_bw;
        assert!((ratio - 1.0).abs() < 0.001, "ratio {ratio}");
    }

    #[test]
    fn profile_is_cloneable_and_debuggable() {
        let hw = HwProfile::wilkes();
        let copy = hw;
        let dbg = format!("{copy:?}");
        assert!(dbg.contains("wire_bw"));
        // Serialize/Deserialize bounds exist (checked at compile time).
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serde::<HwProfile>();
    }
}
