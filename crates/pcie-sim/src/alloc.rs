//! First-fit range allocator with coalescing, used for device heaps and
//! symmetric-heap suballocation.

use std::fmt;

/// Allocation failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfMemory {
    pub requested: u64,
    pub largest_free: u64,
    pub total_free: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} bytes, largest free block {}, total free {}",
            self.requested, self.largest_free, self.total_free
        )
    }
}

impl std::error::Error for OutOfMemory {}

#[derive(Clone, Copy, Debug)]
struct FreeBlock {
    off: u64,
    len: u64,
}

/// First-fit allocator over a `[0, capacity)` byte range.
#[derive(Clone, Debug)]
pub struct RangeAlloc {
    capacity: u64,
    align: u64,
    free: Vec<FreeBlock>, // sorted by offset, non-adjacent
    allocated: u64,
}

impl RangeAlloc {
    /// `align` must be a power of two.
    pub fn new(capacity: u64, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        RangeAlloc {
            capacity,
            align,
            free: vec![FreeBlock {
                off: 0,
                len: capacity,
            }],
            allocated: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    pub fn total_free(&self) -> u64 {
        self.free.iter().map(|b| b.len).sum()
    }

    fn round_up(&self, v: u64) -> u64 {
        (v + self.align - 1) & !(self.align - 1)
    }

    /// Allocate `size` bytes (rounded up to the alignment); returns offset.
    pub fn alloc(&mut self, size: u64) -> Result<u64, OutOfMemory> {
        let size = self.round_up(size.max(1));
        for i in 0..self.free.len() {
            let b = self.free[i];
            if b.len >= size {
                let off = b.off;
                if b.len == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = FreeBlock {
                        off: b.off + size,
                        len: b.len - size,
                    };
                }
                self.allocated += size;
                return Ok(off);
            }
        }
        Err(OutOfMemory {
            requested: size,
            largest_free: self.free.iter().map(|b| b.len).max().unwrap_or(0),
            total_free: self.total_free(),
        })
    }

    /// Return a block; `size` must match the original request (it is
    /// rounded up identically). Coalesces with neighbours.
    pub fn free(&mut self, off: u64, size: u64) {
        let size = self.round_up(size.max(1));
        assert!(off + size <= self.capacity, "free out of range");
        self.allocated = self
            .allocated
            .checked_sub(size)
            .expect("freed more than allocated");
        let idx = self.free.partition_point(|b| b.off < off);
        // guard against overlap with neighbours (double free / bad size)
        if idx > 0 {
            let prev = self.free[idx - 1];
            assert!(prev.off + prev.len <= off, "double free or overlap (prev)");
        }
        if idx < self.free.len() {
            assert!(off + size <= self.free[idx].off, "double free or overlap (next)");
        }
        self.free.insert(idx, FreeBlock { off, len: size });
        // coalesce with next
        if idx + 1 < self.free.len() && self.free[idx].off + self.free[idx].len == self.free[idx + 1].off
        {
            self.free[idx].len += self.free[idx + 1].len;
            self.free.remove(idx + 1);
        }
        // coalesce with prev
        if idx > 0 && self.free[idx - 1].off + self.free[idx - 1].len == self.free[idx].off {
            self.free[idx - 1].len += self.free[idx].len;
            self.free.remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mut a = RangeAlloc::new(1024, 256);
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 256); // aligned
        assert_eq!(a.allocated(), 512);
        a.free(x, 100);
        a.free(y, 100);
        assert_eq!(a.allocated(), 0);
        assert_eq!(a.total_free(), 1024);
        // after coalescing, a full-size alloc succeeds
        assert_eq!(a.alloc(1024).unwrap(), 0);
    }

    #[test]
    fn first_fit_reuses_freed_hole() {
        let mut a = RangeAlloc::new(4096, 256);
        let x = a.alloc(256).unwrap();
        let _y = a.alloc(256).unwrap();
        a.free(x, 256);
        let z = a.alloc(256).unwrap();
        assert_eq!(z, x);
    }

    #[test]
    fn oom_reports_fragmentation() {
        let mut a = RangeAlloc::new(1024, 256);
        let w = a.alloc(256).unwrap();
        let _x = a.alloc(256).unwrap();
        let y = a.alloc(256).unwrap();
        let _z = a.alloc(256).unwrap();
        a.free(w, 256);
        a.free(y, 256);
        let err = a.alloc(512).unwrap_err();
        assert_eq!(err.largest_free, 256);
        assert_eq!(err.total_free, 512);
    }

    #[test]
    #[should_panic]
    fn double_free_detected() {
        // A double free trips either the accounting check ("freed more
        // than allocated") or the overlap check, depending on state.
        let mut a = RangeAlloc::new(1024, 256);
        let x = a.alloc(256).unwrap();
        a.free(x, 256);
        a.free(x, 256);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn overlapping_free_detected() {
        let mut a = RangeAlloc::new(1024, 256);
        let x = a.alloc(512).unwrap();
        let _y = a.alloc(256).unwrap();
        a.free(x, 256);
        a.free(x, 256); // overlaps the block just freed
    }

    #[test]
    fn zero_sized_alloc_takes_one_unit() {
        let mut a = RangeAlloc::new(1024, 256);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn exhaustive_fill_then_drain() {
        let mut a = RangeAlloc::new(256 * 16, 256);
        let offs: Vec<u64> = (0..16).map(|_| a.alloc(256).unwrap()).collect();
        assert!(a.alloc(1).is_err());
        for &o in offs.iter().rev() {
            a.free(o, 256);
        }
        assert_eq!(a.total_free(), 256 * 16);
        assert_eq!(a.free.len(), 1, "should fully coalesce");
    }
}
