//! The host channel adapter: a TX engine with counters.
//!
//! Latency constants (WQE processing, DMA setup) come from the
//! [`pcie_sim::profile::IbProfile`]; the TX link serializes outgoing
//! payload bytes at wire bandwidth. The link's own latency is zero —
//! wire/switch/loopback latencies are added explicitly by the verbs
//! layer because they differ per path.

use parking_lot::Mutex;
use pcie_sim::profile::IbProfile;
use pcie_sim::HcaId;
use sim_core::{Link, LinkSpec, SimDuration, SimTime};

/// Counters for one HCA (observability + tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct HcaStats {
    pub writes_posted: u64,
    pub reads_posted: u64,
    pub sends_posted: u64,
    pub atomics_posted: u64,
    pub bytes_tx: u64,
}

/// One simulated adapter.
pub struct Hca {
    id: HcaId,
    tx: Mutex<Link>,
    stats: Mutex<HcaStats>,
}

impl Hca {
    pub fn new(id: HcaId, ib: &IbProfile) -> Hca {
        Hca {
            id,
            tx: Mutex::new(Link::new(LinkSpec::new(SimDuration::ZERO, ib.wire_bw))),
            stats: Mutex::new(HcaStats::default()),
        }
    }

    pub fn id(&self) -> HcaId {
        self.id
    }

    /// Reserve the TX engine for `len` bytes at effective bandwidth
    /// `eff_bw` (the gather-side bottleneck), returning the grant.
    pub fn tx_reserve(&self, now: SimTime, len: u64, eff_bw: f64) -> sim_core::LinkGrant {
        self.stats.lock().bytes_tx += len;
        self.tx.lock().reserve_with(now, len, eff_bw)
    }

    pub fn stats(&self) -> HcaStats {
        *self.stats.lock()
    }

    /// Install a per-reservation observer on the TX link (drives the
    /// per-link utilization tracks of the obs layer).
    pub fn set_tx_observer(&self, f: sim_core::LinkObserver) {
        self.tx.lock().set_observer(f);
    }

    /// Add a fault window (degradation or blackout) to the TX link.
    pub fn add_tx_fault_window(&self, w: sim_core::LinkFaultWindow) {
        self.tx.lock().add_fault_window(w);
    }

    pub fn note_write(&self) {
        self.stats.lock().writes_posted += 1;
    }
    pub fn note_read(&self) {
        self.stats.lock().reads_posted += 1;
    }
    pub fn note_send(&self) {
        self.stats.lock().sends_posted += 1;
    }
    pub fn note_atomic(&self) {
        self.stats.lock().atomics_posted += 1;
    }
}

impl std::fmt::Debug for Hca {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hca({})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::HwProfile;

    #[test]
    fn tx_serializes_and_counts() {
        let hw = HwProfile::wilkes();
        let h = Hca::new(HcaId(0), &hw.ib);
        let a = h.tx_reserve(SimTime::ZERO, 1_000_000, hw.ib.wire_bw);
        let b = h.tx_reserve(SimTime::ZERO, 1_000_000, hw.ib.wire_bw);
        assert_eq!(b.start, a.depart);
        assert_eq!(h.stats().bytes_tx, 2_000_000);
    }

    #[test]
    fn effective_bandwidth_caps_apply() {
        let hw = HwProfile::wilkes();
        let h = Hca::new(HcaId(0), &hw.ib);
        // P2P-read-limited gather (247 MB/s) vs wire speed.
        let slow = h.tx_reserve(SimTime::ZERO, 1_000_000, 247e6);
        let dur = slow.depart - slow.start;
        assert!((dur.as_ms_f64() - 4.05).abs() < 0.05, "got {dur}");
    }
}
