//! # ib-sim — InfiniBand-like fabric with GPUDirect RDMA
//!
//! The network substrate of the reproduction: HCAs with modelled WQE and
//! DMA timing, memory registration with lkey/rkey protection (device-mem
//! MRs == GDR), one-sided RDMA write/read, 64-bit hardware atomics, and
//! two-sided send/recv. Payloads really move between arenas; transfer
//! schedules honour the PCIe P2P caps of the paper's Table III.

pub mod hca;
pub mod mr;
pub mod sendrecv;
pub mod verbs;

pub use hca::{Hca, HcaStats};
pub use mr::{Lkey, MemoryRegion, MrError, MrTable, Rkey};
pub use sendrecv::{QpTable, SendRecvError};
pub use verbs::{AtomicOp, AtomicResult, RdmaCompletion};

use gpu_sim::GpuRuntime;
use parking_lot::Mutex;
use pcie_sim::mem::MemRef;
use pcie_sim::{Cluster, HcaId, ProcId};
use sim_core::{Sim, SimDuration, SimTime, TaskCtx};
use std::sync::Arc;

/// A transient completion-queue error drawn from the active fault plan.
/// The HCA "detects" the failure `detect` after the post attempt; the
/// WQE never executes, so the poster must re-post (or give up).
#[derive(Clone, Copy, Debug)]
pub struct CqeFault {
    /// CQE status mnemonic (`cqe-flush-err` / `cqe-retry-exceeded`).
    pub kind: &'static str,
    /// Virtual time between the post and the error CQE.
    pub detect: SimDuration,
}

/// Deterministic fault-draw state: program-ordered counters per poster
/// so identical seeds replay identical fault sequences regardless of
/// wall-clock scheduling.
#[derive(Default)]
struct FaultState {
    plan: Option<faults::FaultPlan>,
    /// Per-poster post-attempt counters (CQE error stream).
    posts: Vec<u64>,
    /// Per-poster completion counters (late-delivery stream).
    completions: Vec<u64>,
    /// Per-poster sync-area flag/data write counters: a dedicated CQE
    /// stream (`faults::SYNC_STREAM`) so arming sync faults never
    /// shifts the RMA post streams above.
    sync_posts: Vec<u64>,
}

impl FaultState {
    fn bump(v: &mut Vec<u64>, idx: usize) -> u64 {
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
        let c = v[idx];
        v[idx] = c + 1;
        c
    }
}

/// The fabric: every HCA in the cluster plus the MR and QP tables.
pub struct IbVerbs {
    sim: Sim,
    cluster: Arc<Cluster>,
    gpus: Arc<GpuRuntime>,
    hcas: Vec<Hca>,
    mrs: MrTable,
    qps: QpTable,
    obs: obs::Sink,
    faults: Mutex<FaultState>,
}

/// Obs link-track index base for HCA TX links (above every possible
/// GPU link index, so the two families never collide).
const HCA_LINK_BASE: u32 = 0x8000;

impl IbVerbs {
    pub fn new(sim: &Sim, gpus: Arc<GpuRuntime>) -> Arc<IbVerbs> {
        let cluster = gpus.cluster().clone();
        let obs = obs::Sink::new();
        let hcas: Vec<Hca> = (0..cluster.topo().nhcas())
            .map(|i| Hca::new(HcaId(i as u32), &cluster.hw().ib))
            .collect();
        // Per-link utilization: each HCA's TX wire reports reservations
        // through the late-bound sink (one named link track per HCA).
        for (i, h) in hcas.iter().enumerate() {
            let sink = obs.clone();
            let name = format!("ib/hca{i}/tx");
            let index = HCA_LINK_BASE + i as u32;
            h.set_tx_observer(Box::new(move |ev| {
                if let Some(rec) = sink.counters() {
                    rec.link_sample(index, &name, ev);
                }
            }));
        }
        Arc::new(IbVerbs {
            sim: sim.clone(),
            cluster,
            gpus,
            hcas,
            mrs: MrTable::new(),
            qps: QpTable::new(),
            obs,
            faults: Mutex::new(FaultState::default()),
        })
    }

    /// Arm the fabric with a fault plan: transient CQE errors and late
    /// completions are drawn deterministically per poster, and the
    /// plan's HCA-TX link windows (degradation/blackout) are installed
    /// on the matching TX links.
    pub fn set_fault_plan(&self, plan: faults::FaultPlan) {
        for w in plan.link_windows() {
            if w.scope != faults::LinkScope::HcaTx {
                continue;
            }
            let window = sim_core::LinkFaultWindow {
                start: SimTime(w.start_ns.saturating_mul(sim_core::PS_PER_NS)),
                end: SimTime(w.end_ns.saturating_mul(sim_core::PS_PER_NS)),
                bw_multiplier: f64::from(w.bw_permille) / 1000.0,
            };
            for (i, h) in self.hcas.iter().enumerate() {
                if w.index == faults::ALL || w.index as usize == i {
                    h.add_tx_fault_window(window);
                }
            }
        }
        self.faults.lock().plan = Some(plan);
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<faults::FaultPlan> {
        self.faults.lock().plan
    }

    /// Draw the next post-attempt outcome for `poster`. `Some` means the
    /// WQE failed with a transient CQE error after `detect` of virtual
    /// time; the caller charges the detection latency and may re-post.
    /// Every call advances the poster's deterministic draw counter.
    /// Inside a correlated burst window every draw fails (`cqe-burst`),
    /// regardless of the per-post permille.
    ///
    /// `now` is passed in (rather than read from the engine) because
    /// draws happen both from task contexts and from inside scheduler
    /// callbacks — where the engine lock is already held and
    /// `Sim::now()` would self-deadlock.
    pub fn inject_transient_cqe(&self, poster: ProcId, now: SimTime) -> Option<CqeFault> {
        let mut st = self.faults.lock();
        let plan = st.plan?;
        if !plan.cqe_armed() {
            return None;
        }
        let n = FaultState::bump(&mut st.posts, poster.0 as usize);
        self.draw_cqe(&plan, u64::from(poster.0), n, now)
    }

    /// Sync-area counterpart of [`IbVerbs::inject_transient_cqe`]:
    /// `sync_flag_put` / `sync_data_put` posts draw from a dedicated
    /// per-poster stream (`faults::SYNC_STREAM` salt, own counters), so
    /// the RMA post streams replay identically whether or not a
    /// workload issues sync traffic between their posts.
    pub fn inject_sync_cqe(&self, poster: ProcId, now: SimTime) -> Option<CqeFault> {
        let mut st = self.faults.lock();
        let plan = st.plan?;
        if !plan.cqe_armed() {
            return None;
        }
        let n = FaultState::bump(&mut st.sync_posts, poster.0 as usize);
        self.draw_cqe(&plan, u64::from(poster.0) | faults::SYNC_STREAM, n, now)
    }

    /// Shared draw: burst windows defeat every post at once; otherwise
    /// the seeded per-post permille decides.
    fn draw_cqe(
        &self,
        plan: &faults::FaultPlan,
        stream: u64,
        counter: u64,
        now: SimTime,
    ) -> Option<CqeFault> {
        let now_ns = now.0 / sim_core::PS_PER_NS;
        if plan.in_burst(now_ns) {
            return Some(CqeFault {
                kind: "cqe-burst",
                detect: SimDuration::from_ns(plan.cqe_detect_ns),
            });
        }
        if plan.cqe_fails(stream, counter) {
            Some(CqeFault {
                kind: plan.cqe_kind(stream, counter),
                detect: SimDuration::from_ns(plan.cqe_detect_ns),
            })
        } else {
            None
        }
    }

    /// Extra CQ-delivery delay for `poster`'s next completion (the
    /// "late completion" fault); `SimDuration::ZERO` when unfaulted.
    pub(crate) fn late_extra(&self, poster: ProcId) -> SimDuration {
        let mut st = self.faults.lock();
        let Some(plan) = st.plan else {
            return SimDuration::ZERO;
        };
        if plan.late_permille == 0 {
            return SimDuration::ZERO;
        }
        let n = FaultState::bump(&mut st.completions, poster.0 as usize);
        if plan.completion_late(u64::from(poster.0), n) {
            SimDuration::from_ns(plan.late_extra_ns)
        } else {
            SimDuration::ZERO
        }
    }

    /// Late-bound observability sink; a machine attaches its recorder
    /// here so HCA TX utilization lands in the trace.
    pub fn obs(&self) -> &obs::Sink {
        &self.obs
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn gpus(&self) -> &Arc<GpuRuntime> {
        &self.gpus
    }

    pub fn hca(&self, id: HcaId) -> &Hca {
        &self.hcas[id.index()]
    }

    /// Reserve an HCA's TX engine, accounting the transfer with the
    /// attached recorder (utilization counters; a TX span at `Spans`).
    pub(crate) fn tx_reserve(
        &self,
        id: HcaId,
        now: sim_core::SimTime,
        len: u64,
        eff_bw: f64,
    ) -> sim_core::LinkGrant {
        let grant = self.hca(id).tx_reserve(now, len, eff_bw);
        if let Some(rec) = self.obs.counters() {
            rec.agent_bytes(
                obs::TrackKind::Hca,
                id.0,
                grant.start,
                len,
                grant.depart.since(grant.start),
            );
            if rec.spans_on() {
                let track = rec.track(obs::TrackKind::Hca, id.0);
                rec.span(track, "tx", grant.start, grant.depart, obs::Payload::Xfer { size: len });
            }
        }
        grant
    }

    pub fn hcas(&self) -> &[Hca] {
        &self.hcas
    }

    pub fn mrs(&self) -> &MrTable {
        &self.mrs
    }

    pub(crate) fn qps(&self) -> &QpTable {
        &self.qps
    }

    /// Register memory, charging the (cold) registration cost to the
    /// calling PE. Higher layers add a registration *cache* on top, as
    /// MVAPICH2-X does (paper §III-A).
    pub fn reg_mr(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        owner: ProcId,
        base: MemRef,
        len: u64,
    ) -> MemoryRegion {
        let ib = &self.cluster.hw().ib;
        let pages = len.div_ceil(ib.reg_page_bytes).max(1);
        ctx.advance(ib.reg_base_cost + ib.reg_page_cost * pages);
        self.reg_mr_nocost(owner, base, len)
    }

    /// Register memory without charging time (initialization-time setup
    /// whose cost is accounted by the caller, and tests).
    pub fn reg_mr_nocost(&self, owner: ProcId, base: MemRef, len: u64) -> MemoryRegion {
        // the arena must exist and cover the range
        let arena = self
            .cluster
            .mem()
            .get(base.space)
            .unwrap_or_else(|e| panic!("registering unmapped memory: {e}"));
        assert!(
            base.offset + len <= arena.size(),
            "MR [{}+{len}) beyond arena size {}",
            base,
            arena.size()
        );
        self.mrs.insert(owner, base, len)
    }

    pub fn dereg_mr(&self, mr: &MemoryRegion) {
        self.mrs.dereg(mr);
    }
}

impl std::fmt::Debug for IbVerbs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IbVerbs({} hcas, {} MRs)",
            self.hcas.len(),
            self.mrs.len()
        )
    }
}

/// Test helper: build a Wilkes-like fabric with host arenas mapped.
#[doc(hidden)]
pub mod testutil {
    use super::*;
    use pcie_sim::{ClusterSpec, HwProfile};

    pub fn fabric(nodes: usize, ppn: usize) -> (Sim, Arc<IbVerbs>) {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(nodes, ppn), HwProfile::wilkes());
        for p in cluster.topo().all_procs() {
            cluster.create_host_arena(p, 16 << 20);
        }
        let gpus = GpuRuntime::new(&sim, cluster, 16 << 20);
        let ib = IbVerbs::new(&sim, gpus);
        (sim, ib)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::fabric;
    use super::*;
    use pcie_sim::mem::{MemRef, MemSpace};
    use pcie_sim::GpuId;
    

    #[test]
    fn rdma_write_host_to_host_internode() {
        let (sim, ib) = fabric(2, 1);
        // register both sides before the run so rkeys are known
        let src = MemRef::new(MemSpace::Host(ProcId(0)), 0);
        let dst = MemRef::new(MemSpace::Host(ProcId(1)), 128);
        ib.reg_mr_nocost(ProcId(0), src, 4096);
        let mr1 = ib.reg_mr_nocost(ProcId(1), MemRef::new(MemSpace::Host(ProcId(1)), 0), 4096);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            ib2.cluster().mem().write_bytes(src, b"rdma-bytes").unwrap();
            let comp = ib2
                .post_rdma_write(&ctx, ProcId(0), src, mr1.rkey, dst, 10)
                .unwrap();
            ctx.wait(&comp.remote);
            assert_eq!(
                ib2.cluster().mem().read_bytes(dst, 10).unwrap(),
                b"rdma-bytes"
            );
        });
    }

    #[test]
    fn rdma_write_rejects_bad_rkey_and_bounds() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            let mr0 = ib2.reg_mr_nocost(me, mine, 1024);
            let peer = MemRef::new(MemSpace::Host(ProcId(1)), 0);
            let mr1 = ib2.reg_mr_nocost(ProcId(1), peer, 1024);
            // bad rkey
            let e = ib2
                .post_rdma_write(&ctx, me, mine, Rkey(9999), peer, 8)
                .unwrap_err();
            assert!(matches!(e, MrError::InvalidRkey(_)));
            // out of MR bounds
            let e = ib2
                .post_rdma_write(&ctx, me, mine, mr1.rkey, peer.add(1020), 16)
                .unwrap_err();
            assert!(matches!(e, MrError::ProtectionFault { .. }));
            // unregistered local source
            let high = MemRef::new(MemSpace::Host(me), 900_000);
            let e = ib2
                .post_rdma_write(&ctx, me, high, mr1.rkey, peer, 8)
                .unwrap_err();
            assert!(matches!(e, MrError::NotRegistered { .. }));
            let _ = mr0;
        });
    }

    #[test]
    fn gdr_write_lands_in_device_memory() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let src = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, src, 4096);
            // register pe1's GPU buffer: GDR
            let dev = ib2.gpus().gpu(GpuId(2)).malloc(4096).unwrap(); // node1 gpu
            let mr = ib2.reg_mr_nocost(ProcId(1), dev, 4096);
            assert!(mr.is_gdr());
            ib2.cluster().mem().write_bytes(src, &[0x5A; 64]).unwrap();
            let comp = ib2
                .post_rdma_write(&ctx, me, src, mr.rkey, dev, 64)
                .unwrap();
            ctx.wait(&comp.remote);
            assert!(ib2
                .cluster()
                .mem()
                .read_bytes(dev, 64)
                .unwrap()
                .iter()
                .all(|&b| b == 0x5A));
        });
    }

    #[test]
    fn rdma_read_pulls_remote_device_data() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let dst = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, dst, 4096);
            let dev = ib2.gpus().gpu(GpuId(2)).malloc(4096).unwrap();
            let mr = ib2.reg_mr_nocost(ProcId(1), dev, 4096);
            ib2.cluster().mem().write_bytes(dev, &[0xC3; 128]).unwrap();
            let done = ib2
                .post_rdma_read(&ctx, me, dst, mr.rkey, dev, 128)
                .unwrap();
            ctx.wait(&done);
            assert!(ib2
                .cluster()
                .mem()
                .read_bytes(dst, 128)
                .unwrap()
                .iter()
                .all(|&b| b == 0xC3));
        });
    }

    #[test]
    fn small_gdr_write_latency_is_near_paper_number() {
        // Inter-node D-D 8 B put ~ 3.13us at the OpenSHMEM level; the raw
        // verb should be slightly below that (runtime overhead comes later).
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let src_dev = ib2.gpus().gpu(GpuId(0)).malloc(4096).unwrap();
            ib2.reg_mr_nocost(me, src_dev, 4096);
            let dst_dev = ib2.gpus().gpu(GpuId(2)).malloc(4096).unwrap();
            let mr = ib2.reg_mr_nocost(ProcId(1), dst_dev, 4096);
            let t0 = ctx.now();
            let comp = ib2
                .post_rdma_write(&ctx, me, src_dev, mr.rkey, dst_dev, 8)
                .unwrap();
            ctx.wait(&comp.remote);
            let lat = (ctx.now() - t0).as_us_f64();
            assert!((1.5..3.2).contains(&lat), "raw GDR D-D latency {lat}us");
        });
    }

    #[test]
    fn atomics_fetch_add_and_cswap() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let local = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, local, 64);
            let peer = MemRef::new(MemSpace::Host(ProcId(1)), 0);
            let mr = ib2.reg_mr_nocost(ProcId(1), peer, 64);
            ib2.cluster()
                .mem()
                .get(peer.space)
                .unwrap()
                .write_u64(0, 100)
                .unwrap();

            let r = ib2
                .post_atomic(&ctx, me, mr.rkey, peer, AtomicOp::FetchAdd(5))
                .unwrap();
            assert_eq!(r.value(), None, "polling before completion must not panic");
            ctx.wait(&r.done);
            assert_eq!(r.value(), Some(100));
            let arena = ib2.cluster().mem().get(peer.space).unwrap();
            assert_eq!(arena.read_u64(0).unwrap(), 105);

            // successful compare-and-swap
            let r = ib2
                .post_atomic(
                    &ctx,
                    me,
                    mr.rkey,
                    peer,
                    AtomicOp::CompareSwap {
                        compare: 105,
                        swap: 7,
                    },
                )
                .unwrap();
            ctx.wait(&r.done);
            assert_eq!(r.value(), Some(105));
            assert_eq!(arena.read_u64(0).unwrap(), 7);

            // failing compare-and-swap leaves memory untouched
            let r = ib2
                .post_atomic(
                    &ctx,
                    me,
                    mr.rkey,
                    peer,
                    AtomicOp::CompareSwap {
                        compare: 999,
                        swap: 1,
                    },
                )
                .unwrap();
            ctx.wait(&r.done);
            assert_eq!(r.value(), Some(7));
            assert_eq!(arena.read_u64(0).unwrap(), 7);
        });
    }

    #[test]
    fn concurrent_fetch_adds_are_linearizable() {
        let (sim, ib) = fabric(2, 2);
        let peer = MemRef::new(MemSpace::Host(ProcId(3)), 0);
        let mr = ib.reg_mr_nocost(ProcId(3), peer, 64);
        let rkey = mr.rkey;
        let ib3 = ib.clone();
        sim.run(3, move |ctx| {
            let me = ProcId(ctx.id().0 as u32);
            let local = MemRef::new(MemSpace::Host(me), 0);
            ib3.reg_mr_nocost(me, local, 64);
            for _ in 0..10 {
                let r = ib3
                    .post_atomic(&ctx, me, rkey, peer, AtomicOp::FetchAdd(1))
                    .unwrap();
                ctx.wait(&r.done);
            }
        });
        let arena = ib.cluster().mem().get(peer.space).unwrap();
        assert_eq!(arena.read_u64(0).unwrap(), 30);
    }

    #[test]
    fn loopback_write_is_faster_than_internode() {
        let (sim, ib) = fabric(2, 2);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, mine, 4096);
            // intra-node target: pe1; inter-node target: pe2
            let near = MemRef::new(MemSpace::Host(ProcId(1)), 0);
            let far = MemRef::new(MemSpace::Host(ProcId(2)), 0);
            let mr_near = ib2.reg_mr_nocost(ProcId(1), near, 4096);
            let mr_far = ib2.reg_mr_nocost(ProcId(2), far, 4096);

            let t0 = ctx.now();
            let c = ib2
                .post_rdma_write(&ctx, me, mine, mr_near.rkey, near, 8)
                .unwrap();
            ctx.wait(&c.remote);
            let lat_near = ctx.now() - t0;

            let t1 = ctx.now();
            let c = ib2
                .post_rdma_write(&ctx, me, mine, mr_far.rkey, far, 8)
                .unwrap();
            ctx.wait(&c.remote);
            let lat_far = ctx.now() - t1;
            assert!(lat_near < lat_far, "near {lat_near} far {lat_far}");
        });
    }

    #[test]
    fn registration_cost_scales_with_pages() {
        let (sim, ib) = fabric(1, 1);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            let t0 = ctx.now();
            ib2.reg_mr(&ctx, me, mine, 4096);
            let one_page = ctx.now() - t0;
            let t1 = ctx.now();
            ib2.reg_mr(&ctx, me, mine.add(4096), 64 * 4096);
            let many = ctx.now() - t1;
            assert!(
                many > one_page,
                "64-page reg not slower: {many} vs {one_page}"
            );
        });
    }

    #[test]
    fn writes_on_one_path_complete_in_order() {
        // FIFO TX serialization => remote completion order matches post
        // order for a same-QP-path pair (needed by fence semantics).
        let (sim, ib) = fabric(2, 1);
        let src = MemRef::new(MemSpace::Host(ProcId(0)), 0);
        let dst = MemRef::new(MemSpace::Host(ProcId(1)), 0);
        ib.reg_mr_nocost(ProcId(0), src, 1 << 20);
        let mr = ib.reg_mr_nocost(ProcId(1), dst, 1 << 20);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            // big write then tiny write to adjacent cell
            ib2.cluster().mem().write_bytes(src, &[1; 1 << 19]).unwrap();
            ib2.cluster().mem().write_bytes(src.add(1 << 19), &[2; 8]).unwrap();
            let c1 = ib2
                .post_rdma_write(&ctx, ProcId(0), src, mr.rkey, dst, 1 << 19)
                .unwrap();
            let c2 = ib2
                .post_rdma_write(
                    &ctx,
                    ProcId(0),
                    src.add(1 << 19),
                    mr.rkey,
                    dst.add(1 << 19),
                    8,
                )
                .unwrap();
            ctx.wait(&c2.remote);
            // If the tiny write is visible, the big one must be too.
            assert!(c1.remote.is_done(1), "FIFO ordering violated");
        });
    }

    #[test]
    fn cqe_injection_draws_are_deterministic_per_poster() {
        let plan = faults::FaultPlan::default().with_cqe_errors(250);
        let draws = |_: ()| {
            let (_sim, ib) = fabric(2, 1);
            ib.set_fault_plan(plan);
            (0..64)
                .map(|_| ib.inject_transient_cqe(ProcId(0), _sim.now()).map(|f| f.kind))
                .collect::<Vec<_>>()
        };
        let a = draws(());
        let b = draws(());
        assert_eq!(a, b, "same plan must replay the same fault sequence");
        let hits = a.iter().flatten().count();
        assert!(
            (4..28).contains(&hits),
            "25% permille rate wildly off: {hits}/64"
        );
        // distinct posters see independent streams
        let (_sim, ib) = fabric(2, 1);
        ib.set_fault_plan(plan);
        let c = (0..64)
            .map(|_| ib.inject_transient_cqe(ProcId(1), _sim.now()).map(|f| f.kind))
            .collect::<Vec<_>>();
        assert_ne!(a, c, "poster streams should decorrelate");
    }

    #[test]
    fn no_plan_or_zero_rate_injects_nothing() {
        let (_sim, ib) = fabric(2, 1);
        assert!(ib.inject_transient_cqe(ProcId(0), _sim.now()).is_none());
        assert!(ib.inject_sync_cqe(ProcId(0), _sim.now()).is_none());
        ib.set_fault_plan(faults::FaultPlan::default());
        for _ in 0..32 {
            assert!(ib.inject_transient_cqe(ProcId(0), _sim.now()).is_none());
            assert!(ib.inject_sync_cqe(ProcId(0), _sim.now()).is_none());
        }
    }

    #[test]
    fn burst_window_fails_every_draw_at_time_zero() {
        // the fabric sits at t=0, inside the window: every draw on
        // every stream fails with the burst kind, even with cqe=0
        let (_sim, ib) = fabric(2, 1);
        ib.set_fault_plan(faults::FaultPlan::default().with_burst_window(0, 1_000_000));
        for _ in 0..16 {
            let f = ib
                .inject_transient_cqe(ProcId(0), _sim.now())
                .expect("in burst: must fail");
            assert_eq!(f.kind, "cqe-burst");
            let f = ib
                .inject_sync_cqe(ProcId(1), _sim.now())
                .expect("in burst: sync draws fail too");
            assert_eq!(f.kind, "cqe-burst");
        }
        // a window elsewhere leaves t=0 draws clean (cqe=0 ⇒ permille
        // path never fires)
        let (_sim, ib) = fabric(2, 1);
        ib.set_fault_plan(faults::FaultPlan::default().with_burst_window(5_000_000, 6_000_000));
        for _ in 0..16 {
            assert!(ib.inject_transient_cqe(ProcId(0), _sim.now()).is_none());
        }
    }

    #[test]
    fn sync_draws_ride_their_own_stream_and_counters() {
        let plan = faults::FaultPlan::default().with_seed(5).with_cqe_errors(400);
        // baseline: RMA post draws alone
        let (_sim, ib) = fabric(2, 1);
        ib.set_fault_plan(plan);
        let rma_alone: Vec<_> = (0..32)
            .map(|_| ib.inject_transient_cqe(ProcId(0), _sim.now()).map(|f| f.kind))
            .collect();
        // interleaving sync draws must not shift the RMA stream
        let (_sim, ib) = fabric(2, 1);
        ib.set_fault_plan(plan);
        let mut rma_mixed = Vec::new();
        let mut sync_mixed = Vec::new();
        for _ in 0..32 {
            sync_mixed.push(ib.inject_sync_cqe(ProcId(0), _sim.now()).map(|f| f.kind));
            rma_mixed.push(ib.inject_transient_cqe(ProcId(0), _sim.now()).map(|f| f.kind));
        }
        assert_eq!(
            rma_alone, rma_mixed,
            "sync draws must not perturb the RMA post stream"
        );
        assert_ne!(rma_mixed, sync_mixed, "the two streams must decorrelate");
    }

    #[test]
    fn hca_tx_blackout_window_defers_transfers() {
        let timed = |faulted: bool| {
            let (sim, ib) = fabric(2, 1);
            if faulted {
                // blackout the posting HCA's TX from 0 to 1 ms
                ib.set_fault_plan(faults::FaultPlan::default().with_link_window(
                    faults::LinkWindow {
                        scope: faults::LinkScope::HcaTx,
                        index: faults::ALL,
                        start_ns: 0,
                        end_ns: 1_000_000,
                        bw_permille: 0,
                    },
                ));
            }
            let src = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            let dst = MemRef::new(MemSpace::Host(ProcId(1)), 0);
            ib.reg_mr_nocost(ProcId(0), src, 4096);
            let mr = ib.reg_mr_nocost(ProcId(1), dst, 4096);
            let ib2 = ib.clone();
            let out = sim.run(1, move |ctx| {
                let c = ib2
                    .post_rdma_write(&ctx, ProcId(0), src, mr.rkey, dst, 64)
                    .unwrap();
                ctx.wait(&c.remote);
                ctx.now().as_us_f64()
            });
            out[0]
        };
        let clean = timed(false);
        let dark = timed(true);
        assert!(
            dark >= 1000.0 && dark > clean + 900.0,
            "blackout not visible: clean {clean}us vs faulted {dark}us"
        );
    }

    #[test]
    fn late_completion_fault_delays_the_cqe() {
        let plan = faults::FaultPlan::default().with_late_completions(1000, 50_000);
        let timed = |faulted: bool| {
            let (sim, ib) = fabric(2, 1);
            if faulted {
                ib.set_fault_plan(plan);
            }
            let src = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            let dst = MemRef::new(MemSpace::Host(ProcId(1)), 0);
            ib.reg_mr_nocost(ProcId(0), src, 4096);
            let mr = ib.reg_mr_nocost(ProcId(1), dst, 4096);
            let ib2 = ib.clone();
            let out = sim.run(1, move |ctx| {
                let c = ib2
                    .post_rdma_write(&ctx, ProcId(0), src, mr.rkey, dst, 64)
                    .unwrap();
                ctx.wait(&c.local);
                ctx.now().as_us_f64()
            });
            out[0]
        };
        let clean = timed(false);
        let late = timed(true);
        assert!(
            (late - clean - 50.0).abs() < 1.0,
            "late CQE delta wrong: clean {clean}us vs late {late}us"
        );
    }
}
