//! Two-sided send/recv over queue pairs.
//!
//! Used by the Table II "IB Send/Recv" baseline row and by the MPI-style
//! layer the original GPULBM application is written against. Matching is
//! per ordered (sender → receiver) channel, FIFO, like an IB RC QP: a
//! send transfers as soon as a receive buffer is available; otherwise it
//! waits (receiver-not-ready).

use crate::mr::MrError;
use crate::IbVerbs;
use parking_lot::Mutex;
use pcie_sim::mem::MemRef;
use pcie_sim::ProcId;
use sim_core::{Completion, Sched, TaskCtx};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct PostedRecv {
    buf: MemRef,
    cap: u64,
    done: Completion,
    len_cell: Arc<AtomicU64>,
}

struct PendingSend {
    src: MemRef,
    len: u64,
    local: Completion,
}

#[derive(Default)]
struct QpState {
    recvs: VecDeque<PostedRecv>,
    sends: VecDeque<PendingSend>,
}

/// All (sender → receiver) channels in the fabric.
#[derive(Default)]
pub struct QpTable {
    #[allow(clippy::type_complexity)]
    chans: Mutex<HashMap<(ProcId, ProcId), Arc<Mutex<QpState>>>>,
}

impl QpTable {
    pub fn new() -> Self {
        Self::default()
    }

    fn chan(&self, sender: ProcId, receiver: ProcId) -> Arc<Mutex<QpState>> {
        self.chans
            .lock()
            .entry((sender, receiver))
            .or_default()
            .clone()
    }
}

/// Errors from two-sided operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SendRecvError {
    /// Local-buffer registration problem.
    Mr(MrError),
    /// Matched receive buffer smaller than the incoming message.
    Truncation { msg: u64, cap: u64 },
}

impl From<MrError> for SendRecvError {
    fn from(e: MrError) -> Self {
        SendRecvError::Mr(e)
    }
}

impl std::fmt::Display for SendRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendRecvError::Mr(e) => write!(f, "{e}"),
            SendRecvError::Truncation { msg, cap } => {
                write!(f, "message of {msg} bytes truncates {cap}-byte receive")
            }
        }
    }
}

impl std::error::Error for SendRecvError {}

impl IbVerbs {
    /// Event-context receive post (no CPU-overhead charge). The
    /// completion fires when a matching send's payload has landed in `buf`.
    pub fn recv_start(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        receiver: ProcId,
        sender: ProcId,
        buf: MemRef,
        cap: u64,
        done: &Completion,
    ) -> Result<(), SendRecvError> {
        self.recv_start_sized(s, receiver, sender, buf, cap, done, &Arc::new(AtomicU64::new(0)))
    }

    /// As [`IbVerbs::recv_start`], also reporting the matched message
    /// length through `len_cell` (set at match time, before data moves).
    #[allow(clippy::too_many_arguments)]
    pub fn recv_start_sized(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        receiver: ProcId,
        sender: ProcId,
        buf: MemRef,
        cap: u64,
        done: &Completion,
        len_cell: &Arc<AtomicU64>,
    ) -> Result<(), SendRecvError> {
        self.mrs().check_local(receiver, buf, cap)?;
        let chan = self.qps().chan(sender, receiver);
        let to_start = {
            let mut st = chan.lock();
            // check truncation BEFORE popping: an error must leave the
            // queued send intact or its local completion never fires
            if let Some(send) = st.sends.front() {
                if send.len > cap {
                    return Err(SendRecvError::Truncation {
                        msg: send.len,
                        cap,
                    });
                }
            }
            if let Some(send) = st.sends.pop_front() {
                Some(send)
            } else {
                st.recvs.push_back(PostedRecv {
                    buf,
                    cap,
                    done: done.clone(),
                    len_cell: len_cell.clone(),
                });
                None
            }
        };
        if let Some(send) = to_start {
            len_cell.store(send.len, Ordering::SeqCst);
            self.sendrecv_transfer(s, sender, receiver, send.src, buf, send.len, &send.local, done);
        }
        Ok(())
    }

    /// Event-context send post (no CPU-overhead charge); `local` fires
    /// when the source buffer is reusable. The transfer starts once the
    /// receiver has a buffer posted.
    pub fn send_start(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        sender: ProcId,
        receiver: ProcId,
        src: MemRef,
        len: u64,
        local: &Completion,
    ) -> Result<(), SendRecvError> {
        self.mrs().check_local(sender, src, len)?;
        let chan = self.qps().chan(sender, receiver);
        let matched = {
            let mut st = chan.lock();
            // mirror of recv_start: peek the truncation check first so a
            // failed post leaves the queued receive matchable
            if let Some(recv) = st.recvs.front() {
                if len > recv.cap {
                    return Err(SendRecvError::Truncation {
                        msg: len,
                        cap: recv.cap,
                    });
                }
            }
            if let Some(recv) = st.recvs.pop_front() {
                Some(recv)
            } else {
                st.sends.push_back(PendingSend {
                    src,
                    len,
                    local: local.clone(),
                });
                None
            }
        };
        if let Some(recv) = matched {
            recv.len_cell.store(len, Ordering::SeqCst);
            self.sendrecv_transfer(s, sender, receiver, src, recv.buf, len, local, &recv.done);
        }
        Ok(())
    }

    /// Post a receive buffer from task context (charges post overhead).
    pub fn post_recv(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        receiver: ProcId,
        sender: ProcId,
        buf: MemRef,
        cap: u64,
    ) -> Result<Completion, SendRecvError> {
        ctx.advance(self.cluster().hw().ib.post_overhead);
        let done = Completion::new();
        ctx.with_sched(|s| self.recv_start(s, receiver, sender, buf, cap, &done))?;
        Ok(done)
    }

    /// Post a send from task context (charges post overhead); returns the
    /// local completion (source reusable).
    pub fn post_send(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        sender: ProcId,
        receiver: ProcId,
        src: MemRef,
        len: u64,
    ) -> Result<Completion, SendRecvError> {
        ctx.advance(self.cluster().hw().ib.post_overhead);
        let local = Completion::new();
        ctx.with_sched(|s| self.send_start(s, sender, receiver, src, len, &local))?;
        Ok(local)
    }

    /// The matched-transfer path: an RDMA-write-shaped movement plus the
    /// receiver-side completion processing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sendrecv_transfer(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        sender: ProcId,
        receiver: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
        local: &Completion,
        remote: &Completion,
    ) {
        self.hca(self.cluster().topo().hca_of(sender)).note_send();
        let extra_remote = self.cluster().hw().ib.cq_delivery; // recv CQE
        self.transfer_core(s, sender, src, dst, receiver, len, local, remote, extra_remote);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fabric;
    use pcie_sim::mem::MemSpace;
    use sim_core::SimDuration;

    #[test]
    fn send_matches_posted_recv_and_moves_data() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(2, move |ctx| {
            let me = ProcId(ctx.id().0 as u32);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            let mr = ib2.reg_mr_nocost(me, mine, 4096);
            let _ = mr;
            if me == ProcId(0) {
                ib2.cluster().mem().write_bytes(mine, b"payload!").unwrap();
                let local = ib2.post_send(&ctx, me, ProcId(1), mine, 8).unwrap();
                ctx.wait(&local);
            } else {
                let done = ib2.post_recv(&ctx, me, ProcId(0), mine, 4096).unwrap();
                ctx.wait(&done);
                assert_eq!(
                    ib2.cluster().mem().read_bytes(mine, 8).unwrap(),
                    b"payload!"
                );
            }
        });
    }

    #[test]
    fn unposted_recv_delays_send_completion() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        let out = sim.run(2, move |ctx| {
            let me = ProcId(ctx.id().0 as u32);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, mine, 4096);
            if me == ProcId(0) {
                let t0 = ctx.now();
                let local = ib2.post_send(&ctx, me, ProcId(1), mine, 64).unwrap();
                ctx.wait(&local);
                (ctx.now() - t0).as_us_f64()
            } else {
                // receiver naps before posting
                ctx.advance(SimDuration::from_us(50));
                let done = ib2.post_recv(&ctx, me, ProcId(0), mine, 64).unwrap();
                ctx.wait(&done);
                0.0
            }
        });
        assert!(out[0] >= 50.0, "sender completed before recv: {}", out[0]);
    }

    #[test]
    fn truncation_is_detected() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(2, move |ctx| {
            let me = ProcId(ctx.id().0 as u32);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, mine, 4096);
            if me == ProcId(0) {
                // recv first so the send matches instantly
                let done = ib2.post_recv(&ctx, me, ProcId(1), mine, 16);
                let _ = done;
            } else {
                ctx.advance(SimDuration::from_us(1));
                let err = ib2.post_send(&ctx, me, ProcId(0), mine, 64).unwrap_err();
                assert!(matches!(err, SendRecvError::Truncation { .. }));
            }
        });
    }

    #[test]
    fn sends_and_recvs_match_in_fifo_order() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(2, move |ctx| {
            let me = ProcId(ctx.id().0 as u32);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, mine, 4096);
            if me == ProcId(0) {
                for i in 0..4u8 {
                    ib2.cluster()
                        .mem()
                        .write_bytes(mine.add(i as u64 * 64), &[i; 64])
                        .unwrap();
                    let c = ib2
                        .post_send(&ctx, me, ProcId(1), mine.add(i as u64 * 64), 64)
                        .unwrap();
                    ctx.wait(&c);
                }
            } else {
                let mut dones = Vec::new();
                for i in 0..4u8 {
                    dones.push(
                        ib2.post_recv(&ctx, me, ProcId(0), mine.add(i as u64 * 256), 64)
                            .unwrap(),
                    );
                }
                for d in &dones {
                    ctx.wait(d);
                }
                for i in 0..4u8 {
                    let got = ib2
                        .cluster()
                        .mem()
                        .read_bytes(mine.add(i as u64 * 256), 64)
                        .unwrap();
                    assert!(got.iter().all(|&b| b == i), "recv {i} got wrong payload");
                }
            }
        });
    }
}

#[cfg(test)]
mod truncation_recovery_tests {
    use super::*;
    use crate::testutil::fabric;
    use pcie_sim::mem::MemSpace;

    #[test]
    fn failed_truncating_recv_leaves_the_send_matchable() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(2, move |ctx| {
            let me = ProcId(ctx.rank() as u32);
            let mine = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, mine, 4096);
            if me == ProcId(0) {
                ib2.cluster().mem().write_bytes(mine, &[9u8; 64]).unwrap();
                let local = ib2.post_send(&ctx, me, ProcId(1), mine, 64).unwrap();
                ctx.wait(&local); // must still complete after the bad recv
            } else {
                ctx.advance(sim_core::SimDuration::from_us(5));
                // too-small recv: rejected, but the send must survive
                let err = ib2.post_recv(&ctx, me, ProcId(0), mine, 16).unwrap_err();
                assert!(matches!(err, SendRecvError::Truncation { .. }));
                let done = ib2.post_recv(&ctx, me, ProcId(0), mine, 4096).unwrap();
                ctx.wait(&done);
                assert_eq!(ib2.cluster().mem().read_bytes(mine, 64).unwrap(), vec![9u8; 64]);
            }
        });
    }
}
