//! One-sided verbs: RDMA write, RDMA read, and hardware atomics — with
//! GPUDirect paths when an endpoint is device memory.
//!
//! Timing model per operation (constants from [`pcie_sim::IbProfile`]):
//!
//! ```text
//! write:  post ─ wqe ─ gather(src DMA) ─ TX@eff_bw ─┬ depart → local CQ
//!                                                    └ wire/loopback ─ remote HCA ─ scatter(dst DMA) → remote visible
//! read:   post ─ wqe ─ request wire ─ responder gather ─ TX@eff_bw ─ wire back ─ local scatter → CQ
//! atomic: post ─ wqe ─ wire ─ remote HCA ─ atomic unit (@dst mem) ─ wire back → CQ (+old value)
//! ```
//!
//! `eff_bw` encodes the PCIe P2P caps of paper Table III whenever the
//! gather/scatter side touches GPU memory, keyed by the socket relation
//! between the executing HCA and the GPU.

use crate::mr::{MemoryRegion, MrError, Rkey};
use crate::IbVerbs;
use parking_lot::Mutex;
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::profile::P2pDir;
use pcie_sim::{HcaId, ProcId};
use sim_core::{Completion, Sched, SimDuration, SimTime, TaskCtx};
use std::sync::Arc;

/// Completion pair for a posted one-sided write.
#[derive(Clone, Debug)]
pub struct RdmaCompletion {
    /// Source buffer reusable (local CQE).
    pub local: Completion,
    /// Data visible in the target memory.
    pub remote: Completion,
}

impl RdmaCompletion {
    pub fn new() -> Self {
        RdmaCompletion {
            local: Completion::new(),
            remote: Completion::new(),
        }
    }
}

impl Default for RdmaCompletion {
    fn default() -> Self {
        Self::new()
    }
}

/// A fetched value delivered by an atomic's completion.
#[derive(Clone, Debug)]
pub struct AtomicResult {
    pub done: Completion,
    slot: Arc<Mutex<Option<u64>>>,
}

impl AtomicResult {
    pub fn new() -> Self {
        AtomicResult {
            done: Completion::new(),
            slot: Arc::new(Mutex::new(None)),
        }
    }

    /// The fetched old value, or `None` if the atomic has not completed
    /// yet (poll `done`, or wait on it, before reading). Fault-delayed
    /// atomics make early polls routine, so this must not panic.
    pub fn value(&self) -> Option<u64> {
        *self.slot.lock()
    }

    fn set(&self, v: u64) {
        *self.slot.lock() = Some(v);
    }
}

impl Default for AtomicResult {
    fn default() -> Self {
        Self::new()
    }
}

/// Hardware atomic operations (64-bit, like IB HCAs).
#[derive(Clone, Copy, Debug)]
pub enum AtomicOp {
    FetchAdd(u64),
    CompareSwap { compare: u64, swap: u64 },
}

/// Resolved path facts for one operation.
struct Path {
    src_hca: HcaId,
    /// The HCA whose DMA engine touches the *target* memory
    /// (the source's own HCA for node-local loopback).
    exec_hca: HcaId,
    /// Wire latency between posting and executing HCA (one way).
    mid: SimDuration,
    loopback: bool,
}

impl IbVerbs {
    fn path_to(&self, poster: ProcId, dst_space_node: pcie_sim::NodeId, dst_owner: ProcId) -> Path {
        let topo = self.cluster().topo();
        let ib = &self.cluster().hw().ib;
        let src_hca = topo.hca_of(poster);
        if topo.node_of_hca(src_hca) == dst_space_node {
            // Node-local: the posting HCA loops the packet back and DMAs
            // into the destination itself (the paper's loopback design).
            Path {
                src_hca,
                exec_hca: src_hca,
                mid: ib.loopback,
                loopback: true,
            }
        } else {
            Path {
                src_hca,
                exec_hca: topo.hca_of(dst_owner),
                mid: ib.wire_latency + ib.switch_latency,
                loopback: false,
            }
        }
    }

    /// Gather-side effective bandwidth and extra latency for reading
    /// `mem` through `hca`.
    fn gather_cost(&self, mem: MemRef, hca: HcaId) -> (f64, SimDuration) {
        let hw = self.cluster().hw();
        match mem.space {
            MemSpace::Device(g) => {
                let intra = self.cluster().topo().gpu_hca_intra_socket(g, hca);
                (
                    hw.pcie.p2p_bw(P2pDir::ReadFromGpu, intra).min(hw.ib.wire_bw),
                    hw.ib.gdr_dma,
                )
            }
            _ => (hw.ib.wire_bw, hw.ib.host_dma),
        }
    }

    /// Scatter-side effective bandwidth and extra latency for writing
    /// `mem` through `hca`. Returns (bw cap, extra latency, Some(gpu)).
    fn scatter_cost(&self, mem: MemRef, hca: HcaId) -> (f64, SimDuration, Option<pcie_sim::GpuId>) {
        let hw = self.cluster().hw();
        match mem.space {
            MemSpace::Device(g) => {
                let intra = self.cluster().topo().gpu_hca_intra_socket(g, hca);
                (
                    hw.pcie.p2p_bw(P2pDir::WriteToGpu, intra).min(hw.ib.wire_bw),
                    hw.ib.gdr_dma,
                    Some(g),
                )
            }
            _ => (hw.ib.wire_bw, hw.ib.host_dma, None),
        }
    }

    /// Schedule an RDMA write (engine lock held). Completion semantics:
    /// `comp.local` fires when the source buffer is reusable, `comp.remote`
    /// when the data is visible at the destination. Returns the target MR.
    #[allow(clippy::too_many_arguments)]
    pub fn rdma_write_start(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        poster: ProcId,
        src: MemRef,
        rkey: Rkey,
        dst: MemRef,
        len: u64,
        comp: &RdmaCompletion,
    ) -> Result<MemoryRegion, MrError> {
        let mr = self.mrs().check_remote(rkey, dst, len)?;
        self.mrs().check_local(poster, src, len)?;
        self.hca(self.cluster().topo().hca_of(poster)).note_write();
        self.transfer_core(
            s,
            poster,
            src,
            dst,
            mr.owner,
            len,
            &comp.local,
            &comp.remote,
            SimDuration::ZERO,
        );
        Ok(mr)
    }

    /// The write-shaped transfer engine shared by RDMA write and matched
    /// send/recv: gather at the source HCA, stream at the bottleneck
    /// bandwidth, scatter at the executing HCA. `extra_remote` is added
    /// before the remote completion fires (e.g. receive-CQE processing).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transfer_core(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        poster: ProcId,
        src: MemRef,
        dst: MemRef,
        dst_owner: ProcId,
        len: u64,
        local_done: &Completion,
        remote_done: &Completion,
        extra_remote: SimDuration,
    ) {
        let topo = self.cluster().topo();
        let hw = *self.cluster().hw();
        let path = self.path_to(poster, topo.node_of_space(dst.space), dst_owner);

        // The transfer streams cut-through; its end-to-end bandwidth is
        // the minimum of the gather cap (P2P read when the source is on a
        // GPU), the wire, and the scatter cap (P2P write when the
        // destination is on a GPU). Latencies add once.
        let (gather_bw, gather_lat) = self.gather_cost(src, path.src_hca);
        let (scatter_bw, scatter_lat, scatter_gpu) = self.scatter_cost(dst, path.exec_hca);
        let mut eff = gather_bw.min(scatter_bw);
        if path.loopback && src.is_device() && dst.is_device() {
            // a D-D loopback streams GPU->HCA->GPU: both legs are P2P
            // through the HCA's one PCIe interface, halving throughput —
            // why D-D uses "the least GDR threshold" (paper §III-B)
            eff /= 2.0;
        }
        let t0 = s.now() + hw.ib.hca_wqe + gather_lat;
        if let MemSpace::Device(g) = src.space {
            // occupy the source GPU's PCIe read port for the duration
            let intra = topo.gpu_hca_intra_socket(g, path.src_hca);
            self.gpus()
                .p2p_reserve(self.gpus().gpu(g), t0, len, P2pDir::ReadFromGpu, intra);
        }
        let grant = self.tx_reserve(path.src_hca, t0, len, eff);

        // Local completion: last byte pulled from the source buffer.
        let local = local_done.clone();
        let me = self.clone();
        let remote = remote_done.clone();
        let at_exec_hca = grant.depart
            + path.mid
            + if path.loopback { SimDuration::ZERO } else { hw.ib.remote_hca };
        let visible_at = match scatter_gpu {
            Some(g) => {
                // occupy the destination GPU's PCIe write port; under
                // contention the port, not the wire, gates arrival
                let intra = topo.gpu_hca_intra_socket(g, path.exec_hca);
                let port = self.gpus().p2p_reserve(
                    self.gpus().gpu(g),
                    grant.start,
                    len,
                    P2pDir::WriteToGpu,
                    intra,
                );
                (at_exec_hca + scatter_lat + hw.pcie.latency)
                    .max(port.arrive + scatter_lat)
            }
            None => at_exec_hca + scatter_lat,
        } + extra_remote;
        // A late-completion fault delays only the CQE, never the data.
        let cq = grant.depart + hw.ib.cq_delivery + self.late_extra(poster);
        s.schedule_at(
            grant.depart,
            Box::new(move |s| {
                // HCA finished reading the source: snapshot the payload.
                let data = me
                    .cluster()
                    .mem()
                    .read_bytes(src, len)
                    .expect("gather from validated buffer");
                let me2 = me.clone();
                s.schedule_at(
                    visible_at,
                    Box::new(move |s| {
                        me2.cluster()
                            .mem()
                            .write_bytes(dst, &data)
                            .expect("scatter into validated MR");
                        s.signal(&remote, 1);
                    }),
                );
            }),
        );
        s.schedule_at(cq, Box::new(move |s| s.signal(&local, 1)));
    }

    /// Schedule an RDMA read (engine lock held); `done` fires when the
    /// data is available in `local_dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn rdma_read_start(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        poster: ProcId,
        local_dst: MemRef,
        rkey: Rkey,
        remote_src: MemRef,
        len: u64,
        done: &Completion,
    ) -> Result<MemoryRegion, MrError> {
        let mr = self.mrs().check_remote(rkey, remote_src, len)?;
        self.mrs().check_local(poster, local_dst, len)?;
        let topo = self.cluster().topo();
        let hw = *self.cluster().hw();
        let path = self.path_to(poster, topo.node_of_space(remote_src.space), mr.owner);
        self.hca(path.src_hca).note_read();

        // Request reaches the responder...
        let t_req = s.now() + hw.ib.hca_wqe + path.mid
            + if path.loopback { SimDuration::ZERO } else { hw.ib.remote_hca };
        // ...which gathers the remote data and streams it back, cut-through
        // at the minimum of the gather and scatter caps.
        let (gather_bw, gather_lat) = self.gather_cost(remote_src, path.exec_hca);
        let (scatter_bw, scatter_lat, scatter_gpu) = self.scatter_cost(local_dst, path.src_hca);
        let mut eff = gather_bw.min(scatter_bw);
        if path.loopback && remote_src.is_device() && local_dst.is_device() {
            eff /= 2.0; // D-D loopback: double P2P through one HCA
        }
        if let MemSpace::Device(g) = remote_src.space {
            let intra = topo.gpu_hca_intra_socket(g, path.exec_hca);
            self.gpus().p2p_reserve(
                self.gpus().gpu(g),
                t_req + gather_lat,
                len,
                P2pDir::ReadFromGpu,
                intra,
            );
        }
        let grant = self.tx_reserve(path.exec_hca, t_req + gather_lat, len, eff);

        // Response crosses back and is scattered locally by the poster's HCA.
        let back_at = grant.depart + path.mid;
        let landed_at = match scatter_gpu {
            Some(g) => {
                let intra = topo.gpu_hca_intra_socket(g, path.src_hca);
                let port = self.gpus().p2p_reserve(
                    self.gpus().gpu(g),
                    grant.start,
                    len,
                    P2pDir::WriteToGpu,
                    intra,
                );
                (back_at + scatter_lat + hw.pcie.latency).max(port.arrive + scatter_lat)
            }
            None => back_at + scatter_lat,
        };
        let me = self.clone();
        let done = done.clone();
        let late = self.late_extra(poster);
        s.schedule_at(
            grant.depart,
            Box::new(move |s| {
                let data = me
                    .cluster()
                    .mem()
                    .read_bytes(remote_src, len)
                    .expect("gather from validated MR");
                let me2 = me.clone();
                let done2 = done.clone();
                s.schedule_at(
                    landed_at + me2.cluster().hw().ib.cq_delivery + late,
                    Box::new(move |s| {
                        me2.cluster()
                            .mem()
                            .write_bytes(local_dst, &data)
                            .expect("scatter into validated local buffer");
                        s.signal(&done2, 1);
                    }),
                );
            }),
        );
        Ok(mr)
    }

    /// Schedule a 64-bit hardware atomic executed by the target HCA's
    /// atomic unit directly against the destination memory (via GDR when
    /// the destination is on a GPU).
    pub fn atomic_start(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        poster: ProcId,
        rkey: Rkey,
        dst: MemRef,
        op: AtomicOp,
        result: &AtomicResult,
    ) -> Result<MemoryRegion, MrError> {
        let mr = self.mrs().check_remote(rkey, dst, 8)?;
        let topo = self.cluster().topo();
        let hw = *self.cluster().hw();
        let path = self.path_to(poster, topo.node_of_space(dst.space), mr.owner);
        self.hca(path.src_hca).note_atomic();

        let mem_lat = match dst.space {
            // the atomic unit must read+write the GPU over PCIe P2P
            MemSpace::Device(_) => hw.ib.gdr_dma * 2,
            _ => hw.ib.host_dma * 2,
        };
        let t_exec = s.now()
            + hw.ib.hca_wqe
            + path.mid
            + if path.loopback { SimDuration::ZERO } else { hw.ib.remote_hca }
            + hw.ib.atomic_unit
            + mem_lat;
        let t_done = t_exec + path.mid + hw.ib.cq_delivery + self.late_extra(poster);
        let me = self.clone();
        let result = result.clone();
        s.schedule_at(
            t_exec,
            Box::new(move |s| {
                let arena = me.cluster().mem().get(dst.space).expect("validated MR");
                let old = arena
                    .fetch_update_u64(dst.offset, |cur| match op {
                        AtomicOp::FetchAdd(v) => cur.wrapping_add(v),
                        AtomicOp::CompareSwap { compare, swap } => {
                            if cur == compare {
                                swap
                            } else {
                                cur
                            }
                        }
                    })
                    .expect("atomic on validated MR");
                result.set(old);
                let done = result.done.clone();
                s.schedule_at(t_done, Box::new(move |s| s.signal(&done, 1)));
            }),
        );
        Ok(mr)
    }

    /// RDMA **write with signal**: after the payload lands, the HCA
    /// updates a second (8-byte) location at the target — the hardware
    /// idiom behind `shmem_put_signal` (write + write-with-immediate on
    /// real adapters). Both writes are one-sided; the signal is ordered
    /// after the data.
    #[allow(clippy::too_many_arguments)]
    pub fn rdma_write_signal_start(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        poster: ProcId,
        src: MemRef,
        rkey: Rkey,
        dst: MemRef,
        len: u64,
        sig_rkey: Rkey,
        sig_dst: MemRef,
        sig_value: u64,
        comp: &RdmaCompletion,
    ) -> Result<(), MrError> {
        self.mrs().check_remote(rkey, dst, len)?;
        self.mrs().check_remote(sig_rkey, sig_dst, 8)?;
        self.mrs().check_local(poster, src, len)?;
        self.hca(self.cluster().topo().hca_of(poster)).note_write();
        // data transfer; the signal store chains on its remote completion
        let data_done = Completion::new();
        self.transfer_core(
            s,
            poster,
            src,
            dst,
            // the MR owner serves as the path anchor
            self.mrs().check_remote(rkey, dst, len)?.owner,
            len,
            &comp.local,
            &data_done,
            SimDuration::ZERO,
        );
        let me = self.clone();
        let remote = comp.remote.clone();
        let sig_lat = self.cluster().hw().ib.host_dma;
        s.call_on(
            &data_done,
            1,
            Box::new(move |s| {
                // the signal store is executed by the same HCA right
                // after the last data byte (ordered on the QP)
                let me2 = me.clone();
                let remote2 = remote.clone();
                s.schedule_in(
                    sig_lat,
                    Box::new(move |s| {
                        me2.cluster()
                            .mem()
                            .get(sig_dst.space)
                            .expect("validated signal MR")
                            .write_u64(sig_dst.offset, sig_value)
                            .expect("signal store");
                        s.signal(&remote2, 1);
                    }),
                );
            }),
        );
        Ok(())
    }

    // ---- PE-context wrappers (charge the CPU post overhead) ----

    /// Post an RDMA write from task context.
    pub fn post_rdma_write(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        poster: ProcId,
        src: MemRef,
        rkey: Rkey,
        dst: MemRef,
        len: u64,
    ) -> Result<RdmaCompletion, MrError> {
        ctx.advance(self.cluster().hw().ib.post_overhead);
        let comp = RdmaCompletion::new();
        ctx.with_sched(|s| self.rdma_write_start(s, poster, src, rkey, dst, len, &comp))?;
        Ok(comp)
    }

    /// Post an RDMA read from task context.
    pub fn post_rdma_read(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        poster: ProcId,
        local_dst: MemRef,
        rkey: Rkey,
        remote_src: MemRef,
        len: u64,
    ) -> Result<Completion, MrError> {
        ctx.advance(self.cluster().hw().ib.post_overhead);
        let done = Completion::new();
        ctx.with_sched(|s| {
            self.rdma_read_start(s, poster, local_dst, rkey, remote_src, len, &done)
        })?;
        Ok(done)
    }

    /// Post a hardware atomic from task context.
    pub fn post_atomic(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        poster: ProcId,
        rkey: Rkey,
        dst: MemRef,
        op: AtomicOp,
    ) -> Result<AtomicResult, MrError> {
        ctx.advance(self.cluster().hw().ib.post_overhead);
        let result = AtomicResult::new();
        ctx.with_sched(|s| self.atomic_start(s, poster, rkey, dst, op, &result))?;
        Ok(result)
    }

    /// Predict the unloaded one-way latency of a small write on a path
    /// (used by tests and the tuning tables; excludes post overhead).
    pub fn unloaded_write_latency(
        &self,
        internode: bool,
        src_dev: bool,
        dst_dev: bool,
    ) -> SimDuration {
        let ib = &self.cluster().hw().ib;
        let gather = if src_dev { ib.gdr_dma } else { ib.host_dma };
        let scatter = if dst_dev { ib.gdr_dma } else { ib.host_dma };
        let pcie = self.cluster().hw().pcie.latency;
        let mid = if internode {
            ib.wire_latency + ib.switch_latency + ib.remote_hca
        } else {
            ib.loopback
        };
        let scatter_pcie = if dst_dev { pcie } else { SimDuration::ZERO };
        ib.hca_wqe + gather + mid + scatter + scatter_pcie
    }

    /// Timestamp helper for tests.
    pub fn now(&self) -> SimTime {
        self.sim().now()
    }
}

#[cfg(test)]
mod shape_tests {
    use crate::testutil::fabric;
    use crate::RdmaCompletion;
    use pcie_sim::mem::{MemRef, MemSpace};
    use pcie_sim::{GpuId, ProcId};

    /// Measure remote-completion time for a large write (us).
    fn write_time(src_dev: bool, dst_dev: bool, len: u64) -> f64 {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        let out = sim.run(1, move |ctx| {
            let me = ProcId(0);
            let src = if src_dev {
                ib2.gpus().gpu(GpuId(0)).malloc(len).unwrap()
            } else {
                MemRef::new(MemSpace::Host(me), 0)
            };
            ib2.reg_mr_nocost(me, src, len);
            let dst = if dst_dev {
                ib2.gpus().gpu(GpuId(2)).malloc(len).unwrap()
            } else {
                MemRef::new(MemSpace::Host(ProcId(1)), 0)
            };
            let mr = ib2.reg_mr_nocost(ProcId(1), dst, len);
            let t0 = ctx.now();
            let comp = ib2
                .post_rdma_write(&ctx, me, src, mr.rkey, dst, len)
                .unwrap();
            ctx.wait(&comp.remote);
            (ctx.now() - t0).as_us_f64()
        });
        out[0]
    }

    #[test]
    fn large_gdr_write_is_read_cap_limited_on_gpu_source() {
        let len = 4u64 << 20;
        let from_host = write_time(false, true, len); // gather host: wire speed
        let from_gpu = write_time(true, true, len); // gather P2P read: 3421 MB/s
        // ratio should be ~ wire/p2p_read = 6397/3421 = 1.87
        let ratio = from_gpu / from_host;
        assert!(
            (1.6..2.2).contains(&ratio),
            "P2P read cap not visible: {from_host} vs {from_gpu} (ratio {ratio})"
        );
    }

    #[test]
    fn host_to_host_runs_at_wire_speed() {
        let len = 8u64 << 20;
        let t = write_time(false, false, len);
        let mbps = len as f64 / t; // us and bytes -> MB/s
        assert!(
            (5800.0..6400.0).contains(&mbps),
            "H-H large write {mbps} MB/s (expect near 6397)"
        );
    }

    #[test]
    fn hca_stats_count_operations() {
        let (sim, ib) = fabric(2, 1);
        let ib2 = ib.clone();
        sim.run(1, move |ctx| {
            let me = ProcId(0);
            let src = MemRef::new(MemSpace::Host(me), 0);
            ib2.reg_mr_nocost(me, src, 4096);
            let dst = MemRef::new(MemSpace::Host(ProcId(1)), 0);
            let mr = ib2.reg_mr_nocost(ProcId(1), dst, 4096);
            for _ in 0..3 {
                let c = ib2.post_rdma_write(&ctx, me, src, mr.rkey, dst, 64).unwrap();
                ctx.wait(&c.remote);
            }
            let d = ib2.post_rdma_read(&ctx, me, src, mr.rkey, dst, 64).unwrap();
            ctx.wait(&d);
        });
        let topo = ib.cluster().topo().clone();
        let hca = ib.hca(topo.hca_of(ProcId(0)));
        assert_eq!(hca.stats().writes_posted, 3);
        assert_eq!(hca.stats().reads_posted, 1);
        assert!(hca.stats().bytes_tx >= 3 * 64);
    }

    #[test]
    fn event_context_write_works_from_callbacks() {
        // the pipelined protocols post writes from inside events
        let (sim, ib) = fabric(2, 1);
        let src = MemRef::new(MemSpace::Host(ProcId(0)), 0);
        let dst = MemRef::new(MemSpace::Host(ProcId(1)), 0);
        ib.reg_mr_nocost(ProcId(0), src, 4096);
        let mr = ib.reg_mr_nocost(ProcId(1), dst, 4096);
        ib.cluster().mem().write_bytes(src, b"from-event").unwrap();
        let comp = RdmaCompletion::new();
        let ib2 = ib.clone();
        let c2 = comp.clone();
        sim.with_sched(move |s| {
            s.schedule_in(
                sim_core::SimDuration::from_us(5),
                Box::new(move |s| {
                    ib2.rdma_write_start(s, ProcId(0), src, mr.rkey, dst, 10, &c2)
                        .unwrap();
                }),
            );
        });
        sim.drain();
        assert!(comp.remote.is_done(1));
        assert_eq!(ib.cluster().mem().read_bytes(dst, 10).unwrap(), b"from-event");
    }
}

#[cfg(test)]
mod contention_tests {
    use crate::testutil::fabric;
    use pcie_sim::mem::{MemRef, MemSpace};
    use pcie_sim::{GpuId, ProcId};

    #[test]
    fn concurrent_gdr_writes_serialize_on_the_target_port() {
        // two senders write 4 MiB each into the same GPU: the second
        // arrival must reflect port occupancy, not wire-only timing
        let (sim, ib) = fabric(3, 1);
        let dst_gpu = ib.gpus().gpu(GpuId(4)); // node2's gpu
        let d0 = dst_gpu.malloc(4 << 20).unwrap();
        let d1 = dst_gpu.malloc(4 << 20).unwrap();
        let mr0 = ib.reg_mr_nocost(ProcId(2), d0, 4 << 20);
        let mr1 = ib.reg_mr_nocost(ProcId(2), d1, 4 << 20);
        for p in [ProcId(0), ProcId(1)] {
            ib.reg_mr_nocost(p, MemRef::new(MemSpace::Host(p), 0), 8 << 20);
        }
        let ib2 = ib.clone();
        let times = sim.run(2, move |ctx| {
            let me = ProcId(ctx.rank() as u32);
            let (rkey, dst) = if me == ProcId(0) {
                (mr0.rkey, d0)
            } else {
                (mr1.rkey, d1)
            };
            let src = MemRef::new(MemSpace::Host(me), 0);
            let t0 = ctx.now();
            let c = ib2
                .post_rdma_write(&ctx, me, src, rkey, dst, 4 << 20)
                .unwrap();
            ctx.wait(&c.remote);
            (ctx.now() - t0).as_us_f64()
        });
        // one 4 MiB write at wire speed ~= 656us; two into one port can't
        // BOTH finish in that time (port native bw 12 GB/s => ~22% slack,
        // two wires feeding one port => the later one is measurably later)
        let slower = times[0].max(times[1]);
        let solo = 4.0 * (1 << 20) as f64 / 6397e6 * 1e6;
        assert!(
            slower > solo * 1.05,
            "no port contention visible: {times:?} vs solo {solo:.0}us"
        );
    }
}
