//! Memory registration: MRs, lkeys/rkeys, and protection checks.
//!
//! An HCA may only DMA through memory that was registered with it. MRs
//! over **device** memory are exactly GPUDirect RDMA: registering a GPU
//! buffer pins its BAR mapping so the HCA can do P2P reads/writes.

use parking_lot::Mutex;
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::ProcId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Remote access key: what a peer presents to touch the MR.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Rkey(pub u64);

/// Local access key: proves the poster owns a registered local buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Lkey(pub u64);

/// A registered memory region.
#[derive(Clone, Copy, Debug)]
pub struct MemoryRegion {
    pub owner: ProcId,
    pub base: MemRef,
    pub len: u64,
    pub lkey: Lkey,
    pub rkey: Rkey,
}

impl MemoryRegion {
    /// Does this MR cover `[r, r+len)`?
    pub fn covers(&self, r: MemRef, len: u64) -> bool {
        r.space == self.base.space
            && r.offset >= self.base.offset
            && r.offset
                .checked_add(len)
                .is_some_and(|end| end <= self.base.offset + self.len)
    }

    /// Is this a GPUDirect (device memory) registration?
    pub fn is_gdr(&self) -> bool {
        matches!(self.base.space, MemSpace::Device(_))
    }
}

/// Registration failures and protection errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MrError {
    /// rkey not known to the fabric.
    InvalidRkey(Rkey),
    /// lkey not known / not owned by the poster.
    InvalidLkey(Lkey),
    /// Access outside the registered range.
    ProtectionFault {
        key: u64,
        addr: MemRef,
        len: u64,
    },
    /// The local buffer was not registered by the posting process at all.
    NotRegistered { proc: ProcId, addr: MemRef },
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::InvalidRkey(k) => write!(f, "invalid rkey {k:?}"),
            MrError::InvalidLkey(k) => write!(f, "invalid lkey {k:?}"),
            MrError::ProtectionFault { key, addr, len } => {
                write!(f, "protection fault: key {key} does not cover {addr}+{len}")
            }
            MrError::NotRegistered { proc, addr } => {
                write!(f, "{proc} has no MR covering {addr}")
            }
        }
    }
}

impl std::error::Error for MrError {}

/// The fabric-wide MR table.
#[derive(Default)]
pub struct MrTable {
    next_key: AtomicU64,
    by_rkey: Mutex<HashMap<Rkey, MemoryRegion>>,
    by_lkey: Mutex<HashMap<Lkey, MemoryRegion>>,
}

impl MrTable {
    pub fn new() -> Self {
        MrTable {
            next_key: AtomicU64::new(1),
            by_rkey: Mutex::new(HashMap::new()),
            by_lkey: Mutex::new(HashMap::new()),
        }
    }

    /// Register `[base, base+len)` for `owner`. (Timing is charged by the
    /// caller — see `IbVerbs::reg_mr`.)
    pub fn insert(&self, owner: ProcId, base: MemRef, len: u64) -> MemoryRegion {
        let k = self.next_key.fetch_add(1, Ordering::Relaxed);
        let mr = MemoryRegion {
            owner,
            base,
            len,
            lkey: Lkey(k),
            rkey: Rkey(k),
        };
        self.by_rkey.lock().insert(mr.rkey, mr);
        self.by_lkey.lock().insert(mr.lkey, mr);
        mr
    }

    pub fn dereg(&self, mr: &MemoryRegion) {
        self.by_rkey.lock().remove(&mr.rkey);
        self.by_lkey.lock().remove(&mr.lkey);
    }

    /// Resolve an rkey and verify it covers the access.
    pub fn check_remote(&self, rkey: Rkey, addr: MemRef, len: u64) -> Result<MemoryRegion, MrError> {
        let mr = *self
            .by_rkey
            .lock()
            .get(&rkey)
            .ok_or(MrError::InvalidRkey(rkey))?;
        if !mr.covers(addr, len) {
            return Err(MrError::ProtectionFault {
                key: rkey.0,
                addr,
                len,
            });
        }
        Ok(mr)
    }

    /// Verify the poster has *some* MR covering the local buffer.
    pub fn check_local(&self, proc: ProcId, addr: MemRef, len: u64) -> Result<MemoryRegion, MrError> {
        let tab = self.by_lkey.lock();
        tab.values()
            .find(|mr| mr.owner == proc && mr.covers(addr, len))
            .copied()
            .ok_or(MrError::NotRegistered { proc, addr })
    }

    pub fn len(&self) -> usize {
        self.by_rkey.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::GpuId;

    fn dref(off: u64) -> MemRef {
        MemRef::new(MemSpace::Device(GpuId(0)), off)
    }

    #[test]
    fn register_and_check_bounds() {
        let t = MrTable::new();
        let mr = t.insert(ProcId(0), dref(0x1000), 0x1000);
        assert!(mr.is_gdr());
        assert!(t.check_remote(mr.rkey, dref(0x1000), 0x1000).is_ok());
        assert!(t.check_remote(mr.rkey, dref(0x1800), 0x800).is_ok());
        let e = t.check_remote(mr.rkey, dref(0x1800), 0x1000).unwrap_err();
        assert!(matches!(e, MrError::ProtectionFault { .. }));
        // below base
        assert!(t.check_remote(mr.rkey, dref(0xFFF), 8).is_err());
        // wrong space
        let h = MemRef::new(MemSpace::Host(ProcId(0)), 0x1000);
        assert!(t.check_remote(mr.rkey, h, 8).is_err());
    }

    #[test]
    fn unknown_rkey_rejected() {
        let t = MrTable::new();
        assert_eq!(
            t.check_remote(Rkey(42), dref(0), 8).unwrap_err(),
            MrError::InvalidRkey(Rkey(42))
        );
    }

    #[test]
    fn local_check_requires_ownership() {
        let t = MrTable::new();
        t.insert(ProcId(0), dref(0), 0x100);
        assert!(t.check_local(ProcId(0), dref(0x10), 8).is_ok());
        assert!(matches!(
            t.check_local(ProcId(1), dref(0x10), 8).unwrap_err(),
            MrError::NotRegistered { .. }
        ));
    }

    #[test]
    fn dereg_invalidates_keys() {
        let t = MrTable::new();
        let mr = t.insert(ProcId(0), dref(0), 0x100);
        t.dereg(&mr);
        assert!(t.check_remote(mr.rkey, dref(0), 8).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn overflow_access_rejected() {
        let t = MrTable::new();
        let mr = t.insert(ProcId(0), dref(0), 0x100);
        assert!(t.check_remote(mr.rkey, dref(u64::MAX - 4), 16).is_err());
    }
}
