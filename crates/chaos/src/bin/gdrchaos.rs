//! `gdrchaos` — CLI over the deterministic chaos-campaign engine.
//!
//! ```text
//! gdrchaos run --seed S --trials N [--out FILE] [--shrink] [--crash | --partition]
//! gdrchaos replay --plan "<grammar>" --workload W --trial N [--seed S]
//! gdrchaos fixture [--repro-out FILE] [--crash | --partition]
//! ```
//!
//! Exit codes:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | campaign/replay clean — no invariant violations |
//! | 2    | usage error or I/O failure |
//! | 3    | invariant violations found (for `fixture` this is the
//! |      | expected outcome: the known-bad plan must violate) |
//!
//! `run` prints the `gdrchaos-campaign-v1` summary on stdout — two runs
//! of the same seed are byte-identical, which CI `cmp`s; `--crash` adds
//! the fail-stop crash dimension to the generated plans and
//! `--partition` the network-partition dimension (both ride salted
//! draws, so fault-free trials stay byte-identical to the base
//! campaign). `replay` re-executes a single (possibly shrunk) plan and
//! prints the trial report; the plan it ran under goes to stderr.
//! `fixture` runs the committed known-bad plan under the strict
//! `no-partial-delivery` oracle (with `--crash`: the crashed-PE plan
//! under the strict `no-peer-dead` oracle; with `--partition`: the
//! split-PE plan under the strict `no-partitioned` oracle), shrinks the
//! violation, and writes the minimal-repro file.

use chaos::{
    run_campaign_mode, run_crash_fixture, run_fixture, run_partition_fixture, run_trial, shrink,
    render_repro,
};
use chaos::{CampaignFailure, CampaignMode, TrialSpec, Workload};
use faults::FaultPlan;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gdrchaos run --seed S --trials N [--out FILE] [--shrink] [--crash | --partition]\n\
         \x20      gdrchaos replay --plan \"<grammar>\" --workload W --trial N [--seed S]\n\
         \x20      gdrchaos fixture [--repro-out FILE] [--crash | --partition]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("fixture") => cmd_fixture(&args[1..]),
        _ => usage(),
    }
}

/// Pull the value after a `--flag`.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(seed) = opt(args, "--seed").and_then(|s| s.parse::<u64>().ok()) else {
        return usage();
    };
    let Some(trials) = opt(args, "--trials").and_then(|s| s.parse::<u64>().ok()) else {
        return usage();
    };
    let do_shrink = args.iter().any(|a| a == "--shrink");
    let crash = args.iter().any(|a| a == "--crash");
    let partition = args.iter().any(|a| a == "--partition");
    if crash && partition {
        return usage();
    }
    let mode = if crash {
        CampaignMode::Crash
    } else if partition {
        CampaignMode::Partition
    } else {
        CampaignMode::Base
    };
    let (summary, failures) = run_campaign_mode(seed, trials, mode);
    let mut out = summary.render();
    if do_shrink && !failures.is_empty() {
        // shrink the first few distinct failures to minimal repros
        out.push_str("minimal-repros:\n");
        for f in failures.iter().take(3) {
            let (minimal, probes) = shrink(f, false);
            out.push_str(&format!(
                "  trial {} [{}] ({} probes): {}\n",
                f.trial, f.oracle, probes, minimal
            ));
        }
    }
    print!("{out}");
    if let Some(path) = opt(args, "--out") {
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("gdrchaos: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if summary.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(grammar) = opt(args, "--plan") else {
        return usage();
    };
    let Some(workload) = opt(args, "--workload").and_then(|w| Workload::from_name(&w)) else {
        return usage();
    };
    let Some(trial) = opt(args, "--trial").and_then(|s| s.parse::<u64>().ok()) else {
        return usage();
    };
    let seed = opt(args, "--seed").and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    let plan = FaultPlan::parse(&grammar);
    eprintln!("gdrchaos: replaying plan: {plan}");
    let spec = TrialSpec {
        campaign_seed: seed,
        trial,
        workload,
        plan,
        strict_no_partial: false,
        strict_no_peer_dead: false,
        strict_no_partitioned: false,
    };
    let res = run_trial(&spec);
    print!("{}", res.report);
    for (oracle, detail) in &res.violations {
        println!("violation [{oracle}]: {detail}");
    }
    if res.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

fn cmd_fixture(args: &[String]) -> ExitCode {
    let crash = args.iter().any(|a| a == "--crash");
    let partition = args.iter().any(|a| a == "--partition");
    if crash && partition {
        return usage();
    }
    let fixture = if crash {
        run_crash_fixture()
    } else if partition {
        run_partition_fixture()
    } else {
        run_fixture()
    };
    match fixture {
        Some((failure, minimal, probes)) => {
            let CampaignFailure { oracle, detail, plan, .. } = &failure;
            println!("fixture: violation [{oracle}] under plan \"{plan}\": {detail}");
            println!("fixture: shrunk to \"{minimal}\" in {probes} probes");
            if let Some(path) = opt(args, "--repro-out") {
                let doc = render_repro(&failure, &minimal, probes);
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("gdrchaos: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            ExitCode::from(3)
        }
        None => {
            // the known-bad plan no longer violates: the fixture itself
            // regressed, which CI must notice (it asserts exit code 3)
            eprintln!("gdrchaos: fixture plan produced no violation — fixture is broken");
            ExitCode::SUCCESS
        }
    }
}
