//! # chaos — deterministic chaos-campaign engine
//!
//! PRs 3–5 hand-wrote one fault scenario at a time; this crate
//! *searches* the fault space. A campaign is a pure function of a
//! `(campaign_seed, trial)` pair: [`faults::FaultPlan::generate`]
//! enumerates a randomized plan per trial, [`run_trial`] executes one
//! workload from a fixed menu under that plan in virtual time, and a
//! registry of invariant oracles checks the result:
//!
//! - **byte-correctness** — destination memory matches a
//!   success-masked reference: bytes a successful op wrote must be
//!   there, bytes no op could have written must still be zero, bytes
//!   behind an uncertain outcome (`Timeout`, `PartialDelivery`) are
//!   don't-care.
//! - **no-hang** — the trial must terminate; a virtual-time deadlock
//!   or poisoned engine (caught panic) is a violation. The
//!   `RuntimeConfig::quiesce_ns` watchdog converts stuck waits into
//!   typed timeouts so this oracle sees an error value, not a panic.
//! - **staging-leak** — every PE's staging allocator drains back to
//!   zero once the trial quiesces.
//! - **breaker-recovery** — no health breaker is still demoted one
//!   cooldown past the end of the run: faults end, protocols come back.
//! - **counter-consistency** — the obs fault/retry tallies satisfy
//!   their internal arithmetic (recoveries never exceed retries,
//!   promotes never exceed demotes, recoveries imply injections).
//! - **replay-determinism** — re-running a trial reproduces a
//!   byte-identical trial report (the campaign spot-checks every 16th
//!   trial).
//! - **survivor-bytes** — the byte-correctness oracle of a crash trial:
//!   under a scheduled fail-stop (`crash=` dimension), *survivor*
//!   memory must still match the success-masked reference — a dead
//!   peer's typed `PeerDead` failures leave no bytes, in-flight ops at
//!   the crash instant complete, and sync failures caused purely by the
//!   crash do not relax the oracle (the membership layer keeps
//!   survivors deterministic).
//! - **view-convergence** — every survivor that observed a given PE's
//!   death reports the *same* eviction epoch, and that epoch matches
//!   the membership schedule; an undetectable crash (transparent blip)
//!   must never surface a `PeerDead` at a survivor.
//! - **split-brain** — the partition oracle: every typed `Partitioned`
//!   observation carries the fence epoch of a compiled split schedule
//!   and names a PE on the minority side, and a plan whose splits are
//!   all transparent blips surfaces no `Partitioned` at all. Combined
//!   with byte-correctness (a `Partitioned` op is *certain* — its
//!   bytes must never appear), this is the no-split-brain-writes
//!   guarantee.
//! - **quorum-progress** — during a quorum fence the majority side must
//!   keep operating: no majority-side PE may ever observe *itself* as
//!   the fenced party.
//! - **heal-convergence** — after the heal instant the fabric must be
//!   whole again: post-heal probe puts in both directions across the
//!   former split must not surface `Partitioned`.
//!
//! Any failing plan is handed to [`shrink`]: greedy delta-debugging
//! over a fixed candidate order (drop windows, halve/zero permilles,
//! clear capability-mask bits, reset scalars toward defaults) until no
//! candidate still reproduces the same oracle violation. The fixed
//! point is emitted as a `GDR_SHMEM_FAULTS` grammar line — the minimal
//! repro that `chaos_trace --plan` and `gdrchaos replay` re-execute
//! deterministically.

use faults::{mix, FaultPlan, LinkScope, LinkWindow, ProxyStall, GEN_HORIZON_NS};
use obs_analyze::{CampaignSummary, CampaignViolation};
use pcie_sim::{ClusterSpec, ProcId};
use shmem_gdr::{Design, Domain, Pe, RuntimeConfig, ShmemMachine, TransferError};
use std::collections::BTreeMap;

/// Cell granularity of the randomized-RMA workload.
const CELL: u64 = 32 << 10;
/// Cells per put/get region (each PE owns one region per domain).
const CELLS: u64 = 8;
/// Randomized ops per PE per trial.
const OPS: u64 = 8;
/// Pipelined-put transfer length (4 chunks at the tuned 512 KiB).
const PIPE_LEN: u64 = 2 << 20;
/// Tuned pipeline chunk size (mirrors `RuntimeConfig::tuned`).
const PIPE_CHUNK: u64 = 512 << 10;
/// Broadcast payload of the collectives workload.
const BCAST_LEN: u64 = 32 << 10;
/// Engine-level quiesce watchdog armed for every campaign trial: far
/// above any legitimate virtual-time wait of these workloads, so it
/// only fires on a genuinely stuck completion.
const QUIESCE_NS: u64 = 200_000_000;

/// Every oracle the campaign checks, for the summary header.
pub const ORACLES: [&str; 11] = [
    "breaker-recovery",
    "byte-correctness",
    "counter-consistency",
    "heal-convergence",
    "no-hang",
    "quorum-progress",
    "replay-determinism",
    "split-brain",
    "staging-leak",
    "survivor-bytes",
    "view-convergence",
];

/// The workload menu. One entry runs per trial, picked by seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Randomized put/get/atomic mix between two PEs over disjoint
    /// 32 KiB cells, host and GPU domains.
    RmaRandom,
    /// One large D-D put through the pipelined-GDR-write path (chunk
    /// retries, partial delivery).
    PipelineDd,
    /// Barrier / broadcast / barrier (sync-flag loss, collective
    /// replay).
    Collectives,
    /// Large gets served by the target side (proxy + host-staged
    /// paths; staging credits).
    ServeGet,
}

impl Workload {
    pub const ALL: [Workload; 4] = [
        Workload::RmaRandom,
        Workload::PipelineDd,
        Workload::Collectives,
        Workload::ServeGet,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Workload::RmaRandom => "rma-random",
            Workload::PipelineDd => "pipeline-dd",
            Workload::Collectives => "collectives",
            Workload::ServeGet => "serve-get",
        }
    }

    pub fn from_name(s: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }

    /// The trial's workload — pure in `(campaign_seed, trial)`.
    pub fn pick(campaign_seed: u64, trial: u64) -> Workload {
        Workload::ALL[(mix(campaign_seed, 0x574B_4C44, trial) % 4) as usize]
    }
}

/// What one operation did to destination memory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Completed; its bytes must be present.
    Ok,
    /// Completed but the data read back was wrong — a direct
    /// byte-correctness violation (unless the trial is relaxed by a
    /// broken barrier).
    Mismatch,
    /// Typed failure that left no bytes behind (retries exhausted,
    /// capability fault, registration error).
    Failed(&'static str),
    /// Timed out — bytes may still land later in virtual time.
    Timeout,
    /// Chunked transfer died mid-flight; delivered chunks are final.
    Partial { delivered: u64, total: u64 },
    /// The target (or the issuing PE itself) is fail-stopped: the
    /// membership layer evicted it at `epoch`. Certain — no bytes were
    /// delivered and none can land later. The carried epoch feeds the
    /// view-convergence oracle: every survivor must observe the same
    /// eviction epoch for the same dead PE.
    PeerDead { pe: u32, epoch: u64 },
    /// The target (or the issuing PE itself) sits on the fenced
    /// minority side of a network split at `epoch`. Certain like
    /// `PeerDead` — fenced ops fail before posting, so no bytes were
    /// delivered and none can land later. Feeds the split-brain and
    /// quorum-progress oracles.
    Partitioned { pe: u32, epoch: u64 },
}

impl Outcome {
    fn uncertain(&self) -> bool {
        matches!(self, Outcome::Timeout | Outcome::Partial { .. })
    }

    fn label(&self) -> String {
        match self {
            Outcome::Ok => "ok".into(),
            Outcome::Mismatch => "MISMATCH".into(),
            Outcome::Failed(k) => (*k).into(),
            Outcome::Timeout => "timeout".into(),
            Outcome::Partial { delivered, total } => format!("partial({delivered}/{total})"),
            Outcome::PeerDead { pe, epoch } => format!("peer-dead(pe{pe}@e{epoch})"),
            Outcome::Partitioned { pe, epoch } => format!("partitioned(pe{pe}@e{epoch})"),
        }
    }
}

fn classify(r: &Result<(), TransferError>) -> Outcome {
    match r {
        Ok(()) => Outcome::Ok,
        Err(TransferError::Timeout { .. }) => Outcome::Timeout,
        Err(TransferError::PartialDelivery { delivered, total }) => Outcome::Partial {
            delivered: *delivered,
            total: *total,
        },
        Err(TransferError::RetriesExhausted { .. }) => Outcome::Failed("retries-exhausted"),
        Err(TransferError::CapabilityDisabled { .. }) => Outcome::Failed("capability-disabled"),
        Err(TransferError::Mr(_)) => Outcome::Failed("mr-error"),
        Err(TransferError::PeerDead { pe, epoch }) => Outcome::PeerDead { pe: *pe, epoch: *epoch },
        Err(TransferError::Partitioned { pe, epoch }) => {
            Outcome::Partitioned { pe: *pe, epoch: *epoch }
        }
    }
}

/// A put's destination cell, for the success-masked reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct CellRef {
    /// 0 = host region, 1 = GPU region.
    dom: u8,
    cell: u64,
    len: u64,
}

/// One recorded operation of a trial.
#[derive(Clone, PartialEq, Debug)]
struct OpRec {
    pe: usize,
    desc: String,
    cell: Option<CellRef>,
    /// Value of an atomic fetch-add, for the counter reference.
    add: Option<u64>,
    /// True for barrier/broadcast sync ops: a failure here relaxes the
    /// byte oracle (cross-PE ordering is gone).
    sync: bool,
    outcome: Outcome,
}

/// Everything one PE hands back from a trial.
struct PeOut {
    ops: Vec<OpRec>,
    put_h: Vec<u8>,
    put_g: Vec<u8>,
    /// Workload-specific region (pipeline destination, broadcast data).
    extra: Vec<u8>,
    ctr: u64,
}

/// Payload byte a writer puts into `(dom, cell)` of its peer — a pure
/// function of the trial so replays and late deliveries are idempotent.
fn pat_put(trial: u64, writer: usize, dom: u8, cell: u64) -> u8 {
    (mix(trial ^ 0x5055_5400, ((writer as u64) << 8) | dom as u64, cell) & 0xff) as u8
}

/// Pattern byte the owner pre-fills `(dom, cell)` of its get region
/// with.
fn pat_get(trial: u64, owner: usize, dom: u8, cell: u64) -> u8 {
    (mix(trial ^ 0x4745_5400, ((owner as u64) << 8) | dom as u64, cell) & 0xff) as u8
}

/// Per-chunk payload byte of the pipelined put.
fn pat_chunk(trial: u64, chunk: u64) -> u8 {
    // 0 is the "never delivered" sentinel; keep payloads distinct from it
    ((mix(trial ^ 0x5049_5045, 0, chunk) & 0xff) as u8) | 1
}

/// Broadcast payload byte.
fn pat_bcast(trial: u64) -> u8 {
    ((mix(trial ^ 0x4243_5354, 0, 0) & 0xff) as u8) | 1
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn rec(
    pe: usize,
    desc: String,
    cell: Option<CellRef>,
    add: Option<u64>,
    sync: bool,
    outcome: Outcome,
) -> OpRec {
    OpRec { pe, desc, cell, add, sync, outcome }
}

fn bar(pe: &Pe, which: &str, ops: &mut Vec<OpRec>) {
    let out = classify(&pe.try_barrier_all());
    ops.push(rec(pe.my_pe(), format!("barrier-{which}"), None, None, true, out));
}

// ---------- workload bodies (run inside PE tasks) ----------

fn wl_rma_random(pe: &mut Pe, seed: u64, trial: u64) -> PeOut {
    let me = pe.my_pe();
    let peer = 1 - me;
    let put_h = pe.shmalloc(CELL * CELLS, Domain::Host);
    let put_g = pe.shmalloc(CELL * CELLS, Domain::Gpu);
    let get_h = pe.shmalloc(CELL * CELLS, Domain::Host);
    let get_g = pe.shmalloc(CELL * CELLS, Domain::Gpu);
    let ctr = pe.shmalloc(8, Domain::Host);
    // pre-fill my get regions with the owner pattern (local writes,
    // infallible, before any synchronization)
    for c in 0..CELLS {
        let h = vec![pat_get(trial, me, 0, c); CELL as usize];
        pe.write_raw(pe.addr_of(get_h, me).add(c * CELL), &h);
        let g = vec![pat_get(trial, me, 1, c); CELL as usize];
        pe.write_raw(pe.addr_of(get_g, me).add(c * CELL), &g);
    }
    let mut ops = Vec::new();
    bar(pe, "init", &mut ops);
    let src_h = pe.malloc_host(CELL);
    let src_g = pe.malloc_dev(CELL);
    let dst_h = pe.malloc_host(CELL);
    for i in 0..OPS {
        let r = mix(seed ^ 0x524D_4131, ((me as u64) << 32) | i, trial);
        let kind = r % 5;
        let cell = (r >> 8) % CELLS;
        let len = [512u64, 4096, CELL][((r >> 16) % 3) as usize];
        match kind {
            0 | 1 => {
                let dom = kind as u8;
                let payload = vec![pat_put(trial, me, dom, cell); len as usize];
                let (src, dest, name) = if dom == 0 {
                    (src_h, put_h, "put-h")
                } else {
                    (src_g, put_g, "put-g")
                };
                pe.write_raw(src, &payload);
                let res = pe.try_putmem(dest.add(cell * CELL), src, len, peer);
                ops.push(rec(
                    me,
                    format!("{name} cell{cell} len{len}"),
                    Some(CellRef { dom, cell, len }),
                    None,
                    false,
                    classify(&res),
                ));
            }
            2 | 3 => {
                let dom = (kind - 2) as u8;
                let (srcsym, name) = if dom == 0 { (get_h, "get-h") } else { (get_g, "get-g") };
                let res = pe.try_getmem(dst_h, srcsym.add(cell * CELL), len, peer);
                let mut out = classify(&res);
                if out == Outcome::Ok {
                    let want = pat_get(trial, peer, dom, cell);
                    let got = pe.read_raw(dst_h, len);
                    if !got.iter().all(|&b| b == want) {
                        out = Outcome::Mismatch;
                    }
                }
                ops.push(rec(me, format!("{name} cell{cell} len{len}"), None, None, false, out));
            }
            _ => {
                let v = (r >> 24) % 100 + 1;
                let res = pe.try_atomic_fetch_add(ctr, v, 1).map(|_| ());
                ops.push(rec(me, format!("add v{v}"), None, Some(v), false, classify(&res)));
            }
        }
    }
    pe.quiet();
    bar(pe, "fini", &mut ops);
    PeOut {
        ops,
        put_h: pe.read_raw(pe.addr_of(put_h, me), CELL * CELLS),
        put_g: pe.read_raw(pe.addr_of(put_g, me), CELL * CELLS),
        extra: Vec::new(),
        ctr: if me == 1 { pe.local_u64(ctr) } else { 0 },
    }
}

fn wl_pipeline_dd(pe: &mut Pe, _seed: u64, trial: u64) -> PeOut {
    let me = pe.my_pe();
    let ddest = pe.shmalloc(PIPE_LEN, Domain::Gpu);
    let mut ops = Vec::new();
    bar(pe, "init", &mut ops);
    if me == 0 {
        let dsrc = pe.malloc_dev(PIPE_LEN);
        let mut payload = vec![0u8; PIPE_LEN as usize];
        for (i, chunk) in payload.chunks_mut(PIPE_CHUNK as usize).enumerate() {
            chunk.fill(pat_chunk(trial, i as u64));
        }
        pe.write_raw(dsrc, &payload);
        let res = pe.try_putmem(ddest, dsrc, PIPE_LEN, 1);
        ops.push(rec(me, format!("pipe-put len{PIPE_LEN}"), None, None, false, classify(&res)));
        pe.quiet();
    }
    bar(pe, "fini", &mut ops);
    PeOut {
        ops,
        put_h: Vec::new(),
        put_g: Vec::new(),
        extra: if me == 1 {
            pe.read_raw(pe.addr_of(ddest, me), PIPE_LEN)
        } else {
            Vec::new()
        },
        ctr: 0,
    }
}

fn wl_collectives(pe: &mut Pe, _seed: u64, trial: u64) -> PeOut {
    let me = pe.my_pe();
    let data = pe.shmalloc(BCAST_LEN, Domain::Host);
    if me == 0 {
        pe.write_raw(pe.addr_of(data, me), &vec![pat_bcast(trial); BCAST_LEN as usize]);
    }
    let mut ops = Vec::new();
    bar(pe, "init", &mut ops);
    let out = classify(&pe.try_broadcast(data, BCAST_LEN, 0));
    ops.push(rec(me, format!("bcast len{BCAST_LEN}"), None, None, true, out));
    bar(pe, "fini", &mut ops);
    PeOut {
        ops,
        put_h: Vec::new(),
        put_g: Vec::new(),
        extra: pe.read_raw(pe.addr_of(data, me), BCAST_LEN),
        ctr: 0,
    }
}

fn wl_serve_get(pe: &mut Pe, _seed: u64, trial: u64) -> PeOut {
    let me = pe.my_pe();
    let gsrc = pe.shmalloc(1 << 20, Domain::Gpu);
    let hsrc = pe.shmalloc(256 << 10, Domain::Host);
    if me == 1 {
        pe.write_raw(pe.addr_of(gsrc, me), &vec![pat_get(trial, 1, 1, 0); 1 << 20]);
        pe.write_raw(pe.addr_of(hsrc, me), &vec![pat_get(trial, 1, 0, 0); 256 << 10]);
    }
    let mut ops = Vec::new();
    bar(pe, "init", &mut ops);
    if me == 0 {
        let dst = pe.malloc_host(1 << 20);
        // proxy-serviced (>= proxy_get_min), host-staged, and small-GDR
        // gets in one trial
        for (name, sym, dom, len) in [
            ("get-proxy", gsrc, 1u8, 768u64 << 10),
            ("get-host", hsrc, 0, 128 << 10),
            ("get-gdr", gsrc, 1, 64 << 10),
        ] {
            let res = pe.try_getmem(dst, sym, len, 1);
            let mut out = classify(&res);
            if out == Outcome::Ok {
                let want = pat_get(trial, 1, dom, 0);
                let got = pe.read_raw(dst, len);
                if !got.iter().all(|&b| b == want) {
                    out = Outcome::Mismatch;
                }
            }
            ops.push(rec(me, format!("{name} len{len}"), None, None, false, out));
        }
    }
    bar(pe, "fini", &mut ops);
    PeOut { ops, put_h: Vec::new(), put_g: Vec::new(), extra: Vec::new(), ctr: 0 }
}

// ---------- trial runner + oracles ----------

/// Fully specifies one trial; two runs of the same spec must produce
/// byte-identical [`TrialResult::report`]s.
#[derive(Clone, Copy, Debug)]
pub struct TrialSpec {
    pub campaign_seed: u64,
    pub trial: u64,
    pub workload: Workload,
    pub plan: FaultPlan,
    /// The fixture's deliberately re-introduced bug: treat any partial
    /// delivery as an invariant violation (`no-partial-delivery`).
    pub strict_no_partial: bool,
    /// The crash fixture's deliberately re-introduced bug: an app tier
    /// that treats any typed `PeerDead` as fatal (`no-peer-dead`).
    pub strict_no_peer_dead: bool,
    /// The partition fixture's deliberately re-introduced bug: an app
    /// tier that treats any typed `Partitioned` as fatal
    /// (`no-partitioned`).
    pub strict_no_partitioned: bool,
}

/// One trial's outcome: the deterministic report (replay identity) and
/// any oracle violations.
pub struct TrialResult {
    pub report: String,
    /// (oracle, detail) pairs, in oracle-registry order.
    pub violations: Vec<(String, String)>,
    pub fault_counters: BTreeMap<(String, String), u64>,
}

/// Run one workload under one plan in virtual time and evaluate every
/// oracle. Pure in `spec`: no wall-clock, no global state.
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    let TrialSpec {
        campaign_seed,
        trial,
        workload,
        plan,
        strict_no_partial,
        strict_no_peer_dead,
        strict_no_partitioned,
    } = *spec;
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
            .with_faults(plan)
            .with_quiesce_ns(QUIESCE_NS)
            // counters feed the counter-consistency oracle and the
            // campaign summary; keep spans off (trials are many)
            .with_obs(obs::ObsLevel::Counters);
        let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
        // a crash with a detectable rejoin (outage longer than the
        // detection bound) gets a lifecycle epilogue: the survivor waits
        // out the outage and probes the rejoined peer, driving the full
        // evict → rejoin → HalfOpen-probe → promote path inside campaign
        // trials (crash-free plans take the historic trajectory exactly)
        let rejoin_crash = plan
            .crashes()
            .iter()
            .copied()
            .find(|c| c.rejoin_ns != 0 && c.rejoin_ns > c.at_ns + shmem_gdr::DETECT_BOUND_NS);
        // a fence-worthy split gets the analogous lifecycle epilogue:
        // once the heal instant passes, every PE probes across the
        // former split in both directions — the heal-convergence oracle
        // flags any probe that still surfaces a typed Partitioned
        // (partition-free plans take the historic trajectory exactly)
        let heal_split = if plan.n_partitions > 0 {
            shmem_gdr::Membership::new(&plan, 2).split_schedules().first().copied()
        } else {
            None
        };
        let outs = m.run(move |pe| {
            let probe_sym = rejoin_crash.map(|_| pe.shmalloc(64, Domain::Host));
            let heal_sym = heal_split.map(|_| pe.shmalloc(64, Domain::Host));
            let mut out = match workload {
                Workload::RmaRandom => wl_rma_random(pe, campaign_seed, trial),
                Workload::PipelineDd => wl_pipeline_dd(pe, campaign_seed, trial),
                Workload::Collectives => wl_collectives(pe, campaign_seed, trial),
                Workload::ServeGet => wl_serve_get(pe, campaign_seed, trial),
            };
            if let (Some(c), Some(sym)) = (rejoin_crash, probe_sym) {
                let me = pe.my_pe();
                if me != c.pe as usize {
                    let now_ns = pe.now().0 / sim_core::PS_PER_NS;
                    if now_ns <= c.rejoin_ns {
                        pe.compute(shmem_gdr::SimDuration::from_ns(c.rejoin_ns - now_ns + 1));
                    }
                    let src = pe.malloc_host(64);
                    let res = pe.try_putmem(sym, src, 64, c.pe as usize);
                    out.ops.push(rec(me, "rejoin-probe len64".into(), None, None, false, classify(&res)));
                }
            }
            if let (Some(s), Some(sym)) = (heal_split, heal_sym) {
                let me = pe.my_pe();
                let now_ns = pe.now().0 / sim_core::PS_PER_NS;
                if now_ns <= s.heal_ns {
                    pe.compute(shmem_gdr::SimDuration::from_ns(s.heal_ns - now_ns + 1));
                }
                let src = pe.malloc_host(64);
                let res = pe.try_putmem(sym, src, 64, 1 - me);
                out.ops.push(rec(me, "heal-probe len64".into(), None, None, false, classify(&res)));
            }
            out
        });
        (m, outs)
    }));

    let mut violations: Vec<(String, String)> = Vec::new();
    let mut report = format!("trial {trial} workload={} plan=\"{plan}\"\n", workload.name());
    let mut fault_counters = BTreeMap::new();

    let (m, outs) = match run {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            // keep only the first line: engine dumps embed task lists
            let msg = msg.lines().next().unwrap_or("").to_string();
            violations.push(("no-hang".into(), format!("trial panicked: {msg}")));
            report.push_str(&format!("  PANIC: {msg}\n"));
            return TrialResult { report, violations, fault_counters };
        }
    };

    // ---- deterministic trial report ----
    for out in &outs {
        for op in &out.ops {
            report.push_str(&format!("  pe{} {}: {}\n", op.pe, op.desc, op.outcome.label()));
        }
    }
    let now_ns = m.sim().now().0 / sim_core::PS_PER_NS;
    report.push_str(&format!("  final-now-ns={now_ns}\n"));
    for out in &outs {
        let mut all = Vec::new();
        all.extend_from_slice(&out.put_h);
        all.extend_from_slice(&out.put_g);
        all.extend_from_slice(&out.extra);
        report.push_str(&format!("  mem-hash={:#018x} ctr={}\n", fnv(&all), out.ctr));
    }
    for ((what, proto), n) in m.obs().fault_counters() {
        report.push_str(&format!("  counter {what}/{proto}={n}\n"));
        *fault_counters.entry((what.to_string(), proto.to_string())).or_insert(0) += n;
    }

    // ---- oracles ----
    // Sync failures relax the byte oracle (cross-PE ordering is gone) —
    // except typed PeerDead and Partitioned, whose membership semantics
    // keep the other side deterministic (crash trials lean on this for
    // survivor memory; partition trials lean on it because every op a
    // fence rejects fails *before* posting, so both sides' snapshots
    // stay checkable even though the fenced side's sync ops failed).
    let relaxed = outs.iter().flat_map(|o| &o.ops).any(|op| {
        op.sync
            && op.outcome != Outcome::Ok
            && !matches!(op.outcome, Outcome::PeerDead { .. } | Outcome::Partitioned { .. })
    });

    // breaker-recovery: one cooldown past the end of the run, nothing
    // may still be demoted
    let probe_ns = now_ns.max(GEN_HORIZON_NS) + plan.health_cooldown_ns + 1;
    let demoted = m.demoted_protocols_at(probe_ns);
    if !demoted.is_empty() {
        let list: Vec<String> = demoted
            .iter()
            .map(|(n, p)| format!("node{n}/{}", p.name()))
            .collect();
        violations.push((
            "breaker-recovery".into(),
            format!(
                "still demoted at t={probe_ns}: {} ({})",
                list.join(", "),
                m.breaker_states().join("; ")
            ),
        ));
    }

    // staging-leak: every credit returned after quiesce
    for pe in 0..2u32 {
        let in_use = m.staging_in_use(ProcId(pe));
        if in_use != 0 {
            violations.push((
                "staging-leak".into(),
                format!("pe{pe} still holds {in_use} staging bytes after quiesce"),
            ));
        }
    }

    // counter-consistency
    let c = |what: &str, proto: &str| *fault_counters.get(&(what.into(), proto.into())).unwrap_or(&0);
    let protos: std::collections::BTreeSet<String> =
        fault_counters.keys().map(|(_, p)| p.clone()).collect();
    for p in &protos {
        let retried = c("retried", p) + c("chunk-retried", p);
        if c("recovered", p) > retried {
            violations.push((
                "counter-consistency".into(),
                format!("{p}: recovered {} > retried {retried}", c("recovered", p)),
            ));
        }
        if c("recovered", p) > 0 && c("injected", p) == 0 {
            violations.push((
                "counter-consistency".into(),
                format!("{p}: recoveries without injected faults"),
            ));
        }
        if c("promote", p) > c("demote", p) {
            violations.push((
                "counter-consistency".into(),
                format!("{p}: promote {} > demote {}", c("promote", p), c("demote", p)),
            ));
        }
    }

    // byte-correctness (success-masked reference); on crash trials the
    // same checks run under the survivor-bytes oracle name against the
    // survivors' memory only — a detectably-crashed PE's own snapshot
    // is don't-care (it may have died mid-receive, and fail-stop makes
    // no promises about a dead process's address space)
    let byte_oracle_name = if plan.n_crashes > 0 { "survivor-bytes" } else { "byte-correctness" };
    let dead_pes: u64 = if plan.n_crashes > 0 {
        let ms = shmem_gdr::Membership::new(&plan, 2);
        (0..2u32).filter(|&pe| ms.detect_ns(pe).is_some()).map(|pe| 1u64 << pe).sum()
    } else {
        0
    };
    if !relaxed {
        byte_oracle(&outs, workload, trial, byte_oracle_name, dead_pes, &mut violations);
    } else {
        report.push_str("  byte-oracle: relaxed (sync op failed)\n");
    }

    // view-convergence: all survivor-side PeerDead observations of one
    // PE must carry the same eviction epoch, and it must match the
    // membership schedule; a transparent blip must surface nothing.
    // (Self-reports are skipped: a dead PE's own failures legitimately
    // carry the epoch at issue time, not its eviction epoch.)
    if plan.n_crashes > 0 {
        let ms = shmem_gdr::Membership::new(&plan, 2);
        let mut observed: BTreeMap<u32, std::collections::BTreeSet<u64>> = BTreeMap::new();
        for out in &outs {
            for op in &out.ops {
                if let Outcome::PeerDead { pe, epoch } = op.outcome {
                    if op.pe as u32 != pe {
                        observed.entry(pe).or_default().insert(epoch);
                    }
                }
            }
        }
        for (pe, epochs) in &observed {
            match ms.eviction_epoch(*pe) {
                None => violations.push((
                    "view-convergence".into(),
                    format!("pe{pe}: PeerDead observed for an undetectable crash (blip)"),
                )),
                Some(expect) => {
                    if epochs.len() > 1 || !epochs.contains(&expect) {
                        violations.push((
                            "view-convergence".into(),
                            format!("pe{pe}: observed epochs {epochs:?}, schedule says {expect}"),
                        ));
                    }
                }
            }
        }
    }

    // split-brain / quorum-progress / heal-convergence: every typed
    // Partitioned observation must match a compiled fence schedule and
    // name a minority-side PE (blip-only and cut-only plans surface
    // none); a majority-side PE must never observe *itself* fenced; and
    // the post-heal probes must not still be fenced.
    if plan.n_partitions > 0 {
        let ms = shmem_gdr::Membership::new(&plan, 2);
        let scheds = ms.split_schedules();
        for out in &outs {
            for op in &out.ops {
                let Outcome::Partitioned { pe, epoch } = op.outcome else { continue };
                let Some(s) = scheds.iter().find(|s| s.fence_epoch == epoch) else {
                    violations.push((
                        "split-brain".into(),
                        format!(
                            "pe{} {}: partitioned(pe{pe}@e{epoch}) matches no fence schedule",
                            op.pe, op.desc
                        ),
                    ));
                    continue;
                };
                if s.minority & (1u64 << pe) == 0 {
                    violations.push((
                        "split-brain".into(),
                        format!(
                            "pe{} {}: partitioned names pe{pe}, not on the minority side \
                             (mask {:#b})",
                            op.pe, op.desc, s.minority
                        ),
                    ));
                    if op.pe as u32 == pe {
                        violations.push((
                            "quorum-progress".into(),
                            format!(
                                "pe{}: majority-side PE observed itself fenced at e{epoch}",
                                op.pe
                            ),
                        ));
                    }
                }
                if op.desc.starts_with("heal-probe") {
                    violations.push((
                        "heal-convergence".into(),
                        format!(
                            "pe{} heal-probe still fenced after the heal instant \
                             (partitioned(pe{pe}@e{epoch}))",
                            op.pe
                        ),
                    ));
                }
            }
        }
    }

    if strict_no_partial {
        for out in &outs {
            for op in &out.ops {
                if let Outcome::Partial { delivered, total } = op.outcome {
                    violations.push((
                        "no-partial-delivery".into(),
                        format!("pe{} {} delivered only {delivered} of {total}", op.pe, op.desc),
                    ));
                }
            }
        }
    }

    if strict_no_peer_dead {
        for out in &outs {
            for op in &out.ops {
                if let Outcome::PeerDead { pe, epoch } = op.outcome {
                    violations.push((
                        "no-peer-dead".into(),
                        format!("pe{} {}: peer-dead(pe{pe}@e{epoch})", op.pe, op.desc),
                    ));
                }
            }
        }
    }

    if strict_no_partitioned {
        for out in &outs {
            for op in &out.ops {
                if let Outcome::Partitioned { pe, epoch } = op.outcome {
                    violations.push((
                        "no-partitioned".into(),
                        format!("pe{} {}: partitioned(pe{pe}@e{epoch})", op.pe, op.desc),
                    ));
                }
            }
        }
    }

    TrialResult { report, violations, fault_counters }
}

/// The success-masked byte reference for each workload. Reported under
/// `oracle` — `byte-correctness` normally, `survivor-bytes` on crash
/// trials (same checks, restricted to survivor-visible memory:
/// `dead_pes` is the bitmask of detectably-crashed PEs, whose own
/// memory snapshots are excluded from every check).
fn byte_oracle(
    outs: &[PeOut],
    workload: Workload,
    trial: u64,
    oracle: &str,
    dead_pes: u64,
    violations: &mut Vec<(String, String)>,
) {
    let mut fail = |detail: String| violations.push((oracle.to_string(), detail));
    // inline get mismatches are violations for every workload
    for out in outs {
        for op in &out.ops {
            if op.outcome == Outcome::Mismatch {
                fail(format!("pe{} {}: readback mismatch", op.pe, op.desc));
            }
        }
    }
    match workload {
        Workload::RmaRandom => {
            for target in 0..2usize {
                if dead_pes & (1 << target) != 0 {
                    continue;
                }
                let writer = 1 - target;
                // a dead writer's completion claims lost their
                // synchronization point (the survivor snapshots without
                // barriering with it), so only the zero-fill bound
                // below stays checkable against this target
                let writer_dead = dead_pes & (1 << writer) != 0;
                for dom in 0..2u8 {
                    let bytes = if dom == 0 { &outs[target].put_h } else { &outs[target].put_g };
                    for cell in 0..CELLS {
                        let mut ok_len = 0u64;
                        let mut unc_len = 0u64;
                        for op in &outs[writer].ops {
                            let Some(cr) = op.cell else { continue };
                            if cr.dom != dom || cr.cell != cell {
                                continue;
                            }
                            match op.outcome {
                                Outcome::Ok => ok_len = ok_len.max(cr.len),
                                ref o if o.uncertain() => unc_len = unc_len.max(cr.len),
                                _ => {}
                            }
                        }
                        let pat = pat_put(trial, writer, dom, cell);
                        let base = (cell * CELL) as usize;
                        let slice = &bytes[base..base + CELL as usize];
                        if !writer_dead && slice[..ok_len as usize].iter().any(|&b| b != pat) {
                            fail(format!(
                                "pe{target} dom{dom} cell{cell}: delivered prefix ({ok_len}B) \
                                 corrupted (want {pat:#04x})"
                            ));
                        }
                        let zero_from = ok_len.max(unc_len) as usize;
                        if slice[zero_from..].iter().any(|&b| b != 0) {
                            fail(format!(
                                "pe{target} dom{dom} cell{cell}: bytes past {zero_from} written \
                                 by no successful op"
                            ));
                        }
                    }
                }
            }
            // atomic counter: sum of successful adds, unless any add is
            // uncertain (a timed-out add may still land)
            let mut sum = 0u64;
            let mut uncertain = false;
            for out in outs {
                for op in &out.ops {
                    let Some(v) = op.add else { continue };
                    match op.outcome {
                        Outcome::Ok => sum += v,
                        ref o if o.uncertain() => uncertain = true,
                        _ => {}
                    }
                }
            }
            if !uncertain && dead_pes == 0 && outs[1].ctr != sum {
                fail(format!("atomic counter: have {} want {sum}", outs[1].ctr));
            }
        }
        Workload::PipelineDd => {
            if dead_pes & 0b10 != 0 {
                // the receiver fail-stopped: its snapshot is don't-care
                return;
            }
            // a dead sender's Ok/Partial claims lost their sync point
            // (the survivor snapshots before the in-flight tail lands);
            // chunk atomicity stays checkable either way. A quorum
            // fence mid-trial severs the same sync point: the
            // receiver's fini barrier fails typed `Partitioned`, so it
            // snapshots before the pre-fence tail lands
            let sender_dead = dead_pes & 0b01 != 0;
            let sync_lost = outs[1]
                .ops
                .iter()
                .any(|o| o.sync && matches!(o.outcome, Outcome::Partitioned { .. }));
            let bytes = &outs[1].extra;
            let op = outs[0].ops.iter().find(|o| o.cell.is_none() && !o.sync);
            let Some(op) = op else { return };
            let mut delivered_bytes = 0u64;
            for (i, chunk) in bytes.chunks(PIPE_CHUNK as usize).enumerate() {
                let pat = pat_chunk(trial, i as u64);
                let full = chunk.iter().all(|&b| b == pat);
                let empty = chunk.iter().all(|&b| b == 0);
                if full {
                    delivered_bytes += chunk.len() as u64;
                }
                if !full && !empty {
                    fail(format!("chunk {i}: torn (neither all-{pat:#04x} nor all-zero)"));
                }
                if !sender_dead && !sync_lost && op.outcome == Outcome::Ok && !full {
                    fail(format!("chunk {i}: op reported ok but chunk not delivered"));
                }
            }
            if let Outcome::Partial { delivered, total } = op.outcome {
                if !sender_dead && !sync_lost && (delivered != delivered_bytes || total != PIPE_LEN)
                {
                    fail(format!(
                        "partial accounting: typed {delivered}/{total}, \
                         memory shows {delivered_bytes}/{PIPE_LEN}"
                    ));
                }
            }
        }
        Workload::Collectives => {
            // every PE whose broadcast reported Ok must hold the root's
            // payload (on crash trials a PE with a typed PeerDead
            // broadcast is don't-care: it was dead or evicted)
            let pat = pat_bcast(trial);
            for (pe, out) in outs.iter().enumerate() {
                if dead_pes & (1 << pe) != 0 {
                    continue;
                }
                let bcast_ok = out
                    .ops
                    .iter()
                    .any(|o| o.desc.starts_with("bcast") && o.outcome == Outcome::Ok);
                if bcast_ok && out.extra.iter().any(|&b| b != pat) {
                    fail(format!("pe{pe}: broadcast payload wrong (want {pat:#04x})"));
                }
            }
        }
        Workload::ServeGet => {} // inline mismatch checks only
    }
}

// ---------- campaign ----------

/// A violation plus the context needed to shrink it.
pub struct CampaignFailure {
    /// The campaign seed is part of the failure's identity — it feeds
    /// the workload's op mix.
    pub campaign_seed: u64,
    pub trial: u64,
    pub workload: Workload,
    pub plan: FaultPlan,
    pub oracle: String,
    pub detail: String,
}

/// Which generator stream a campaign draws each trial's plan from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CampaignMode {
    /// [`FaultPlan::generate`] — the historic fault dimensions only.
    Base,
    /// [`FaultPlan::generate_with_crashes`] — adds the `crash=`
    /// dimension (fail-stop + rejoin).
    Crash,
    /// [`FaultPlan::generate_with_partitions`] — adds the `partition=`
    /// dimension (quorum-fenced splits and asymmetric cuts), exercising
    /// the split-brain, quorum-progress, and heal-convergence oracles.
    Partition,
}

/// Run `trials` trials under `campaign_seed`. Byte-identical summaries
/// across runs of the same seed; `violations: 0` is the CI gate.
pub fn run_campaign(campaign_seed: u64, trials: u64) -> (CampaignSummary, Vec<CampaignFailure>) {
    run_campaign_with(campaign_seed, trials, false)
}

/// [`run_campaign`] with the crash dimension switchable: `crash = true`
/// draws each trial's plan from [`FaultPlan::generate_with_crashes`]
/// (roughly every third trial fail-stops a PE mid-run and rejoins it
/// before the generation horizon), exercising the survivor-bytes and
/// view-convergence oracles. The crash draws ride on fresh generator
/// streams, so `crash = false` campaigns keep their historic
/// byte-identical trajectories.
pub fn run_campaign_with(
    campaign_seed: u64,
    trials: u64,
    crash: bool,
) -> (CampaignSummary, Vec<CampaignFailure>) {
    run_campaign_mode(campaign_seed, trials, if crash { CampaignMode::Crash } else { CampaignMode::Base })
}

/// [`run_campaign`] over an explicit generator stream. Each mode's
/// extra draws ride on fresh generator salts, so every mode keeps its
/// own byte-identical trajectory and `Base` keeps the historic one.
pub fn run_campaign_mode(
    campaign_seed: u64,
    trials: u64,
    mode: CampaignMode,
) -> (CampaignSummary, Vec<CampaignFailure>) {
    let _quiet = QuietPanics::arm();
    let mut summary = CampaignSummary {
        campaign_seed,
        trials,
        oracles: ORACLES.iter().map(|s| s.to_string()).collect(),
        ..Default::default()
    };
    let mut failures = Vec::new();
    for trial in 0..trials {
        let plan = match mode {
            CampaignMode::Base => FaultPlan::generate(campaign_seed, trial),
            CampaignMode::Crash => FaultPlan::generate_with_crashes(campaign_seed, trial),
            CampaignMode::Partition => FaultPlan::generate_with_partitions(campaign_seed, trial),
        };
        let workload = Workload::pick(campaign_seed, trial);
        let spec = TrialSpec {
            campaign_seed,
            trial,
            workload,
            plan,
            strict_no_partial: false,
            strict_no_peer_dead: false,
            strict_no_partitioned: false,
        };
        let res = run_trial(&spec);
        *summary.workloads.entry(workload.name().to_string()).or_insert(0) += 1;
        for (k, n) in &res.fault_counters {
            *summary.fault_counters.entry(k.clone()).or_insert(0) += n;
        }
        let mut violations = res.violations;
        // replay-determinism spot check: every 16th trial runs twice
        if trial % 16 == 0 {
            let again = run_trial(&spec);
            if again.report != res.report {
                violations.push((
                    "replay-determinism".into(),
                    "re-running the trial produced a different report".into(),
                ));
            }
        }
        for (oracle, detail) in violations {
            summary.violations.push(CampaignViolation {
                trial,
                oracle: oracle.clone(),
                plan: plan.to_string(),
                detail: detail.clone(),
            });
            failures.push(CampaignFailure { campaign_seed, trial, workload, plan, oracle, detail });
        }
    }
    (summary, failures)
}

/// Suppress panic backtraces while trials intentionally catch engine
/// panics; restores the previous hook on drop.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct QuietPanics {
    prev: Option<PanicHook>,
}

impl QuietPanics {
    fn arm() -> QuietPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

// ---------- shrinking ----------

fn drop_link(p: &FaultPlan, i: usize) -> FaultPlan {
    let mut q = *p;
    let n = q.n_link_windows as usize;
    for j in i..n - 1 {
        q.link_windows[j] = q.link_windows[j + 1];
    }
    q.n_link_windows -= 1;
    q.link_windows[q.n_link_windows as usize] = Default::default();
    q
}

fn drop_stall(p: &FaultPlan, i: usize) -> FaultPlan {
    let mut q = *p;
    let n = q.n_proxy_stalls as usize;
    for j in i..n - 1 {
        q.proxy_stalls[j] = q.proxy_stalls[j + 1];
    }
    q.n_proxy_stalls -= 1;
    q.proxy_stalls[q.n_proxy_stalls as usize] = Default::default();
    q
}

fn drop_burst(p: &FaultPlan, i: usize) -> FaultPlan {
    let mut q = *p;
    let n = q.n_burst_windows as usize;
    for j in i..n - 1 {
        q.burst_windows[j] = q.burst_windows[j + 1];
    }
    q.n_burst_windows -= 1;
    q.burst_windows[q.n_burst_windows as usize] = Default::default();
    q
}

fn drop_crash(p: &FaultPlan, i: usize) -> FaultPlan {
    let mut q = *p;
    let n = q.n_crashes as usize;
    for j in i..n - 1 {
        q.crashes[j] = q.crashes[j + 1];
    }
    q.n_crashes -= 1;
    q.crashes[q.n_crashes as usize] = Default::default();
    q
}

fn drop_partition(p: &FaultPlan, i: usize) -> FaultPlan {
    let mut q = *p;
    let n = q.n_partitions as usize;
    for j in i..n - 1 {
        q.partitions[j] = q.partitions[j + 1];
    }
    q.n_partitions -= 1;
    q.partitions[q.n_partitions as usize] = Default::default();
    q
}

/// Simplification candidates of `p`, most aggressive first, in a fixed
/// deterministic order.
fn candidates(p: &FaultPlan) -> Vec<FaultPlan> {
    let d = FaultPlan::default();
    let mut out = Vec::new();
    for i in 0..p.n_link_windows as usize {
        out.push(drop_link(p, i));
    }
    for i in 0..p.n_proxy_stalls as usize {
        out.push(drop_stall(p, i));
    }
    for i in 0..p.n_burst_windows as usize {
        out.push(drop_burst(p, i));
    }
    for i in 0..p.n_crashes as usize {
        out.push(drop_crash(p, i));
    }
    for i in 0..p.n_partitions as usize {
        out.push(drop_partition(p, i));
    }
    if p.cqe_permille > 0 {
        let mut q = *p;
        q.cqe_permille = 0;
        out.push(q);
        if p.cqe_permille >= 2 {
            let mut q = *p;
            q.cqe_permille = p.cqe_permille / 2;
            out.push(q);
        }
    }
    if p.late_permille > 0 {
        let mut q = *p;
        q.late_permille = 0;
        q.late_extra_ns = d.late_extra_ns;
        out.push(q);
        if p.late_permille >= 2 {
            let mut q = *p;
            q.late_permille = p.late_permille / 2;
            out.push(q);
        }
    }
    for bit in 0..64 {
        if p.gdr_disabled_nodes & (1 << bit) != 0 {
            let mut q = *p;
            q.gdr_disabled_nodes &= !(1 << bit);
            out.push(q);
        }
    }
    if p.op_timeout_ns != 0 {
        let mut q = *p;
        q.op_timeout_ns = 0;
        out.push(q);
    }
    if (p.max_retries, p.backoff_base_ns, p.backoff_cap_ns)
        != (d.max_retries, d.backoff_base_ns, d.backoff_cap_ns)
    {
        let mut q = *p;
        q.max_retries = d.max_retries;
        q.backoff_base_ns = d.backoff_base_ns;
        q.backoff_cap_ns = d.backoff_cap_ns;
        out.push(q);
    }
    if p.cqe_detect_ns != d.cqe_detect_ns {
        let mut q = *p;
        q.cqe_detect_ns = d.cqe_detect_ns;
        out.push(q);
    }
    if (p.health_window_ns, p.health_threshold, p.health_cooldown_ns)
        != (d.health_window_ns, d.health_threshold, d.health_cooldown_ns)
    {
        let mut q = *p;
        q.health_window_ns = d.health_window_ns;
        q.health_threshold = d.health_threshold;
        q.health_cooldown_ns = d.health_cooldown_ns;
        out.push(q);
    }
    out
}

/// Greedy delta-debugging: repeatedly adopt the first candidate
/// simplification that still reproduces `oracle` on the same
/// `(workload, trial)`, until none does. Deterministic: candidate order
/// is fixed and every probe run is a pure virtual-time replay. Returns
/// the minimal plan (every remaining element is load-bearing).
pub fn shrink(failure: &CampaignFailure, strict_no_partial: bool) -> (FaultPlan, u64) {
    let _quiet = QuietPanics::arm();
    // re-arm the app-tier strictness that surfaced the target oracle so
    // every probe replay can reproduce it
    let strict_no_peer_dead = failure.oracle == "no-peer-dead";
    let strict_no_partitioned = failure.oracle == "no-partitioned";
    let reproduces = |plan: FaultPlan| {
        let spec = TrialSpec {
            campaign_seed: failure.campaign_seed,
            trial: failure.trial,
            workload: failure.workload,
            plan,
            strict_no_partial,
            strict_no_peer_dead,
            strict_no_partitioned,
        };
        run_trial(&spec).violations.iter().any(|(o, _)| *o == failure.oracle)
    };
    let mut plan = failure.plan;
    let mut probes = 0u64;
    'outer: loop {
        for cand in candidates(&plan) {
            probes += 1;
            if reproduces(cand) {
                plan = cand;
                continue 'outer;
            }
        }
        return (plan, probes);
    }
}

// ---------- fixture (the deliberately re-introduced bug) ----------

/// Campaign seed of the fixture run (feeds the workload op mix).
pub const FIXTURE_SEED: u64 = 99;

/// The known-bad plan: heavy chunk-post CQE stream with a retry budget
/// of one — deterministically produces a partial delivery on the
/// pipelined D-D put, which the fixture's strict `no-partial-delivery`
/// oracle (the modeled re-introduced bug) reports as a violation.
pub fn fixture_plan() -> FaultPlan {
    // the violation needs only cqe=450 + retries=1; everything else is
    // deliberate noise the shrinker must strip to reach the minimal repro
    FaultPlan::default()
        .with_seed(1)
        .with_cqe_errors(450)
        .with_retry(1, 2_000, 64_000)
        .with_late_completions(80, 15_000)
        .with_link_window(LinkWindow {
            scope: LinkScope::HcaTx,
            index: 0,
            start_ns: 400_000,
            end_ns: 900_000,
            bw_permille: 500,
        })
        .with_proxy_stall(ProxyStall {
            node: 1,
            start_ns: 1_000_000,
            end_ns: 1_200_000,
            extra_ns: 30_000,
        })
        .with_burst_window(600_000, 700_000)
        .with_health(120_000, 3, 250_000)
}

/// Run the fixture: report the violation and shrink it to the minimal
/// repro. Returns `None` if the fixture plan no longer violates (the
/// "bug" is gone — CI fails loudly on that, the fixture must stay bad).
pub fn run_fixture() -> Option<(CampaignFailure, FaultPlan, u64)> {
    let spec = TrialSpec {
        campaign_seed: FIXTURE_SEED,
        trial: 0,
        workload: Workload::PipelineDd,
        plan: fixture_plan(),
        strict_no_partial: true,
        strict_no_peer_dead: false,
        strict_no_partitioned: false,
    };
    let res = {
        let _quiet = QuietPanics::arm();
        run_trial(&spec)
    };
    let (oracle, detail) =
        res.violations.iter().find(|(o, _)| o == "no-partial-delivery")?.clone();
    let failure = CampaignFailure {
        campaign_seed: FIXTURE_SEED,
        trial: 0,
        workload: Workload::PipelineDd,
        plan: fixture_plan(),
        oracle,
        detail,
    };
    let (minimal, probes) = shrink(&failure, true);
    Some((failure, minimal, probes))
}

/// The known-bad crash plan: PE 1 dies at 20 µs and rejoins at 1.2 ms,
/// buried under deliberate noise dimensions. Paired with an app tier
/// that treats any typed [`TransferError::PeerDead`] as fatal (the
/// modeled re-introduced bug, oracle `no-peer-dead`), the crash is the
/// only load-bearing dimension and the shrinker must strip the rest.
pub fn crash_fixture_plan() -> FaultPlan {
    FaultPlan::default()
        .with_seed(1)
        .with_crash(1, 20_000, 1_200_000)
        .with_late_completions(80, 15_000)
        .with_link_window(LinkWindow {
            scope: LinkScope::HcaTx,
            index: 0,
            start_ns: 400_000,
            end_ns: 900_000,
            bw_permille: 500,
        })
        .with_proxy_stall(ProxyStall {
            node: 1,
            start_ns: 1_000_000,
            end_ns: 1_200_000,
            extra_ns: 30_000,
        })
        .with_burst_window(600_000, 700_000)
        .with_health(120_000, 3, 250_000)
}

/// Run the crash fixture: surface the `no-peer-dead` violation (an app
/// tier with no fail-stop handling) and shrink it to the minimal
/// `crash=` repro. Returns `None` if the fixture no longer violates.
pub fn run_crash_fixture() -> Option<(CampaignFailure, FaultPlan, u64)> {
    let spec = TrialSpec {
        campaign_seed: FIXTURE_SEED,
        trial: 0,
        workload: Workload::RmaRandom,
        plan: crash_fixture_plan(),
        strict_no_partial: false,
        strict_no_peer_dead: true,
        strict_no_partitioned: false,
    };
    let res = {
        let _quiet = QuietPanics::arm();
        run_trial(&spec)
    };
    let (oracle, detail) = res.violations.iter().find(|(o, _)| o == "no-peer-dead")?.clone();
    let failure = CampaignFailure {
        campaign_seed: FIXTURE_SEED,
        trial: 0,
        workload: Workload::RmaRandom,
        plan: crash_fixture_plan(),
        oracle,
        detail,
    };
    let (minimal, probes) = shrink(&failure, false);
    Some((failure, minimal, probes))
}

/// The known-bad partition plan: a split that severs PE 1 from 20 µs
/// until 1.2 ms (fence at 170 µs once the detection bound elapses, heal
/// at 1.25 ms), buried under the same deliberate noise dimensions as
/// the crash fixture. Paired with an app tier that treats any typed
/// [`TransferError::Partitioned`] as fatal (the modeled re-introduced
/// bug, oracle `no-partitioned`), the split is the only load-bearing
/// dimension and the shrinker must strip the rest.
pub fn partition_fixture_plan() -> FaultPlan {
    FaultPlan::default()
        .with_seed(1)
        .with_partition_split(0b10, 20_000, 1_200_000)
        .with_late_completions(80, 15_000)
        .with_link_window(LinkWindow {
            scope: LinkScope::HcaTx,
            index: 0,
            start_ns: 400_000,
            end_ns: 900_000,
            bw_permille: 500,
        })
        .with_proxy_stall(ProxyStall {
            node: 1,
            start_ns: 1_000_000,
            end_ns: 1_200_000,
            extra_ns: 30_000,
        })
        .with_burst_window(600_000, 700_000)
        .with_health(120_000, 3, 250_000)
}

/// Run the partition fixture: surface the `no-partitioned` violation
/// (an app tier with no quorum-fence handling) and shrink it to the
/// minimal `partition=` repro. Returns `None` if the fixture no longer
/// violates.
pub fn run_partition_fixture() -> Option<(CampaignFailure, FaultPlan, u64)> {
    let spec = TrialSpec {
        campaign_seed: FIXTURE_SEED,
        trial: 0,
        workload: Workload::RmaRandom,
        plan: partition_fixture_plan(),
        strict_no_partial: false,
        strict_no_peer_dead: false,
        strict_no_partitioned: true,
    };
    let res = {
        let _quiet = QuietPanics::arm();
        run_trial(&spec)
    };
    let (oracle, detail) = res.violations.iter().find(|(o, _)| o == "no-partitioned")?.clone();
    let failure = CampaignFailure {
        campaign_seed: FIXTURE_SEED,
        trial: 0,
        workload: Workload::RmaRandom,
        plan: partition_fixture_plan(),
        oracle,
        detail,
    };
    let (minimal, probes) = shrink(&failure, false);
    Some((failure, minimal, probes))
}

/// Render a committed repro file: comment header + the minimal
/// `GDR_SHMEM_FAULTS` grammar as the final line (extract it with
/// `grep -v '^#'`).
pub fn render_repro(f: &CampaignFailure, minimal: &FaultPlan, probes: u64) -> String {
    format!(
        "# gdrchaos minimal repro (gdrchaos-repro-v1)\n\
         # oracle: {}\n\
         # workload: {}\n\
         # campaign-seed: {}\n\
         # trial: {}\n\
         # original: {}\n\
         # shrink-probes: {}\n\
         {}\n",
        f.oracle,
        f.workload.name(),
        f.campaign_seed,
        f.trial,
        f.plan,
        probes,
        minimal
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_pick_is_pure_and_names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("bogus"), None);
        for trial in 0..32 {
            assert_eq!(Workload::pick(7, trial), Workload::pick(7, trial));
        }
        // a short campaign must exercise every workload
        let picked: std::collections::BTreeSet<&str> =
            (0..16).map(|t| Workload::pick(7, t).name()).collect();
        assert_eq!(picked.len(), Workload::ALL.len());
    }

    #[test]
    fn run_trial_is_deterministic() {
        let spec = TrialSpec {
            campaign_seed: 5,
            trial: 3,
            workload: Workload::RmaRandom,
            plan: FaultPlan::generate(5, 3),
            strict_no_partial: false,
            strict_no_peer_dead: false,
            strict_no_partitioned: false,
        };
        let _quiet = QuietPanics::arm();
        let a = run_trial(&spec);
        let b = run_trial(&spec);
        assert_eq!(a.report, b.report);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.fault_counters, b.fault_counters);
    }

    #[test]
    fn short_campaign_is_clean_and_byte_identical() {
        let (s1, f1) = run_campaign(7, 24);
        let (s2, f2) = run_campaign(7, 24);
        assert_eq!(s1.render(), s2.render());
        assert!(f1.is_empty(), "violations: {:?}", s1.violations);
        assert!(f2.is_empty());
        assert_eq!(s1.trials, 24);
        // each trial ran some workload
        assert_eq!(s1.workloads.values().sum::<u64>(), 24);
    }

    #[test]
    fn fixture_violates_and_shrinks_to_core_plan() {
        let (failure, minimal, probes) = run_fixture().expect("fixture must violate");
        assert_eq!(failure.oracle, "no-partial-delivery");
        // every noise dimension stripped; the failure-carrying core remains
        assert_eq!(minimal.to_string(), "seed=1 cqe=450 retries=1");
        assert!(probes > 0);
        // the minimal plan round-trips through the grammar and still
        // reproduces the identical violation
        let replay = FaultPlan::parse(&minimal.to_string());
        assert_eq!(replay, minimal);
        let spec = TrialSpec {
            campaign_seed: failure.campaign_seed,
            trial: failure.trial,
            workload: failure.workload,
            plan: replay,
            strict_no_partial: true,
            strict_no_peer_dead: false,
            strict_no_partitioned: false,
        };
        let _quiet = QuietPanics::arm();
        let res = run_trial(&spec);
        assert!(res
            .violations
            .iter()
            .any(|(o, d)| o == "no-partial-delivery" && *d == failure.detail));
    }

    #[test]
    fn classify_maps_errors_to_outcomes() {
        assert_eq!(classify(&Ok(())), Outcome::Ok);
        assert_eq!(
            classify(&Err(TransferError::Timeout { after_ns: 5, diag: String::new() })),
            Outcome::Timeout
        );
        assert!(matches!(
            classify(&Err(TransferError::PartialDelivery { delivered: 3, total: 9 })),
            Outcome::Partial { delivered: 3, total: 9 }
        ));
        assert!(classify(&Err(TransferError::Timeout { after_ns: 1, diag: String::new() }))
            .uncertain());
        assert!(!Outcome::Ok.uncertain());
        // a fenced op is certain: no bytes landed, none can land later
        let fenced = classify(&Err(TransferError::Partitioned { pe: 1, epoch: 2 }));
        assert_eq!(fenced, Outcome::Partitioned { pe: 1, epoch: 2 });
        assert!(!fenced.uncertain());
        assert_eq!(fenced.label(), "partitioned(pe1@e2)");
    }

    #[test]
    fn partition_campaign_is_clean_and_byte_identical() {
        let (s1, f1) = run_campaign_mode(7, 24, CampaignMode::Partition);
        let (s2, f2) = run_campaign_mode(7, 24, CampaignMode::Partition);
        assert_eq!(s1.render(), s2.render());
        assert!(f1.is_empty(), "violations: {:?}", s1.violations);
        assert!(f2.is_empty());
        // the partition dimension actually fired somewhere in the window
        let armed = (0..24)
            .any(|t| FaultPlan::generate_with_partitions(7, t).n_partitions > 0);
        assert!(armed, "24 trials of seed 7 drew no partition at all");
    }

    #[test]
    fn partition_fixture_violates_and_shrinks_to_core_plan() {
        let (failure, minimal, probes) =
            run_partition_fixture().expect("partition fixture must violate");
        assert_eq!(failure.oracle, "no-partitioned");
        // every noise dimension stripped; the split is load-bearing
        assert_eq!(minimal.to_string(), "seed=1 partition=split:2:20000:1200000");
        assert!(probes > 0);
        let replay = FaultPlan::parse(&minimal.to_string());
        assert_eq!(replay, minimal);
        let spec = TrialSpec {
            campaign_seed: failure.campaign_seed,
            trial: failure.trial,
            workload: failure.workload,
            plan: replay,
            strict_no_partial: false,
            strict_no_peer_dead: false,
            strict_no_partitioned: true,
        };
        let res = {
            let _quiet = QuietPanics::arm();
            run_trial(&spec)
        };
        // shrinking guarantees the same *oracle* reproduces, not the
        // same first-op detail (stripping the noise dimensions changes
        // which op the fence rejects first)
        assert!(res.violations.iter().any(|(o, _)| o == "no-partitioned"));
    }

    #[test]
    fn render_repro_ends_with_bare_grammar_line() {
        let f = CampaignFailure {
            campaign_seed: 99,
            trial: 0,
            workload: Workload::PipelineDd,
            plan: fixture_plan(),
            oracle: "no-partial-delivery".into(),
            detail: "x".into(),
        };
        let minimal = FaultPlan::default().with_seed(1).with_cqe_errors(450);
        let doc = render_repro(&f, &minimal, 13);
        let bare: Vec<&str> =
            doc.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(bare, vec![minimal.to_string().as_str()]);
        assert!(doc.starts_with("# gdrchaos minimal repro (gdrchaos-repro-v1)\n"));
    }
}
