//! GPULBM: the multiphase Lattice-Boltzmann application of paper §IV,
//! redesigned over OpenSHMEM.
//!
//! The original code (Rosales, CLUSTER'11) is a CUDA-aware-MPI D3Q19
//! multiphase solver, 3-D grid decomposed along Z. Its Evolution phase
//! performs three exchanges per timestep: the laplacian of the phase
//! field phi (1 element), the phase distribution f (1 element), and the
//! phase + momentum distributions f and g (6 elements); message size =
//! `X * Y * elems * sizeof(f32)` (paper §IV).
//!
//! Two variants are implemented:
//! - [`LbmVariant::CudaAwareMpi`]: the original two-sided exchanges
//!   (`isend`/`irecv`/`waitall` over the host-staged message layer);
//! - [`LbmVariant::ShmemGdr`]: the paper's redesign — `shmem_putmem`
//!   straight from GPU symmetric memory, quiet + barrier.
//!
//! Two fidelities:
//! - **Full**: a real single-phase D3Q19 BGK solver (the multiphase
//!   model's second distribution adds arithmetic, not communication
//!   structure) whose slab exchange moves the five Z-crossing
//!   populations per face; validated bit-exactly against
//!   [`serial_reference`] and checked for mass conservation;
//! - **Scaled**: the paper's exact three-exchange message schedule with
//!   a calibrated per-site compute model, for the Figure 12 harness.

use serde::{Deserialize, Serialize};
use shmem_gdr::{Domain, Pe, ShmemMachine, SimDuration, SymSlice};
use std::sync::Arc;

/// D3Q19 velocity set: (cx, cy, cz).
pub const Q: usize = 19;
pub const C: [(i32, i32, i32); Q] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, 1, 0),
    (1, -1, 0),
    (-1, -1, 0),
    (1, 0, 1),
    (-1, 0, 1),
    (1, 0, -1),
    (-1, 0, -1),
    (0, 1, 1),
    (0, -1, 1),
    (0, 1, -1),
    (0, -1, -1),
];
pub const W: [f32; Q] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];
const TAU: f32 = 0.8;

/// Which communication design the Evolution loop uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LbmVariant {
    /// Original: two-sided CUDA-aware MPI (host-staged pipeline).
    CudaAwareMpi,
    /// Redesigned: one-sided puts from GPU symmetric heaps (GDR).
    ShmemGdr,
}

/// Problem description.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LbmParams {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub steps: usize,
    pub variant: LbmVariant,
    pub full_physics: bool,
    /// Scaled mode: balanced 3-D process decomposition (the paper's weak
    /// scaling experiment uses a "4 x 4 x 4" grid) instead of Z slabs.
    pub decomp3d: bool,
    /// Scaled-mode compute model: ns per lattice site per step
    /// (multiphase LBM on a K20 runs a few hundred MLUPS).
    pub compute_ns_per_site: f64,
    /// Fixed per-step kernel/driver overhead (several kernels), us.
    pub kernel_overhead_us: f64,
}

impl LbmParams {
    /// Benchmark configuration (scaled fidelity).
    pub fn bench(nx: usize, ny: usize, nz: usize, steps: usize, variant: LbmVariant) -> Self {
        LbmParams {
            nx,
            ny,
            nz,
            steps,
            variant,
            full_physics: false,
            decomp3d: false,
            compute_ns_per_site: 1.5,
            kernel_overhead_us: 30.0,
        }
    }

    /// Switch to the balanced 3-D decomposition (weak-scaling runs).
    pub fn with_3d(mut self) -> Self {
        self.decomp3d = true;
        self
    }

    /// Small full-physics configuration for correctness runs.
    pub fn validate(n: usize, steps: usize, variant: LbmVariant) -> Self {
        LbmParams {
            nx: n,
            ny: n,
            nz: n,
            steps,
            variant,
            full_physics: true,
            decomp3d: false,
            compute_ns_per_site: 1.5,
            kernel_overhead_us: 30.0,
        }
    }
}

/// Result of the Evolution phase.
#[derive(Clone, Debug)]
pub struct LbmResult {
    /// Evolution-loop time, max over PEs.
    pub evolution: SimDuration,
    pub per_step_us: f64,
    /// Total mass after the run (full fidelity only).
    pub mass: Option<f64>,
    /// Full per-site distributions, z-slab order (full fidelity only;
    /// used by the bit-exactness tests).
    pub field: Option<Vec<f32>>,
}

/// Deterministic initial density perturbation.
fn rho0(nx: usize, ny: usize, nz: usize, x: usize, y: usize, z: usize) -> f32 {
    1.0 + 0.05
        * ((x as f32 / nx as f32) + 2.0 * (y as f32 / ny as f32) - (z as f32 / nz as f32))
}

/// Serial reference: the same D3Q19 BGK on one rank; returns the full
/// distribution field in `[q][z][y][x]` order.
pub fn serial_reference(nx: usize, ny: usize, nz: usize, steps: usize) -> Vec<f32> {
    let mut f = init_field(nx, ny, nz, 0, nz);
    let mut tmp = f.clone();
    for _ in 0..steps {
        step_local(&mut f, &mut tmp, nx, ny, nz, true);
    }
    f
}

/// Initialize a slab `[z0, z0+lz)` of the global field (equilibrium at
/// rest with the perturbed density), with space for 2 halo planes.
fn init_field(nx: usize, ny: usize, nz: usize, z0: usize, lz: usize) -> Vec<f32> {
    let plane = nx * ny;
    let mut f = vec![0.0f32; Q * (lz + 2) * plane];
    for q in 0..Q {
        for z in 0..lz {
            for y in 0..ny {
                for x in 0..nx {
                    let rho = rho0(nx, ny, nz, x, y, (z0 + z) % nz);
                    f[((q * (lz + 2) + (z + 1)) * ny + y) * nx + x] = W[q] * rho;
                }
            }
        }
    }
    f
}

/// One collide+stream step on a slab with halos. `periodic_z` folds Z
/// locally (serial reference); otherwise out-of-slab populations are
/// deposited in the halo planes for the exchange.
fn step_local(f: &mut Vec<f32>, tmp: &mut Vec<f32>, nx: usize, ny: usize, lz: usize, periodic_z: bool) {
    let zdim = lz + 2;
    let idx = |q: usize, z: usize, y: usize, x: usize| ((q * zdim + z) * ny + y) * nx + x;
    tmp.iter_mut().for_each(|v| *v = 0.0);
    for z in 1..=lz {
        for y in 0..ny {
            for x in 0..nx {
                // macroscopic moments
                let mut rho = 0.0f32;
                let (mut ux, mut uy, mut uz) = (0.0f32, 0.0f32, 0.0f32);
                for q in 0..Q {
                    let v = f[idx(q, z, y, x)];
                    rho += v;
                    ux += v * C[q].0 as f32;
                    uy += v * C[q].1 as f32;
                    uz += v * C[q].2 as f32;
                }
                ux /= rho;
                uy /= rho;
                uz /= rho;
                let usq = ux * ux + uy * uy + uz * uz;
                for q in 0..Q {
                    let cu = C[q].0 as f32 * ux + C[q].1 as f32 * uy + C[q].2 as f32 * uz;
                    let feq = W[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq);
                    let post = f[idx(q, z, y, x)] + (feq - f[idx(q, z, y, x)]) / TAU;
                    // stream (push), XY periodic, Z into halos
                    let xn = (x as i32 + C[q].0).rem_euclid(nx as i32) as usize;
                    let yn = (y as i32 + C[q].1).rem_euclid(ny as i32) as usize;
                    let mut zn = z as i32 + C[q].2;
                    if periodic_z {
                        // fold interior-periodically: 1..=lz
                        if zn < 1 {
                            zn = lz as i32;
                        } else if zn > lz as i32 {
                            zn = 1;
                        }
                    }
                    tmp[idx(q, zn as usize, yn, xn)] = post;
                }
            }
        }
    }
    std::mem::swap(f, tmp);
}

/// Population indices crossing a Z face (cz = +1 / -1).
fn z_cross(up: bool) -> Vec<usize> {
    (0..Q)
        .filter(|&q| C[q].2 == if up { 1 } else { -1 })
        .collect()
}

// ------------------------------------------------------------- driver

/// Run the Evolution phase on an already-built machine.
pub fn run(m: &Arc<ShmemMachine>, params: LbmParams) -> LbmResult {
    let out = m.run(move |pe| run_pe(pe, &params));
    let evolution = out.iter().map(|r| r.0).max().unwrap();
    let mass = out[0].1.map(|_| out.iter().filter_map(|r| r.1).sum());
    let field = out[0].2.as_ref().map(|_| {
        let mut all = Vec::new();
        // concatenate slabs in rank order per q? assemble [q][gz][y][x]
        // by interleaving: handled by the caller/test via slab returns.
        for r in &out {
            all.extend_from_slice(r.2.as_ref().unwrap());
        }
        all
    });
    LbmResult {
        evolution,
        per_step_us: evolution.as_us_f64() / params.steps as f64,
        mass,
        field,
    }
}

type PeOut = (SimDuration, Option<f64>, Option<Vec<f32>>);

fn run_pe(pe: &Pe, p: &LbmParams) -> PeOut {
    if p.full_physics {
        run_full(pe, p)
    } else {
        run_scaled(pe, p)
    }
}

fn run_full(pe: &Pe, p: &LbmParams) -> PeOut {
    let npes = pe.n_pes();
    assert!(p.nz.is_multiple_of(npes), "nz {} not divisible by {npes}", p.nz);
    let lz = p.nz / npes;
    let me = pe.my_pe();
    let plane = p.nx * p.ny;
    let zdim = lz + 2;
    let cells = Q * zdim * plane;
    let fs: SymSlice<f32> = pe.shmalloc_slice(cells, Domain::Gpu);

    let mut f = init_field(p.nx, p.ny, p.nz, me * lz, lz);
    let mut tmp = f.clone();
    pe.barrier_all();

    let up = (me + 1) % npes;
    let down = (me + npes - 1) % npes;
    let ups = z_cross(true);
    let downs = z_cross(false);
    let plane_bytes = (plane * 4) as u64;
    let idx_plane = |q: usize, z: usize| (q * zdim + z) * plane;

    let t0 = pe.now();
    for _ in 0..p.steps {
        step_local(&mut f, &mut tmp, p.nx, p.ny, lz, false);
        // model the collide+stream kernels
        pe.gpu_compute(SimDuration::from_ns_f64(
            p.compute_ns_per_site * (lz * plane) as f64 + p.kernel_overhead_us * 1000.0,
        ));
        // publish my outgoing halo planes into my symmetric field —
        // behind a barrier so no neighbour's put (which lands strictly
        // later than the barrier instant, links have positive latency)
        // can be overwritten by this full-field store
        pe.barrier_all();
        pe.write_sym(&fs, &f);
        // exchange: my top halo (z=lz+1) -> up's plane z=1 for cz=+1;
        // my bottom halo (z=0) -> down's plane z=lz for cz=-1
        match p.variant {
            LbmVariant::ShmemGdr => {
                for &q in &ups {
                    let src = pe.addr_of(fs.at(idx_plane(q, lz + 1)), me);
                    pe.putmem(fs.at(idx_plane(q, 1)), src, plane_bytes, up);
                }
                for &q in &downs {
                    let src = pe.addr_of(fs.at(idx_plane(q, 0)), me);
                    pe.putmem(fs.at(idx_plane(q, lz)), src, plane_bytes, down);
                }
                pe.barrier_all();
            }
            LbmVariant::CudaAwareMpi => {
                let mut handles = Vec::new();
                for &q in &ups {
                    handles.push(pe.irecv(down, pe.addr_of(fs.at(idx_plane(q, 1)), me), plane_bytes));
                }
                for &q in &downs {
                    handles.push(pe.irecv(up, pe.addr_of(fs.at(idx_plane(q, lz)), me), plane_bytes));
                }
                for &q in &ups {
                    let src = pe.addr_of(fs.at(idx_plane(q, lz + 1)), me);
                    handles.push(pe.isend(up, src, plane_bytes));
                }
                for &q in &downs {
                    let src = pe.addr_of(fs.at(idx_plane(q, 0)), me);
                    handles.push(pe.isend(down, src, plane_bytes));
                }
                pe.msg_waitall(handles);
                pe.barrier_all();
            }
        }
        // read back the received planes
        let updated = pe.read_sym(&fs);
        for &q in &ups {
            let o = idx_plane(q, 1);
            f[o..o + plane].copy_from_slice(&updated[o..o + plane]);
        }
        for &q in &downs {
            let o = idx_plane(q, lz);
            f[o..o + plane].copy_from_slice(&updated[o..o + plane]);
        }
    }
    let elapsed = pe.now() - t0;

    // mass and interior field extraction
    let mut mass = 0.0f64;
    let mut interior = Vec::with_capacity(Q * lz * plane);
    for q in 0..Q {
        for z in 1..=lz {
            let o = idx_plane(q, z);
            for i in 0..plane {
                mass += f[o + i] as f64;
                interior.push(f[o + i]);
            }
        }
    }
    (elapsed, Some(mass), Some(interior))
}

fn run_scaled(pe: &Pe, p: &LbmParams) -> PeOut {
    if p.decomp3d {
        return run_scaled_3d(pe, p);
    }
    let npes = pe.n_pes();
    assert!(p.nz.is_multiple_of(npes), "nz {} not divisible by {npes}", p.nz);
    let lz = p.nz / npes;
    let plane = p.nx * p.ny; // sites per Z plane
    // the paper's three exchanges: phi laplacian (1 elem), f (1 elem),
    // f+g (6 elems), each to both Z neighbours
    let msg1 = (plane * 4) as u64;
    let msg3 = (plane * 6 * 4) as u64;
    // communication surfaces: enough symmetric space for the largest
    // exchange in both directions
    let surf: SymSlice<f32> = pe.shmalloc_slice(plane * 6 * 4, Domain::Gpu);
    pe.barrier_all();

    let me = pe.my_pe();
    let up = (me + 1) % npes;
    let down = (me + npes - 1) % npes;
    let site_cost = p.compute_ns_per_site * (lz * plane) as f64;
    // compute split across the three kernel groups (paper §IV)
    let phases = [0.25, 0.35, 0.40];
    let msgs = [msg1, msg1, msg3];

    let t0 = pe.now();
    for _ in 0..p.steps {
        for k in 0..3 {
            pe.gpu_compute(SimDuration::from_ns_f64(
                site_cost * phases[k] + p.kernel_overhead_us * 1000.0 / 3.0,
            ));
            let bytes = msgs[k];
            let dst_up = surf.addr();
            let dst_down = surf.addr().add(bytes);
            let src_up = pe.addr_of(surf.addr().add(2 * bytes), me);
            let src_down = pe.addr_of(surf.addr().add(3 * bytes), me);
            match p.variant {
                LbmVariant::ShmemGdr => {
                    if npes > 1 {
                        pe.putmem(dst_up, src_up, bytes, up);
                        pe.putmem(dst_down, src_down, bytes, down);
                    }
                    pe.barrier_all();
                }
                LbmVariant::CudaAwareMpi => {
                    // the original code reuses one halo buffer per
                    // direction, so the two directions serialize
                    // (classic MPI_Sendrecv structure)
                    if npes > 1 {
                        let h = vec![
                            pe.irecv(down, pe.addr_of(dst_up, me), bytes),
                            pe.isend(up, src_up, bytes),
                        ];
                        pe.msg_waitall(h);
                        let h = vec![
                            pe.irecv(up, pe.addr_of(dst_down, me), bytes),
                            pe.isend(down, src_down, bytes),
                        ];
                        pe.msg_waitall(h);
                    }
                    pe.barrier_all();
                }
            }
        }
    }
    (pe.now() - t0, None, None)
}

/// Scaled Evolution with a balanced 3-D decomposition: six face
/// neighbours (periodic), the paper's three exchanges per step with
/// face-area-sized messages.
fn run_scaled_3d(pe: &Pe, p: &LbmParams) -> PeOut {
    let npes = pe.n_pes();
    let (ax, ay, az) = crate::grid_3d(npes);
    assert!(
        p.nx.is_multiple_of(ax) && p.ny.is_multiple_of(ay) && p.nz.is_multiple_of(az),
        "grid {}x{}x{} not divisible by process grid {ax}x{ay}x{az}",
        p.nx,
        p.ny,
        p.nz
    );
    let (lx, ly, lz) = (p.nx / ax, p.ny / ay, p.nz / az);
    let me = pe.my_pe();
    let (ix, iy, iz) = (me % ax, (me / ax) % ay, me / (ax * ay));
    let rank = |x: usize, y: usize, z: usize| (z * ay + y) * ax + x;
    // periodic face neighbours: (plus, minus) per axis
    let nbrs = [
        (
            rank((ix + 1) % ax, iy, iz),
            rank((ix + ax - 1) % ax, iy, iz),
            ly * lz, // X-face area
        ),
        (
            rank(ix, (iy + 1) % ay, iz),
            rank(ix, (iy + ay - 1) % ay, iz),
            lx * lz,
        ),
        (
            rank(ix, iy, (iz + 1) % az),
            rank(ix, iy, (iz + az - 1) % az),
            lx * ly,
        ),
    ];
    let max_face = nbrs.iter().map(|n| n.2).max().unwrap();
    // symmetric surface: 4 slots (tx/rx x two directions) of the
    // largest exchange (6 f32 elements per site); `slot` is in bytes
    let slot = (max_face * 6 * 4) as u64;
    let surf: SymSlice<f32> = pe.shmalloc_slice(max_face * 6 * 4, Domain::Gpu);
    pe.barrier_all();

    let sites = lx * ly * lz;
    let site_cost = p.compute_ns_per_site * sites as f64;
    let phases = [0.25f64, 0.35, 0.40];
    let elems = [1u64, 1, 6];

    let t0 = pe.now();
    for _ in 0..p.steps {
        for k in 0..3 {
            pe.gpu_compute(SimDuration::from_ns_f64(
                site_cost * phases[k] + p.kernel_overhead_us * 1000.0 / 3.0,
            ));
            match p.variant {
                LbmVariant::ShmemGdr => {
                    for &(plus, minus, face) in &nbrs {
                        let bytes = face as u64 * elems[k] * 4;
                        if plus == me {
                            continue; // single rank on this axis
                        }
                        let src_p = pe.addr_of(surf.addr().add(2 * slot), me);
                        let src_m = pe.addr_of(surf.addr().add(3 * slot), me);
                        pe.putmem(surf.addr(), src_p, bytes, plus);
                        pe.putmem(surf.addr().add(slot), src_m, bytes, minus);
                    }
                    pe.barrier_all();
                }
                LbmVariant::CudaAwareMpi => {
                    // per-direction sendrecv with buffer reuse: the
                    // directions of each axis serialize, as in the
                    // original application
                    for &(plus, minus, face) in &nbrs {
                        let bytes = face as u64 * elems[k] * 4;
                        if plus == me {
                            continue;
                        }
                        let h = vec![
                            pe.irecv(minus, pe.addr_of(surf.addr(), me), bytes),
                            pe.isend(plus, pe.addr_of(surf.addr().add(2 * slot), me), bytes),
                        ];
                        pe.msg_waitall(h);
                        let h = vec![
                            pe.irecv(plus, pe.addr_of(surf.addr().add(slot), me), bytes),
                            pe.isend(minus, pe.addr_of(surf.addr().add(3 * slot), me), bytes),
                        ];
                        pe.msg_waitall(h);
                    }
                    pe.barrier_all();
                }
            }
        }
    }
    (pe.now() - t0, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::ClusterSpec;
    use shmem_gdr::{Design, RuntimeConfig};

    fn machine(nodes: usize, ppn: usize, design: Design) -> Arc<ShmemMachine> {
        ShmemMachine::build(ClusterSpec::wilkes(nodes, ppn), RuntimeConfig::tuned(design))
    }

    #[test]
    fn serial_reference_conserves_mass() {
        let n = 6;
        let f0 = init_field(n, n, n, 0, n);
        let m0: f64 = f0.iter().map(|&v| v as f64).sum();
        let f = serial_reference(n, n, n, 4);
        let m1: f64 = f.iter().map(|&v| v as f64).sum();
        assert!((m0 - m1).abs() < 1e-3, "mass drifted: {m0} -> {m1}");
    }

    #[test]
    fn distributed_matches_serial_bit_for_bit() {
        let n = 8;
        let steps = 3;
        let serial = serial_reference(n, n, n, steps);
        for variant in [LbmVariant::ShmemGdr, LbmVariant::CudaAwareMpi] {
            let m = machine(2, 1, Design::EnhancedGdr);
            let res = run(&m, LbmParams::validate(n, steps, variant));
            // reassemble: each PE returned [q][z_local][y][x]; serial is
            // [q][z][y][x] with z global. Compare per-rank slabs.
            let field = res.field.unwrap();
            let plane = n * n;
            let lz = n / 2;
            for (rank, slab) in field.chunks(Q * lz * plane).enumerate() {
                for q in 0..Q {
                    for z in 0..lz {
                        let gz = rank * lz + z;
                        let s = &serial[((q * (n + 2) + (gz + 1)) * n) * n
                            ..((q * (n + 2) + (gz + 1)) * n) * n + plane];
                        let d = &slab[(q * lz + z) * plane..(q * lz + z) * plane + plane];
                        assert_eq!(s, d, "mismatch {variant:?} rank{rank} q{q} z{z}");
                    }
                }
            }
        }
    }

    #[test]
    fn distributed_mass_is_conserved() {
        let m = machine(2, 2, Design::EnhancedGdr);
        let n = 8;
        let res = run(&m, LbmParams::validate(n, 4, LbmVariant::ShmemGdr));
        let f0 = init_field(n, n, n, 0, n);
        let want: f64 = f0.iter().map(|&v| v as f64).sum();
        let got = res.mass.unwrap();
        assert!((got - want).abs() < 1e-3, "{got} vs {want}");
    }

    #[test]
    fn shmem_variant_is_faster_than_mpi_variant() {
        let n = 64;
        let mk = |variant| {
            let m = machine(4, 1, Design::EnhancedGdr);
            run(&m, LbmParams::bench(n, n, 64, 10, variant)).evolution
        };
        let shmem = mk(LbmVariant::ShmemGdr);
        let mpi = mk(LbmVariant::CudaAwareMpi);
        assert!(
            shmem < mpi,
            "shmem {shmem} should beat CUDA-aware MPI {mpi}"
        );
    }

    #[test]
    fn scaled_mode_single_pe() {
        let m = machine(1, 1, Design::EnhancedGdr);
        let res = run(&m, LbmParams::bench(32, 32, 32, 5, LbmVariant::ShmemGdr));
        assert!(res.per_step_us > 0.0);
        assert!(res.mass.is_none());
    }
}
