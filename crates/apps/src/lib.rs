//! # apps-sim — applications redesigned over the OpenSHMEM runtime
//!
//! The paper's two application studies (§IV, §V-C):
//!
//! - [`stencil2d`]: the SHOC Stencil2D benchmark — 9-point double
//!   precision stencil, 2-D process grid, per-iteration halo exchange
//!   from GPU symmetric heaps;
//! - [`lbm`]: the GPULBM multiphase Lattice-Boltzmann application —
//!   3-D grid, Z-axis decomposition, three exchanges per Evolution
//!   timestep (laplacian of phi: 1 element; f: 1 element; f+g: 6
//!   elements, float), available both in its original CUDA-aware
//!   MPI form (two-sided, host-staged) and in the paper's redesigned
//!   OpenSHMEM form (one-sided puts straight from GPU memory).
//!
//! Each application has two fidelities:
//! - **Full**: real grid data and real arithmetic, validated against a
//!   serial reference (small grids — correctness tests);
//! - **Scaled**: boundary-only buffers plus a calibrated compute-time
//!   model (large grids — the Figure 11/12 harnesses). Communication is
//!   always real: real bytes, real protocol paths.

pub mod bfs;
pub mod lbm;
pub mod stencil2d;

pub use bfs::{BfsParams, BfsResult};
pub use lbm::{LbmParams, LbmResult, LbmVariant};
pub use stencil2d::{StencilParams, StencilResult};

/// Pick a balanced 3-D factorization of `n` (process grid), most
/// factors on the last axis.
pub fn grid_3d(n: usize) -> (usize, usize, usize) {
    let mut best = (1, 1, n);
    let mut score = usize::MAX;
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let m = n / a;
            let mut b = a;
            while b * b <= m {
                if m.is_multiple_of(b) {
                    let c = m / b;
                    let s = c - a; // spread: smaller is more balanced
                    if s < score {
                        score = s;
                        best = (a, b, c);
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Pick a near-square 2-D factorization of `n` (process grid).
pub fn grid_2d(n: usize) -> (usize, usize) {
    let mut best = (1, n);
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            best = (i, n / i);
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_3d_factorizations() {
        assert_eq!(grid_3d(1), (1, 1, 1));
        assert_eq!(grid_3d(8), (2, 2, 2));
        assert_eq!(grid_3d(64), (4, 4, 4));
        let (a, b, c) = grid_3d(16);
        assert_eq!(a * b * c, 16);
        assert!(c <= 4);
        let (a, b, c) = grid_3d(32);
        assert_eq!(a * b * c, 32);
        assert!(c <= 4);
    }

    #[test]
    fn grid_factorizations() {
        assert_eq!(grid_2d(1), (1, 1));
        assert_eq!(grid_2d(4), (2, 2));
        assert_eq!(grid_2d(8), (2, 4));
        assert_eq!(grid_2d(16), (4, 4));
        assert_eq!(grid_2d(64), (8, 8));
        assert_eq!(grid_2d(6), (2, 3));
    }
}
