//! Distributed breadth-first search: the irregular-communication
//! workload class the paper's introduction motivates PGAS with
//! (distributed graph algorithms [8], dynamic load balancing [9]).
//!
//! Level-synchronized BFS on a random graph, vertices block-partitioned
//! across PEs. Frontier expansion uses the classic PGAS idiom: reserve a
//! slot range in the owner's inbox with a **fetch-add**, then **put**
//! the candidate vertices — fine-grained, data-dependent communication
//! that favours one-sided semantics. Distances are validated against a
//! serial reference.

use serde::{Deserialize, Serialize};
use shmem_gdr::{Domain, Pe, Pod, ShmemMachine, SimDuration, SymSlice};
use std::sync::Arc;

/// Problem description.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BfsParams {
    /// Number of vertices (must divide evenly by the PE count).
    pub vertices: usize,
    /// Average out-degree of the random graph.
    pub degree: usize,
    /// RNG seed for the edge list.
    pub seed: u64,
    /// BFS root vertex.
    pub root: usize,
    /// Modelled cost per scanned edge (ns).
    pub ns_per_edge: f64,
}

impl BfsParams {
    pub fn small(vertices: usize, degree: usize) -> Self {
        BfsParams {
            vertices,
            degree,
            seed: 0x5EED,
            root: 0,
            ns_per_edge: 1.2,
        }
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Per-vertex hop distance from the root (u64::MAX = unreachable).
    pub dist: Vec<u64>,
    pub levels: usize,
    pub elapsed: sim_core::SimDuration,
}

const UNSET: u64 = u64::MAX;

/// Deterministic pseudo-random edge target.
fn edge_target(seed: u64, v: usize, k: usize, n: usize) -> usize {
    let mut x = seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (k as u64) << 32;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x % n as u64) as usize
}

/// Out-neighbours of `v` (generated, not stored — same on every PE).
pub fn neighbors(p: &BfsParams, v: usize) -> Vec<usize> {
    (0..p.degree)
        .map(|k| edge_target(p.seed, v, k, p.vertices))
        .collect()
}

/// Serial reference BFS.
pub fn serial_reference(p: &BfsParams) -> Vec<u64> {
    let mut dist = vec![UNSET; p.vertices];
    dist[p.root] = 0;
    let mut frontier = vec![p.root];
    let mut level = 0u64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for w in neighbors(p, v) {
                if dist[w] == UNSET {
                    dist[w] = level + 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
        level += 1;
    }
    dist
}

/// Run the distributed BFS on an already-built machine.
pub fn run(m: &Arc<ShmemMachine>, p: BfsParams) -> BfsResult {
    let out = m.run(move |pe| run_pe(pe, &p));
    let levels = out[0].1;
    let elapsed = out.iter().map(|o| o.2).max().unwrap();
    let mut dist = Vec::with_capacity(p.vertices);
    for (d, _, _) in out {
        dist.extend(d);
    }
    BfsResult {
        dist,
        levels,
        elapsed,
    }
}

fn run_pe(pe: &Pe, p: &BfsParams) -> (Vec<u64>, usize, sim_core::SimDuration) {
    let npes = pe.n_pes();
    let me = pe.my_pe();
    assert!(
        p.vertices.is_multiple_of(npes),
        "{} vertices not divisible by {npes} PEs",
        p.vertices
    );
    let chunk = p.vertices / npes;
    let owner = |v: usize| v / chunk;
    let lo = me * chunk;

    // symmetric state: my distance array, candidate inbox + its cursor
    let inbox_cap = (p.degree * chunk * 2).max(64);
    let dist_s: SymSlice<u64> = pe.shmalloc_slice(chunk, Domain::Gpu);
    let inbox: SymSlice<u64> = pe.shmalloc_slice(inbox_cap, Domain::Gpu);
    let cursor = pe.shmalloc(8, Domain::Host);
    let next_total: SymSlice<u64> = pe.shmalloc_slice(1, Domain::Host);
    let total_red: SymSlice<u64> = pe.shmalloc_slice(1, Domain::Host);

    let mut dist = vec![UNSET; chunk];
    if owner(p.root) == me {
        dist[p.root - lo] = 0;
    }
    pe.write_sym(&dist_s, &dist);
    pe.barrier_all();

    let t0 = pe.now();
    let mut frontier: Vec<usize> = if owner(p.root) == me {
        vec![p.root]
    } else {
        Vec::new()
    };
    let mut level = 0u64;
    let mut levels;
    loop {
        // expand: bucket candidate vertices by owner
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); npes];
        let mut scanned = 0usize;
        for &v in &frontier {
            for w in neighbors(p, v) {
                scanned += 1;
                buckets[owner(w)].push(w as u64);
            }
        }
        pe.gpu_compute(SimDuration::from_ns_f64(
            p.ns_per_edge * scanned as f64 + 2_000.0,
        ));

        // ship remote candidates: fetch-add a slot range, put the block
        let scratch_len = ((p.degree * frontier.len()).max(8) * 8) as u64;
        let scratch = pe.malloc_host(scratch_len);
        for (t, bucket) in buckets.iter().enumerate() {
            if t == me || bucket.is_empty() {
                continue;
            }
            let off = pe.atomic_fetch_add(cursor, bucket.len() as u64, t);
            assert!(
                (off as usize + bucket.len()) <= inbox_cap,
                "inbox overflow at pe{t}"
            );
            pe.write_raw(scratch, &u64::to_bytes(bucket));
            pe.putmem(
                inbox.at(off as usize),
                scratch,
                (bucket.len() * 8) as u64,
                t,
            );
        }
        pe.quiet();
        pe.barrier_all();
        pe.free_host(scratch, scratch_len);

        // drain my inbox + my own bucket into the next frontier
        let received = pe.local_u64(cursor) as usize;
        let mut candidates: Vec<u64> = buckets[me].clone();
        if received > 0 {
            candidates.extend(pe.read_sym(&inbox.slice(0, received)));
        }
        let mut next: Vec<usize> = Vec::new();
        for w in candidates {
            let idx = (w as usize) - lo;
            if dist[idx] == UNSET {
                dist[idx] = level + 1;
                next.push(w as usize);
            }
        }
        pe.write_sym(&dist_s, &dist);
        pe.barrier_all();
        // reset my cursor for the next level (after everyone drained)
        pe.write_raw(pe.addr_of(cursor, me), &0u64.to_le_bytes());
        // global termination: sum of next-frontier sizes
        pe.write_sym(&next_total, &[next.len() as u64]);
        pe.reduce(&next_total, &total_red, shmem_gdr::RedOp::Sum, 0);
        let sum = pe.read_sym(&total_red)[0];
        frontier = next;
        level += 1;
        levels = level as usize;
        if sum == 0 {
            break;
        }
    }
    (dist, levels, pe.now() - t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::ClusterSpec;
    use shmem_gdr::{Design, RuntimeConfig};

    fn machine(nodes: usize, ppn: usize) -> Arc<ShmemMachine> {
        ShmemMachine::build(
            ClusterSpec::wilkes(nodes, ppn),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        )
    }

    #[test]
    fn distributed_bfs_matches_serial_reference() {
        let p = BfsParams::small(256, 4);
        let want = serial_reference(&p);
        let m = machine(2, 2); // 4 PEs
        let got = run(&m, p);
        assert_eq!(got.dist, want, "distance mismatch");
        assert!(got.levels > 0);
    }

    #[test]
    fn bfs_works_on_eight_pes_and_denser_graphs() {
        let p = BfsParams::small(512, 8);
        let want = serial_reference(&p);
        let m = machine(4, 2);
        let got = run(&m, p);
        assert_eq!(got.dist, want);
    }

    #[test]
    fn unreachable_vertices_stay_unset() {
        // degree 1 on a large vertex set leaves parts unreachable
        let p = BfsParams::small(128, 1);
        let want = serial_reference(&p);
        assert!(want.contains(&UNSET), "test graph too dense");
        let m = machine(2, 1);
        let got = run(&m, p);
        assert_eq!(got.dist, want);
    }

    #[test]
    fn single_pe_bfs() {
        let p = BfsParams::small(64, 3);
        let m = machine(1, 1);
        let got = run(&m, p);
        assert_eq!(got.dist, serial_reference(&p));
    }
}
