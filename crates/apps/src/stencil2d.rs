//! SHOC Stencil2D over the OpenSHMEM runtime (paper §V-C, Fig. 11).
//!
//! A 9-point double-precision stencil on an N×N grid, decomposed over a
//! 2-D process grid. Each iteration: two-phase halo exchange (north/south
//! rows, then east/west columns carrying the freshly received corner
//! values) with one-sided puts from GPU symmetric memory, then the
//! stencil update.
//!
//! **Full** fidelity computes the real stencil (used by the correctness
//! tests against [`serial_reference`]); **Scaled** fidelity allocates
//! only the communication surfaces and models the kernel time, so the
//! Figure 11 harness can sweep 64-GPU configurations cheaply. The
//! communication is identical in both modes.

use serde::{Deserialize, Serialize};
use shmem_gdr::{Domain, Pe, ShmemMachine, SimDuration, SymSlice};
use std::sync::Arc;

/// Stencil weights (diffusion-flavoured, as in SHOC's default).
const W_CENTER: f64 = 0.25;
const W_EDGE: f64 = 0.125;
const W_DIAG: f64 = 0.0625;

/// Problem description.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StencilParams {
    /// Global grid edge (N×N points).
    pub n: usize,
    /// Timesteps ("internal iterations" in SHOC terms).
    pub iters: usize,
    /// Real arithmetic + full allocation (small grids only).
    pub full_physics: bool,
    /// Scaled-mode kernel model: ns per grid point per iteration.
    pub compute_ns_per_point: f64,
    /// Scaled-mode fixed per-iteration kernel/driver overhead (us).
    pub kernel_overhead_us: f64,
}

impl StencilParams {
    /// Benchmark configuration (scaled fidelity, calibrated model).
    pub fn bench(n: usize, iters: usize) -> Self {
        StencilParams {
            n,
            iters,
            full_physics: false,
            compute_ns_per_point: 2.2,
            kernel_overhead_us: 20.0,
        }
    }

    /// Small, full-physics configuration for correctness runs.
    pub fn validate(n: usize, iters: usize) -> Self {
        StencilParams {
            n,
            iters,
            full_physics: true,
            compute_ns_per_point: 3.0,
            kernel_overhead_us: 24.0,
        }
    }
}

/// Result of a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct StencilResult {
    /// Wall (virtual) time of the iteration loop, max over PEs.
    pub elapsed: SimDuration,
    pub per_iter_us: f64,
    /// Sum of all grid values after the run (full fidelity only).
    pub checksum: Option<f64>,
}

/// Initial condition: a smooth deterministic field.
pub fn initial(n: usize, gy: usize, gx: usize) -> f64 {
    let fy = gy as f64 / n as f64;
    let fx = gx as f64 / n as f64;
    (fy * 3.0 + fx * 2.0) + (fy * fx) * 4.0
}

/// Serial reference: the same stencil on the full grid (Dirichlet
/// boundary: global edge rows/cols stay fixed).
pub fn serial_reference(n: usize, iters: usize) -> Vec<f64> {
    let mut cur: Vec<f64> = (0..n * n).map(|i| initial(n, i / n, i % n)).collect();
    let mut next = cur.clone();
    for _ in 0..iters {
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let at = |dy: isize, dx: isize| {
                    cur[((y as isize + dy) as usize) * n + (x as isize + dx) as usize]
                };
                next[y * n + x] = W_CENTER * at(0, 0)
                    + W_EDGE * (at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1))
                    + W_DIAG * (at(-1, -1) + at(-1, 1) + at(1, -1) + at(1, 1));
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

struct Decomp {
    py: usize,
    px: usize,
    ry: usize, // my row in the PE grid
    rx: usize,
    br: usize, // block rows
    bc: usize, // block cols
}

impl Decomp {
    fn new(pe: &Pe, n: usize) -> Decomp {
        let (py, px) = crate::grid_2d(pe.n_pes());
        assert!(
            n.is_multiple_of(py) && n.is_multiple_of(px),
            "grid {n} not divisible by PE grid {py}x{px}"
        );
        let me = pe.my_pe();
        Decomp {
            py,
            px,
            ry: me / px,
            rx: me % px,
            br: n / py,
            bc: n / px,
        }
    }

    fn pe_at(&self, ry: usize, rx: usize) -> usize {
        ry * self.px + rx
    }

    fn north(&self) -> Option<usize> {
        (self.ry > 0).then(|| self.pe_at(self.ry - 1, self.rx))
    }
    fn south(&self) -> Option<usize> {
        (self.ry + 1 < self.py).then(|| self.pe_at(self.ry + 1, self.rx))
    }
    fn west(&self) -> Option<usize> {
        (self.rx > 0).then(|| self.pe_at(self.ry, self.rx - 1))
    }
    fn east(&self) -> Option<usize> {
        (self.rx + 1 < self.px).then(|| self.pe_at(self.ry, self.rx + 1))
    }
}

/// Run the distributed stencil on an already-built machine. The machine
/// must have exactly the PE count the decomposition expects.
pub fn run(m: &Arc<ShmemMachine>, params: StencilParams) -> StencilResult {
    let out = m.run(move |pe| run_pe(pe, &params));
    let elapsed = out.iter().map(|r| r.0).max().unwrap();
    let checksum = out[0].1.map(|_| out.iter().filter_map(|r| r.1).sum());
    StencilResult {
        elapsed,
        per_iter_us: elapsed.as_us_f64() / params.iters as f64,
        checksum,
    }
}

fn run_pe(pe: &Pe, p: &StencilParams) -> (SimDuration, Option<f64>) {
    if p.full_physics {
        run_full(pe, p)
    } else {
        run_scaled(pe, p)
    }
}

// ---------------------------------------------------------------- full

fn run_full(pe: &Pe, p: &StencilParams) -> (SimDuration, Option<f64>) {
    let d = Decomp::new(pe, p.n);
    let (br, bc) = (d.br, d.bc);
    let stride = bc + 2;
    let cells = (br + 2) * stride;
    // the local block (with halo ring) lives in the GPU symmetric heap
    let grid: SymSlice<f64> = pe.shmalloc_slice(cells, Domain::Gpu);
    let next: SymSlice<f64> = pe.shmalloc_slice(cells, Domain::Gpu);
    // packed column buffers: tx (mine) and rx (peers write into them)
    let col_tx: SymSlice<f64> = pe.shmalloc_slice(2 * (br + 2), Domain::Gpu);
    let col_rx: SymSlice<f64> = pe.shmalloc_slice(2 * (br + 2), Domain::Gpu);

    // initialize with the global field
    let mut local = vec![0.0f64; cells];
    for y in 0..br + 2 {
        for x in 0..bc + 2 {
            let gy = (d.ry * br + y) as isize - 1;
            let gx = (d.rx * bc + x) as isize - 1;
            if gy >= 0 && gx >= 0 && (gy as usize) < p.n && (gx as usize) < p.n {
                local[y * stride + x] = initial(p.n, gy as usize, gx as usize);
            }
        }
    }
    pe.write_sym(&grid, &local);
    pe.write_sym(&next, &local);
    pe.barrier_all();

    let t0 = pe.now();
    for _ in 0..p.iters {
        exchange(pe, &d, &grid, &col_tx, &col_rx, p);

        // unpack received columns into the halo ring
        let mut cur = pe.read_sym(&grid);
        let rx = pe.read_sym(&col_rx);
        if d.west().is_some() {
            for y in 0..br + 2 {
                cur[y * stride] = rx[y];
            }
        }
        if d.east().is_some() {
            for y in 0..br + 2 {
                cur[y * stride + bc + 1] = rx[(br + 2) + y];
            }
        }

        // stencil update (skip global boundary points)
        let mut nxt = cur.clone();
        for y in 1..=br {
            let gy = d.ry * br + y - 1;
            if gy == 0 || gy == p.n - 1 {
                continue;
            }
            for x in 1..=bc {
                let gx = d.rx * bc + x - 1;
                if gx == 0 || gx == p.n - 1 {
                    continue;
                }
                let at = |dy: isize, dx: isize| {
                    cur[((y as isize + dy) as usize) * stride + (x as isize + dx) as usize]
                };
                nxt[y * stride + x] = W_CENTER * at(0, 0)
                    + W_EDGE * (at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1))
                    + W_DIAG * (at(-1, -1) + at(-1, 1) + at(1, -1) + at(1, 1));
            }
        }
        pe.write_sym(&grid, &nxt);
        // model the kernel time the real GPU would take
        pe.gpu_compute(SimDuration::from_ns_f64(
            p.compute_ns_per_point * (br * bc) as f64 + p.kernel_overhead_us * 1000.0,
        ));
        pe.barrier_all();
    }
    let elapsed = pe.now() - t0;

    // checksum of interior (owned) points
    let cur = pe.read_sym(&grid);
    let mut sum = 0.0;
    for y in 1..=br {
        for x in 1..=bc {
            sum += cur[y * stride + x];
        }
    }
    (elapsed, Some(sum))
}

/// Extract this PE's interior block (for test comparison).
pub fn gather_block(pe: &Pe, grid: &SymSlice<f64>, br: usize, bc: usize) -> Vec<f64> {
    let stride = bc + 2;
    let cur = pe.read_sym(grid);
    let mut out = Vec::with_capacity(br * bc);
    for y in 1..=br {
        for x in 1..=bc {
            out.push(cur[y * stride + x]);
        }
    }
    out
}

// ------------------------------------------------------------- scaled

fn run_scaled(pe: &Pe, p: &StencilParams) -> (SimDuration, Option<f64>) {
    let d = Decomp::new(pe, p.n);
    let (br, bc) = (d.br, d.bc);
    // only the communication surfaces exist: two halo rows inside a
    // dummy grid region, plus the packed column buffers
    let rows: SymSlice<f64> = pe.shmalloc_slice(4 * bc.max(1), Domain::Gpu);
    let col_tx: SymSlice<f64> = pe.shmalloc_slice(2 * (br + 2), Domain::Gpu);
    let col_rx: SymSlice<f64> = pe.shmalloc_slice(2 * (br + 2), Domain::Gpu);
    pe.barrier_all();

    let t0 = pe.now();
    for _ in 0..p.iters {
        exchange_scaled(pe, &d, &rows, &col_tx, &col_rx);
        pe.gpu_compute(SimDuration::from_ns_f64(
            p.compute_ns_per_point * (br * bc) as f64 + p.kernel_overhead_us * 1000.0,
        ));
        pe.barrier_all();
    }
    (pe.now() - t0, None)
}

// -------------------------------------------------------- exchanges

/// Full-mode halo exchange: boundary rows from the real grid, then
/// packed columns including the just-received corners.
fn exchange(
    pe: &Pe,
    d: &Decomp,
    grid: &SymSlice<f64>,
    col_tx: &SymSlice<f64>,
    col_rx: &SymSlice<f64>,
    _p: &StencilParams,
) {
    let (br, bc) = (d.br, d.bc);
    let stride = bc + 2;
    let row_bytes = (bc * 8) as u64;
    // phase 1: north/south rows (contiguous in the block)
    if let Some(n) = d.north() {
        // my first interior row -> north's bottom halo row
        let src = pe.addr_of(grid.at(stride + 1), pe.my_pe());
        pe.putmem(grid.at((br + 1) * stride + 1), src, row_bytes, n);
    }
    if let Some(s) = d.south() {
        let src = pe.addr_of(grid.at(br * stride + 1), pe.my_pe());
        pe.putmem(grid.at(1), src, row_bytes, s);
    }
    pe.barrier_all();

    // phase 2: pack east/west columns (full height incl. halo rows) and
    // put them into the neighbour's rx buffer
    let cur = pe.read_sym(grid);
    let mut packed = vec![0.0f64; 2 * (br + 2)];
    for y in 0..br + 2 {
        packed[y] = cur[y * stride + 1]; // my west interior column
        packed[(br + 2) + y] = cur[y * stride + bc]; // my east interior column
    }
    pe.write_sym(col_tx, &packed);
    // pack kernel cost
    pe.gpu_compute(SimDuration::from_ns_f64(2.0 * (br + 2) as f64 + 3000.0));
    let col_bytes = ((br + 2) * 8) as u64;
    if let Some(w) = d.west() {
        // my west column -> west neighbour's east rx slot
        let src = pe.addr_of(col_tx.addr(), pe.my_pe());
        pe.putmem(col_rx.addr().add(col_bytes), src, col_bytes, w);
    }
    if let Some(e) = d.east() {
        let src = pe.addr_of(col_tx.addr().add(col_bytes), pe.my_pe());
        pe.putmem(col_rx.addr(), src, col_bytes, e);
    }
    pe.barrier_all();
}

/// Scaled-mode exchange: identical message sizes and synchronization,
/// dummy payloads.
fn exchange_scaled(
    pe: &Pe,
    d: &Decomp,
    rows: &SymSlice<f64>,
    col_tx: &SymSlice<f64>,
    col_rx: &SymSlice<f64>,
) {
    let (br, bc) = (d.br, d.bc);
    let row_bytes = (bc * 8) as u64;
    if let Some(n) = d.north() {
        let src = pe.addr_of(rows.addr(), pe.my_pe());
        pe.putmem(rows.addr().add(2 * row_bytes), src, row_bytes, n);
    }
    if let Some(s) = d.south() {
        let src = pe.addr_of(rows.addr().add(row_bytes), pe.my_pe());
        pe.putmem(rows.addr().add(3 * row_bytes), src, row_bytes, s);
    }
    pe.barrier_all();
    // pack kernel + column puts
    pe.gpu_compute(SimDuration::from_ns_f64(2.0 * (br + 2) as f64 + 3000.0));
    let col_bytes = ((br + 2) * 8) as u64;
    if let Some(w) = d.west() {
        let src = pe.addr_of(col_tx.addr(), pe.my_pe());
        pe.putmem(col_rx.addr().add(col_bytes), src, col_bytes, w);
    }
    if let Some(e) = d.east() {
        let src = pe.addr_of(col_tx.addr().add(col_bytes), pe.my_pe());
        pe.putmem(col_rx.addr(), src, col_bytes, e);
    }
    pe.barrier_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::ClusterSpec;
    use shmem_gdr::{Design, RuntimeConfig};

    fn machine(nodes: usize, ppn: usize, design: Design) -> Arc<ShmemMachine> {
        ShmemMachine::build(ClusterSpec::wilkes(nodes, ppn), RuntimeConfig::tuned(design))
    }

    #[test]
    fn matches_serial_reference_on_four_pes() {
        let n = 32;
        let iters = 5;
        let reference = serial_reference(n, iters);
        let m = machine(2, 2, Design::EnhancedGdr);
        let res = run(&m, StencilParams::validate(n, iters));
        // per-PE checksums cover every owned point == the whole grid
        let want: f64 = reference.iter().sum();
        let got = res.checksum.unwrap();
        assert!(
            (got - want).abs() < 1e-9 * want.abs().max(1.0),
            "distributed {got} vs serial {want}"
        );
    }

    #[test]
    fn serial_reference_conserves_boundary() {
        let n = 16;
        let r = serial_reference(n, 3);
        // Dirichlet boundary unchanged
        for x in 0..n {
            assert_eq!(r[x], initial(n, 0, x));
            assert_eq!(r[(n - 1) * n + x], initial(n, n - 1, x));
        }
    }

    #[test]
    fn different_designs_same_answer_different_time() {
        let n = 32;
        let p = StencilParams::validate(n, 4);
        let m1 = machine(2, 2, Design::EnhancedGdr);
        let r1 = run(&m1, p);
        let m2 = machine(2, 2, Design::HostPipeline);
        let r2 = run(&m2, p);
        let c1 = r1.checksum.unwrap();
        let c2 = r2.checksum.unwrap();
        assert!((c1 - c2).abs() < 1e-12 * c1.abs().max(1.0));
        assert!(
            r1.elapsed < r2.elapsed,
            "GDR {} should beat baseline {}",
            r1.elapsed,
            r2.elapsed
        );
    }

    #[test]
    fn scaled_mode_runs_at_larger_scale() {
        let m = machine(4, 2, Design::EnhancedGdr); // 8 PEs
        let res = run(&m, StencilParams::bench(1024, 5));
        assert!(res.per_iter_us > 0.0);
        assert!(res.checksum.is_none());
    }

    #[test]
    fn single_pe_runs_without_neighbors() {
        let m = machine(1, 1, Design::EnhancedGdr);
        let res = run(&m, StencilParams::validate(16, 2));
        let want: f64 = serial_reference(16, 2).iter().sum();
        let got = res.checksum.unwrap();
        assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
    }
}
