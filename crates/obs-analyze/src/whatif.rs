//! What-if decision replay: re-route every recorded protocol decision
//! under an alternate `thresholds-v1` table and predict the aggregate
//! latency change, without re-running the workload.
//!
//! The replay mirrors the Enhanced-GDR dispatch rules on the decision
//! record's own inputs (size, buffer config, locality, socket
//! relation, candidate set). The baseline table is harvested from the
//! thresholds the recorded decisions actually consulted, so replaying
//! a trace against its own table predicts a delta of exactly zero —
//! the identity check `ci.sh` gates on. Re-routed decisions are priced
//! from the observed per-protocol latency curves of the same trace:
//! exact size-class mean when the alternate protocol was observed at
//! that size, a fitted/scaled estimate otherwise, and an explicit
//! `unpriced` count when the trace offers no evidence at all.

use crate::trace::{DecisionRec, Trace};
use obs::json::ObjWriter;
use obs::ThresholdTable;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema marker of [`WhatifReport::to_json`].
pub const WHATIF_SCHEMA: &str = "gdrprof-whatif-v1";

/// Compiled-in tuned values (`RuntimeConfig::tuned`), used for any
/// threshold a trace's decisions never consulted.
const DEFAULTS: [(&str, u64); 6] = [
    ("loopback_put_limit", 4 << 10),
    ("loopback_get_limit", 1 << 10),
    ("loopback_dd_limit", 2 << 10),
    ("gdr_put_limit", 32 << 10),
    ("gdr_get_limit", 16 << 10),
    ("proxy_get_min", 512 << 10),
];

/// The six threshold values the replayed dispatch consults.
#[derive(Clone, Copy, Debug)]
struct Table {
    loopback_put_limit: u64,
    loopback_get_limit: u64,
    loopback_dd_limit: u64,
    gdr_put_limit: u64,
    gdr_get_limit: u64,
    proxy_get_min: u64,
}

impl Table {
    fn set(&mut self, name: &str, v: u64) {
        match name {
            "loopback_put_limit" => self.loopback_put_limit = v,
            "loopback_get_limit" => self.loopback_get_limit = v,
            "loopback_dd_limit" => self.loopback_dd_limit = v,
            "gdr_put_limit" => self.gdr_put_limit = v,
            "gdr_get_limit" => self.gdr_get_limit = v,
            "proxy_get_min" => self.proxy_get_min = v,
            _ => {}
        }
    }
}

/// One re-routed `(op, size, from, to)` aggregate.
#[derive(Clone, Debug)]
pub struct WhatifRow {
    pub op: String,
    pub size: u64,
    pub from: String,
    pub to: String,
    pub count: u64,
    /// Total predicted latency change for these decisions (positive =
    /// the alternate table is slower); `None` when the trace offers no
    /// price for the alternate protocol near this size.
    pub delta_us: Option<f64>,
}

/// Aggregate prediction of one replay.
#[derive(Clone, Debug, Default)]
pub struct WhatifReport {
    /// Decisions the replay could model (multi-candidate cells with a
    /// completed op).
    pub replayed: u64,
    /// Of those, decisions the alternate table re-routes.
    pub changed: u64,
    /// Re-routed decisions the trace could not price (the alternate
    /// protocol was never observed for that op) — excluded from the
    /// delta, reported so a zero is never silently hollow.
    pub unpriced: u64,
    /// Recorded decisions whose replayed baseline choice disagrees
    /// with what the dispatch actually chose (faulted/demoted runs);
    /// diagnostic only — deltas compare replay vs replay, so a
    /// mismatch cannot fake a zero delta.
    pub model_mismatch: u64,
    /// The harvested baseline table entries (name, value).
    pub base: Vec<(String, u64)>,
    /// The overlaid entries from the `--thresholds` file.
    pub applied: Vec<(String, u64)>,
    /// Re-routes aggregated by `(op, size, from, to)`.
    pub rows: Vec<WhatifRow>,
    /// Sum of all priced row deltas, in microseconds.
    pub predicted_delta_us: f64,
}

/// Replay the Enhanced-GDR dispatch for one recorded decision under
/// `t`. Single-candidate cells have nothing to re-route; unknown
/// shapes fall back to the recorded choice.
fn select(d: &DecisionRec, t: &Table) -> String {
    if d.candidates.len() <= 1 {
        return d.chosen.clone();
    }
    let has = |p: &str| d.candidates.iter().any(|c| c == p);
    let dev = d.src_dev || d.dst_dev;
    match d.op.as_str() {
        "put" | "put-nbi" | "put-signal" if d.same_node && dev => {
            let limit = if d.src_dev && d.dst_dev {
                t.loopback_dd_limit.min(t.loopback_put_limit)
            } else {
                t.loopback_put_limit
            };
            if d.size <= limit { "loopback-gdr" } else { "ipc-copy" }.to_string()
        }
        "put" | "put-nbi" | "put-signal" if !d.same_node && dev => {
            // socket_rel describes the device end; for puts with a
            // device destination that is the destination GPU vs the
            // *target's* HCA — the P2P write direction the paper's
            // proxy protocol exists to avoid (§III-C)
            let dst_intra = d.dst_dev && d.socket_rel == "intra-socket";
            let direct_ok = d.size <= t.gdr_put_limit || (!d.src_dev && dst_intra);
            if direct_ok {
                "direct-gdr"
            } else if d.dst_dev && !dst_intra && has("proxy-pipeline") {
                "proxy-pipeline"
            } else {
                "pipeline-gdr-write"
            }
            .to_string()
        }
        "get" | "get-nbi" if d.same_node && dev => {
            if d.size <= t.loopback_get_limit { "loopback-gdr" } else { "ipc-copy" }.to_string()
        }
        "get" | "get-nbi" if !d.same_node && d.src_dev => {
            if d.size <= t.gdr_get_limit {
                "direct-gdr"
            } else if has("proxy-pipeline") && d.size >= t.proxy_get_min {
                "proxy-pipeline"
            } else {
                // chunked direct reads (the proxy-disabled ablation)
                "direct-gdr"
            }
            .to_string()
        }
        _ => d.chosen.clone(),
    }
}

/// Per-size-class evidence for one `(op, protocol)`: mean size and
/// mean critical-path latency.
type ClassMeans = BTreeMap<u8, (f64, f64)>;

/// Observed per-protocol latency evidence: for each `(op, protocol)`,
/// mean size and mean critical-path latency per log2 size class.
struct Prices(BTreeMap<(String, String), ClassMeans>);

impl Prices {
    fn collect(tr: &Trace) -> Prices {
        let rep = crate::analyze(tr);
        type ClassSums = BTreeMap<u8, (f64, f64, u64)>;
        let mut acc: BTreeMap<(String, String), ClassSums> = BTreeMap::new();
        for p in &rep.paths {
            let class = obs::hist::bucket_index(p.size) as u8;
            let e = acc
                .entry((p.op.clone(), p.protocol.clone()))
                .or_default()
                .entry(class)
                .or_insert((0.0, 0.0, 0));
            e.0 += p.size as f64;
            e.1 += p.total_us();
            e.2 += 1;
        }
        Prices(
            acc.into_iter()
                .map(|(k, classes)| {
                    (
                        k,
                        classes
                            .into_iter()
                            .map(|(c, (s, us, n))| (c, (s / n as f64, us / n as f64)))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Predicted mean latency of `(op, protocol)` at `size`.
    /// Precedence: exact size-class mean > affine fit through the two
    /// nearest classes > single observed point scaled linearly above
    /// its size (flat below it) > `None` (unpriced).
    fn price(&self, op: &str, protocol: &str, size: u64) -> Option<f64> {
        let classes = self.0.get(&(op.to_string(), protocol.to_string()))?;
        let class = obs::hist::bucket_index(size) as u8;
        if let Some(&(_, us)) = classes.get(&class) {
            return Some(us);
        }
        let pts: Vec<(f64, f64)> = classes.values().copied().collect();
        match pts.len() {
            0 => None,
            1 => {
                let (s0, m0) = pts[0];
                Some(if (size as f64) <= s0 { m0 } else { m0 * size as f64 / s0 })
            }
            _ => {
                // the two classes nearest the target size bracket the
                // local slope best
                let mut by_dist: Vec<(f64, f64)> = pts;
                by_dist.sort_by(|a, b| {
                    let da = (a.0 - size as f64).abs();
                    let db = (b.0 - size as f64).abs();
                    da.total_cmp(&db)
                });
                let (s1, m1) = by_dist[0];
                let (s2, m2) = by_dist[1];
                if s1 == s2 {
                    return Some(m1);
                }
                let slope = (m2 - m1) / (s2 - s1);
                Some((m1 + slope * (size as f64 - s1)).max(0.0))
            }
        }
    }
}

/// Replay every decision of `tr` against `alt` overlaid on the
/// harvested baseline table.
pub fn whatif(tr: &Trace, alt: &ThresholdTable) -> WhatifReport {
    // harvest the baseline: the thresholds the decisions actually
    // consulted (first value seen wins — constant within a run),
    // compiled-in defaults for the rest
    let mut base = Table {
        loopback_put_limit: 0,
        loopback_get_limit: 0,
        loopback_dd_limit: 0,
        gdr_put_limit: 0,
        gdr_get_limit: 0,
        proxy_get_min: 0,
    };
    let mut seen: BTreeMap<String, u64> = BTreeMap::new();
    for d in &tr.decisions {
        for (name, v) in &d.thresholds {
            seen.entry(name.clone()).or_insert(*v);
        }
    }
    for (name, v) in DEFAULTS {
        base.set(name, *seen.get(name).unwrap_or(&v));
    }
    let mut cand = base;
    for (name, v) in alt.iter() {
        cand.set(name, v);
    }

    let prices = Prices::collect(tr);
    let mut rep = WhatifReport {
        base: seen.into_iter().collect(),
        applied: alt.iter().map(|(n, v)| (n.to_string(), v)).collect(),
        ..WhatifReport::default()
    };

    // (op, size, from, to) -> (count, priced delta sum, any unpriced)
    type RouteKey = (String, u64, String, String);
    let mut agg: BTreeMap<RouteKey, (u64, f64, bool)> = BTreeMap::new();
    for d in &tr.decisions {
        if d.candidates.len() <= 1 {
            continue;
        }
        rep.replayed += 1;
        let before = select(d, &base);
        if before != d.chosen {
            rep.model_mismatch += 1;
        }
        let after = select(d, &cand);
        if after == before {
            continue;
        }
        rep.changed += 1;
        let delta = match (
            prices.price(&d.op, &before, d.size),
            prices.price(&d.op, &after, d.size),
        ) {
            (Some(old), Some(new)) => Some(new - old),
            _ => {
                rep.unpriced += 1;
                None
            }
        };
        let e = agg
            .entry((d.op.clone(), d.size, before, after))
            .or_insert((0, 0.0, false));
        e.0 += 1;
        match delta {
            Some(us) => e.1 += us,
            None => e.2 = true,
        }
    }
    for ((op, size, from, to), (count, delta, any_unpriced)) in agg {
        rep.predicted_delta_us += delta;
        rep.rows.push(WhatifRow {
            op,
            size,
            from,
            to,
            count,
            delta_us: if any_unpriced { None } else { Some(delta) },
        });
    }
    rep
}

impl WhatifReport {
    /// Human-readable rendering (the `gdrprof whatif` default).
    pub fn text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "gdrprof whatif (thresholds-v1 replay)");
        let fmt_table = |entries: &[(String, u64)]| {
            if entries.is_empty() {
                "(none)".to_string()
            } else {
                entries
                    .iter()
                    .map(|(n, v)| format!("{n}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        };
        let _ = writeln!(s, "baseline-thresholds: {}", fmt_table(&self.base));
        let _ = writeln!(s, "applied-thresholds: {}", fmt_table(&self.applied));
        let _ = writeln!(s, "decisions-replayed: {}", self.replayed);
        let _ = writeln!(s, "decisions-changed: {}", self.changed);
        let _ = writeln!(s, "decisions-unpriced: {}", self.unpriced);
        if self.model_mismatch > 0 {
            let _ = writeln!(s, "model-mismatch: {}", self.model_mismatch);
        }
        if !self.rows.is_empty() {
            let _ = writeln!(s, "re-routed:");
            for r in &self.rows {
                let delta = match r.delta_us {
                    Some(us) => format!("{us:+.3}us"),
                    None => "unpriced".to_string(),
                };
                let _ = writeln!(
                    s,
                    "  {:<10} {:>10}B  {} -> {}  x{}  {delta}",
                    r.op, r.size, r.from, r.to, r.count
                );
            }
        }
        let _ = writeln!(s, "predicted-delta-us: {:+.3}", self.predicted_delta_us);
        s
    }

    /// Machine-readable rendering; deterministic field order and float
    /// formatting.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let mut o = ObjWriter::new(&mut out);
        o.str_field("schema", WHATIF_SCHEMA);
        o.u64_field("replayed", self.replayed)
            .u64_field("changed", self.changed)
            .u64_field("unpriced", self.unpriced)
            .u64_field("model_mismatch", self.model_mismatch);
        let table_field = |o: &mut ObjWriter, key: &str, entries: &[(String, u64)]| {
            let buf = o.raw_field(key);
            let mut t = ObjWriter::new(buf);
            for (n, v) in entries {
                t.u64_field(n, *v);
            }
            t.finish();
        };
        table_field(&mut o, "base", &self.base);
        table_field(&mut o, "applied", &self.applied);
        {
            let buf = o.raw_field("rows");
            buf.push('[');
            for (i, r) in self.rows.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.str_field("op", &r.op)
                    .u64_field("size", r.size)
                    .str_field("from", &r.from)
                    .str_field("to", &r.to)
                    .u64_field("count", r.count);
                match r.delta_us {
                    Some(us) => {
                        e.num_field("delta_us", us);
                    }
                    None => e.raw_field("delta_us").push_str("null"),
                }
                e.finish();
            }
            buf.push(']');
        }
        o.num_field("predicted_delta_us", self.predicted_delta_us);
        o.finish();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(op: &str, size: u64, chosen: &str, cands: &[&str]) -> DecisionRec {
        DecisionRec {
            op: op.to_string(),
            chosen: chosen.to_string(),
            size,
            src_dev: true,
            dst_dev: true,
            same_node: false,
            socket_rel: "intra-socket".to_string(),
            candidates: cands.iter().map(|c| c.to_string()).collect(),
            thresholds: vec![
                ("gdr_get_limit".to_string(), 16384),
                ("proxy_get_min".to_string(), 524288),
            ],
            ..DecisionRec::default()
        }
    }

    #[test]
    fn replay_mirrors_the_get_dispatch() {
        let t = Table {
            loopback_put_limit: 4096,
            loopback_get_limit: 1024,
            loopback_dd_limit: 2048,
            gdr_put_limit: 32768,
            gdr_get_limit: 16384,
            proxy_get_min: 524288,
        };
        let cands = ["direct-gdr", "proxy-pipeline"];
        assert_eq!(select(&dec("get", 4096, "direct-gdr", &cands), &t), "direct-gdr");
        // above the direct limit but below the proxy floor: chunked
        // direct reads keep the direct-gdr label
        assert_eq!(select(&dec("get", 65536, "direct-gdr", &cands), &t), "direct-gdr");
        assert_eq!(
            select(&dec("get", 1 << 20, "proxy-pipeline", &cands), &t),
            "proxy-pipeline"
        );
        // single-candidate cells never re-route
        assert_eq!(select(&dec("atomic", 8, "hw-atomic", &["hw-atomic"]), &t), "hw-atomic");
    }

    #[test]
    fn replay_mirrors_the_put_dispatch() {
        let t = Table {
            loopback_put_limit: 4096,
            loopback_get_limit: 1024,
            loopback_dd_limit: 2048,
            gdr_put_limit: 32768,
            gdr_get_limit: 16384,
            proxy_get_min: 524288,
        };
        let cands = ["direct-gdr", "pipeline-gdr-write", "proxy-pipeline"];
        let mut d = dec("put", 16384, "direct-gdr", &cands);
        assert_eq!(select(&d, &t), "direct-gdr");
        d.size = 1 << 20;
        assert_eq!(select(&d, &t), "pipeline-gdr-write");
        // inter-socket destination GPU: the P2P write cap sends large
        // puts through the proxy
        d.socket_rel = "inter-socket".to_string();
        assert_eq!(select(&d, &t), "proxy-pipeline");
        // host source, intra-socket device destination: direct at any
        // size (clean write path)
        d.socket_rel = "intra-socket".to_string();
        d.src_dev = false;
        assert_eq!(select(&d, &t), "direct-gdr");
    }
}
