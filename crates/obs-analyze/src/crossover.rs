//! Crossover profiling: where does the dispatch actually switch
//! protocols, and do the static thresholds sit where the measured
//! curves cross?
//!
//! The paper's hybrid design (§III) rests on per-configuration
//! crossover points: loopback vs IPC intra-node, direct GDR vs the
//! staged pipelines inter-node. `gdrprof crossover` reconstructs the
//! observed latency curve per *(op, pair-class, buffer-config,
//! socket-relation)* cell from one trace, locates every size at which
//! the chosen protocol switches, names the threshold table entry that
//! governed the switch (with provenance: builtin vs `thresholds-v1`),
//! and estimates where the curves *actually* cross — flagging entries
//! that sit more than 2x away from the evidence. `--suggest` exports
//! the estimates as a `thresholds-v1` artifact that
//! `RuntimeConfig::with_threshold_table` (or `GDR_SHMEM_THRESHOLDS`)
//! can load, closing the autotuning loop.

use crate::trace::Trace;
use obs::json::ObjWriter;
use obs::ThresholdTable;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema marker of [`CrossoverReport::to_json`].
pub const CROSSOVER_SCHEMA: &str = "gdrprof-crossover-v1";

/// Mean observed critical-path latency of the protocol the dispatch
/// chose for one message size within one group.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    pub size: u64,
    pub protocol: String,
    pub mean_us: f64,
    pub count: u64,
}

/// One observed protocol switch between adjacent measured sizes.
#[derive(Clone, Debug)]
pub struct CrossoverPoint {
    /// `op/pair-class/buffer-config/socket-relation`.
    pub group: String,
    /// Protocol chosen at and below `below_size`.
    pub from: String,
    /// Protocol chosen at and above `above_size`.
    pub to: String,
    pub below_size: u64,
    pub above_size: u64,
    /// The recorded threshold entry whose value falls inside the
    /// switch window — the entry that governed this crossover. `None`
    /// when no consulted threshold sits in the window (the switch came
    /// from a locality rule, not a size limit).
    pub threshold: Option<(String, u64)>,
    /// Threshold provenance of the decisions in this group:
    /// `"builtin"` or `"thresholds-v1"`.
    pub tsource: String,
    /// Estimated true crossover size: intersection of the two
    /// protocols' fitted latency lines, clamped to the observed switch
    /// window and rounded to a power of two. Falls back to the
    /// geometric mean of the window when either side has too few
    /// points to fit.
    pub suggested: u64,
    /// The governing threshold sits more than 2x away from the
    /// suggested crossover — the static table disagrees with the
    /// measured curves.
    pub misconfigured: bool,
}

/// Latency curves plus the crossover points extracted from them.
#[derive(Clone, Debug, Default)]
pub struct CrossoverReport {
    /// group -> curve points sorted by size.
    pub curves: BTreeMap<String, Vec<CurvePoint>>,
    pub crossovers: Vec<CrossoverPoint>,
}

/// Per-(group, size) accumulation: latency per protocol seen there,
/// plus the threshold set consulted (first decision wins — the set is
/// constant within a cell).
#[derive(Default)]
struct Cell {
    by_proto: BTreeMap<String, (f64, u64)>,
    thresholds: Vec<(String, u64)>,
    tsource: String,
}

/// Round to the nearest power of two (geometric midpoint rule), so
/// suggested thresholds look like the hand-tuned ones they replace.
fn round_pow2(x: f64) -> u64 {
    if x < 1.5 {
        return 1;
    }
    let lo = 1u64 << (x as u64).ilog2();
    let hi = lo << 1;
    if x * x >= lo as f64 * hi as f64 {
        hi
    } else {
        lo
    }
}

/// Least-squares line through `(size, mean_us)` points: `(a, b)` of
/// `a + b*size`. `None` below two points or on a degenerate spread.
fn fit_line(pts: &[(f64, f64)]) -> Option<(f64, f64)> {
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let den = n * sxx - sx * sx;
    if den == 0.0 {
        return None;
    }
    let b = (n * sxy - sx * sy) / den;
    Some(((sy - b * sx) / n, b))
}

/// Estimate the true crossover size inside `[s1, s2]` from the two
/// protocols' fitted latency lines.
fn suggest(p1: &[(f64, f64)], p2: &[(f64, f64)], s1: u64, s2: u64) -> u64 {
    let geo = (s1 as f64 * s2 as f64).sqrt();
    let est = match (fit_line(p1), fit_line(p2)) {
        (Some((a1, b1)), Some((a2, b2))) if b1 != b2 => {
            let x = (a2 - a1) / (b1 - b2);
            if x.is_finite() {
                x.clamp(s1 as f64, s2 as f64)
            } else {
                geo
            }
        }
        _ => geo,
    };
    round_pow2(est)
}

/// Build the per-group latency curves and crossover points of one
/// trace. Joins decision records to reconstructed critical paths by
/// correlation id; decisions whose op never completed (or that predate
/// enriched records) are skipped.
pub fn crossover(tr: &Trace) -> CrossoverReport {
    let rep = crate::analyze(tr);
    let by_id: BTreeMap<u64, &crate::report::OpPath> =
        rep.paths.iter().map(|p| (p.op_id, p)).collect();

    let mut groups: BTreeMap<String, BTreeMap<u64, Cell>> = BTreeMap::new();
    for d in &tr.decisions {
        if d.op_id == 0 {
            continue;
        }
        let Some(path) = by_id.get(&d.op_id) else {
            continue;
        };
        let pair = if d.same_node { "intra-node" } else { "inter-node" };
        let bufs = match (d.src_dev, d.dst_dev) {
            (true, true) => "D-D",
            (true, false) => "D-H",
            (false, true) => "H-D",
            (false, false) => "H-H",
        };
        let rel = if d.socket_rel.is_empty() {
            "unknown"
        } else {
            &d.socket_rel
        };
        let group = format!("{}/{pair}/{bufs}/{rel}", d.op);
        let cell = groups.entry(group).or_default().entry(d.size).or_default();
        let e = cell.by_proto.entry(d.chosen.clone()).or_insert((0.0, 0));
        e.0 += path.total_us();
        e.1 += 1;
        if cell.thresholds.is_empty() {
            cell.thresholds = d.thresholds.clone();
        }
        if cell.tsource.is_empty() {
            cell.tsource = d.tsource.clone();
        }
    }

    let mut out = CrossoverReport::default();
    for (group, cells) in &groups {
        // curve: per size, the protocol the dispatch actually chose
        // (majority across the cell's runs; ties break by name)
        let mut curve: Vec<CurvePoint> = Vec::new();
        for (&size, cell) in cells {
            let Some((proto, &(sum, count))) =
                cell.by_proto.iter().max_by_key(|(name, (_, n))| (*n, std::cmp::Reverse(name.as_str())))
            else {
                continue;
            };
            curve.push(CurvePoint {
                size,
                protocol: proto.clone(),
                mean_us: sum / count as f64,
                count,
            });
        }

        // per-protocol latency points across the whole group, for fits
        let mut proto_pts: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
        for p in &curve {
            proto_pts
                .entry(p.protocol.as_str())
                .or_default()
                .push((p.size as f64, p.mean_us));
        }

        for w in curve.windows(2) {
            let (lo, hi) = (&w[0], &w[1]);
            if lo.protocol == hi.protocol {
                continue;
            }
            let cell = &cells[&lo.size];
            // the governing entry: a consulted threshold whose value
            // lies inside the switch window
            let threshold = cell
                .thresholds
                .iter()
                .chain(cells[&hi.size].thresholds.iter())
                .find(|(_, v)| *v >= lo.size && *v <= hi.size)
                .cloned();
            let suggested = suggest(
                &proto_pts[lo.protocol.as_str()],
                &proto_pts[hi.protocol.as_str()],
                lo.size,
                hi.size,
            );
            let misconfigured = threshold
                .as_ref()
                .is_some_and(|(_, v)| *v > 0 && (suggested > 2 * v || *v > 2 * suggested));
            out.crossovers.push(CrossoverPoint {
                group: group.clone(),
                from: lo.protocol.clone(),
                to: hi.protocol.clone(),
                below_size: lo.size,
                above_size: hi.size,
                threshold,
                tsource: cell.tsource.clone(),
                suggested,
                misconfigured,
            });
        }
        out.curves.insert(group.clone(), curve);
    }
    out
}

impl CrossoverReport {
    /// Export the suggested crossover sizes as a `thresholds-v1` table
    /// (the `--suggest` artifact). When several crossovers implicate
    /// the same entry, the smallest suggestion wins — the conservative
    /// choice for a limit that gates a bandwidth-capped path.
    pub fn suggestions(&self) -> ThresholdTable {
        let mut t = ThresholdTable::new();
        for c in &self.crossovers {
            if let Some((name, _)) = &c.threshold {
                let cur = t.get(name);
                if cur.is_none() || cur.is_some_and(|v| c.suggested < v) {
                    // unknown names can't occur: recorded thresholds
                    // come from the dispatch's own table
                    let _ = t.set(name, c.suggested);
                }
            }
        }
        t
    }

    /// Human-readable rendering (the `gdrprof crossover` default).
    pub fn text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "gdrprof crossover");
        let _ = writeln!(s, "\nlatency curves by op/pair/buffers/socket-relation:");
        for (group, curve) in &self.curves {
            let _ = writeln!(s, "  {group}:");
            for p in curve {
                let _ = writeln!(
                    s,
                    "    {:>10}B  {:<20} mean {:.3}us  n {}",
                    p.size, p.protocol, p.mean_us, p.count
                );
            }
        }
        let _ = writeln!(s, "\ncrossover points:");
        if self.crossovers.is_empty() {
            let _ = writeln!(s, "  none observed (single-protocol curves)");
        }
        for c in &self.crossovers {
            let gov = match &c.threshold {
                Some((name, v)) => format!("threshold {name}={v}, {}", c.tsource),
                None => "no threshold in window: locality rule".to_string(),
            };
            let mark = if c.misconfigured { "  MISCONFIGURED" } else { "" };
            let _ = writeln!(
                s,
                "  crossover {}: {} -> {} between {}B and {}B ({gov}) suggested {}B{mark}",
                c.group, c.from, c.to, c.below_size, c.above_size, c.suggested
            );
        }
        s
    }

    /// Machine-readable rendering. Deterministic like
    /// [`crate::report::Report::to_json`]: identical traces produce
    /// byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut o = ObjWriter::new(&mut out);
        o.str_field("schema", CROSSOVER_SCHEMA);
        {
            let buf = o.raw_field("curves");
            let mut cj = ObjWriter::new(buf);
            for (group, curve) in &self.curves {
                let buf = cj.raw_field(group);
                buf.push('[');
                for (i, p) in curve.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    let mut e = ObjWriter::new(buf);
                    e.u64_field("size", p.size)
                        .str_field("protocol", &p.protocol)
                        .num_field("mean_us", p.mean_us)
                        .u64_field("count", p.count);
                    e.finish();
                }
                buf.push(']');
            }
            cj.finish();
        }
        {
            let buf = o.raw_field("crossovers");
            buf.push('[');
            for (i, c) in self.crossovers.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.str_field("group", &c.group)
                    .str_field("from", &c.from)
                    .str_field("to", &c.to)
                    .u64_field("below_size", c.below_size)
                    .u64_field("above_size", c.above_size);
                match &c.threshold {
                    Some((name, v)) => {
                        e.str_field("threshold", name).u64_field("threshold_value", *v);
                    }
                    None => {
                        e.raw_field("threshold").push_str("null");
                    }
                }
                e.str_field("tsource", &c.tsource)
                    .u64_field("suggested", c.suggested)
                    .bool_field("misconfigured", c.misconfigured);
                e.finish();
            }
            buf.push(']');
        }
        o.finish();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_rounding_uses_geometric_midpoint() {
        assert_eq!(round_pow2(4096.0), 4096);
        assert_eq!(round_pow2(5000.0), 4096);
        // geometric midpoint of [4096, 8192] is ~5793
        assert_eq!(round_pow2(5900.0), 8192);
        assert_eq!(round_pow2(1.0), 1);
    }

    #[test]
    fn line_fit_recovers_exact_affine_points() {
        let pts = [(1024.0, 3.0), (2048.0, 5.0), (4096.0, 9.0)];
        let (a, b) = fit_line(&pts).expect("three points fit a line");
        assert!((a - 1.0).abs() < 1e-9, "intercept {a}");
        assert!((b - 1.0 / 512.0).abs() < 1e-12, "slope {b}");
        assert!(fit_line(&pts[..1]).is_none());
    }

    #[test]
    fn suggestion_clamps_to_the_observed_window() {
        // steep line crosses a flat one far left of the window: the
        // suggestion must stay inside [s1, s2]
        let cheap = [(1024.0, 1.0), (2048.0, 2.0)];
        let flat = [(4096.0, 1.5), (8192.0, 1.5)];
        let s = suggest(&cheap, &flat, 2048, 4096);
        assert!((2048..=4096).contains(&s), "suggested {s}");
    }
}
