//! Critical-path, utilization, and protocol analysis of one trace.

use crate::trace::{OpSpan, Trace};
use obs::json::{ObjWriter, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Schema marker written by [`Report::to_json`].
pub const REPORT_SCHEMA: &str = "gdrprof-report-v2";
/// Previous schema, still accepted by [`Report::from_json`] (missing
/// quantile sections rehydrate empty).
pub const REPORT_SCHEMA_V1: &str = "gdrprof-report-v1";

/// RMA/sync operations that carry a correlation id and participate in
/// the flow-linkage metric. Collectives (barrier etc.) are excluded:
/// they have no single remote completion to flow to.
pub const RMA_OPS: &[&str] = &["put", "get", "put-nbi", "get-nbi", "put-signal", "atomic"];

/// One operation's reconstructed critical path: from the origin call to
/// the last correlated activity (chunk span or remote-completion flow
/// end), with per-stage busy time (interval union, so overlapping
/// chunks of one stage are not double-counted).
#[derive(Clone, Debug)]
pub struct OpPath {
    pub op_id: u64,
    pub op: String,
    pub protocol: String,
    pub size: u64,
    pub start_us: f64,
    pub end_us: f64,
    /// stage name -> busy microseconds (union of that stage's chunks).
    pub stages: BTreeMap<String, f64>,
}

impl OpPath {
    pub fn total_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Aggregate critical-path statistics for one `op/protocol` pair.
#[derive(Clone, Debug, Default)]
pub struct ProtoStat {
    pub count: u64,
    pub bytes: u64,
    pub total_us: f64,
    pub min_us: f64,
    pub max_us: f64,
    pub stages: BTreeMap<String, f64>,
}

impl ProtoStat {
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }
}

/// Tail-latency quantiles for one `op × protocol × size-class` cell,
/// from a deterministic log-linear sketch over the ops' critical-path
/// times ([`obs::hist::Sketch`], ≤ 6.25 % relative error).
#[derive(Clone, Debug, Default)]
pub struct QuantileStat {
    /// Log2 size class of the cell ([`obs::hist::bucket_index`]).
    pub class: u8,
    pub count: u64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
}

/// Utilization summary of one hardware link track.
#[derive(Clone, Debug, Default)]
pub struct LinkStat {
    pub samples: u64,
    /// Cumulative bytes over the whole trace (final sample's total).
    pub bytes: u64,
    /// Cumulative busy time (final sample's total).
    pub busy_us: f64,
    pub peak_queue: u32,
    /// Contention windows: maximal runs of consecutive samples whose
    /// queue depth is >= 2 (a reservation had to wait).
    pub contended_windows: u64,
    pub contended_us: f64,
}

/// Fault-injection / recovery summary for one protocol (from the
/// `fault`/`retry`/`fallback` instants a faulted run records).
#[derive(Clone, Debug, Default)]
pub struct FaultStat {
    /// Transient faults injected (events).
    pub injected: u64,
    /// Retry decisions taken (events).
    pub retried: u64,
    /// Distinct ops that saw at least one injected fault.
    pub faulted_ops: u64,
    /// Of those, ops that still completed (their op span exists).
    pub recovered: u64,
    /// Fallback re-routes away from this protocol.
    pub fallbacks: u64,
    /// Event-context chunk replays (chunk-retry instants).
    pub chunk_retried: u64,
    /// Partial-delivery outcomes (ops that gave up mid-transfer).
    pub partials: u64,
    /// Bytes delivered across those partial outcomes.
    pub partial_delivered: u64,
    /// Bytes requested across those partial outcomes.
    pub partial_total: u64,
}

impl FaultStat {
    /// Fraction of faulted ops that still completed (1.0 when nothing
    /// was faulted).
    pub fn recovery_rate(&self) -> f64 {
        if self.faulted_ops == 0 {
            1.0
        } else {
            self.recovered as f64 / self.faulted_ops as f64
        }
    }
}

/// Circuit-breaker lifecycle summary for one protocol (from the
/// `demote`/`probe`/`promote` instants the health monitor records).
#[derive(Clone, Debug, Default)]
pub struct HealthStat {
    /// Breaker openings: the protocol was routed away from.
    pub demotes: u64,
    /// Half-open trial admissions after cooldown.
    pub probes: u64,
    /// Breaker closings: the protocol was re-admitted for good.
    pub promotes: u64,
}

impl HealthStat {
    /// Fraction of demotions the run recovered from (1.0 when the
    /// breaker never opened). A rate below 1.0 means at least one
    /// protocol was still demoted when the trace ended.
    pub fn promote_rate(&self) -> f64 {
        if self.demotes == 0 {
            1.0
        } else {
            (self.promotes.min(self.demotes)) as f64 / self.demotes as f64
        }
    }
}

/// Fail-stop membership summary (from the `pe-dead`/`evict`/
/// `view-change`/`rejoin` instants the membership layer records under
/// a `crash=` fault plan). All-zero on crash-free traces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemberStat {
    /// Crash detections (`pe-dead` instants).
    pub pe_dead: u64,
    /// Evictions applied to the view.
    pub evicts: u64,
    /// View-epoch bumps observed.
    pub view_changes: u64,
    /// Rejoin re-admissions (symmetric-heap re-registration done).
    pub rejoins: u64,
    /// Highest view epoch seen on any membership instant.
    pub last_epoch: u64,
    /// Worst observed view-convergence time: max over crashed PEs of
    /// (eviction instant − `pe-dead` instant), microseconds. The
    /// membership layer bounds this by `DETECT_BOUND_NS`; a growth here
    /// between runs means detection latency regressed.
    pub convergence_us: f64,
}

/// Network-partition lifecycle summary (from the `partition`/`fence`/
/// `heal` instants the membership layer records under a `partition=`
/// fault plan). All-zero on partition-free traces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionStat {
    /// Partition onsets observed (`partition` instants: split window
    /// starts and first-reroute cut detections).
    pub partitions: u64,
    /// Quorum fences applied to the view (`fence` instants).
    pub fences: u64,
    /// View merges after the split closed (`heal` instants).
    pub heals: u64,
    /// Highest view epoch seen on any partition instant.
    pub last_epoch: u64,
    /// Worst observed heal convergence: max over fenced splits of
    /// (heal instant − fence instant), microseconds. The membership
    /// layer bounds this by the split window length plus
    /// `HEAL_BOUND_NS`; a growth here between runs means the merge
    /// landed later than it used to.
    pub heal_convergence_us: f64,
}

/// Everything `gdrprof` reports about one trace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub trace_span_us: f64,
    pub ops_analyzed: u64,
    pub flow_started: u64,
    pub flow_matched: u64,
    /// `op/protocol` -> aggregate critical-path stats.
    pub protocols: BTreeMap<String, ProtoStat>,
    /// `op/protocol/cNN` (zero-padded size class) -> p50/p99/p999.
    pub quantiles: BTreeMap<String, QuantileStat>,
    /// `op/chosen-protocol` -> decision count.
    pub decisions: BTreeMap<String, u64>,
    /// protocol -> fault-injection/recovery stats (empty on clean runs).
    pub faults: BTreeMap<String, FaultStat>,
    /// protocol -> circuit-breaker lifecycle stats (empty when the
    /// health monitor never transitioned).
    pub health: BTreeMap<String, HealthStat>,
    /// Fail-stop membership lifecycle summary (all-zero on crash-free
    /// traces).
    pub membership: MemberStat,
    /// Network-partition lifecycle summary (all-zero on partition-free
    /// traces).
    pub partitions: PartitionStat,
    /// link track name -> utilization stats.
    pub links: BTreeMap<String, LinkStat>,
    /// Windowed-metrics snapshots present in the trace (0 when the
    /// plane was off).
    pub windows: u64,
    /// SLO watchdog violations recorded across those windows.
    pub slo_violations: u64,
    /// Per-op detail, sorted by op id.
    pub paths: Vec<OpPath>,
}

impl Report {
    /// Fraction of analyzed op spans whose flow start has a matching
    /// flow end (0..=1; 1.0 when there is nothing to link).
    pub fn flow_linkage(&self) -> f64 {
        if self.ops_analyzed == 0 {
            1.0
        } else {
            self.flow_matched as f64 / self.ops_analyzed as f64
        }
    }
}

/// Total length of the union of `[start, end)` intervals.
fn interval_union(mut iv: Vec<(f64, f64)>) -> f64 {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

fn is_rma(op: &OpSpan) -> bool {
    RMA_OPS.contains(&op.op.as_str())
}

/// Analyze one parsed trace into a [`Report`].
pub fn analyze(tr: &Trace) -> Report {
    let mut rep = Report {
        trace_span_us: tr.end_us,
        windows: tr.windows.len() as u64,
        slo_violations: tr.slo_violations.len() as u64,
        ..Report::default()
    };

    // flow endpoints by id
    let started: BTreeSet<u64> = tr.flow_starts.iter().map(|f| f.id).collect();
    let mut ended: BTreeMap<u64, f64> = BTreeMap::new();
    for f in &tr.flow_ends {
        let e = ended.entry(f.id).or_insert(f.ts_us);
        *e = e.max(f.ts_us);
    }

    // chunks grouped by correlation id
    let mut chunks_by_op: BTreeMap<u64, Vec<&crate::trace::ChunkSpan>> = BTreeMap::new();
    for c in &tr.chunks {
        if c.op_id != 0 {
            chunks_by_op.entry(c.op_id).or_default().push(c);
        }
    }

    for op in tr.ops.iter().filter(|o| is_rma(o)) {
        rep.ops_analyzed += 1;
        let mut end = op.ts_us + op.dur_us;
        let mut stages: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        if op.op_id != 0 {
            if started.contains(&op.op_id) {
                rep.flow_started += 1;
                if let Some(&fe) = ended.get(&op.op_id) {
                    rep.flow_matched += 1;
                    end = end.max(fe);
                }
            }
            if let Some(cs) = chunks_by_op.get(&op.op_id) {
                for c in cs {
                    end = end.max(c.ts_us + c.dur_us);
                    stages
                        .entry(c.stage.clone())
                        .or_default()
                        .push((c.ts_us, c.ts_us + c.dur_us));
                }
            }
        }
        let stages: BTreeMap<String, f64> = if stages.is_empty() {
            // chunkless protocols are a single hardware leg
            [("direct".to_string(), op.dur_us)].into()
        } else {
            stages
                .into_iter()
                .map(|(k, iv)| (k, interval_union(iv)))
                .collect()
        };
        let path = OpPath {
            op_id: op.op_id,
            op: op.op.clone(),
            protocol: op.protocol.clone(),
            size: op.size,
            start_us: op.ts_us,
            end_us: end,
            stages,
        };
        let key = format!("{}/{}", path.op, path.protocol);
        let st = rep.protocols.entry(key).or_default();
        let t = path.total_us();
        if st.count == 0 {
            st.min_us = t;
            st.max_us = t;
        } else {
            st.min_us = st.min_us.min(t);
            st.max_us = st.max_us.max(t);
        }
        st.count += 1;
        st.bytes += path.size;
        st.total_us += t;
        for (s, us) in &path.stages {
            *st.stages.entry(s.clone()).or_insert(0.0) += us;
        }
        rep.paths.push(path);
    }
    rep.paths.sort_by_key(|p| p.op_id);

    // tail-latency quantiles: sketch critical-path times (in ns, so the
    // log-linear buckets resolve sub-microsecond ops) per op × protocol
    // × size-class
    let mut sketches: BTreeMap<(String, String, u8), obs::hist::Sketch> = BTreeMap::new();
    for p in &rep.paths {
        let class = obs::hist::bucket_index(p.size) as u8;
        sketches
            .entry((p.op.clone(), p.protocol.clone(), class))
            .or_default()
            .record((p.total_us() * 1000.0).round() as u64);
    }
    for ((op, proto, class), s) in sketches {
        rep.quantiles.insert(
            format!("{op}/{proto}/c{class:02}"),
            QuantileStat {
                class,
                count: s.count,
                p50_us: s.p50() as f64 / 1000.0,
                p99_us: s.p99() as f64 / 1000.0,
                p999_us: s.p999() as f64 / 1000.0,
            },
        );
    }

    for d in &tr.decisions {
        *rep.decisions
            .entry(format!("{}/{}", d.op, d.chosen))
            .or_insert(0) += 1;
    }

    // fault machinery: per-protocol injected/retried counts, plus the
    // recovery rate — of the distinct ops that saw a fault, how many
    // still completed (their op span made it into the trace)
    let completed: BTreeSet<u64> = tr.ops.iter().map(|o| o.op_id).filter(|&id| id != 0).collect();
    let mut faulted_by_proto: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    for f in &tr.faults {
        let st = rep.faults.entry(f.protocol.clone()).or_default();
        st.injected += 1;
        if f.op_id != 0 {
            faulted_by_proto
                .entry(f.protocol.clone())
                .or_default()
                .insert(f.op_id);
        }
    }
    for r in &tr.retries {
        rep.faults.entry(r.protocol.clone()).or_default().retried += 1;
    }
    for r in &tr.chunk_retries {
        rep.faults
            .entry(r.protocol.clone())
            .or_default()
            .chunk_retried += 1;
    }
    for p in &tr.partials {
        let st = rep.faults.entry(p.protocol.clone()).or_default();
        st.partials += 1;
        st.partial_delivered += p.delivered;
        st.partial_total += p.total;
    }
    for fb in &tr.fallbacks {
        rep.faults.entry(fb.from.clone()).or_default().fallbacks += 1;
    }
    for (proto, ops) in faulted_by_proto {
        let st = rep.faults.entry(proto).or_default();
        st.faulted_ops = ops.len() as u64;
        st.recovered = ops.iter().filter(|id| completed.contains(id)).count() as u64;
    }

    for h in &tr.health {
        let st = rep.health.entry(h.protocol.clone()).or_default();
        match h.event.as_str() {
            "demote" => st.demotes += 1,
            "probe" => st.probes += 1,
            "promote" => st.promotes += 1,
            _ => {}
        }
    }

    // membership lifecycle: event counts plus the observed
    // view-convergence time — per crashed PE, eviction instant minus
    // the pe-dead instant; report the worst
    let mut dead_ts: BTreeMap<u32, f64> = BTreeMap::new();
    for m in &tr.membership {
        let st = &mut rep.membership;
        match m.event.as_str() {
            "pe-dead" => {
                st.pe_dead += 1;
                dead_ts.entry(m.pe).or_insert(m.ts_us);
            }
            "evict" => {
                st.evicts += 1;
                if let Some(&t0) = dead_ts.get(&m.pe) {
                    st.convergence_us = st.convergence_us.max(m.ts_us - t0);
                }
            }
            "view-change" => st.view_changes += 1,
            "rejoin" => st.rejoins += 1,
            _ => {}
        }
        st.last_epoch = st.last_epoch.max(m.epoch);
    }

    // partition lifecycle: event counts plus the observed heal
    // convergence — per fenced minority, heal instant minus the fence
    // instant; report the worst
    let mut fence_ts: BTreeMap<u32, f64> = BTreeMap::new();
    for m in &tr.partitions {
        let st = &mut rep.partitions;
        match m.event.as_str() {
            "partition" => st.partitions += 1,
            "fence" => {
                st.fences += 1;
                fence_ts.entry(m.pe).or_insert(m.ts_us);
            }
            "heal" => {
                st.heals += 1;
                if let Some(&t0) = fence_ts.get(&m.pe) {
                    st.heal_convergence_us = st.heal_convergence_us.max(m.ts_us - t0);
                }
            }
            _ => {}
        }
        st.last_epoch = st.last_epoch.max(m.epoch);
    }

    for (name, pts) in &tr.links {
        let mut ls = LinkStat {
            samples: pts.len() as u64,
            ..LinkStat::default()
        };
        let mut run_start: Option<f64> = None;
        let mut last_ts = 0.0f64;
        for p in pts {
            ls.bytes = ls.bytes.max(p.bytes_total);
            ls.busy_us = ls.busy_us.max(p.busy_us);
            ls.peak_queue = ls.peak_queue.max(p.queue);
            if p.queue >= 2 {
                run_start.get_or_insert(p.ts_us);
            } else if let Some(s) = run_start.take() {
                ls.contended_windows += 1;
                ls.contended_us += last_ts - s;
            }
            last_ts = p.ts_us;
        }
        if let Some(s) = run_start {
            ls.contended_windows += 1;
            ls.contended_us += last_ts - s;
        }
        rep.links.insert(name.clone(), ls);
    }
    rep
}

impl Report {
    /// Human-readable rendering (the `gdrprof analyze` default output).
    pub fn text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "gdrprof report");
        let _ = writeln!(s, "trace-span-us: {:.3}", self.trace_span_us);
        let _ = writeln!(s, "ops-analyzed: {}", self.ops_analyzed);
        let _ = writeln!(
            s,
            "flow-linkage: {:.1}% ({}/{})",
            self.flow_linkage() * 100.0,
            self.flow_matched,
            self.ops_analyzed
        );
        let _ = writeln!(s, "\ncritical path by op/protocol:");
        for (k, st) in &self.protocols {
            let _ = writeln!(
                s,
                "  {k:<28} count {:<5} bytes {:<10} mean {:.3}us  min {:.3}us  max {:.3}us",
                st.count, st.bytes, st.mean_us(), st.min_us, st.max_us
            );
            for (stage, us) in &st.stages {
                let _ = writeln!(s, "    stage {stage:<10} {us:.3}us");
            }
        }
        if !self.quantiles.is_empty() {
            let _ = writeln!(s, "\nlatency quantiles by op/protocol/size-class:");
            for (k, q) in &self.quantiles {
                let _ = writeln!(
                    s,
                    "  {k:<34} n {:<5} p50 {:.3}us  p99 {:.3}us  p999 {:.3}us",
                    q.count, q.p50_us, q.p99_us, q.p999_us
                );
            }
        }
        let _ = writeln!(s, "\nprotocol decisions:");
        for (k, n) in &self.decisions {
            let _ = writeln!(s, "  {k:<28} {n}");
        }
        if !self.faults.is_empty() {
            let _ = writeln!(s, "\nfault injection:");
            for (k, f) in &self.faults {
                let _ = writeln!(
                    s,
                    "  {k:<28} injected {:<5} retried {:<5} fallbacks {:<5} \
                     recovered {}/{} ({:.1}%)",
                    f.injected,
                    f.retried,
                    f.fallbacks,
                    f.recovered,
                    f.faulted_ops,
                    f.recovery_rate() * 100.0
                );
                if f.chunk_retried > 0 || f.partials > 0 {
                    let _ = writeln!(
                        s,
                        "  {:<28} chunk-retries {:<5} partial-deliveries {:<5} \
                         ({}/{} bytes landed)",
                        "", f.chunk_retried, f.partials, f.partial_delivered, f.partial_total
                    );
                }
            }
        }
        if !self.health.is_empty() {
            let _ = writeln!(s, "\nprotocol health:");
            for (k, h) in &self.health {
                let _ = writeln!(
                    s,
                    "  {k:<28} demotes {:<5} probes {:<5} promotes {:<5} \
                     promote-rate {:.1}%",
                    h.demotes,
                    h.probes,
                    h.promotes,
                    h.promote_rate() * 100.0
                );
            }
        }
        if self.membership.pe_dead > 0 || self.membership.rejoins > 0 {
            let m = &self.membership;
            let _ = writeln!(s, "\nmembership:");
            let _ = writeln!(
                s,
                "  pe-dead {:<5} evicts {:<5} view-changes {:<5} rejoins {:<5} last-epoch {}",
                m.pe_dead, m.evicts, m.view_changes, m.rejoins, m.last_epoch
            );
            let _ = writeln!(s, "  view-convergence {:.3}us (worst observed)", m.convergence_us);
        }
        if self.partitions != PartitionStat::default() {
            let p = &self.partitions;
            let _ = writeln!(s, "\npartitions:");
            let _ = writeln!(
                s,
                "  partitions {:<5} fences {:<5} heals {:<5} last-epoch {}",
                p.partitions, p.fences, p.heals, p.last_epoch
            );
            let _ = writeln!(
                s,
                "  heal-convergence {:.3}us (worst observed)",
                p.heal_convergence_us
            );
        }
        if self.windows > 0 {
            let _ = writeln!(
                s,
                "\nwindowed metrics: {} windows, {} slo-violations",
                self.windows, self.slo_violations
            );
        }
        let _ = writeln!(s, "\nlink utilization:");
        for (k, ls) in &self.links {
            let pct = if self.trace_span_us > 0.0 {
                ls.busy_us / self.trace_span_us * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                s,
                "  {k:<20} bytes {:<12} busy {:.3}us ({pct:.1}% of trace)  peak-queue {}  \
                 contended {} windows / {:.3}us",
                ls.bytes, ls.busy_us, ls.peak_queue, ls.contended_windows, ls.contended_us
            );
        }
        s
    }

    /// Machine-readable rendering: the `gdrprof-report-v2` JSON object.
    /// Field order and float formatting are deterministic, so identical
    /// traces produce byte-identical reports.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut o = ObjWriter::new(&mut out);
        o.str_field("schema", REPORT_SCHEMA);
        o.num_field("trace_span_us", self.trace_span_us);
        o.u64_field("ops_analyzed", self.ops_analyzed);
        {
            let buf = o.raw_field("flow");
            let mut f = ObjWriter::new(buf);
            f.u64_field("started", self.flow_started)
                .u64_field("matched", self.flow_matched)
                .num_field("linkage", self.flow_linkage());
            f.finish();
        }
        {
            let buf = o.raw_field("protocols");
            let mut p = ObjWriter::new(buf);
            for (k, st) in &self.protocols {
                let buf = p.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("count", st.count)
                    .u64_field("bytes", st.bytes)
                    .num_field("mean_us", st.mean_us())
                    .num_field("min_us", st.min_us)
                    .num_field("max_us", st.max_us);
                {
                    let buf = e.raw_field("stages");
                    let mut sj = ObjWriter::new(buf);
                    for (stage, us) in &st.stages {
                        sj.num_field(stage, *us);
                    }
                    sj.finish();
                }
                e.finish();
            }
            p.finish();
        }
        {
            // v2: per-op×protocol×size-class tail latencies (empty
            // object when the trace had no analyzable ops)
            let buf = o.raw_field("quantiles");
            let mut qj = ObjWriter::new(buf);
            for (k, q) in &self.quantiles {
                let buf = qj.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("class", q.class as u64)
                    .u64_field("count", q.count)
                    .num_field("p50_us", q.p50_us)
                    .num_field("p99_us", q.p99_us)
                    .num_field("p999_us", q.p999_us);
                e.finish();
            }
            qj.finish();
        }
        {
            let buf = o.raw_field("decisions");
            let mut d = ObjWriter::new(buf);
            for (k, n) in &self.decisions {
                d.u64_field(k, *n);
            }
            d.finish();
        }
        {
            // always present (empty object on clean runs) so consumers
            // can key on it without schema sniffing
            let buf = o.raw_field("faults");
            let mut fj = ObjWriter::new(buf);
            for (k, f) in &self.faults {
                let buf = fj.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("injected", f.injected)
                    .u64_field("retried", f.retried)
                    .u64_field("faulted_ops", f.faulted_ops)
                    .u64_field("recovered", f.recovered)
                    .u64_field("fallbacks", f.fallbacks)
                    .u64_field("chunk_retried", f.chunk_retried)
                    .u64_field("partials", f.partials)
                    .u64_field("partial_delivered", f.partial_delivered)
                    .u64_field("partial_total", f.partial_total)
                    .num_field("recovery_rate", f.recovery_rate());
                e.finish();
            }
            fj.finish();
        }
        {
            // like "faults": always present, empty object when the
            // breaker never moved
            let buf = o.raw_field("health");
            let mut hj = ObjWriter::new(buf);
            for (k, h) in &self.health {
                let buf = hj.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("demotes", h.demotes)
                    .u64_field("probes", h.probes)
                    .u64_field("promotes", h.promotes)
                    .num_field("promote_rate", h.promote_rate());
                e.finish();
            }
            hj.finish();
        }
        {
            // additive: fail-stop membership lifecycle (all zeros on
            // crash-free traces), for the membership diff gate
            let buf = o.raw_field("membership");
            let mut mj = ObjWriter::new(buf);
            mj.u64_field("pe_dead", self.membership.pe_dead)
                .u64_field("evicts", self.membership.evicts)
                .u64_field("view_changes", self.membership.view_changes)
                .u64_field("rejoins", self.membership.rejoins)
                .u64_field("last_epoch", self.membership.last_epoch)
                .num_field("convergence_us", self.membership.convergence_us);
            mj.finish();
        }
        {
            // additive: partition lifecycle (all zeros on partition-free
            // traces), for the partition diff gate
            let buf = o.raw_field("partitions");
            let mut pj = ObjWriter::new(buf);
            pj.u64_field("partitions", self.partitions.partitions)
                .u64_field("fences", self.partitions.fences)
                .u64_field("heals", self.partitions.heals)
                .u64_field("last_epoch", self.partitions.last_epoch)
                .num_field("heal_convergence_us", self.partitions.heal_convergence_us);
            pj.finish();
        }
        {
            let buf = o.raw_field("links");
            let mut l = ObjWriter::new(buf);
            for (k, ls) in &self.links {
                let buf = l.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("samples", ls.samples)
                    .u64_field("bytes", ls.bytes)
                    .num_field("busy_us", ls.busy_us)
                    .u64_field("peak_queue", ls.peak_queue as u64)
                    .u64_field("contended_windows", ls.contended_windows)
                    .num_field("contended_us", ls.contended_us);
                e.finish();
            }
            l.finish();
        }
        {
            // additive: windowed-metrics summary (zeros when the
            // metrics plane was off), for the SLO diff gate
            let buf = o.raw_field("timeline");
            let mut tj = ObjWriter::new(buf);
            tj.u64_field("windows", self.windows)
                .u64_field("violations", self.slo_violations);
            tj.finish();
        }
        {
            // per-op critical paths, for downstream tooling
            let buf = o.raw_field("ops");
            buf.push('[');
            for (i, p) in self.paths.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.u64_field("op_id", p.op_id);
                e.str_field("op", &p.op).str_field("protocol", &p.protocol);
                e.u64_field("size", p.size);
                e.num_field("start_us", p.start_us)
                    .num_field("end_us", p.end_us)
                    .num_field("total_us", p.total_us());
                {
                    let buf = e.raw_field("stages");
                    let mut sj = ObjWriter::new(buf);
                    for (stage, us) in &p.stages {
                        sj.num_field(stage, *us);
                    }
                    sj.finish();
                }
                e.finish();
            }
            buf.push(']');
        }
        o.finish();
        out
    }

    /// Rehydrate a report from its JSON form. Accepts both
    /// `gdrprof-report-v2` and legacy `gdrprof-report-v1` documents —
    /// sections v1 lacks (quantiles) come back empty. Per-op paths are
    /// not rehydrated (they are an export-only detail). Every failure
    /// names the field that was missing or mistyped.
    pub fn from_json(v: &Value) -> Result<Report, String> {
        fn f64_of(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
            v.get(key)
                .ok_or_else(|| format!("{ctx}: missing field {key:?}"))?
                .as_f64()
                .ok_or_else(|| format!("{ctx}: field {key:?} is not a number"))
        }
        fn u64_of(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
            f64_of(v, key, ctx).map(|n| n as u64)
        }
        match v.get("schema").and_then(Value::as_str) {
            Some(REPORT_SCHEMA) | Some(REPORT_SCHEMA_V1) => {}
            Some(other) => {
                return Err(format!(
                    "report: schema {other:?}, expected {REPORT_SCHEMA:?} or {REPORT_SCHEMA_V1:?}"
                ))
            }
            None => return Err("report: missing \"schema\" field".to_string()),
        }
        let mut rep = Report {
            trace_span_us: f64_of(v, "trace_span_us", "report")?,
            ops_analyzed: u64_of(v, "ops_analyzed", "report")?,
            ..Report::default()
        };
        if let Some(flow) = v.get("flow") {
            rep.flow_started = u64_of(flow, "started", "report.flow")?;
            rep.flow_matched = u64_of(flow, "matched", "report.flow")?;
        }
        let protocols = v
            .get("protocols")
            .ok_or("report: missing \"protocols\" object")?
            .as_obj()
            .ok_or("report: \"protocols\" is not an object")?;
        for (k, p) in protocols {
            let ctx = format!("report.protocols.{k}");
            let count = u64_of(p, "count", &ctx)?;
            let mut stages = BTreeMap::new();
            if let Some(sj) = p.get("stages").and_then(Value::as_obj) {
                for (stage, us) in sj {
                    stages.insert(
                        stage.clone(),
                        us.as_f64()
                            .ok_or_else(|| format!("{ctx}.stages.{stage}: not a number"))?,
                    );
                }
            }
            rep.protocols.insert(
                k.clone(),
                ProtoStat {
                    count,
                    bytes: u64_of(p, "bytes", &ctx)?,
                    total_us: f64_of(p, "mean_us", &ctx)? * count as f64,
                    min_us: f64_of(p, "min_us", &ctx)?,
                    max_us: f64_of(p, "max_us", &ctx)?,
                    stages,
                },
            );
        }
        // v2-only section: absent on v1 documents, rehydrates empty
        if let Some(quants) = v.get("quantiles").and_then(Value::as_obj) {
            for (k, q) in quants {
                let ctx = format!("report.quantiles.{k}");
                rep.quantiles.insert(
                    k.clone(),
                    QuantileStat {
                        class: u64_of(q, "class", &ctx)? as u8,
                        count: u64_of(q, "count", &ctx)?,
                        p50_us: f64_of(q, "p50_us", &ctx)?,
                        p99_us: f64_of(q, "p99_us", &ctx)?,
                        p999_us: f64_of(q, "p999_us", &ctx)?,
                    },
                );
            }
        }
        if let Some(decisions) = v.get("decisions").and_then(Value::as_obj) {
            for (k, n) in decisions {
                rep.decisions.insert(
                    k.clone(),
                    n.as_f64()
                        .ok_or_else(|| format!("report.decisions.{k}: not a number"))?
                        as u64,
                );
            }
        }
        // absent from pre-fault report files; treat that as empty
        if let Some(faults) = v.get("faults").and_then(Value::as_obj) {
            for (k, f) in faults {
                let ctx = format!("report.faults.{k}");
                rep.faults.insert(
                    k.clone(),
                    FaultStat {
                        injected: u64_of(f, "injected", &ctx)?,
                        retried: u64_of(f, "retried", &ctx)?,
                        faulted_ops: u64_of(f, "faulted_ops", &ctx)?,
                        recovered: u64_of(f, "recovered", &ctx)?,
                        fallbacks: u64_of(f, "fallbacks", &ctx)?,
                        // additive fields: absent from pre-partial-delivery
                        // report files, default to zero so old goldens load
                        chunk_retried: u64_of(f, "chunk_retried", &ctx).unwrap_or(0),
                        partials: u64_of(f, "partials", &ctx).unwrap_or(0),
                        partial_delivered: u64_of(f, "partial_delivered", &ctx).unwrap_or(0),
                        partial_total: u64_of(f, "partial_total", &ctx).unwrap_or(0),
                    },
                );
            }
        }
        // absent from pre-breaker report files; treat as empty
        if let Some(health) = v.get("health").and_then(Value::as_obj) {
            for (k, h) in health {
                let ctx = format!("report.health.{k}");
                rep.health.insert(
                    k.clone(),
                    HealthStat {
                        demotes: u64_of(h, "demotes", &ctx)?,
                        probes: u64_of(h, "probes", &ctx)?,
                        promotes: u64_of(h, "promotes", &ctx)?,
                    },
                );
            }
        }
        // additive: absent from pre-fail-stop report files, all-zero
        if let Some(m) = v.get("membership") {
            let ctx = "report.membership";
            rep.membership = MemberStat {
                pe_dead: u64_of(m, "pe_dead", ctx).unwrap_or(0),
                evicts: u64_of(m, "evicts", ctx).unwrap_or(0),
                view_changes: u64_of(m, "view_changes", ctx).unwrap_or(0),
                rejoins: u64_of(m, "rejoins", ctx).unwrap_or(0),
                last_epoch: u64_of(m, "last_epoch", ctx).unwrap_or(0),
                convergence_us: f64_of(m, "convergence_us", ctx).unwrap_or(0.0),
            };
        }
        // additive: absent from pre-partition report files, all-zero
        if let Some(p) = v.get("partitions") {
            let ctx = "report.partitions";
            rep.partitions = PartitionStat {
                partitions: u64_of(p, "partitions", ctx).unwrap_or(0),
                fences: u64_of(p, "fences", ctx).unwrap_or(0),
                heals: u64_of(p, "heals", ctx).unwrap_or(0),
                last_epoch: u64_of(p, "last_epoch", ctx).unwrap_or(0),
                heal_convergence_us: f64_of(p, "heal_convergence_us", ctx).unwrap_or(0.0),
            };
        }
        // additive: absent from pre-windowing report files, defaults 0
        if let Some(tl) = v.get("timeline") {
            rep.windows = u64_of(tl, "windows", "report.timeline").unwrap_or(0);
            rep.slo_violations = u64_of(tl, "violations", "report.timeline").unwrap_or(0);
        }
        // links ride along so the contention delta gate can compare
        // report files, not just raw traces
        if let Some(links) = v.get("links").and_then(Value::as_obj) {
            for (k, l) in links {
                let ctx = format!("report.links.{k}");
                rep.links.insert(
                    k.clone(),
                    LinkStat {
                        samples: u64_of(l, "samples", &ctx)?,
                        bytes: u64_of(l, "bytes", &ctx)?,
                        busy_us: f64_of(l, "busy_us", &ctx)?,
                        peak_queue: u64_of(l, "peak_queue", &ctx)? as u32,
                        contended_windows: u64_of(l, "contended_windows", &ctx)?,
                        contended_us: f64_of(l, "contended_us", &ctx)?,
                    },
                );
            }
        }
        Ok(rep)
    }

    /// As [`Report::from_json`] on an unparsed document.
    pub fn from_json_str(doc: &str) -> Result<Report, String> {
        let v = obs::json::parse(doc).map_err(|e| format!("report: not JSON: {e}"))?;
        Report::from_json(&v)
    }
}
