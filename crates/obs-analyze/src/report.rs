//! Critical-path, utilization, and protocol analysis of one trace.

use crate::trace::{OpSpan, Trace};
use obs::json::ObjWriter;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// RMA/sync operations that carry a correlation id and participate in
/// the flow-linkage metric. Collectives (barrier etc.) are excluded:
/// they have no single remote completion to flow to.
pub const RMA_OPS: &[&str] = &["put", "get", "put-nbi", "get-nbi", "put-signal", "atomic"];

/// One operation's reconstructed critical path: from the origin call to
/// the last correlated activity (chunk span or remote-completion flow
/// end), with per-stage busy time (interval union, so overlapping
/// chunks of one stage are not double-counted).
#[derive(Clone, Debug)]
pub struct OpPath {
    pub op_id: u64,
    pub op: String,
    pub protocol: String,
    pub size: u64,
    pub start_us: f64,
    pub end_us: f64,
    /// stage name -> busy microseconds (union of that stage's chunks).
    pub stages: BTreeMap<String, f64>,
}

impl OpPath {
    pub fn total_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Aggregate critical-path statistics for one `op/protocol` pair.
#[derive(Clone, Debug, Default)]
pub struct ProtoStat {
    pub count: u64,
    pub bytes: u64,
    pub total_us: f64,
    pub min_us: f64,
    pub max_us: f64,
    pub stages: BTreeMap<String, f64>,
}

impl ProtoStat {
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }
}

/// Utilization summary of one hardware link track.
#[derive(Clone, Debug, Default)]
pub struct LinkStat {
    pub samples: u64,
    /// Cumulative bytes over the whole trace (final sample's total).
    pub bytes: u64,
    /// Cumulative busy time (final sample's total).
    pub busy_us: f64,
    pub peak_queue: u32,
    /// Contention windows: maximal runs of consecutive samples whose
    /// queue depth is >= 2 (a reservation had to wait).
    pub contended_windows: u64,
    pub contended_us: f64,
}

/// Fault-injection / recovery summary for one protocol (from the
/// `fault`/`retry`/`fallback` instants a faulted run records).
#[derive(Clone, Debug, Default)]
pub struct FaultStat {
    /// Transient faults injected (events).
    pub injected: u64,
    /// Retry decisions taken (events).
    pub retried: u64,
    /// Distinct ops that saw at least one injected fault.
    pub faulted_ops: u64,
    /// Of those, ops that still completed (their op span exists).
    pub recovered: u64,
    /// Fallback re-routes away from this protocol.
    pub fallbacks: u64,
    /// Event-context chunk replays (chunk-retry instants).
    pub chunk_retried: u64,
    /// Partial-delivery outcomes (ops that gave up mid-transfer).
    pub partials: u64,
    /// Bytes delivered across those partial outcomes.
    pub partial_delivered: u64,
    /// Bytes requested across those partial outcomes.
    pub partial_total: u64,
}

impl FaultStat {
    /// Fraction of faulted ops that still completed (1.0 when nothing
    /// was faulted).
    pub fn recovery_rate(&self) -> f64 {
        if self.faulted_ops == 0 {
            1.0
        } else {
            self.recovered as f64 / self.faulted_ops as f64
        }
    }
}

/// Circuit-breaker lifecycle summary for one protocol (from the
/// `demote`/`probe`/`promote` instants the health monitor records).
#[derive(Clone, Debug, Default)]
pub struct HealthStat {
    /// Breaker openings: the protocol was routed away from.
    pub demotes: u64,
    /// Half-open trial admissions after cooldown.
    pub probes: u64,
    /// Breaker closings: the protocol was re-admitted for good.
    pub promotes: u64,
}

impl HealthStat {
    /// Fraction of demotions the run recovered from (1.0 when the
    /// breaker never opened). A rate below 1.0 means at least one
    /// protocol was still demoted when the trace ended.
    pub fn promote_rate(&self) -> f64 {
        if self.demotes == 0 {
            1.0
        } else {
            (self.promotes.min(self.demotes)) as f64 / self.demotes as f64
        }
    }
}

/// Everything `gdrprof` reports about one trace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub trace_span_us: f64,
    pub ops_analyzed: u64,
    pub flow_started: u64,
    pub flow_matched: u64,
    /// `op/protocol` -> aggregate critical-path stats.
    pub protocols: BTreeMap<String, ProtoStat>,
    /// `op/chosen-protocol` -> decision count.
    pub decisions: BTreeMap<String, u64>,
    /// protocol -> fault-injection/recovery stats (empty on clean runs).
    pub faults: BTreeMap<String, FaultStat>,
    /// protocol -> circuit-breaker lifecycle stats (empty when the
    /// health monitor never transitioned).
    pub health: BTreeMap<String, HealthStat>,
    /// link track name -> utilization stats.
    pub links: BTreeMap<String, LinkStat>,
    /// Per-op detail, sorted by op id.
    pub paths: Vec<OpPath>,
}

impl Report {
    /// Fraction of analyzed op spans whose flow start has a matching
    /// flow end (0..=1; 1.0 when there is nothing to link).
    pub fn flow_linkage(&self) -> f64 {
        if self.ops_analyzed == 0 {
            1.0
        } else {
            self.flow_matched as f64 / self.ops_analyzed as f64
        }
    }
}

/// Total length of the union of `[start, end)` intervals.
fn interval_union(mut iv: Vec<(f64, f64)>) -> f64 {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

fn is_rma(op: &OpSpan) -> bool {
    RMA_OPS.contains(&op.op.as_str())
}

/// Analyze one parsed trace into a [`Report`].
pub fn analyze(tr: &Trace) -> Report {
    let mut rep = Report {
        trace_span_us: tr.end_us,
        ..Report::default()
    };

    // flow endpoints by id
    let started: BTreeSet<u64> = tr.flow_starts.iter().map(|f| f.id).collect();
    let mut ended: BTreeMap<u64, f64> = BTreeMap::new();
    for f in &tr.flow_ends {
        let e = ended.entry(f.id).or_insert(f.ts_us);
        *e = e.max(f.ts_us);
    }

    // chunks grouped by correlation id
    let mut chunks_by_op: BTreeMap<u64, Vec<&crate::trace::ChunkSpan>> = BTreeMap::new();
    for c in &tr.chunks {
        if c.op_id != 0 {
            chunks_by_op.entry(c.op_id).or_default().push(c);
        }
    }

    for op in tr.ops.iter().filter(|o| is_rma(o)) {
        rep.ops_analyzed += 1;
        let mut end = op.ts_us + op.dur_us;
        let mut stages: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        if op.op_id != 0 {
            if started.contains(&op.op_id) {
                rep.flow_started += 1;
                if let Some(&fe) = ended.get(&op.op_id) {
                    rep.flow_matched += 1;
                    end = end.max(fe);
                }
            }
            if let Some(cs) = chunks_by_op.get(&op.op_id) {
                for c in cs {
                    end = end.max(c.ts_us + c.dur_us);
                    stages
                        .entry(c.stage.clone())
                        .or_default()
                        .push((c.ts_us, c.ts_us + c.dur_us));
                }
            }
        }
        let stages: BTreeMap<String, f64> = if stages.is_empty() {
            // chunkless protocols are a single hardware leg
            [("direct".to_string(), op.dur_us)].into()
        } else {
            stages
                .into_iter()
                .map(|(k, iv)| (k, interval_union(iv)))
                .collect()
        };
        let path = OpPath {
            op_id: op.op_id,
            op: op.op.clone(),
            protocol: op.protocol.clone(),
            size: op.size,
            start_us: op.ts_us,
            end_us: end,
            stages,
        };
        let key = format!("{}/{}", path.op, path.protocol);
        let st = rep.protocols.entry(key).or_default();
        let t = path.total_us();
        if st.count == 0 {
            st.min_us = t;
            st.max_us = t;
        } else {
            st.min_us = st.min_us.min(t);
            st.max_us = st.max_us.max(t);
        }
        st.count += 1;
        st.bytes += path.size;
        st.total_us += t;
        for (s, us) in &path.stages {
            *st.stages.entry(s.clone()).or_insert(0.0) += us;
        }
        rep.paths.push(path);
    }
    rep.paths.sort_by_key(|p| p.op_id);

    for d in &tr.decisions {
        *rep.decisions
            .entry(format!("{}/{}", d.op, d.chosen))
            .or_insert(0) += 1;
    }

    // fault machinery: per-protocol injected/retried counts, plus the
    // recovery rate — of the distinct ops that saw a fault, how many
    // still completed (their op span made it into the trace)
    let completed: BTreeSet<u64> = tr.ops.iter().map(|o| o.op_id).filter(|&id| id != 0).collect();
    let mut faulted_by_proto: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
    for f in &tr.faults {
        let st = rep.faults.entry(f.protocol.clone()).or_default();
        st.injected += 1;
        if f.op_id != 0 {
            faulted_by_proto
                .entry(f.protocol.clone())
                .or_default()
                .insert(f.op_id);
        }
    }
    for r in &tr.retries {
        rep.faults.entry(r.protocol.clone()).or_default().retried += 1;
    }
    for r in &tr.chunk_retries {
        rep.faults
            .entry(r.protocol.clone())
            .or_default()
            .chunk_retried += 1;
    }
    for p in &tr.partials {
        let st = rep.faults.entry(p.protocol.clone()).or_default();
        st.partials += 1;
        st.partial_delivered += p.delivered;
        st.partial_total += p.total;
    }
    for fb in &tr.fallbacks {
        rep.faults.entry(fb.from.clone()).or_default().fallbacks += 1;
    }
    for (proto, ops) in faulted_by_proto {
        let st = rep.faults.entry(proto).or_default();
        st.faulted_ops = ops.len() as u64;
        st.recovered = ops.iter().filter(|id| completed.contains(id)).count() as u64;
    }

    for h in &tr.health {
        let st = rep.health.entry(h.protocol.clone()).or_default();
        match h.event.as_str() {
            "demote" => st.demotes += 1,
            "probe" => st.probes += 1,
            "promote" => st.promotes += 1,
            _ => {}
        }
    }

    for (name, pts) in &tr.links {
        let mut ls = LinkStat {
            samples: pts.len() as u64,
            ..LinkStat::default()
        };
        let mut run_start: Option<f64> = None;
        let mut last_ts = 0.0f64;
        for p in pts {
            ls.bytes = ls.bytes.max(p.bytes_total);
            ls.busy_us = ls.busy_us.max(p.busy_us);
            ls.peak_queue = ls.peak_queue.max(p.queue);
            if p.queue >= 2 {
                run_start.get_or_insert(p.ts_us);
            } else if let Some(s) = run_start.take() {
                ls.contended_windows += 1;
                ls.contended_us += last_ts - s;
            }
            last_ts = p.ts_us;
        }
        if let Some(s) = run_start {
            ls.contended_windows += 1;
            ls.contended_us += last_ts - s;
        }
        rep.links.insert(name.clone(), ls);
    }
    rep
}

impl Report {
    /// Human-readable rendering (the `gdrprof analyze` default output).
    pub fn text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "gdrprof report");
        let _ = writeln!(s, "trace-span-us: {:.3}", self.trace_span_us);
        let _ = writeln!(s, "ops-analyzed: {}", self.ops_analyzed);
        let _ = writeln!(
            s,
            "flow-linkage: {:.1}% ({}/{})",
            self.flow_linkage() * 100.0,
            self.flow_matched,
            self.ops_analyzed
        );
        let _ = writeln!(s, "\ncritical path by op/protocol:");
        for (k, st) in &self.protocols {
            let _ = writeln!(
                s,
                "  {k:<28} count {:<5} bytes {:<10} mean {:.3}us  min {:.3}us  max {:.3}us",
                st.count, st.bytes, st.mean_us(), st.min_us, st.max_us
            );
            for (stage, us) in &st.stages {
                let _ = writeln!(s, "    stage {stage:<10} {us:.3}us");
            }
        }
        let _ = writeln!(s, "\nprotocol decisions:");
        for (k, n) in &self.decisions {
            let _ = writeln!(s, "  {k:<28} {n}");
        }
        if !self.faults.is_empty() {
            let _ = writeln!(s, "\nfault injection:");
            for (k, f) in &self.faults {
                let _ = writeln!(
                    s,
                    "  {k:<28} injected {:<5} retried {:<5} fallbacks {:<5} \
                     recovered {}/{} ({:.1}%)",
                    f.injected,
                    f.retried,
                    f.fallbacks,
                    f.recovered,
                    f.faulted_ops,
                    f.recovery_rate() * 100.0
                );
                if f.chunk_retried > 0 || f.partials > 0 {
                    let _ = writeln!(
                        s,
                        "  {:<28} chunk-retries {:<5} partial-deliveries {:<5} \
                         ({}/{} bytes landed)",
                        "", f.chunk_retried, f.partials, f.partial_delivered, f.partial_total
                    );
                }
            }
        }
        if !self.health.is_empty() {
            let _ = writeln!(s, "\nprotocol health:");
            for (k, h) in &self.health {
                let _ = writeln!(
                    s,
                    "  {k:<28} demotes {:<5} probes {:<5} promotes {:<5} \
                     promote-rate {:.1}%",
                    h.demotes,
                    h.probes,
                    h.promotes,
                    h.promote_rate() * 100.0
                );
            }
        }
        let _ = writeln!(s, "\nlink utilization:");
        for (k, ls) in &self.links {
            let pct = if self.trace_span_us > 0.0 {
                ls.busy_us / self.trace_span_us * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                s,
                "  {k:<20} bytes {:<12} busy {:.3}us ({pct:.1}% of trace)  peak-queue {}  \
                 contended {} windows / {:.3}us",
                ls.bytes, ls.busy_us, ls.peak_queue, ls.contended_windows, ls.contended_us
            );
        }
        s
    }

    /// Machine-readable rendering: the `gdrprof-report-v1` JSON object.
    /// Field order and float formatting are deterministic, so identical
    /// traces produce byte-identical reports.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut o = ObjWriter::new(&mut out);
        o.str_field("schema", "gdrprof-report-v1");
        o.num_field("trace_span_us", self.trace_span_us);
        o.u64_field("ops_analyzed", self.ops_analyzed);
        {
            let buf = o.raw_field("flow");
            let mut f = ObjWriter::new(buf);
            f.u64_field("started", self.flow_started)
                .u64_field("matched", self.flow_matched)
                .num_field("linkage", self.flow_linkage());
            f.finish();
        }
        {
            let buf = o.raw_field("protocols");
            let mut p = ObjWriter::new(buf);
            for (k, st) in &self.protocols {
                let buf = p.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("count", st.count)
                    .u64_field("bytes", st.bytes)
                    .num_field("mean_us", st.mean_us())
                    .num_field("min_us", st.min_us)
                    .num_field("max_us", st.max_us);
                {
                    let buf = e.raw_field("stages");
                    let mut sj = ObjWriter::new(buf);
                    for (stage, us) in &st.stages {
                        sj.num_field(stage, *us);
                    }
                    sj.finish();
                }
                e.finish();
            }
            p.finish();
        }
        {
            let buf = o.raw_field("decisions");
            let mut d = ObjWriter::new(buf);
            for (k, n) in &self.decisions {
                d.u64_field(k, *n);
            }
            d.finish();
        }
        {
            // always present (empty object on clean runs) so consumers
            // can key on it without schema sniffing
            let buf = o.raw_field("faults");
            let mut fj = ObjWriter::new(buf);
            for (k, f) in &self.faults {
                let buf = fj.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("injected", f.injected)
                    .u64_field("retried", f.retried)
                    .u64_field("faulted_ops", f.faulted_ops)
                    .u64_field("recovered", f.recovered)
                    .u64_field("fallbacks", f.fallbacks)
                    .u64_field("chunk_retried", f.chunk_retried)
                    .u64_field("partials", f.partials)
                    .u64_field("partial_delivered", f.partial_delivered)
                    .u64_field("partial_total", f.partial_total)
                    .num_field("recovery_rate", f.recovery_rate());
                e.finish();
            }
            fj.finish();
        }
        {
            // like "faults": always present, empty object when the
            // breaker never moved
            let buf = o.raw_field("health");
            let mut hj = ObjWriter::new(buf);
            for (k, h) in &self.health {
                let buf = hj.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("demotes", h.demotes)
                    .u64_field("probes", h.probes)
                    .u64_field("promotes", h.promotes)
                    .num_field("promote_rate", h.promote_rate());
                e.finish();
            }
            hj.finish();
        }
        {
            let buf = o.raw_field("links");
            let mut l = ObjWriter::new(buf);
            for (k, ls) in &self.links {
                let buf = l.raw_field(k);
                let mut e = ObjWriter::new(buf);
                e.u64_field("samples", ls.samples)
                    .u64_field("bytes", ls.bytes)
                    .num_field("busy_us", ls.busy_us)
                    .u64_field("peak_queue", ls.peak_queue as u64)
                    .u64_field("contended_windows", ls.contended_windows)
                    .num_field("contended_us", ls.contended_us);
                e.finish();
            }
            l.finish();
        }
        {
            // per-op critical paths, for downstream tooling
            let buf = o.raw_field("ops");
            buf.push('[');
            for (i, p) in self.paths.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.u64_field("op_id", p.op_id);
                e.str_field("op", &p.op).str_field("protocol", &p.protocol);
                e.u64_field("size", p.size);
                e.num_field("start_us", p.start_us)
                    .num_field("end_us", p.end_us)
                    .num_field("total_us", p.total_us());
                {
                    let buf = e.raw_field("stages");
                    let mut sj = ObjWriter::new(buf);
                    for (stage, us) in &p.stages {
                        sj.num_field(stage, *us);
                    }
                    sj.finish();
                }
                e.finish();
            }
            buf.push(']');
        }
        o.finish();
        out
    }
}
