//! `gdrprof` — critical-path profiler for recorder traces.
//!
//! ```text
//! gdrprof report <trace.json> [--json <report.json>]        (alias: analyze)
//! gdrprof diff <baseline.json> <candidate.json> [--threshold <pct>] [--json <diff.json>]
//! gdrprof crossover <trace.json> [--suggest <thresholds.json>] [--json <out.json>]
//! gdrprof whatif <trace.json> --thresholds <thresholds.json> [--json <out.json>]
//! gdrprof timeline <trace.json> [--window <us>] [--json <out.json>]
//! ```
//!
//! `diff` accepts either raw Chrome traces or `gdrprof-report-v2`
//! (and legacy v1) JSON files; traces are analyzed on the fly.
//! `crossover` reconstructs per-configuration latency curves and the
//! observed protocol-switch points; `--suggest` writes the estimated
//! true crossovers as a `thresholds-v1` artifact. `whatif` replays the
//! recorded protocol decisions under an alternate `thresholds-v1`
//! table and prints the predicted aggregate latency delta. `timeline`
//! turns a windowed trace (`GDR_SHMEM_OBS_WINDOW_US`) into a
//! per-window latency/contention/fault series with change-point flags;
//! `--window <us>` derives the windows from raw spans instead.
//!
//! Exit codes (CI gates on these):
//!   0  success
//!   1  usage error
//!   2  malformed trace / IO error
//!   3  trace contained no analyzable operations
//!   4  diff found a latency/recovery regression over the threshold
//!   5  diff found a contention-only regression (link contention grew,
//!      latencies held — the throughput early-warning gate)
//!   6  diff found an SLO-violation-count regression (the candidate's
//!      windowed metrics plane breached more budgets than the baseline)
//!   7  diff found a membership regression (the candidate converged its
//!      fail-stop view slower than the baseline or left more evictions
//!      without a rejoin)
//!   8  diff found a partition regression (the candidate healed its
//!      quorum-fenced view slower than the baseline or left more fences
//!      without a heal)

use obs_analyze::{analyze, crossover, diff, timeline, whatif, Report, Trace};
use std::process::ExitCode;

const USAGE: &str = "usage:
  gdrprof report <trace.json> [--json <report.json>]        (alias: analyze)
  gdrprof diff <baseline.json> <candidate.json> [--threshold <pct>] [--json <diff.json>]
  gdrprof crossover <trace.json> [--suggest <thresholds.json>] [--json <out.json>]
  gdrprof whatif <trace.json> --thresholds <thresholds.json> [--json <out.json>]
  gdrprof timeline <trace.json> [--window <us>] [--json <out.json>]

exit codes:
  0  success
  1  usage error
  2  malformed trace / IO error
  3  trace contained no analyzable operations
  4  diff found a latency/recovery regression over the threshold
  5  diff found a contention-only regression
  6  diff found an SLO-violation-count regression
  7  diff found a membership (fail-stop view) regression
  8  diff found a partition (quorum-fenced view) regression";

fn fail(code: u8, msg: &str) -> ExitCode {
    eprintln!("gdrprof: {msg}");
    ExitCode::from(code)
}

/// Load a report file (v2 or legacy v1) or analyze a raw trace.
fn load_report(path: &str) -> Result<Report, String> {
    let doc =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // a report file carries its schema marker; anything else must be a trace
    if let Ok(v) = obs::json::parse(&doc) {
        if v.get("schema")
            .and_then(|s| s.as_str())
            .is_some_and(|s| s.starts_with("gdrprof-report-"))
        {
            return Report::from_json(&v).map_err(|e| format!("{path}: {e}"));
        }
    }
    Ok(analyze(&Trace::parse(&doc).map_err(|e| format!("{path}: {e}"))?))
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let doc =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::parse(&doc).map_err(|e| format!("{path}: {e}"))
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut trace_path = None;
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return fail(1, "--json needs a path"),
            },
            _ if trace_path.is_none() => trace_path = Some(a.clone()),
            _ => return fail(1, USAGE),
        }
    }
    let Some(trace_path) = trace_path else {
        return fail(1, USAGE);
    };
    let tr = match load_trace(&trace_path) {
        Ok(t) => t,
        Err(e) => return fail(2, &e),
    };
    let rep = analyze(&tr);
    print!("{}", rep.text());
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, rep.to_json()) {
            return fail(2, &format!("cannot write {out}: {e}"));
        }
    }
    if rep.ops_analyzed == 0 {
        return fail(3, "trace contained no analyzable operations");
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = 10.0f64;
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => return fail(1, "--threshold needs a percentage"),
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return fail(1, "--json needs a path"),
            },
            _ => paths.push(a.clone()),
        }
    }
    let [a, b] = paths.as_slice() else {
        return fail(1, USAGE);
    };
    let (ra, rb) = match (load_report(a), load_report(b)) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(e), _) | (_, Err(e)) => return fail(2, &e),
    };
    let d = diff(&ra, &rb, threshold);
    print!("{}", d.text());
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, d.to_json()) {
            return fail(2, &format!("cannot write {out}: {e}"));
        }
    }
    if d.latency_regressions() > 0 {
        return fail(4, "regression over threshold");
    }
    if d.contention_regressions() > 0 {
        return fail(5, "link-contention regression over threshold");
    }
    if d.slo_regressions() > 0 {
        return fail(6, "slo-violation-count regression");
    }
    if d.membership_regressions() > 0 {
        return fail(7, "membership (fail-stop view) regression");
    }
    if d.partition_regressions() > 0 {
        return fail(8, "partition (quorum-fenced view) regression");
    }
    ExitCode::SUCCESS
}

fn cmd_timeline(args: &[String]) -> ExitCode {
    let mut trace_path = None;
    let mut window = None;
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--window" => match it.next().and_then(|w| w.parse::<u32>().ok()) {
                Some(w) => window = Some(w),
                None => return fail(1, "--window needs a microsecond count"),
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return fail(1, "--json needs a path"),
            },
            _ if trace_path.is_none() => trace_path = Some(a.clone()),
            _ => return fail(1, USAGE),
        }
    }
    let Some(trace_path) = trace_path else {
        return fail(1, USAGE);
    };
    let tr = match load_trace(&trace_path) {
        Ok(t) => t,
        Err(e) => return fail(2, &e),
    };
    let tl = match timeline(&tr, window) {
        Ok(t) => t,
        Err(e) => return fail(3, &e),
    };
    print!("{}", tl.text());
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, tl.to_json()) {
            return fail(2, &format!("cannot write {out}: {e}"));
        }
    }
    if tl.rows.is_empty() {
        return fail(3, "trace contained no windowed activity");
    }
    ExitCode::SUCCESS
}

fn cmd_crossover(args: &[String]) -> ExitCode {
    let mut trace_path = None;
    let mut suggest_out = None;
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suggest" => match it.next() {
                Some(p) => suggest_out = Some(p.clone()),
                None => return fail(1, "--suggest needs a path"),
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return fail(1, "--json needs a path"),
            },
            _ if trace_path.is_none() => trace_path = Some(a.clone()),
            _ => return fail(1, USAGE),
        }
    }
    let Some(trace_path) = trace_path else {
        return fail(1, USAGE);
    };
    let tr = match load_trace(&trace_path) {
        Ok(t) => t,
        Err(e) => return fail(2, &e),
    };
    let x = crossover(&tr);
    print!("{}", x.text());
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, x.to_json()) {
            return fail(2, &format!("cannot write {out}: {e}"));
        }
    }
    if let Some(out) = suggest_out {
        if let Err(e) = std::fs::write(&out, x.suggestions().to_json()) {
            return fail(2, &format!("cannot write {out}: {e}"));
        }
    }
    if x.curves.is_empty() {
        return fail(3, "trace contained no enriched decision records");
    }
    ExitCode::SUCCESS
}

fn cmd_whatif(args: &[String]) -> ExitCode {
    let mut trace_path = None;
    let mut table_path = None;
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--thresholds" => match it.next() {
                Some(p) => table_path = Some(p.clone()),
                None => return fail(1, "--thresholds needs a path"),
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return fail(1, "--json needs a path"),
            },
            _ if trace_path.is_none() => trace_path = Some(a.clone()),
            _ => return fail(1, USAGE),
        }
    }
    let (Some(trace_path), Some(table_path)) = (trace_path, table_path) else {
        return fail(1, USAGE);
    };
    let table = match std::fs::read_to_string(&table_path) {
        Ok(doc) => match obs::ThresholdTable::from_json_str(&doc) {
            Ok(t) => t,
            Err(e) => return fail(2, &format!("{table_path}: {e}")),
        },
        Err(e) => return fail(2, &format!("cannot read {table_path}: {e}")),
    };
    let tr = match load_trace(&trace_path) {
        Ok(t) => t,
        Err(e) => return fail(2, &e),
    };
    let w = whatif(&tr, &table);
    print!("{}", w.text());
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, w.to_json()) {
            return fail(2, &format!("cannot write {out}: {e}"));
        }
    }
    if w.replayed == 0 {
        return fail(3, "trace contained no replayable decision records");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, _)) if cmd == "--help" || cmd == "-h" || cmd == "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some((cmd, rest)) if cmd == "analyze" || cmd == "report" => cmd_analyze(rest),
        Some((cmd, rest)) if cmd == "diff" => cmd_diff(rest),
        Some((cmd, rest)) if cmd == "crossover" => cmd_crossover(rest),
        Some((cmd, rest)) if cmd == "whatif" => cmd_whatif(rest),
        Some((cmd, rest)) if cmd == "timeline" => cmd_timeline(rest),
        _ => fail(1, USAGE),
    }
}
