//! `gdrprof` — critical-path profiler for recorder traces.
//!
//! ```text
//! gdrprof analyze <trace.json> [--json <report.json>]
//! gdrprof diff <baseline.json> <candidate.json> [--threshold <pct>]
//! ```
//!
//! `diff` accepts either raw Chrome traces or `gdrprof-report-v1` JSON
//! files (the former are analyzed on the fly).
//!
//! Exit codes (CI gates on these):
//!   0  success
//!   1  usage error
//!   2  malformed trace / IO error
//!   3  trace contained no analyzable operations
//!   4  diff found a regression over the threshold

use obs_analyze::{analyze, diff, Report, Trace};
use std::process::ExitCode;

const USAGE: &str = "usage:
  gdrprof analyze <trace.json> [--json <report.json>]
  gdrprof diff <baseline.json> <candidate.json> [--threshold <pct>]";

fn fail(code: u8, msg: &str) -> ExitCode {
    eprintln!("gdrprof: {msg}");
    ExitCode::from(code)
}

fn load_report(path: &str) -> Result<Report, String> {
    let doc =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // a report file carries its schema marker; anything else must be a trace
    if let Ok(v) = obs::json::parse(&doc) {
        if v.get("schema").and_then(|s| s.as_str()) == Some("gdrprof-report-v1") {
            return report_from_json(&v)
                .ok_or_else(|| format!("{path}: malformed gdrprof-report-v1 document"));
        }
    }
    Ok(analyze(&Trace::parse(&doc).map_err(|e| format!("{path}: {e}"))?))
}

/// Rehydrate the subset of a report that `diff` needs (per-protocol
/// means) from its JSON form.
fn report_from_json(v: &obs::json::Value) -> Option<Report> {
    let mut rep = Report {
        trace_span_us: v.get("trace_span_us")?.as_f64()?,
        ops_analyzed: v.get("ops_analyzed")?.as_f64()? as u64,
        ..Report::default()
    };
    for (k, p) in v.get("protocols")?.as_obj()? {
        let count = p.get("count")?.as_f64()? as u64;
        let mean = p.get("mean_us")?.as_f64()?;
        // stage busy totals ride along so `diff` can attribute a
        // regressed mean to the stage that grew (fixture-based gates)
        let mut stages = std::collections::BTreeMap::new();
        if let Some(sj) = p.get("stages").and_then(|s| s.as_obj()) {
            for (stage, us) in sj {
                stages.insert(stage.clone(), us.as_f64()?);
            }
        }
        rep.protocols.insert(
            k.clone(),
            obs_analyze::ProtoStat {
                count,
                bytes: p.get("bytes")?.as_f64()? as u64,
                total_us: mean * count as f64,
                min_us: p.get("min_us")?.as_f64()?,
                max_us: p.get("max_us")?.as_f64()?,
                stages,
            },
        );
    }
    // faults is absent from pre-fault report files; treat that as empty
    if let Some(faults) = v.get("faults").and_then(|f| f.as_obj()) {
        for (k, f) in faults {
            rep.faults.insert(
                k.clone(),
                obs_analyze::FaultStat {
                    injected: f.get("injected")?.as_f64()? as u64,
                    retried: f.get("retried")?.as_f64()? as u64,
                    faulted_ops: f.get("faulted_ops")?.as_f64()? as u64,
                    recovered: f.get("recovered")?.as_f64()? as u64,
                    fallbacks: f.get("fallbacks")?.as_f64()? as u64,
                    // additive fields: absent from pre-partial-delivery
                    // report files, default to zero so old goldens load
                    chunk_retried: f
                        .get("chunk_retried")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0) as u64,
                    partials: f.get("partials").and_then(|v| v.as_f64()).unwrap_or(0.0)
                        as u64,
                    partial_delivered: f
                        .get("partial_delivered")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0) as u64,
                    partial_total: f
                        .get("partial_total")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0) as u64,
                },
            );
        }
    }
    // health is absent from pre-breaker report files; treat as empty
    if let Some(health) = v.get("health").and_then(|h| h.as_obj()) {
        for (k, h) in health {
            rep.health.insert(
                k.clone(),
                obs_analyze::HealthStat {
                    demotes: h.get("demotes")?.as_f64()? as u64,
                    probes: h.get("probes")?.as_f64()? as u64,
                    promotes: h.get("promotes")?.as_f64()? as u64,
                },
            );
        }
    }
    Some(rep)
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let mut trace_path = None;
    let mut json_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return fail(1, "--json needs a path"),
            },
            _ if trace_path.is_none() => trace_path = Some(a.clone()),
            _ => return fail(1, USAGE),
        }
    }
    let Some(trace_path) = trace_path else {
        return fail(1, USAGE);
    };
    let doc = match std::fs::read_to_string(&trace_path) {
        Ok(d) => d,
        Err(e) => return fail(2, &format!("cannot read {trace_path}: {e}")),
    };
    let tr = match Trace::parse(&doc) {
        Ok(t) => t,
        Err(e) => return fail(2, &format!("{trace_path}: {e}")),
    };
    let rep = analyze(&tr);
    print!("{}", rep.text());
    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(&out, rep.to_json()) {
            return fail(2, &format!("cannot write {out}: {e}"));
        }
    }
    if rep.ops_analyzed == 0 {
        return fail(3, "trace contained no analyzable operations");
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => return fail(1, "--threshold needs a percentage"),
            },
            _ => paths.push(a.clone()),
        }
    }
    let [a, b] = paths.as_slice() else {
        return fail(1, USAGE);
    };
    let (ra, rb) = match (load_report(a), load_report(b)) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(e), _) | (_, Err(e)) => return fail(2, &e),
    };
    let d = diff(&ra, &rb, threshold);
    print!("{}", d.text());
    if d.regressions() > 0 {
        return fail(4, "regression over threshold");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "analyze" => cmd_analyze(rest),
        Some((cmd, rest)) if cmd == "diff" => cmd_diff(rest),
        _ => fail(1, USAGE),
    }
}
