//! Chaos-campaign summary rendering (`gdrchaos-campaign-v1`).
//!
//! The campaign engine (`crates/chaos`) accumulates per-trial results
//! into a [`CampaignSummary`]; this module owns the deterministic text
//! rendering so the summary sits next to the other CI-diffable report
//! formats (same rules: BTreeMap iteration order, no wall-clock, no
//! floats). Two runs of the same campaign seed must render
//! byte-identical summaries — CI `cmp`s them.

use std::collections::BTreeMap;

/// Schema tag of the rendered summary (first line).
pub const CAMPAIGN_SCHEMA: &str = "gdrchaos-campaign-v1";

/// One invariant-oracle violation, as the campaign recorder saw it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignViolation {
    /// Trial index inside the campaign.
    pub trial: u64,
    /// Oracle that fired (e.g. `byte-correctness`, `staging-leak`).
    pub oracle: String,
    /// `GDR_SHMEM_FAULTS` grammar of the plan that produced it.
    pub plan: String,
    /// One-line diagnostic.
    pub detail: String,
}

/// Aggregated result of a whole campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    pub campaign_seed: u64,
    pub trials: u64,
    /// Trials run per workload name.
    pub workloads: BTreeMap<String, u64>,
    /// Every oracle the campaign checked (sorted on render).
    pub oracles: Vec<String>,
    pub violations: Vec<CampaignViolation>,
    /// Fault/retry counter totals summed across all trials,
    /// keyed by (what, protocol).
    pub fault_counters: BTreeMap<(String, String), u64>,
}

impl CampaignSummary {
    /// Deterministic text rendering; the `violations:` count line is
    /// what CI greps, the whole document is what CI `cmp`s across two
    /// runs of the same seed.
    pub fn render(&self) -> String {
        let mut s = format!("== gdrchaos campaign summary ({CAMPAIGN_SCHEMA}) ==\n");
        s.push_str(&format!("campaign-seed: {}\n", self.campaign_seed));
        s.push_str(&format!("trials: {}\n", self.trials));
        s.push_str("workloads:");
        for (w, n) in &self.workloads {
            s.push_str(&format!(" {w}={n}"));
        }
        s.push('\n');
        let mut oracles = self.oracles.clone();
        oracles.sort();
        s.push_str(&format!("oracles: {}\n", oracles.join(", ")));
        s.push_str(&format!("violations: {}\n", self.violations.len()));
        for v in &self.violations {
            s.push_str(&format!(
                "  trial {} [{}] plan \"{}\": {}\n",
                v.trial, v.oracle, v.plan, v.detail
            ));
        }
        s.push_str("fault-counters:\n");
        for ((what, proto), n) in &self.fault_counters {
            s.push_str(&format!("  {what}/{proto}: {n}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_ordered() {
        let mut c = CampaignSummary {
            campaign_seed: 7,
            trials: 3,
            ..Default::default()
        };
        c.workloads.insert("rma-random".into(), 2);
        c.workloads.insert("collectives".into(), 1);
        c.oracles = vec!["staging-leak".into(), "byte-correctness".into()];
        c.fault_counters.insert(("injected".into(), "direct-gdr".into()), 5);
        c.fault_counters.insert(("demote".into(), "direct-gdr".into()), 1);
        let a = c.render();
        let b = c.render();
        assert_eq!(a, b);
        assert!(a.starts_with("== gdrchaos campaign summary (gdrchaos-campaign-v1) ==\n"));
        assert!(a.contains("violations: 0\n"));
        // BTreeMap ordering: demote before injected, collectives before rma
        let demote = a.find("demote/direct-gdr").unwrap();
        let injected = a.find("injected/direct-gdr").unwrap();
        assert!(demote < injected);
        // oracle list is sorted regardless of insertion order
        assert!(a.contains("oracles: byte-correctness, staging-leak\n"));
    }

    #[test]
    fn violations_render_with_plan_and_detail() {
        let c = CampaignSummary {
            campaign_seed: 1,
            trials: 1,
            violations: vec![CampaignViolation {
                trial: 0,
                oracle: "byte-correctness".into(),
                plan: "seed=1 cqe=450".into(),
                detail: "cell 3 mismatch".into(),
            }],
            ..Default::default()
        };
        let r = c.render();
        assert!(r.contains("violations: 1\n"));
        assert!(r.contains("trial 0 [byte-correctness] plan \"seed=1 cqe=450\": cell 3 mismatch"));
    }
}
