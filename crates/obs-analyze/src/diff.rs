//! A/B comparison of two reports with a regression threshold.
//!
//! `gdrprof diff baseline.json candidate.json --threshold 10` compares
//! mean critical-path latency per `op/protocol` key and flags any key
//! whose candidate mean exceeds the baseline by more than the threshold
//! percentage. The process exit code gates CI on the result.

use crate::report::{ProtoStat, Report};
use obs::json::ObjWriter;
use std::fmt::Write as _;

/// One `op/protocol` key present in either report.
#[derive(Clone, Debug)]
pub struct DiffRow {
    pub key: String,
    /// Mean critical-path us in the baseline; `None` if the key is new.
    pub a_mean_us: Option<f64>,
    /// Mean critical-path us in the candidate; `None` if it vanished.
    pub b_mean_us: Option<f64>,
    /// Percent change (positive = slower), when both sides exist.
    pub delta_pct: Option<f64>,
    pub regressed: bool,
    /// When the row regressed and both sides carry per-stage busy time:
    /// the pipeline stage whose per-op mean grew the most — where the
    /// regression actually lives (d2h staging? rdma leg? wakeup?).
    pub stage: Option<StageDelta>,
}

/// Stage-level attribution of a regressed row.
#[derive(Clone, Debug)]
pub struct StageDelta {
    pub stage: String,
    /// Baseline per-op mean busy us for this stage.
    pub a_us: f64,
    /// Candidate per-op mean busy us.
    pub b_us: f64,
}

/// Recovery-rate comparison for one protocol's fault machinery.
#[derive(Clone, Debug)]
pub struct RecoveryRow {
    pub protocol: String,
    /// Baseline recovery rate (0..=1).
    pub a_rate: f64,
    /// Candidate recovery rate (0..=1).
    pub b_rate: f64,
    pub regressed: bool,
}

/// Partial-delivery comparison for one protocol: the fraction of the
/// requested bytes that actually landed across partial outcomes.
#[derive(Clone, Debug)]
pub struct PartialRow {
    pub protocol: String,
    /// Baseline delivered fraction (0..=1; 1.0 with no partials).
    pub a_fraction: f64,
    /// Candidate delivered fraction.
    pub b_fraction: f64,
    pub regressed: bool,
}

/// Promote-rate comparison for one protocol's circuit breaker: of the
/// demotions each run saw, what fraction were recovered (promoted)
/// before the trace ended.
#[derive(Clone, Debug)]
pub struct HealthRow {
    pub protocol: String,
    /// Baseline promote rate (0..=1; 1.0 with no demotions).
    pub a_rate: f64,
    /// Candidate promote rate.
    pub b_rate: f64,
    pub regressed: bool,
}

/// SLO watchdog comparison: total `slo-violation` instants each run's
/// windowed metrics plane recorded. The candidate must not violate
/// more budgets than the baseline — this is a count gate, not a
/// threshold gate, and trips exit code 6.
#[derive(Clone, Debug)]
pub struct SloRow {
    pub a_windows: u64,
    pub b_windows: u64,
    pub a_violations: u64,
    pub b_violations: u64,
    pub regressed: bool,
}

/// Fail-stop membership comparison: view-convergence time and
/// unrecovered evictions. The candidate must not converge slower than
/// the baseline (beyond the threshold, relative) and must not leave
/// more evictions without a matching rejoin. A membership regression
/// trips exit code 7.
#[derive(Clone, Debug)]
pub struct MembershipRow {
    /// Baseline worst view-convergence time, microseconds.
    pub a_convergence_us: f64,
    /// Candidate worst view-convergence time.
    pub b_convergence_us: f64,
    /// Baseline evictions never followed by a rejoin.
    pub a_unrecovered: u64,
    /// Candidate evictions never followed by a rejoin.
    pub b_unrecovered: u64,
    pub regressed: bool,
}

/// Network-partition comparison: heal-convergence time and unhealed
/// fences. The candidate must not merge its view back slower than the
/// baseline (beyond the threshold, relative) and must not leave more
/// quorum fences without a matching heal. A partition regression trips
/// exit code 8.
#[derive(Clone, Debug)]
pub struct PartitionRow {
    /// Baseline worst heal-convergence time, microseconds.
    pub a_heal_us: f64,
    /// Candidate worst heal-convergence time.
    pub b_heal_us: f64,
    /// Baseline fences never followed by a heal.
    pub a_unhealed: u64,
    /// Candidate fences never followed by a heal.
    pub b_unhealed: u64,
    pub regressed: bool,
}

/// Link-contention comparison for one hardware link track: the fraction
/// of the trace each run spent with the link's queue depth >= 2.
#[derive(Clone, Debug)]
pub struct ContentionRow {
    pub link: String,
    /// Baseline contended fraction (0..=1).
    pub a_frac: f64,
    /// Candidate contended fraction.
    pub b_frac: f64,
    pub regressed: bool,
}

#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    pub threshold_pct: f64,
    pub rows: Vec<DiffRow>,
    /// Present when either side recorded fault machinery: the candidate
    /// must not recover a smaller fraction of faulted ops than the
    /// baseline (beyond the threshold, in percentage points).
    pub recovery: Vec<RecoveryRow>,
    /// Present when either side recorded partial deliveries: the
    /// candidate must not deliver a smaller fraction of the requested
    /// bytes than the baseline (beyond the threshold, in percentage
    /// points).
    pub partial: Vec<PartialRow>,
    /// Present when either side demoted a protocol: the candidate must
    /// not promote back a smaller fraction of its demotions than the
    /// baseline (beyond the threshold, in percentage points).
    pub health: Vec<HealthRow>,
    /// Present when either side sampled link utilization: the candidate
    /// must not spend a larger fraction of its trace contended (queue
    /// depth >= 2) than the baseline, beyond the threshold in
    /// percentage points. Contention-only regressions exit with code 5
    /// rather than 4 — a throughput early-warning, distinct from a
    /// latency regression.
    pub contention: Vec<ContentionRow>,
    /// Present when either side recorded windowed metrics: the
    /// candidate must not record more SLO violations than the
    /// baseline. A violation-count regression exits with code 6.
    pub slo: Option<SloRow>,
    /// Present when either side observed a fail-stop eviction: the
    /// candidate must not converge its membership view slower than the
    /// baseline nor leave more evictions unrecovered. A membership
    /// regression exits with code 7.
    pub membership: Option<MembershipRow>,
    /// Present when either side observed a quorum fence: the candidate
    /// must not heal slower than the baseline nor leave more fences
    /// unhealed. A partition regression exits with code 8.
    pub partition: Option<PartitionRow>,
}

impl DiffReport {
    pub fn regressions(&self) -> usize {
        self.latency_regressions()
            + self.contention_regressions()
            + self.slo_regressions()
            + self.membership_regressions()
            + self.partition_regressions()
    }

    /// Regressed rows in the latency/recovery/partial/health sections —
    /// everything except link contention.
    pub fn latency_regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
            + self.recovery.iter().filter(|r| r.regressed).count()
            + self.partial.iter().filter(|r| r.regressed).count()
            + self.health.iter().filter(|r| r.regressed).count()
    }

    /// Regressed link-contention rows (the exit-code-5 gate).
    pub fn contention_regressions(&self) -> usize {
        self.contention.iter().filter(|r| r.regressed).count()
    }

    /// SLO violation-count regressions (the exit-code-6 gate): 1 when
    /// the candidate violated more budgets than the baseline.
    pub fn slo_regressions(&self) -> usize {
        usize::from(self.slo.as_ref().is_some_and(|s| s.regressed))
    }

    /// Membership regressions (the exit-code-7 gate): 1 when the
    /// candidate converged its view slower than the baseline or left
    /// more evictions unrecovered.
    pub fn membership_regressions(&self) -> usize {
        usize::from(self.membership.as_ref().is_some_and(|m| m.regressed))
    }

    /// Partition regressions (the exit-code-8 gate): 1 when the
    /// candidate healed its quorum-fenced view slower than the baseline
    /// or left more fences unhealed.
    pub fn partition_regressions(&self) -> usize {
        usize::from(self.partition.as_ref().is_some_and(|p| p.regressed))
    }

    pub fn text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "gdrprof diff (regression threshold {:.1}%)",
            self.threshold_pct
        );
        for r in &self.rows {
            let fmt_side = |m: Option<f64>| match m {
                Some(us) => format!("{us:.3}us"),
                None => "-".to_string(),
            };
            let delta = match r.delta_pct {
                Some(d) => format!("{d:+.1}%"),
                None => "n/a".to_string(),
            };
            let mark = if r.regressed { "  REGRESSED" } else { "" };
            let _ = writeln!(
                s,
                "  {:<28} a {:<12} b {:<12} {delta}{mark}",
                r.key,
                fmt_side(r.a_mean_us),
                fmt_side(r.b_mean_us),
            );
            if let Some(sd) = &r.stage {
                let _ = writeln!(
                    s,
                    "  {:<28} stage {:<10} a {:.3}us  b {:.3}us per op",
                    "", sd.stage, sd.a_us, sd.b_us,
                );
            }
        }
        if !self.recovery.is_empty() {
            let _ = writeln!(s, "recovery-rate:");
            for r in &self.recovery {
                let mark = if r.regressed { "  REGRESSED" } else { "" };
                let _ = writeln!(
                    s,
                    "  {:<28} a {:>6.1}%      b {:>6.1}%{mark}",
                    r.protocol,
                    r.a_rate * 100.0,
                    r.b_rate * 100.0,
                );
            }
        }
        if !self.partial.is_empty() {
            let _ = writeln!(s, "partial-delivery (bytes landed):");
            for r in &self.partial {
                let mark = if r.regressed { "  REGRESSED" } else { "" };
                let _ = writeln!(
                    s,
                    "  {:<28} a {:>6.1}%      b {:>6.1}%{mark}",
                    r.protocol,
                    r.a_fraction * 100.0,
                    r.b_fraction * 100.0,
                );
            }
        }
        if !self.health.is_empty() {
            let _ = writeln!(s, "promote-rate (demotions recovered):");
            for r in &self.health {
                let mark = if r.regressed { "  REGRESSED" } else { "" };
                let _ = writeln!(
                    s,
                    "  {:<28} a {:>6.1}%      b {:>6.1}%{mark}",
                    r.protocol,
                    r.a_rate * 100.0,
                    r.b_rate * 100.0,
                );
            }
        }
        if !self.contention.is_empty() {
            let _ = writeln!(s, "link-contention (fraction of trace contended):");
            for r in &self.contention {
                let mark = if r.regressed { "  REGRESSED" } else { "" };
                let _ = writeln!(
                    s,
                    "  {:<28} a {:>6.1}%      b {:>6.1}%{mark}",
                    r.link,
                    r.a_frac * 100.0,
                    r.b_frac * 100.0,
                );
            }
        }
        if let Some(slo) = &self.slo {
            let mark = if slo.regressed { "  REGRESSED" } else { "" };
            let _ = writeln!(s, "slo-violations (windowed metrics):");
            let _ = writeln!(
                s,
                "  {:<28} a {:<5} in {:<4} windows  b {:<5} in {:<4} windows{mark}",
                "violations", slo.a_violations, slo.a_windows, slo.b_violations, slo.b_windows,
            );
        }
        if let Some(m) = &self.membership {
            let mark = if m.regressed { "  REGRESSED" } else { "" };
            let _ = writeln!(s, "membership (fail-stop view):");
            let _ = writeln!(
                s,
                "  {:<28} a {:.3}us / {} unrecovered  b {:.3}us / {} unrecovered{mark}",
                "view-convergence",
                m.a_convergence_us,
                m.a_unrecovered,
                m.b_convergence_us,
                m.b_unrecovered,
            );
        }
        if let Some(p) = &self.partition {
            let mark = if p.regressed { "  REGRESSED" } else { "" };
            let _ = writeln!(s, "partitions (quorum-fenced view):");
            let _ = writeln!(
                s,
                "  {:<28} a {:.3}us / {} unhealed  b {:.3}us / {} unhealed{mark}",
                "heal-convergence",
                p.a_heal_us,
                p.a_unhealed,
                p.b_heal_us,
                p.b_unhealed,
            );
        }
        let _ = writeln!(s, "regressions: {}", self.regressions());
        s
    }

    /// Machine-readable rendering of the diff (`gdrprof diff --json`).
    /// Deterministic field order and float formatting, like
    /// [`Report::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let mut o = ObjWriter::new(&mut out);
        o.str_field("schema", "gdrprof-diff-v1");
        o.num_field("threshold_pct", self.threshold_pct);
        {
            let buf = o.raw_field("rows");
            buf.push('[');
            for (i, r) in self.rows.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.str_field("key", &r.key);
                match r.a_mean_us {
                    Some(v) => {
                        e.num_field("a_mean_us", v);
                    }
                    None => e.raw_field("a_mean_us").push_str("null"),
                }
                match r.b_mean_us {
                    Some(v) => {
                        e.num_field("b_mean_us", v);
                    }
                    None => e.raw_field("b_mean_us").push_str("null"),
                }
                match r.delta_pct {
                    Some(v) => {
                        e.num_field("delta_pct", v);
                    }
                    None => e.raw_field("delta_pct").push_str("null"),
                }
                e.bool_field("regressed", r.regressed);
                if let Some(sd) = &r.stage {
                    let buf = e.raw_field("stage");
                    let mut sj = ObjWriter::new(buf);
                    sj.str_field("stage", &sd.stage)
                        .num_field("a_us", sd.a_us)
                        .num_field("b_us", sd.b_us);
                    sj.finish();
                }
                e.finish();
            }
            buf.push(']');
        }
        {
            let buf = o.raw_field("recovery");
            let mut rj = ObjWriter::new(buf);
            for r in &self.recovery {
                let buf = rj.raw_field(&r.protocol);
                let mut e = ObjWriter::new(buf);
                e.num_field("a_rate", r.a_rate)
                    .num_field("b_rate", r.b_rate)
                    .bool_field("regressed", r.regressed);
                e.finish();
            }
            rj.finish();
        }
        {
            let buf = o.raw_field("partial");
            let mut pj = ObjWriter::new(buf);
            for r in &self.partial {
                let buf = pj.raw_field(&r.protocol);
                let mut e = ObjWriter::new(buf);
                e.num_field("a_fraction", r.a_fraction)
                    .num_field("b_fraction", r.b_fraction)
                    .bool_field("regressed", r.regressed);
                e.finish();
            }
            pj.finish();
        }
        {
            let buf = o.raw_field("health");
            let mut hj = ObjWriter::new(buf);
            for r in &self.health {
                let buf = hj.raw_field(&r.protocol);
                let mut e = ObjWriter::new(buf);
                e.num_field("a_rate", r.a_rate)
                    .num_field("b_rate", r.b_rate)
                    .bool_field("regressed", r.regressed);
                e.finish();
            }
            hj.finish();
        }
        {
            let buf = o.raw_field("contention");
            let mut cj = ObjWriter::new(buf);
            for r in &self.contention {
                let buf = cj.raw_field(&r.link);
                let mut e = ObjWriter::new(buf);
                e.num_field("a_frac", r.a_frac)
                    .num_field("b_frac", r.b_frac)
                    .bool_field("regressed", r.regressed);
                e.finish();
            }
            cj.finish();
        }
        if let Some(slo) = &self.slo {
            let buf = o.raw_field("slo");
            let mut sj = ObjWriter::new(buf);
            sj.u64_field("a_windows", slo.a_windows)
                .u64_field("b_windows", slo.b_windows)
                .u64_field("a_violations", slo.a_violations)
                .u64_field("b_violations", slo.b_violations)
                .bool_field("regressed", slo.regressed);
            sj.finish();
        }
        if let Some(m) = &self.membership {
            let buf = o.raw_field("membership");
            let mut mj = ObjWriter::new(buf);
            mj.num_field("a_convergence_us", m.a_convergence_us)
                .num_field("b_convergence_us", m.b_convergence_us)
                .u64_field("a_unrecovered", m.a_unrecovered)
                .u64_field("b_unrecovered", m.b_unrecovered)
                .bool_field("regressed", m.regressed);
            mj.finish();
        }
        if let Some(p) = &self.partition {
            let buf = o.raw_field("partition");
            let mut pj = ObjWriter::new(buf);
            pj.num_field("a_heal_us", p.a_heal_us)
                .num_field("b_heal_us", p.b_heal_us)
                .u64_field("a_unhealed", p.a_unhealed)
                .u64_field("b_unhealed", p.b_unhealed)
                .bool_field("regressed", p.regressed);
            pj.finish();
        }
        o.u64_field("latency_regressions", self.latency_regressions() as u64);
        o.u64_field("contention_regressions", self.contention_regressions() as u64);
        o.u64_field("slo_regressions", self.slo_regressions() as u64);
        o.u64_field("membership_regressions", self.membership_regressions() as u64);
        o.u64_field("partition_regressions", self.partition_regressions() as u64);
        o.u64_field("regressions", self.regressions() as u64);
        o.finish();
        out
    }
}

/// Per-op mean busy time of each stage for one `op/protocol` aggregate.
fn stage_means(st: &ProtoStat) -> Vec<(String, f64)> {
    if st.count == 0 {
        return Vec::new();
    }
    st.stages
        .iter()
        .map(|(k, us)| (k.clone(), us / st.count as f64))
        .collect()
}

/// Attribute a regressed row to the pipeline stage whose per-op mean
/// grew the most between baseline and candidate. `None` when neither
/// side recorded stage detail or no stage actually grew.
fn attribute_stage(a: Option<&ProtoStat>, b: Option<&ProtoStat>) -> Option<StageDelta> {
    let (a, b) = match (a, b) {
        (Some(a), Some(b)) => (a, b),
        _ => return None,
    };
    let am: std::collections::BTreeMap<String, f64> = stage_means(a).into_iter().collect();
    let mut best: Option<StageDelta> = None;
    for (stage, b_us) in stage_means(b) {
        let a_us = am.get(&stage).copied().unwrap_or(0.0);
        let grew = b_us - a_us;
        if grew <= 0.0 {
            continue;
        }
        let better = match &best {
            Some(cur) => grew > cur.b_us - cur.a_us,
            None => true,
        };
        if better {
            best = Some(StageDelta {
                stage,
                a_us,
                b_us,
            });
        }
    }
    best
}

/// Compare per-`op/protocol` mean critical-path latency of `b` (the
/// candidate) against `a` (the baseline).
pub fn diff(a: &Report, b: &Report, threshold_pct: f64) -> DiffReport {
    let mut keys: Vec<&String> = a.protocols.keys().collect();
    for k in b.protocols.keys() {
        if !a.protocols.contains_key(k) {
            keys.push(k);
        }
    }
    keys.sort();
    let rows = keys
        .into_iter()
        .map(|k| {
            let am = a.protocols.get(k).map(|s| s.mean_us());
            let bm = b.protocols.get(k).map(|s| s.mean_us());
            let delta_pct = match (am, bm) {
                (Some(am), Some(bm)) if am > 0.0 => Some((bm - am) / am * 100.0),
                _ => None,
            };
            let regressed = delta_pct.is_some_and(|d| d > threshold_pct);
            let stage = if regressed {
                attribute_stage(a.protocols.get(k), b.protocols.get(k))
            } else {
                None
            };
            DiffRow {
                key: k.clone(),
                a_mean_us: am,
                b_mean_us: bm,
                delta_pct,
                regressed,
                stage,
            }
        })
        .collect();
    let mut fkeys: Vec<&String> = a.faults.keys().collect();
    for k in b.faults.keys() {
        if !a.faults.contains_key(k) {
            fkeys.push(k);
        }
    }
    fkeys.sort();
    let recovery = fkeys
        .into_iter()
        .filter(|k| {
            a.faults.get(*k).is_some_and(|f| f.faulted_ops > 0)
                || b.faults.get(*k).is_some_and(|f| f.faulted_ops > 0)
        })
        .map(|k| {
            let ar = a.faults.get(k).map_or(1.0, |f| f.recovery_rate());
            let br = b.faults.get(k).map_or(1.0, |f| f.recovery_rate());
            // regressed when the candidate recovers a smaller fraction of
            // faulted ops, by more than the threshold in percentage points
            let regressed = (ar - br) * 100.0 > threshold_pct;
            RecoveryRow {
                protocol: k.clone(),
                a_rate: ar,
                b_rate: br,
                regressed,
            }
        })
        .collect();
    // delivered-byte fraction across partial outcomes; a protocol with
    // no partials on either side produces no row
    let delivered_fraction = |r: &Report, k: &String| {
        r.faults.get(k).map_or(1.0, |f| {
            if f.partial_total == 0 {
                1.0
            } else {
                f.partial_delivered as f64 / f.partial_total as f64
            }
        })
    };
    let mut pkeys: Vec<&String> = a.faults.keys().collect();
    for k in b.faults.keys() {
        if !a.faults.contains_key(k) {
            pkeys.push(k);
        }
    }
    pkeys.sort();
    let partial = pkeys
        .into_iter()
        .filter(|k| {
            a.faults.get(*k).is_some_and(|f| f.partials > 0)
                || b.faults.get(*k).is_some_and(|f| f.partials > 0)
        })
        .map(|k| {
            let af = delivered_fraction(a, k);
            let bf = delivered_fraction(b, k);
            let regressed = (af - bf) * 100.0 > threshold_pct;
            PartialRow {
                protocol: k.clone(),
                a_fraction: af,
                b_fraction: bf,
                regressed,
            }
        })
        .collect();
    // promote-rate across the breaker lifecycle; a protocol with no
    // demotions on either side produces no row
    let mut hkeys: Vec<&String> = a.health.keys().collect();
    for k in b.health.keys() {
        if !a.health.contains_key(k) {
            hkeys.push(k);
        }
    }
    hkeys.sort();
    let health = hkeys
        .into_iter()
        .filter(|k| {
            a.health.get(*k).is_some_and(|h| h.demotes > 0)
                || b.health.get(*k).is_some_and(|h| h.demotes > 0)
        })
        .map(|k| {
            let ar = a.health.get(k).map_or(1.0, |h| h.promote_rate());
            let br = b.health.get(k).map_or(1.0, |h| h.promote_rate());
            let regressed = (ar - br) * 100.0 > threshold_pct;
            HealthRow {
                protocol: k.clone(),
                a_rate: ar,
                b_rate: br,
                regressed,
            }
        })
        .collect();
    // contended fraction of the trace per link track; a link with no
    // contention on either side produces no row
    let contended_frac = |r: &Report, k: &String| {
        r.links.get(k).map_or(0.0, |l| {
            if r.trace_span_us > 0.0 {
                l.contended_us / r.trace_span_us
            } else {
                0.0
            }
        })
    };
    let mut lkeys: Vec<&String> = a.links.keys().collect();
    for k in b.links.keys() {
        if !a.links.contains_key(k) {
            lkeys.push(k);
        }
    }
    lkeys.sort();
    let contention = lkeys
        .into_iter()
        .filter(|k| {
            a.links.get(*k).is_some_and(|l| l.contended_windows > 0)
                || b.links.get(*k).is_some_and(|l| l.contended_windows > 0)
        })
        .map(|k| {
            let af = contended_frac(a, k);
            let bf = contended_frac(b, k);
            // regressed when the candidate spends a larger fraction of
            // its trace contended, beyond the threshold in percentage
            // points
            let regressed = (bf - af) * 100.0 > threshold_pct;
            ContentionRow {
                link: k.clone(),
                a_frac: af,
                b_frac: bf,
                regressed,
            }
        })
        .collect();
    // SLO violation counts from the windowed metrics plane; a pair
    // with no windows on either side produces no section
    let slo = if a.windows > 0 || b.windows > 0 {
        Some(SloRow {
            a_windows: a.windows,
            b_windows: b.windows,
            a_violations: a.slo_violations,
            b_violations: b.slo_violations,
            regressed: b.slo_violations > a.slo_violations,
        })
    } else {
        None
    };
    // fail-stop membership: view-convergence time and unrecovered
    // evictions; a pair with no evictions on either side produces no
    // section
    let membership = if a.membership.pe_dead > 0 || b.membership.pe_dead > 0 {
        let am = &a.membership;
        let bm = &b.membership;
        let a_unrec = am.evicts.saturating_sub(am.rejoins);
        let b_unrec = bm.evicts.saturating_sub(bm.rejoins);
        // convergence regresses relative to the baseline (like the
        // latency rows); unrecovered evictions regress on count
        let conv_regressed = am.convergence_us > 0.0
            && (bm.convergence_us - am.convergence_us) / am.convergence_us * 100.0
                > threshold_pct;
        Some(MembershipRow {
            a_convergence_us: am.convergence_us,
            b_convergence_us: bm.convergence_us,
            a_unrecovered: a_unrec,
            b_unrecovered: b_unrec,
            regressed: conv_regressed || b_unrec > a_unrec,
        })
    } else {
        None
    };
    // network partitions: heal-convergence time and unhealed fences; a
    // pair with no fences on either side produces no section
    let partition = if a.partitions.fences > 0 || b.partitions.fences > 0 {
        let ap = &a.partitions;
        let bp = &b.partitions;
        let a_unhealed = ap.fences.saturating_sub(ap.heals);
        let b_unhealed = bp.fences.saturating_sub(bp.heals);
        let heal_regressed = ap.heal_convergence_us > 0.0
            && (bp.heal_convergence_us - ap.heal_convergence_us) / ap.heal_convergence_us * 100.0
                > threshold_pct;
        Some(PartitionRow {
            a_heal_us: ap.heal_convergence_us,
            b_heal_us: bp.heal_convergence_us,
            a_unhealed,
            b_unhealed,
            regressed: heal_regressed || b_unhealed > a_unhealed,
        })
    } else {
        None
    };
    DiffReport {
        threshold_pct,
        rows,
        recovery,
        partial,
        health,
        contention,
        slo,
        membership,
        partition,
    }
}
