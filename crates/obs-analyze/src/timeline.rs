//! Per-window time series over a windowed trace (`gdrprof timeline`).
//!
//! The windowed metrics plane (`GDR_SHMEM_OBS_WINDOW_US`) emits one
//! `window-snapshot` instant per virtual-time window; this module turns
//! those into a latency/contention/fault time series, flags
//! change-points where the per-window p99 or contended fraction jumps,
//! and aligns fault bursts and circuit-breaker lifecycles
//! (demote → probe → promote) against the series. Traces recorded
//! without the plane can still be timelined by deriving the windows
//! from the raw spans with an explicit `--window <us>`.

use crate::trace::Trace;
use obs::json::ObjWriter;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema marker written by [`Timeline::to_json`].
pub const TIMELINE_SCHEMA: &str = "gdrprof-timeline-v1";

/// A p99 step counts as a change-point when the larger side is at
/// least this multiple of the smaller...
const P99_JUMP_RATIO: f64 = 1.5;
/// ...and the absolute step is at least this many microseconds (so
/// sub-microsecond noise on tiny ops never flags).
const P99_JUMP_ABS_US: f64 = 1.0;
/// A contended-fraction step of at least this much (either direction)
/// is a change-point on its own.
const CONTENDED_JUMP: f64 = 0.25;

/// One window of the time series.
#[derive(Clone, Debug, Default)]
pub struct TimelineRow {
    pub window: u64,
    pub start_us: f64,
    pub end_us: f64,
    /// Completed ops whose latency landed in this window.
    pub ops: u64,
    /// Worst per-cell p99 in this window (max over the window's
    /// op × protocol × size-class cells; 0 when no ops completed).
    pub p99_us: f64,
    /// Worst per-link contended fraction (samples with queue depth
    /// >= 2 over all samples) in this window.
    pub contended_frac: f64,
    /// Transient faults injected in this window.
    pub faults: u64,
    /// Retry decisions (whole-op and chunk replays) in this window.
    pub retries: u64,
    pub demotes: u64,
    pub probes: u64,
    pub promotes: u64,
    /// SLO watchdog violations indexed to this window.
    pub violations: u64,
    /// The p99 or contended fraction jumped relative to the previous
    /// active window (see the module constants for the rule).
    pub change_point: bool,
}

/// A maximal run of consecutive windows with injected faults.
#[derive(Clone, Debug)]
pub struct FaultBurst {
    pub first: u64,
    pub last: u64,
    /// A change-point was flagged inside the burst or in the window
    /// immediately after it (retried ops may complete one window late).
    pub aligned: bool,
}

/// One circuit-breaker lifecycle, expressed in window indices.
#[derive(Clone, Debug)]
pub struct Lifecycle {
    pub protocol: String,
    pub demote: u64,
    /// First half-open probe after the demotion, if any.
    pub probe: Option<u64>,
    /// Promotion that closed the lifecycle, if any.
    pub promote: Option<u64>,
}

/// The assembled time series.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    pub width_us: f64,
    pub rows: Vec<TimelineRow>,
    pub bursts: Vec<FaultBurst>,
    pub lifecycles: Vec<Lifecycle>,
    /// True when the rows were derived from raw spans (`--window`)
    /// rather than read from `window-snapshot` records.
    pub derived: bool,
}

impl Timeline {
    /// Total SLO violations across the series.
    pub fn violations(&self) -> u64 {
        self.rows.iter().map(|r| r.violations).sum()
    }

    /// Windows flagged as change-points.
    pub fn change_points(&self) -> u64 {
        self.rows.iter().filter(|r| r.change_point).count() as u64
    }
}

/// Flag change-points: compare each window's p99 against the previous
/// window that completed ops (empty windows don't reset the baseline),
/// and each window's contended fraction against the immediately
/// preceding row.
fn flag_change_points(rows: &mut [TimelineRow]) {
    let mut prev_p99: Option<f64> = None;
    let mut prev_cf = 0.0f64;
    for row in rows.iter_mut() {
        let mut cp = false;
        if row.ops > 0 {
            if let Some(pp) = prev_p99 {
                let hi = row.p99_us.max(pp);
                let lo = row.p99_us.min(pp);
                if hi - lo >= P99_JUMP_ABS_US && (lo <= 0.0 || hi / lo >= P99_JUMP_RATIO) {
                    cp = true;
                }
            }
            prev_p99 = Some(row.p99_us);
        }
        if (row.contended_frac - prev_cf).abs() >= CONTENDED_JUMP {
            cp = true;
        }
        prev_cf = row.contended_frac;
        row.change_point = cp;
    }
}

/// Group consecutive faulted windows into bursts and check alignment
/// with the flagged change-points.
fn find_bursts(rows: &[TimelineRow]) -> Vec<FaultBurst> {
    let cps: Vec<u64> = rows.iter().filter(|r| r.change_point).map(|r| r.window).collect();
    let mut bursts: Vec<FaultBurst> = Vec::new();
    let mut run: Option<(u64, u64)> = None;
    for r in rows {
        if r.faults > 0 {
            run = match run {
                Some((f, l)) if r.window == l + 1 => Some((f, r.window)),
                Some((f, l)) => {
                    bursts.push(FaultBurst { first: f, last: l, aligned: false });
                    Some((r.window, r.window))
                }
                None => Some((r.window, r.window)),
            };
        } else if let Some((f, l)) = run.take() {
            bursts.push(FaultBurst { first: f, last: l, aligned: false });
        }
    }
    if let Some((f, l)) = run {
        bursts.push(FaultBurst { first: f, last: l, aligned: false });
    }
    for b in &mut bursts {
        b.aligned = cps.iter().any(|&w| w >= b.first && w <= b.last + 1);
    }
    bursts
}

/// Reconstruct demote → probe → promote lifecycles per protocol from
/// the raw breaker instants, expressed in window indices.
fn find_lifecycles(tr: &Trace, width_us: f64) -> Vec<Lifecycle> {
    let mut events: Vec<&crate::trace::HealthEvent> = tr.health.iter().collect();
    events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    let mut open: BTreeMap<String, usize> = BTreeMap::new();
    let mut out: Vec<Lifecycle> = Vec::new();
    for e in events {
        let w = (e.ts_us / width_us) as u64;
        match e.event.as_str() {
            "demote" => {
                open.insert(e.protocol.clone(), out.len());
                out.push(Lifecycle {
                    protocol: e.protocol.clone(),
                    demote: w,
                    probe: None,
                    promote: None,
                });
            }
            "probe" => {
                if let Some(&i) = open.get(&e.protocol) {
                    out[i].probe.get_or_insert(w);
                }
            }
            "promote" => {
                if let Some(i) = open.remove(&e.protocol) {
                    out[i].promote = Some(w);
                }
            }
            _ => {}
        }
    }
    out
}

/// Build rows from the recorder's `window-snapshot` records.
fn rows_from_snapshots(tr: &Trace) -> Vec<TimelineRow> {
    let mut rows: Vec<TimelineRow> = Vec::with_capacity(tr.windows.len());
    for w in &tr.windows {
        let mut row = TimelineRow {
            window: w.window,
            start_us: w.start_us,
            end_us: w.end_us,
            ..TimelineRow::default()
        };
        for c in &w.cells {
            row.ops += c.count;
            if c.count > 0 {
                row.p99_us = row.p99_us.max(c.p99_us);
            }
        }
        for l in &w.links {
            if l.samples > 0 {
                row.contended_frac = row.contended_frac.max(l.queued as f64 / l.samples as f64);
            }
        }
        for f in &w.faults {
            match f.what.as_str() {
                "injected" => row.faults += f.n,
                "retried" | "chunk-retried" => row.retries += f.n,
                "demote" => row.demotes += f.n,
                "probe" => row.probes += f.n,
                "promote" => row.promotes += f.n,
                _ => {}
            }
        }
        rows.push(row);
    }
    for v in &tr.slo_violations {
        if let Some(row) = rows.iter_mut().find(|r| r.window == v.window) {
            row.violations += 1;
        }
    }
    rows
}

/// Derive rows from the raw spans and instants of a trace recorded
/// without the metrics plane. Latencies bucket by op-span *end* (the
/// plane feeds at completion time); the per-window p99 is a single
/// sketch over all the window's ops rather than a per-cell maximum.
fn rows_from_raw(tr: &Trace, width_us: f64) -> Vec<TimelineRow> {
    fn row(acc: &mut BTreeMap<u64, TimelineRow>, w: u64, width_us: f64) -> &mut TimelineRow {
        acc.entry(w).or_insert_with(|| TimelineRow {
            window: w,
            start_us: w as f64 * width_us,
            end_us: (w + 1) as f64 * width_us,
            ..TimelineRow::default()
        })
    }
    let w_of = |ts: f64| (ts / width_us) as u64;
    let mut acc: BTreeMap<u64, TimelineRow> = BTreeMap::new();
    let mut sketches: BTreeMap<u64, obs::hist::Sketch> = BTreeMap::new();
    for op in &tr.ops {
        let w = w_of(op.ts_us + op.dur_us);
        row(&mut acc, w, width_us).ops += 1;
        sketches
            .entry(w)
            .or_default()
            .record((op.dur_us * 1000.0).round() as u64);
    }
    for f in &tr.faults {
        row(&mut acc, w_of(f.ts_us), width_us).faults += 1;
    }
    for r in tr.retries.iter().chain(&tr.chunk_retries) {
        row(&mut acc, w_of(r.ts_us), width_us).retries += 1;
    }
    for h in &tr.health {
        let r = row(&mut acc, w_of(h.ts_us), width_us);
        match h.event.as_str() {
            "demote" => r.demotes += 1,
            "probe" => r.probes += 1,
            "promote" => r.promotes += 1,
            _ => {}
        }
    }
    // per-link counts of (total, queued) samples per window
    let mut link_counts: BTreeMap<(u64, &str), (u64, u64)> = BTreeMap::new();
    for (name, pts) in &tr.links {
        for p in pts {
            let e = link_counts.entry((w_of(p.ts_us), name)).or_insert((0, 0));
            e.0 += 1;
            if p.queue >= 2 {
                e.1 += 1;
            }
        }
    }
    for ((w, _), (samples, queued)) in link_counts {
        let r = row(&mut acc, w, width_us);
        if samples > 0 {
            r.contended_frac = r.contended_frac.max(queued as f64 / samples as f64);
        }
    }
    for v in &tr.slo_violations {
        row(&mut acc, v.window, width_us).violations += 1;
    }
    let mut rows: Vec<TimelineRow> = acc.into_values().collect();
    for (w, s) in sketches {
        if let Some(r) = rows.iter_mut().find(|r| r.window == w) {
            r.p99_us = s.p99() as f64 / 1000.0;
        }
    }
    rows
}

/// Assemble the timeline. With `width_us` the rows are derived from
/// raw events regardless of any snapshot records; without it the
/// trace must carry `window-snapshot` records.
pub fn timeline(tr: &Trace, width_us: Option<u32>) -> Result<Timeline, String> {
    let (rows, width, derived) = match width_us {
        Some(w) if w > 0 => (rows_from_raw(tr, w as f64), w as f64, true),
        Some(_) => return Err("--window must be a positive number of microseconds".into()),
        None => {
            if tr.windows.is_empty() {
                return Err(
                    "trace has no window-snapshot records (run with \
                     GDR_SHMEM_OBS_WINDOW_US set, or pass --window <us> to derive)"
                        .into(),
                );
            }
            let w = tr.windows[0].end_us - tr.windows[0].start_us;
            (rows_from_snapshots(tr), w, false)
        }
    };
    let mut rows = rows;
    flag_change_points(&mut rows);
    let bursts = find_bursts(&rows);
    let lifecycles = find_lifecycles(tr, width);
    Ok(Timeline {
        width_us: width,
        rows,
        bursts,
        lifecycles,
        derived,
    })
}

impl Timeline {
    /// Human-readable rendering (the `gdrprof timeline` default
    /// output). Line shapes are stable — CI greps them.
    pub fn text(&self) -> String {
        let mut s = String::new();
        let derived = if self.derived { ", derived" } else { "" };
        let _ = writeln!(
            s,
            "gdrprof timeline (width {:.0}us, {} windows{derived})",
            self.width_us,
            self.rows.len()
        );
        for r in &self.rows {
            let mark = if r.change_point { "  CHANGE-POINT" } else { "" };
            let _ = writeln!(
                s,
                "  w{:03} [{:.0}..{:.0}us] ops {:<5} p99 {:.3}us  contended {:.1}%  \
                 faults {:<4} retries {:<4} viol {}{mark}",
                r.window,
                r.start_us,
                r.end_us,
                r.ops,
                r.p99_us,
                r.contended_frac * 100.0,
                r.faults,
                r.retries,
                r.violations,
            );
        }
        for b in &self.bursts {
            let align = if b.aligned {
                "aligned with a p99/contention change-point".to_string()
            } else {
                "no aligned change-point".to_string()
            };
            let _ = writeln!(s, "fault burst: windows {}..{}, {align}", b.first, b.last);
        }
        for lc in &self.lifecycles {
            let probe = match lc.probe {
                Some(w) => format!("probe @w{w}"),
                None => "probe -".to_string(),
            };
            let promote = match lc.promote {
                Some(w) => format!("promote @w{w}"),
                None => "promote -".to_string(),
            };
            let _ = writeln!(
                s,
                "lifecycle {}: demote @w{} {probe} {promote}",
                lc.protocol, lc.demote
            );
        }
        let total = self.violations();
        if total > 0 {
            let hit: Vec<u64> = self
                .rows
                .iter()
                .filter(|r| r.violations > 0)
                .map(|r| r.window)
                .collect();
            let _ = writeln!(
                s,
                "slo-violations: {total} in {} windows (first w{}, last w{})",
                hit.len(),
                hit[0],
                hit[hit.len() - 1]
            );
        } else {
            let _ = writeln!(s, "slo-violations: 0");
        }
        s
    }

    /// Machine-readable rendering: the `gdrprof-timeline-v1` JSON
    /// object. Deterministic field order and float formatting, so
    /// identical traces produce byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let mut o = ObjWriter::new(&mut out);
        o.str_field("schema", TIMELINE_SCHEMA);
        o.num_field("width_us", self.width_us);
        o.u64_field("windows", self.rows.len() as u64);
        o.u64_field("violations", self.violations());
        o.u64_field("change_points", self.change_points());
        o.bool_field("derived", self.derived);
        {
            let buf = o.raw_field("rows");
            buf.push('[');
            for (i, r) in self.rows.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.u64_field("window", r.window)
                    .num_field("start_us", r.start_us)
                    .num_field("end_us", r.end_us)
                    .u64_field("ops", r.ops)
                    .num_field("p99_us", r.p99_us)
                    .num_field("contended_frac", r.contended_frac)
                    .u64_field("faults", r.faults)
                    .u64_field("retries", r.retries)
                    .u64_field("demotes", r.demotes)
                    .u64_field("probes", r.probes)
                    .u64_field("promotes", r.promotes)
                    .u64_field("violations", r.violations)
                    .bool_field("change_point", r.change_point);
                e.finish();
            }
            buf.push(']');
        }
        {
            let buf = o.raw_field("bursts");
            buf.push('[');
            for (i, b) in self.bursts.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.u64_field("first", b.first)
                    .u64_field("last", b.last)
                    .bool_field("aligned", b.aligned);
                e.finish();
            }
            buf.push(']');
        }
        {
            let buf = o.raw_field("lifecycles");
            buf.push('[');
            for (i, lc) in self.lifecycles.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.str_field("protocol", &lc.protocol);
                e.u64_field("demote", lc.demote);
                match lc.probe {
                    Some(w) => {
                        e.u64_field("probe", w);
                    }
                    None => e.raw_field("probe").push_str("null"),
                }
                match lc.promote {
                    Some(w) => {
                        e.u64_field("promote", w);
                    }
                    None => e.raw_field("promote").push_str("null"),
                }
                e.finish();
            }
            buf.push(']');
        }
        o.finish();
        out
    }
}
