//! Loading a Chrome `trace_event` document back into typed records.
//!
//! The parser is strict about document structure (malformed JSON or a
//! missing `traceEvents` array is an error — `gdrprof` gates its exit
//! code on this) but lenient about event vocabulary: phases it does not
//! analyze (generic instants, counter samples other than link samples)
//! are skipped, so traces from newer recorders still load.

use obs::json::{self, Value};
use std::collections::BTreeMap;

/// One completed-operation span (`ph:"X"` with an `op` argument).
#[derive(Clone, Debug)]
pub struct OpSpan {
    /// Name of the track (thread) the span was recorded on, e.g. `pe/0`.
    pub track: String,
    pub op: String,
    pub protocol: String,
    pub size: u64,
    /// Correlation id; 0 marks uncorrelated spans (collectives).
    pub op_id: u64,
    pub ts_us: f64,
    pub dur_us: f64,
}

/// One pipeline-chunk stage span (`ph:"X"` with a `stage` argument).
#[derive(Clone, Debug)]
pub struct ChunkSpan {
    pub track: String,
    pub protocol: String,
    pub stage: String,
    pub index: u32,
    pub size: u64,
    pub op_id: u64,
    pub ts_us: f64,
    pub dur_us: f64,
}

/// One protocol-decision record (`ph:"i"`, name `protocol-decision`).
/// Enriched records carry the full candidate set with threshold
/// provenance; the extra fields default empty/zero on old traces.
#[derive(Clone, Debug, Default)]
pub struct DecisionRec {
    pub op: String,
    pub chosen: String,
    pub size: u64,
    /// Log2 size class of `size` (0 on pre-enrichment traces).
    pub size_class: u8,
    /// Correlation id of the op this decision routed (0 = unknown).
    pub op_id: u64,
    pub src_dev: bool,
    pub dst_dev: bool,
    pub same_node: bool,
    /// `"intra-socket"` / `"inter-socket"` / `"host"`; empty on old
    /// traces.
    pub socket_rel: String,
    /// Threshold provenance: `"builtin"` or `"thresholds-v1"`.
    pub tsource: String,
    /// Every protocol the dispatch considered for this cell.
    pub candidates: Vec<String>,
    /// The `(name, value)` threshold entries consulted.
    pub thresholds: Vec<(String, u64)>,
}

/// A flow endpoint (`ph:"s"` start / `ph:"f"` end).
#[derive(Clone, Copy, Debug)]
pub struct FlowEvent {
    pub id: u64,
    pub ts_us: f64,
}

/// One injected transient fault (`ph:"i"`, name `fault`).
#[derive(Clone, Debug)]
pub struct FaultEvent {
    pub kind: String,
    pub protocol: String,
    pub op_id: u64,
    pub ts_us: f64,
}

/// One retry decision (`ph:"i"`, name `retry`).
#[derive(Clone, Debug)]
pub struct RetryEvent {
    pub protocol: String,
    pub attempt: u32,
    pub backoff_ns: u64,
    pub op_id: u64,
    pub ts_us: f64,
}

/// One partial-delivery outcome (`ph:"i"`, name `partial-delivery`):
/// a chunked transfer exhausted its retries mid-flight and resolved
/// with only `delivered` of `total` bytes landed.
#[derive(Clone, Debug)]
pub struct PartialEvent {
    pub protocol: String,
    pub delivered: u64,
    pub total: u64,
    pub op_id: u64,
    pub ts_us: f64,
}

/// One protocol fallback (`ph:"i"`, name `fallback`): the dispatcher
/// re-routed `op` from its preferred protocol to a degraded one.
#[derive(Clone, Debug)]
pub struct FallbackEvent {
    pub op: String,
    pub from: String,
    pub to: String,
    pub op_id: u64,
    pub ts_us: f64,
}

/// One circuit-breaker transition (`ph:"i"`, names `demote`, `probe`,
/// `promote`): the health monitor changed how `protocol` is routed. The
/// instant's *name* carries the transition; `op_id` is the op whose
/// failure/success/admission drove it.
#[derive(Clone, Debug)]
pub struct HealthEvent {
    pub event: String,
    pub protocol: String,
    pub op_id: u64,
    pub ts_us: f64,
}

/// One membership transition (`ph:"i"`, names `pe-dead`, `evict`,
/// `view-change`, `rejoin`): the fail-stop layer changed the view. The
/// instant's *name* carries the transition; `epoch` is the view epoch
/// in force right after it.
#[derive(Clone, Debug)]
pub struct MemberEvent {
    pub event: String,
    pub pe: u32,
    pub epoch: u64,
    pub ts_us: f64,
}

/// One per-link counter sample (`ph:"C"`, name `link`): cumulative
/// totals as of the sampled reservation, plus the instantaneous queue.
#[derive(Clone, Copy, Debug)]
pub struct LinkPoint {
    pub ts_us: f64,
    pub bytes_total: u64,
    pub busy_us: f64,
    pub queue: u32,
}

/// One per-(op × protocol × size-class) latency cell inside a window
/// snapshot: the window-local sketch delta.
#[derive(Clone, Debug)]
pub struct WindowCell {
    pub op: String,
    pub protocol: String,
    pub class: u8,
    pub count: u64,
    pub p50_us: f64,
    pub p99_us: f64,
}

/// One per-link rollup inside a window snapshot.
#[derive(Clone, Debug)]
pub struct WindowLink {
    pub link: String,
    pub bytes: u64,
    pub busy_us: f64,
    pub samples: u64,
    /// Samples observed with queue depth >= 2 (contended).
    pub queued: u64,
}

/// One fault-machinery counter delta inside a window snapshot.
#[derive(Clone, Debug)]
pub struct WindowFault {
    pub what: String,
    pub protocol: String,
    pub n: u64,
}

/// One windowed-metrics snapshot (`ph:"i"`, name `window-snapshot`):
/// the metrics plane's rollup for one virtual-time window, emitted on
/// the synthetic `metrics` track at the window's closing edge.
#[derive(Clone, Debug)]
pub struct WindowSnapRec {
    /// Window index (window N covers `[N*width, (N+1)*width)`).
    pub window: u64,
    pub start_us: f64,
    pub end_us: f64,
    pub ts_us: f64,
    pub cells: Vec<WindowCell>,
    pub links: Vec<WindowLink>,
    pub faults: Vec<WindowFault>,
}

/// One SLO watchdog violation (`ph:"i"`, name `slo-violation`): a
/// declarative budget breached in the window it indexes.
#[derive(Clone, Debug)]
pub struct SloViolationRec {
    pub window: u64,
    /// `p99` / `contended` / `recovery` / `promote`.
    pub kind: String,
    pub op: String,
    pub protocol: String,
    /// Size-class label (`c13`) for p99 clauses; empty otherwise.
    pub class: String,
    /// Link-name pattern for contended clauses; empty otherwise.
    pub link: String,
    pub actual: f64,
    pub budget: f64,
    pub ts_us: f64,
}

/// A fully loaded trace, ready for [`crate::analyze`].
#[derive(Debug, Default)]
pub struct Trace {
    /// tid -> thread name, from the `"M"` metadata events.
    pub tracks: BTreeMap<u64, String>,
    pub ops: Vec<OpSpan>,
    pub chunks: Vec<ChunkSpan>,
    pub decisions: Vec<DecisionRec>,
    pub flow_starts: Vec<FlowEvent>,
    pub flow_ends: Vec<FlowEvent>,
    pub faults: Vec<FaultEvent>,
    pub retries: Vec<RetryEvent>,
    /// Event-context chunk replays (`ph:"i"`, name `chunk-retry`) —
    /// kept apart from whole-op post retries.
    pub chunk_retries: Vec<RetryEvent>,
    pub partials: Vec<PartialEvent>,
    pub fallbacks: Vec<FallbackEvent>,
    /// Circuit-breaker transitions in timestamp order.
    pub health: Vec<HealthEvent>,
    /// Membership transitions (fail-stop layer) in timestamp order.
    pub membership: Vec<MemberEvent>,
    /// Partition lifecycle transitions (`partition` / `fence` / `heal`)
    /// in timestamp order. Same record shape as `membership`: the
    /// instant's name carries the transition, `epoch` the view epoch in
    /// force right after it.
    pub partitions: Vec<MemberEvent>,
    /// link track name -> samples in timestamp order.
    pub links: BTreeMap<String, Vec<LinkPoint>>,
    /// Windowed-metrics snapshots in window order (absent on traces
    /// recorded without `GDR_SHMEM_OBS_WINDOW_US`).
    pub windows: Vec<WindowSnapRec>,
    /// SLO watchdog violations in emission order.
    pub slo_violations: Vec<SloViolationRec>,
    /// Latest event end seen (us) — the trace's time span.
    pub end_us: f64,
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn text(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

impl Trace {
    /// Parse a Chrome trace document. Malformed JSON, a missing
    /// `traceEvents` array, or an event without the mandatory
    /// `ph`/`tid`/`ts` fields is an error.
    pub fn parse(doc: &str) -> Result<Trace, String> {
        let root = json::parse(doc)?;
        let evs = root
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("document has no traceEvents array")?;
        let mut tr = Trace::default();

        // pass 1: thread names, so events can resolve their track
        for e in evs {
            if e.get("ph").and_then(Value::as_str) == Some("M") {
                let tid = num(e, "tid").ok_or("metadata event without tid")? as u64;
                if let Some(name) = e.get("args").and_then(|a| text(a, "name")) {
                    tr.tracks.insert(tid, name);
                }
            }
        }

        for e in evs {
            let ph = e
                .get("ph")
                .and_then(Value::as_str)
                .ok_or("event without ph")?;
            if ph == "M" {
                continue;
            }
            let tid = num(e, "tid").ok_or("event without tid")? as u64;
            let ts = num(e, "ts").ok_or("event without ts")?;
            let dur = num(e, "dur").unwrap_or(0.0);
            tr.end_us = tr.end_us.max(ts + dur);
            let track = tr
                .tracks
                .get(&tid)
                .cloned()
                .unwrap_or_else(|| format!("tid/{tid}"));
            let args = e.get("args");
            match ph {
                "X" => {
                    let Some(args) = args else { continue };
                    if let Some(stage) = text(args, "stage") {
                        tr.chunks.push(ChunkSpan {
                            track,
                            protocol: text(args, "protocol").unwrap_or_default(),
                            stage,
                            index: num(args, "chunk").unwrap_or(0.0) as u32,
                            size: num(args, "size").unwrap_or(0.0) as u64,
                            op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                            ts_us: ts,
                            dur_us: dur,
                        });
                    } else if let Some(op) = text(args, "op") {
                        tr.ops.push(OpSpan {
                            track,
                            op,
                            protocol: text(args, "protocol").unwrap_or_default(),
                            size: num(args, "size").unwrap_or(0.0) as u64,
                            op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                            ts_us: ts,
                            dur_us: dur,
                        });
                    }
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("protocol-decision") => {
                    let Some(args) = args else { continue };
                    let candidates = args
                        .get("candidates")
                        .and_then(Value::as_arr)
                        .map(|a| {
                            a.iter()
                                .filter_map(Value::as_str)
                                .map(str::to_string)
                                .collect()
                        })
                        .unwrap_or_default();
                    let thresholds = args
                        .get("thresholds")
                        .and_then(Value::as_obj)
                        .map(|o| {
                            o.iter()
                                .filter_map(|(k, v)| {
                                    v.as_f64().map(|n| (k.clone(), n as u64))
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    tr.decisions.push(DecisionRec {
                        op: text(args, "op").unwrap_or_default(),
                        chosen: text(args, "chosen").unwrap_or_default(),
                        size: num(args, "size").unwrap_or(0.0) as u64,
                        size_class: num(args, "size_class").unwrap_or(0.0) as u8,
                        op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                        src_dev: args.get("src_dev").and_then(Value::as_bool).unwrap_or(false),
                        dst_dev: args.get("dst_dev").and_then(Value::as_bool).unwrap_or(false),
                        same_node: args
                            .get("same_node")
                            .and_then(Value::as_bool)
                            .unwrap_or(false),
                        socket_rel: text(args, "socket_rel").unwrap_or_default(),
                        tsource: text(args, "tsource").unwrap_or_default(),
                        candidates,
                        thresholds,
                    });
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("fault") => {
                    let Some(args) = args else { continue };
                    tr.faults.push(FaultEvent {
                        kind: text(args, "kind").unwrap_or_default(),
                        protocol: text(args, "protocol").unwrap_or_default(),
                        op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("retry") => {
                    let Some(args) = args else { continue };
                    tr.retries.push(RetryEvent {
                        protocol: text(args, "protocol").unwrap_or_default(),
                        attempt: num(args, "attempt").unwrap_or(0.0) as u32,
                        backoff_ns: num(args, "backoff_ns").unwrap_or(0.0) as u64,
                        op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("chunk-retry") => {
                    let Some(args) = args else { continue };
                    tr.chunk_retries.push(RetryEvent {
                        protocol: text(args, "protocol").unwrap_or_default(),
                        attempt: num(args, "attempt").unwrap_or(0.0) as u32,
                        backoff_ns: num(args, "backoff_ns").unwrap_or(0.0) as u64,
                        op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("partial-delivery") => {
                    let Some(args) = args else { continue };
                    tr.partials.push(PartialEvent {
                        protocol: text(args, "protocol").unwrap_or_default(),
                        delivered: num(args, "delivered").unwrap_or(0.0) as u64,
                        total: num(args, "total").unwrap_or(0.0) as u64,
                        op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("fallback") => {
                    let Some(args) = args else { continue };
                    tr.fallbacks.push(FallbackEvent {
                        op: text(args, "op").unwrap_or_default(),
                        from: text(args, "from").unwrap_or_default(),
                        to: text(args, "to").unwrap_or_default(),
                        op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if matches!(
                    e.get("name").and_then(Value::as_str),
                    Some("demote" | "probe" | "promote")
                ) =>
                {
                    let Some(args) = args else { continue };
                    let event = e
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string();
                    tr.health.push(HealthEvent {
                        event,
                        protocol: text(args, "protocol").unwrap_or_default(),
                        op_id: num(args, "op_id").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if matches!(
                    e.get("name").and_then(Value::as_str),
                    Some("pe-dead" | "evict" | "view-change" | "rejoin")
                ) =>
                {
                    let Some(args) = args else { continue };
                    let event = e
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string();
                    tr.membership.push(MemberEvent {
                        event,
                        pe: num(args, "pe").unwrap_or(0.0) as u32,
                        epoch: num(args, "epoch").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if matches!(
                    e.get("name").and_then(Value::as_str),
                    Some("partition" | "fence" | "heal")
                ) =>
                {
                    let Some(args) = args else { continue };
                    let event = e
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string();
                    tr.partitions.push(MemberEvent {
                        event,
                        pe: num(args, "pe").unwrap_or(0.0) as u32,
                        epoch: num(args, "epoch").unwrap_or(0.0) as u64,
                        ts_us: ts,
                    });
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("window-snapshot") => {
                    let Some(args) = args else { continue };
                    let cells = args
                        .get("cells")
                        .and_then(Value::as_arr)
                        .map(|a| {
                            a.iter()
                                .map(|c| WindowCell {
                                    op: text(c, "op").unwrap_or_default(),
                                    protocol: text(c, "protocol").unwrap_or_default(),
                                    class: num(c, "class").unwrap_or(0.0) as u8,
                                    count: num(c, "count").unwrap_or(0.0) as u64,
                                    p50_us: num(c, "p50_us").unwrap_or(0.0),
                                    p99_us: num(c, "p99_us").unwrap_or(0.0),
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    let links = args
                        .get("links")
                        .and_then(Value::as_arr)
                        .map(|a| {
                            a.iter()
                                .map(|l| WindowLink {
                                    link: text(l, "link").unwrap_or_default(),
                                    bytes: num(l, "bytes").unwrap_or(0.0) as u64,
                                    busy_us: num(l, "busy_us").unwrap_or(0.0),
                                    samples: num(l, "samples").unwrap_or(0.0) as u64,
                                    queued: num(l, "queued").unwrap_or(0.0) as u64,
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    let faults = args
                        .get("faults")
                        .and_then(Value::as_arr)
                        .map(|a| {
                            a.iter()
                                .map(|f| WindowFault {
                                    what: text(f, "what").unwrap_or_default(),
                                    protocol: text(f, "protocol").unwrap_or_default(),
                                    n: num(f, "n").unwrap_or(0.0) as u64,
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    tr.windows.push(WindowSnapRec {
                        window: num(args, "window").unwrap_or(0.0) as u64,
                        start_us: num(args, "start_us").unwrap_or(0.0),
                        end_us: num(args, "end_us").unwrap_or(0.0),
                        ts_us: ts,
                        cells,
                        links,
                        faults,
                    });
                }
                "i" if e.get("name").and_then(Value::as_str) == Some("slo-violation") => {
                    let Some(args) = args else { continue };
                    tr.slo_violations.push(SloViolationRec {
                        window: num(args, "window").unwrap_or(0.0) as u64,
                        kind: text(args, "kind").unwrap_or_default(),
                        op: text(args, "op").unwrap_or_default(),
                        protocol: text(args, "protocol").unwrap_or_default(),
                        class: text(args, "class").unwrap_or_default(),
                        link: text(args, "link").unwrap_or_default(),
                        actual: num(args, "actual").unwrap_or(0.0),
                        budget: num(args, "budget").unwrap_or(0.0),
                        ts_us: ts,
                    });
                }
                "s" | "f" => {
                    let id = num(e, "id").ok_or("flow event without id")? as u64;
                    let fe = FlowEvent { id, ts_us: ts };
                    if ph == "s" {
                        tr.flow_starts.push(fe);
                    } else {
                        tr.flow_ends.push(fe);
                    }
                }
                "C" if e.get("name").and_then(Value::as_str) == Some("link") => {
                    let Some(args) = args else { continue };
                    tr.links.entry(track).or_default().push(LinkPoint {
                        ts_us: ts,
                        bytes_total: num(args, "bytes").unwrap_or(0.0) as u64,
                        busy_us: num(args, "busy_us").unwrap_or(0.0),
                        queue: num(args, "queue").unwrap_or(0.0) as u32,
                    });
                }
                _ => {}
            }
        }
        for pts in tr.links.values_mut() {
            pts.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        }
        tr.windows.sort_by_key(|w| w.window);
        tr.slo_violations.sort_by_key(|v| v.window);
        Ok(tr)
    }
}
