//! # obs-analyze — trace analysis for the observability layer
//!
//! The recorder (`crates/obs`) writes Chrome `trace_event` documents;
//! this crate reads them back and answers the profiling questions the
//! paper's evaluation asks: where does each put/get spend its time
//! (critical path per op, split by pipeline stage), how busy is each
//! PCIe/IB link (utilization + contention windows), which protocol did
//! the runtime choose and how often, and did a change regress latency
//! (A/B diff with a threshold). On top of the per-op reconstruction sit
//! the autotuning substrate tools: the crossover profiler (observed
//! protocol-switch points vs the static threshold table, `crossover`)
//! and the what-if replayer (re-route recorded decisions under an
//! alternate `thresholds-v1` table and predict the latency delta,
//! `whatif`). The `gdrprof` binary is the CLI over it; CI uses its
//! machine-readable output (`BENCH_omb.json`).
//!
//! Everything here is deterministic: identical traces produce
//! byte-identical text and JSON reports (BTreeMap iteration, fixed
//! float formatting), so reports can be `cmp`'d in CI.

pub mod campaign;
pub mod crossover;
pub mod diff;
pub mod report;
pub mod timeline;
pub mod trace;
pub mod whatif;

pub use campaign::{CampaignSummary, CampaignViolation, CAMPAIGN_SCHEMA};
pub use crossover::{crossover, CrossoverPoint, CrossoverReport, CurvePoint};
pub use diff::{
    diff, ContentionRow, DiffReport, DiffRow, HealthRow, MembershipRow, PartialRow, PartitionRow,
    RecoveryRow, SloRow, StageDelta,
};
pub use report::{
    analyze, FaultStat, HealthStat, LinkStat, MemberStat, OpPath, PartitionStat, ProtoStat,
    QuantileStat, Report, RMA_OPS,
};
pub use timeline::{timeline, FaultBurst, Lifecycle, Timeline, TimelineRow, TIMELINE_SCHEMA};
pub use trace::Trace;
pub use whatif::{whatif, WhatifReport, WhatifRow};

/// Parse + analyze in one step.
pub fn analyze_str(doc: &str) -> Result<Report, String> {
    Ok(analyze(&Trace::parse(doc)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{ObsLevel, Payload, Recorder, TrackKind};
    use sim_core::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime(us * 1_000_000)
    }

    /// A synthetic two-op trace: one small direct-GDR put (flow start +
    /// remote flow end), one pipelined put with overlapping d2h/rdma
    /// chunks, a decision record, and link counter samples.
    fn synthetic_trace() -> String {
        let r = Recorder::new(ObsLevel::Spans);
        let pe0 = r.track(TrackKind::Pe, 0);
        let pe1 = r.track(TrackKind::Pe, 1);
        let lk = r.track_named(TrackKind::Link, 0, "pcie/gpu0/d2h");

        // op 1: direct-gdr put, span 1..5us, remote completion at 9us
        r.instant(pe0, "op-flow", t(1), Payload::FlowStart { id: 101 });
        r.span(
            pe0,
            "put",
            t(1),
            t(5),
            Payload::Op {
                op: "put",
                protocol: "direct-gdr",
                size: 64,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                op_id: 101,
            },
        );
        r.instant(pe1, "op-flow", t(9), Payload::FlowEnd { id: 101 });

        // op 2: pipelined put with two d2h chunks (10..12, 11..14 —
        // overlapping, union 4us) and one rdma chunk ending at 20us
        r.instant(pe0, "op-flow", t(10), Payload::FlowStart { id: 102 });
        r.span(
            pe0,
            "put",
            t(10),
            t(15),
            Payload::Op {
                op: "put",
                protocol: "pipeline-gdr-write",
                size: 1 << 20,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                op_id: 102,
            },
        );
        for (i, (s, e)) in [(10u64, 12u64), (11, 14)].iter().enumerate() {
            r.span(
                pe0,
                "chunk-d2h",
                t(*s),
                t(*e),
                Payload::Chunk {
                    protocol: "pipeline-gdr-write",
                    stage: "d2h",
                    index: i as u32,
                    size: 1 << 19,
                    op_id: 102,
                },
            );
        }
        r.span(
            pe0,
            "chunk-rdma",
            t(14),
            t(20),
            Payload::Chunk {
                protocol: "pipeline-gdr-write",
                stage: "rdma",
                index: 1,
                size: 1 << 19,
                op_id: 102,
            },
        );
        r.instant(pe1, "op-flow", t(20), Payload::FlowEnd { id: 102 });

        let mut d = obs::Decision {
            op: "put",
            size: 64,
            src_pe: 0,
            dst_pe: 1,
            src_dev: true,
            dst_dev: true,
            same_node: false,
            chosen: "direct-gdr",
            ..Default::default()
        };
        d.candidates.push("direct-gdr");
        r.decision(pe0, t(1), d);

        // link samples: queue ramps to 2 (one contention window)
        for (us, total, busy, q) in [(2u64, 4096u64, 1u64, 1u32), (3, 8192, 2, 2), (4, 12288, 3, 1)]
        {
            r.instant(
                lk,
                "link",
                t(us),
                Payload::LinkSample {
                    total,
                    busy_ps: busy * 1_000_000,
                    queue: q,
                },
            );
        }
        r.chrome_trace()
    }

    #[test]
    fn analyzes_critical_paths_stages_and_flows() {
        let rep = analyze_str(&synthetic_trace()).unwrap();
        assert_eq!(rep.ops_analyzed, 2);
        assert_eq!(rep.flow_started, 2);
        assert_eq!(rep.flow_matched, 2);
        assert!((rep.flow_linkage() - 1.0).abs() < 1e-9);

        // direct put: critical path extends to the remote flow end
        let direct = &rep.protocols["put/direct-gdr"];
        assert_eq!(direct.count, 1);
        assert!((direct.mean_us() - 8.0).abs() < 1e-6, "{}", direct.mean_us());
        assert!((direct.stages["direct"] - 4.0).abs() < 1e-6);

        // pipelined put: end = last chunk end (20us), d2h union = 4us
        let pipe = &rep.protocols["put/pipeline-gdr-write"];
        assert!((pipe.mean_us() - 10.0).abs() < 1e-6, "{}", pipe.mean_us());
        assert!((pipe.stages["d2h"] - 4.0).abs() < 1e-6, "{:?}", pipe.stages);
        assert!((pipe.stages["rdma"] - 6.0).abs() < 1e-6);

        assert_eq!(rep.decisions["put/direct-gdr"], 1);

        let lk = &rep.links["pcie/gpu0/d2h"];
        assert_eq!(lk.samples, 3);
        assert_eq!(lk.bytes, 12288);
        assert_eq!(lk.peak_queue, 2);
        assert_eq!(lk.contended_windows, 1);
    }

    #[test]
    fn text_report_has_ci_anchor_lines() {
        let rep = analyze_str(&synthetic_trace()).unwrap();
        let txt = rep.text();
        assert!(txt.contains("ops-analyzed: 2"), "{txt}");
        assert!(txt.contains("critical path"), "{txt}");
        assert!(txt.contains("flow-linkage: 100.0%"), "{txt}");
    }

    #[test]
    fn json_report_is_deterministic_and_parses() {
        let rep = analyze_str(&synthetic_trace()).expect("synthetic trace must analyze");
        let j1 = rep.to_json();
        let j2 = analyze_str(&synthetic_trace()).expect("second analyze").to_json();
        assert_eq!(j1, j2, "same trace must yield byte-identical JSON");
        let v = obs::json::parse(&j1).expect("report JSON must reparse");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("gdrprof-report-v2"),
            "missing or wrong \"schema\" field"
        );
        assert_eq!(
            v.get("ops_analyzed").and_then(|n| n.as_f64()),
            Some(2.0),
            "missing \"ops_analyzed\" field"
        );
        assert_eq!(
            v.get("flow")
                .and_then(|f| f.get("linkage"))
                .and_then(|n| n.as_f64()),
            Some(1.0),
            "missing \"flow.linkage\" field"
        );
        // v2: the quantiles section keys op/protocol/size-class cells
        let q = v
            .get("quantiles")
            .expect("missing \"quantiles\" object")
            .as_obj()
            .expect("\"quantiles\" is not an object");
        assert!(
            q.contains_key("put/direct-gdr/c07"),
            "expected put/direct-gdr/c07 in {:?}",
            q.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn v2_report_round_trips_through_from_json() {
        let rep = analyze_str(&synthetic_trace()).expect("synthetic trace must analyze");
        let back =
            Report::from_json_str(&rep.to_json()).expect("v2 report must rehydrate");
        assert_eq!(back.ops_analyzed, rep.ops_analyzed);
        assert_eq!(back.flow_matched, rep.flow_matched);
        assert!((back.trace_span_us - rep.trace_span_us).abs() < 1e-9);
        assert_eq!(back.protocols.len(), rep.protocols.len());
        for (k, st) in &rep.protocols {
            let b = &back.protocols[k];
            assert_eq!(b.count, st.count, "{k}: count");
            assert!((b.mean_us() - st.mean_us()).abs() < 1e-9, "{k}: mean");
            assert_eq!(b.stages.len(), st.stages.len(), "{k}: stages");
        }
        assert_eq!(back.quantiles.len(), rep.quantiles.len());
        for (k, q) in &rep.quantiles {
            let b = &back.quantiles[k];
            assert_eq!((b.class, b.count), (q.class, q.count), "{k}");
            assert!((b.p99_us - q.p99_us).abs() < 1e-9, "{k}: p99");
        }
        assert_eq!(back.decisions, rep.decisions);
        assert_eq!(back.links.len(), rep.links.len());
    }

    #[test]
    fn v1_golden_reports_rehydrate_compatibly() {
        // the committed fixtures predate the v2 schema: they must keep
        // loading, with the v2-only sections empty
        for name in [
            "report_recovery_base",
            "report_recovery_regressed",
            "report_partial_base",
            "report_partial_regressed",
            "report_health_base",
            "report_health_regressed",
        ] {
            let path = format!(
                "{}/../../tests/golden/{name}.json",
                env!("CARGO_MANIFEST_DIR")
            );
            let doc = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let rep = Report::from_json_str(&doc)
                .unwrap_or_else(|e| panic!("{name} must rehydrate: {e}"));
            assert!(rep.ops_analyzed > 0, "{name}: ops_analyzed");
            assert!(!rep.protocols.is_empty(), "{name}: protocols");
            assert!(rep.quantiles.is_empty(), "{name}: v1 has no quantiles");
        }
        let base = Report::from_json_str(
            &std::fs::read_to_string(format!(
                "{}/../../tests/golden/report_recovery_base.json",
                env!("CARGO_MANIFEST_DIR")
            ))
            .expect("fixture must be readable"),
        )
        .expect("recovery_base must rehydrate");
        assert_eq!(base.ops_analyzed, 10);
        assert!((base.trace_span_us - 100.0).abs() < 1e-9);
        assert_eq!(base.faults["host-rdma"].faulted_ops, 4);
    }

    #[test]
    fn from_json_errors_name_the_missing_field() {
        let err = Report::from_json_str(r#"{"schema":"gdrprof-report-v2"}"#)
            .expect_err("missing trace_span_us must fail");
        assert!(err.contains("trace_span_us"), "{err}");
        let err = Report::from_json_str(r#"{"trace_span_us":1}"#)
            .expect_err("missing schema must fail");
        assert!(err.contains("schema"), "{err}");
        let err = Report::from_json_str(r#"{"schema":"gdrprof-report-v9","trace_span_us":1}"#)
            .expect_err("unknown schema must fail");
        assert!(err.contains("gdrprof-report-v9"), "{err}");
        let err = Report::from_json_str(
            r#"{"schema":"gdrprof-report-v2","trace_span_us":1,"ops_analyzed":1,
               "protocols":{"put/x":{"count":"many"}}}"#,
        )
        .expect_err("mistyped count must fail");
        assert!(err.contains("count"), "{err}");
    }

    /// An inter-node D-D get sweep with enriched decision records: two
    /// sizes served by direct-gdr, one by the proxy — a single
    /// crossover governed by `proxy_get_min`.
    fn synthetic_sweep_trace() -> String {
        let r = Recorder::new(ObsLevel::Spans);
        let pe0 = r.track(TrackKind::Pe, 0);
        for (i, (size, proto, dur)) in [
            (4096u64, "direct-gdr", 5u64),
            (65536, "direct-gdr", 20),
            (1 << 20, "proxy-pipeline", 100),
        ]
        .iter()
        .enumerate()
        {
            let op_id = 201 + i as u64;
            let start = 1 + 200 * i as u64;
            r.span(
                pe0,
                "get",
                t(start),
                t(start + dur),
                Payload::Op {
                    op: "get",
                    protocol: proto,
                    size: *size,
                    src_pe: 0,
                    dst_pe: 1,
                    src_dev: true,
                    dst_dev: true,
                    same_node: false,
                    op_id,
                },
            );
            let mut d = obs::Decision {
                op: "get",
                size: *size,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                chosen: proto,
                op_id,
                size_class: obs::hist::bucket_index(*size) as u8,
                socket_rel: "intra-socket",
                tsource: "builtin",
                ..Default::default()
            };
            d.candidates.push("direct-gdr");
            d.candidates.push("proxy-pipeline");
            d.thresholds.push("gdr_get_limit", 16384);
            d.thresholds.push("proxy_get_min", 524288);
            r.decision(pe0, t(start), d);
        }
        r.chrome_trace()
    }

    #[test]
    fn crossover_finds_the_governed_switch_point() {
        let tr = Trace::parse(&synthetic_sweep_trace()).expect("sweep trace must parse");
        let x = crossover(&tr);
        let curve = &x.curves["get/inter-node/D-D/intra-socket"];
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].protocol, "direct-gdr");
        assert_eq!(curve[2].protocol, "proxy-pipeline");
        assert_eq!(x.crossovers.len(), 1);
        let c = &x.crossovers[0];
        assert_eq!((c.below_size, c.above_size), (65536, 1 << 20));
        assert_eq!(
            c.threshold.as_ref().map(|(n, v)| (n.as_str(), *v)),
            Some(("proxy_get_min", 524288)),
            "the entry inside the window governs the switch"
        );
        assert_eq!(c.tsource, "builtin");
        // proxy has one observed point: geometric-mean fallback lands
        // on sqrt(2^16 * 2^20) = 2^18
        assert_eq!(c.suggested, 262144);
        assert!(!c.misconfigured, "262144 vs 524288 is within 2x");
        let txt = x.text();
        assert!(txt.contains("crossover get/inter-node/D-D/intra-socket"), "{txt}");
        assert!(txt.contains("proxy_get_min=524288, builtin"), "{txt}");
        // byte-identical across two parses of the same document
        let again = crossover(&Trace::parse(&synthetic_sweep_trace()).expect("reparse"));
        assert_eq!(x.to_json(), again.to_json());
        assert_eq!(x.text(), again.text());
        // --suggest exports the estimate as a loadable thresholds-v1 table
        let sug = x.suggestions();
        assert_eq!(sug.get("proxy_get_min"), Some(262144));
        assert!(obs::ThresholdTable::from_json_str(&sug.to_json()).is_ok());
    }

    #[test]
    fn whatif_identity_table_predicts_zero_delta() {
        let tr = Trace::parse(&synthetic_sweep_trace()).expect("sweep trace must parse");
        // same values the decisions recorded -> nothing re-routes
        let same = obs::ThresholdTable::from_json_str(
            r#"{"schema":"thresholds-v1","entries":{"gdr_get_limit":16384,"proxy_get_min":524288}}"#,
        )
        .expect("identity table must parse");
        let w = whatif(&tr, &same);
        assert_eq!(w.replayed, 3);
        assert_eq!(w.changed, 0);
        assert_eq!(w.model_mismatch, 0, "replay must mirror the dispatch");
        assert_eq!(w.predicted_delta_us, 0.0);
        assert!(w.text().contains("predicted-delta-us: +0.000"), "{}", w.text());
        // an empty overlay is the same identity
        let w2 = whatif(&tr, &obs::ThresholdTable::new());
        assert_eq!(w2.changed, 0);
        assert_eq!(w2.predicted_delta_us, 0.0);
    }

    #[test]
    fn whatif_degraded_table_predicts_positive_delta() {
        let tr = Trace::parse(&synthetic_sweep_trace()).expect("sweep trace must parse");
        // kill direct gets entirely: everything >= 64B goes to the proxy
        let bad = obs::ThresholdTable::from_json_str(
            r#"{"schema":"thresholds-v1","entries":{"gdr_get_limit":0,"proxy_get_min":64}}"#,
        )
        .expect("degraded table must parse");
        let w = whatif(&tr, &bad);
        assert_eq!(w.changed, 2, "the two direct gets re-route");
        assert_eq!(w.unpriced, 0);
        // proxy observed only at 1MiB (100us, flat below): the small
        // gets pay (100-5) + (100-20)
        assert!(
            (w.predicted_delta_us - 175.0).abs() < 1e-6,
            "{}",
            w.predicted_delta_us
        );
        assert!(w.text().contains("predicted-delta-us: +175.000"), "{}", w.text());
        let v = obs::json::parse(&w.to_json()).expect("whatif JSON must reparse");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("gdrprof-whatif-v1")
        );
        assert_eq!(v.get("changed").and_then(|n| n.as_f64()), Some(2.0));
    }

    #[test]
    fn diff_gates_on_contention_fraction_regressions() {
        let a = analyze_str(&synthetic_trace()).expect("trace must analyze");
        let mut b = a.clone();
        // candidate: same latencies, but the d2h link spends 35% more
        // of the trace contended
        b.links
            .get_mut("pcie/gpu0/d2h")
            .expect("link stat")
            .contended_us = a.trace_span_us * 0.40;
        let d = diff(&a, &b, 10.0);
        assert_eq!(d.contention_regressions(), 1);
        assert_eq!(d.latency_regressions(), 0, "contention-only regression");
        assert_eq!(d.regressions(), 1);
        let row = &d.contention[0];
        assert!(row.regressed && row.b_frac > row.a_frac);
        assert!(d.text().contains("link-contention"), "{}", d.text());
        // machine-readable: --json output splits the two gate counters
        let v = obs::json::parse(&d.to_json()).expect("diff JSON must reparse");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("gdrprof-diff-v1")
        );
        assert_eq!(
            v.get("contention_regressions").and_then(|n| n.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            v.get("latency_regressions").and_then(|n| n.as_f64()),
            Some(0.0)
        );
        // identity diff: the contended window exists on both sides but
        // nothing regresses
        let d2 = diff(&a, &a.clone(), 10.0);
        assert_eq!(d2.regressions(), 0);
        assert!(d2.contention.iter().all(|r| !r.regressed));
    }

    #[test]
    fn malformed_documents_are_errors() {
        assert!(Trace::parse("{\"traceEvents\":[").is_err());
        assert!(Trace::parse("{}").is_err(), "missing traceEvents array");
        assert!(Trace::parse("[]").is_err());
        // event without mandatory fields
        assert!(Trace::parse(r#"{"traceEvents":[{"ts":1}]}"#).is_err());
    }

    /// The synthetic trace plus fault machinery: op 101 draws one
    /// transient fault and one retry before completing; an op that
    /// never completes (no span) draws a fault; one fallback re-routes
    /// a put away from direct-gdr.
    fn synthetic_faulted_trace() -> String {
        let r = Recorder::new(ObsLevel::Spans);
        let pe0 = r.track(TrackKind::Pe, 0);
        r.instant(pe0, "op-flow", t(1), Payload::FlowStart { id: 101 });
        r.instant(
            pe0,
            "fault",
            t(1),
            Payload::Fault {
                kind: "cqe-flush",
                protocol: "direct-gdr",
                op_id: 101,
            },
        );
        r.instant(
            pe0,
            "retry",
            t(2),
            Payload::Retry {
                protocol: "direct-gdr",
                attempt: 1,
                backoff_ns: 2_000,
                op_id: 101,
            },
        );
        r.span(
            pe0,
            "put",
            t(2),
            t(5),
            Payload::Op {
                op: "put",
                protocol: "direct-gdr",
                size: 64,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                op_id: 101,
            },
        );
        // op 103 faults and never completes (no op span)
        r.instant(
            pe0,
            "fault",
            t(6),
            Payload::Fault {
                kind: "retry-exceeded",
                protocol: "direct-gdr",
                op_id: 103,
            },
        );
        r.instant(
            pe0,
            "fallback",
            t(7),
            Payload::Fallback {
                op: "put",
                from: "direct-gdr",
                to: "proxy-pipeline",
                op_id: 104,
            },
        );
        r.chrome_trace()
    }

    #[test]
    fn fault_events_aggregate_into_recovery_stats() {
        let rep = analyze_str(&synthetic_faulted_trace()).unwrap();
        let f = &rep.faults["direct-gdr"];
        assert_eq!(f.injected, 2);
        assert_eq!(f.retried, 1);
        assert_eq!(f.faulted_ops, 2);
        assert_eq!(f.recovered, 1, "only op 101 completed");
        assert_eq!(f.fallbacks, 1);
        assert!((f.recovery_rate() - 0.5).abs() < 1e-9);
        let txt = rep.text();
        assert!(txt.contains("fault injection:"), "{txt}");
        // a clean trace keeps its text free of the fault section
        let clean = analyze_str(&synthetic_trace()).unwrap();
        assert!(!clean.text().contains("fault injection:"));
    }

    #[test]
    fn diff_gates_on_recovery_rate_regressions() {
        let mut a = analyze_str(&synthetic_faulted_trace()).unwrap();
        let mut b = a.clone();
        // candidate recovers none of its faulted ops
        b.faults.get_mut("direct-gdr").unwrap().recovered = 0;
        let d = diff(&a, &b, 10.0);
        assert_eq!(d.regressions(), 1);
        let row = &d.recovery[0];
        assert!(row.regressed && row.b_rate < row.a_rate);
        assert!(d.text().contains("recovery-rate:"), "{}", d.text());
        // equal rates: no regression
        let d2 = diff(&a, &a.clone(), 10.0);
        assert_eq!(d2.regressions(), 0);
        // a fault-free pair produces no recovery section at all
        a.faults.clear();
        let mut c = analyze_str(&synthetic_trace()).unwrap();
        c.faults.clear();
        let d3 = diff(&c, &c.clone(), 10.0);
        assert!(d3.recovery.is_empty());
        assert!(!d3.text().contains("recovery-rate:"));
    }

    /// The faulted trace plus a full circuit-breaker lifecycle on
    /// direct-gdr (demote -> probe -> promote) and a second protocol
    /// that stays demoted (demote only).
    fn synthetic_health_trace() -> String {
        let r = Recorder::new(ObsLevel::Spans);
        let pe0 = r.track(TrackKind::Pe, 0);
        for (name, proto, us) in [
            ("demote", "direct-gdr", 3u64),
            ("probe", "direct-gdr", 8),
            ("promote", "direct-gdr", 9),
            ("demote", "host-rdma", 5),
        ] {
            r.instant(
                pe0,
                name,
                t(us),
                Payload::Health {
                    protocol: proto,
                    op_id: 100 + us,
                },
            );
        }
        r.chrome_trace()
    }

    #[test]
    fn health_events_aggregate_into_lifecycle_stats() {
        let rep = analyze_str(&synthetic_health_trace()).unwrap();
        let dg = &rep.health["direct-gdr"];
        assert_eq!((dg.demotes, dg.probes, dg.promotes), (1, 1, 1));
        assert!((dg.promote_rate() - 1.0).abs() < 1e-9);
        let hr = &rep.health["host-rdma"];
        assert_eq!((hr.demotes, hr.probes, hr.promotes), (1, 0, 0));
        assert!(hr.promote_rate().abs() < 1e-9, "never promoted back");
        let txt = rep.text();
        assert!(txt.contains("protocol health:"), "{txt}");
        assert!(txt.contains("promote-rate 100.0%"), "{txt}");
        // a trace without breaker activity keeps its text clean
        let clean = analyze_str(&synthetic_trace()).unwrap();
        assert!(clean.health.is_empty());
        assert!(!clean.text().contains("protocol health:"));
        // and the JSON always carries the (possibly empty) health object
        let v = obs::json::parse(&clean.to_json()).unwrap();
        assert!(v.get("health").is_some());
        let v = obs::json::parse(&rep.to_json()).unwrap();
        let dg = v.get("health").unwrap().get("direct-gdr").unwrap();
        assert_eq!(dg.get("promote_rate").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn diff_gates_on_promote_rate_regressions() {
        let a = analyze_str(&synthetic_health_trace()).unwrap();
        let mut b = a.clone();
        // candidate never promotes direct-gdr back
        b.health.get_mut("direct-gdr").unwrap().promotes = 0;
        let d = diff(&a, &b, 10.0);
        let row = d
            .health
            .iter()
            .find(|r| r.protocol == "direct-gdr")
            .unwrap();
        assert!(row.regressed && row.b_rate < row.a_rate);
        assert!(d.regressions() >= 1);
        assert!(d.text().contains("promote-rate"), "{}", d.text());
        // identical lifecycles: no regression from health rows
        let d2 = diff(&a, &a.clone(), 10.0);
        assert!(d2.health.iter().all(|r| !r.regressed));
        // breaker-free pair produces no health section at all
        let c = analyze_str(&synthetic_trace()).unwrap();
        let d3 = diff(&c, &c.clone(), 10.0);
        assert!(d3.health.is_empty());
        assert!(!d3.text().contains("promote-rate"));
    }

    #[test]
    fn regressed_rows_attribute_the_slowest_growing_stage() {
        let a = analyze_str(&synthetic_trace()).unwrap();
        let mut b = a.clone();
        // candidate: the pipeline's rdma stage doubles, dragging the
        // op mean over the threshold; d2h stays flat
        {
            let st = b.protocols.get_mut("put/pipeline-gdr-write").unwrap();
            st.total_us += 6.0;
            *st.stages.get_mut("rdma").unwrap() += 6.0;
        }
        let d = diff(&a, &b, 10.0);
        let row = d
            .rows
            .iter()
            .find(|r| r.key == "put/pipeline-gdr-write")
            .unwrap();
        assert!(row.regressed);
        let sd = row.stage.as_ref().expect("stage attribution");
        assert_eq!(sd.stage, "rdma");
        assert!((sd.b_us - sd.a_us - 6.0).abs() < 1e-6, "{sd:?}");
        assert!(d.text().contains("stage rdma"), "{}", d.text());
        // non-regressed rows carry no attribution
        assert!(d
            .rows
            .iter()
            .filter(|r| !r.regressed)
            .all(|r| r.stage.is_none()));
    }

    /// A windowed-metrics trace (50us windows): three quiet baseline
    /// windows of 3us puts, a burst window (w3) where latencies jump
    /// 10x and faults inject, and a recovered window (w4). An SLO
    /// budget of p99 <= 20us is breached only in the burst window, and
    /// the breaker demotes in w3 and promotes back in w4.
    fn synthetic_windowed_trace() -> String {
        let r = Recorder::with_windows(ObsLevel::Spans, 1, 50);
        r.set_slo(obs::SloPolicy::parse("p99:put/*/*=20").expect("policy must parse"));
        let pe0 = r.track(TrackKind::Pe, 0);
        for w in 0..3u64 {
            for i in 0..3u64 {
                r.op_latency_at(
                    "put",
                    "direct-gdr",
                    8192,
                    sim_core::SimDuration::from_us(3),
                    t(w * 50 + 10 + i * 10),
                );
            }
        }
        for i in 0..3u64 {
            r.op_latency_at(
                "put",
                "direct-gdr",
                8192,
                sim_core::SimDuration::from_us(30),
                t(160 + i * 10),
            );
            r.fault_tally_at("injected", "direct-gdr", t(160 + i * 10));
            r.fault_tally_at("retried", "direct-gdr", t(161 + i * 10));
        }
        for (name, us) in [("demote", 165u64), ("probe", 210), ("promote", 215)] {
            r.instant(
                pe0,
                name,
                t(us),
                Payload::Health {
                    protocol: "direct-gdr",
                    op_id: 7,
                },
            );
        }
        for i in 0..3u64 {
            r.op_latency_at(
                "put",
                "direct-gdr",
                8192,
                sim_core::SimDuration::from_us(3),
                t(210 + i * 10),
            );
        }
        r.chrome_trace()
    }

    #[test]
    fn timeline_flags_burst_change_points_and_lifecycles() {
        let tr = Trace::parse(&synthetic_windowed_trace()).expect("windowed trace must parse");
        assert_eq!(tr.windows.len(), 5, "five touched windows");
        assert!(!tr.slo_violations.is_empty());
        let tl = timeline(&tr, None).expect("snapshots present");
        assert!(!tl.derived);
        assert_eq!(tl.rows.len(), 5);
        let w3 = &tl.rows[3];
        assert_eq!(w3.window, 3);
        assert!(w3.change_point, "10x p99 jump must flag the burst window");
        assert_eq!(w3.faults, 3);
        assert_eq!(w3.retries, 3);
        assert!(w3.violations >= 1, "budget breached in the burst window");
        assert!(tl.rows[4].change_point, "recovery back down also flags");
        assert!(
            tl.rows.iter().all(|r| r.violations == 0 || r.window == 3),
            "violations must stay inside the burst window"
        );
        assert_eq!(tl.bursts.len(), 1);
        assert_eq!((tl.bursts[0].first, tl.bursts[0].last), (3, 3));
        assert!(tl.bursts[0].aligned, "burst aligns with the change-point");
        assert_eq!(tl.lifecycles.len(), 1);
        let lc = &tl.lifecycles[0];
        assert_eq!(lc.protocol, "direct-gdr");
        assert_eq!((lc.demote, lc.probe, lc.promote), (3, Some(4), Some(4)));
        // byte-identical across two same-input assemblies
        let tl2 = timeline(
            &Trace::parse(&synthetic_windowed_trace()).expect("reparse"),
            None,
        )
        .expect("reassemble");
        assert_eq!(tl.to_json(), tl2.to_json());
        assert_eq!(tl.text(), tl2.text());
        let txt = tl.text();
        assert!(txt.contains("CHANGE-POINT"), "{txt}");
        assert!(
            txt.contains("fault burst: windows 3..3, aligned"),
            "{txt}"
        );
        assert!(
            txt.contains("lifecycle direct-gdr: demote @w3 probe @w4 promote @w4"),
            "{txt}"
        );
        let v = obs::json::parse(&tl.to_json()).expect("timeline JSON must reparse");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("gdrprof-timeline-v1")
        );
        assert_eq!(v.get("windows").and_then(|n| n.as_f64()), Some(5.0));
    }

    #[test]
    fn timeline_derives_windows_from_raw_spans() {
        let tr = Trace::parse(&synthetic_trace()).expect("trace must parse");
        assert!(
            timeline(&tr, None).is_err(),
            "no snapshots without the metrics plane"
        );
        let tl = timeline(&tr, Some(10)).expect("explicit width derives");
        assert!(tl.derived);
        assert!(!tl.rows.is_empty());
        assert_eq!(tl.violations(), 0);
        let txt = tl.text();
        assert!(txt.contains("derived"), "{txt}");
        assert!(txt.contains("slo-violations: 0"), "{txt}");
    }

    #[test]
    fn diff_gates_on_slo_violation_counts() {
        let a = analyze_str(&synthetic_windowed_trace()).expect("windowed trace must analyze");
        assert_eq!(a.windows, 5);
        assert!(a.slo_violations >= 1);
        // the windowed counters round-trip through the report JSON
        let back = Report::from_json_str(&a.to_json()).expect("report must rehydrate");
        assert_eq!(back.windows, a.windows);
        assert_eq!(back.slo_violations, a.slo_violations);
        let mut b = a.clone();
        b.slo_violations += 3;
        let d = diff(&a, &b, 10.0);
        assert_eq!(d.slo_regressions(), 1);
        assert_eq!(d.latency_regressions(), 0);
        assert_eq!(d.contention_regressions(), 0);
        let row = d.slo.as_ref().expect("slo section present");
        assert!(row.regressed && row.b_violations > row.a_violations);
        assert!(d.text().contains("slo-violations"), "{}", d.text());
        let v = obs::json::parse(&d.to_json()).expect("diff JSON must reparse");
        assert_eq!(v.get("slo_regressions").and_then(|n| n.as_f64()), Some(1.0));
        // fewer violations than baseline is not a regression
        let d2 = diff(&b, &a, 10.0);
        assert_eq!(d2.slo_regressions(), 0);
        // a windowless pair carries no slo section at all
        let c = analyze_str(&synthetic_trace()).expect("clean trace");
        let d3 = diff(&c, &c.clone(), 10.0);
        assert!(d3.slo.is_none());
        assert!(!d3.text().contains("slo-violations"));
    }

    #[test]
    fn diff_flags_regressions_over_threshold() {
        let a = analyze_str(&synthetic_trace()).unwrap();
        let mut b = a.clone();
        // candidate: direct-gdr 50% slower
        b.protocols.get_mut("put/direct-gdr").unwrap().total_us *= 1.5;
        let d = diff(&a, &b, 10.0);
        assert_eq!(d.regressions(), 1);
        let row = d.rows.iter().find(|r| r.key == "put/direct-gdr").unwrap();
        assert!(row.regressed);
        assert!((row.delta_pct.unwrap() - 50.0).abs() < 1e-6);
        // within threshold: no regression
        let d2 = diff(&a, &b, 60.0);
        assert_eq!(d2.regressions(), 0);
        assert!(d2.text().contains("regressions: 0"));
    }
}
