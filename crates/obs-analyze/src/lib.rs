//! # obs-analyze — trace analysis for the observability layer
//!
//! The recorder (`crates/obs`) writes Chrome `trace_event` documents;
//! this crate reads them back and answers the profiling questions the
//! paper's evaluation asks: where does each put/get spend its time
//! (critical path per op, split by pipeline stage), how busy is each
//! PCIe/IB link (utilization + contention windows), which protocol did
//! the runtime choose and how often, and did a change regress latency
//! (A/B diff with a threshold). The `gdrprof` binary is the CLI over
//! it; CI uses its machine-readable output (`BENCH_omb.json`).
//!
//! Everything here is deterministic: identical traces produce
//! byte-identical text and JSON reports (BTreeMap iteration, fixed
//! float formatting), so reports can be `cmp`'d in CI.

pub mod diff;
pub mod report;
pub mod trace;

pub use diff::{diff, DiffReport, DiffRow, HealthRow, PartialRow, RecoveryRow, StageDelta};
pub use report::{analyze, FaultStat, HealthStat, LinkStat, OpPath, ProtoStat, Report, RMA_OPS};
pub use trace::Trace;

/// Parse + analyze in one step.
pub fn analyze_str(doc: &str) -> Result<Report, String> {
    Ok(analyze(&Trace::parse(doc)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{ObsLevel, Payload, Recorder, TrackKind};
    use sim_core::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime(us * 1_000_000)
    }

    /// A synthetic two-op trace: one small direct-GDR put (flow start +
    /// remote flow end), one pipelined put with overlapping d2h/rdma
    /// chunks, a decision record, and link counter samples.
    fn synthetic_trace() -> String {
        let r = Recorder::new(ObsLevel::Spans);
        let pe0 = r.track(TrackKind::Pe, 0);
        let pe1 = r.track(TrackKind::Pe, 1);
        let lk = r.track_named(TrackKind::Link, 0, "pcie/gpu0/d2h");

        // op 1: direct-gdr put, span 1..5us, remote completion at 9us
        r.instant(pe0, "op-flow", t(1), Payload::FlowStart { id: 101 });
        r.span(
            pe0,
            "put",
            t(1),
            t(5),
            Payload::Op {
                op: "put",
                protocol: "direct-gdr",
                size: 64,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                op_id: 101,
            },
        );
        r.instant(pe1, "op-flow", t(9), Payload::FlowEnd { id: 101 });

        // op 2: pipelined put with two d2h chunks (10..12, 11..14 —
        // overlapping, union 4us) and one rdma chunk ending at 20us
        r.instant(pe0, "op-flow", t(10), Payload::FlowStart { id: 102 });
        r.span(
            pe0,
            "put",
            t(10),
            t(15),
            Payload::Op {
                op: "put",
                protocol: "pipeline-gdr-write",
                size: 1 << 20,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                op_id: 102,
            },
        );
        for (i, (s, e)) in [(10u64, 12u64), (11, 14)].iter().enumerate() {
            r.span(
                pe0,
                "chunk-d2h",
                t(*s),
                t(*e),
                Payload::Chunk {
                    protocol: "pipeline-gdr-write",
                    stage: "d2h",
                    index: i as u32,
                    size: 1 << 19,
                    op_id: 102,
                },
            );
        }
        r.span(
            pe0,
            "chunk-rdma",
            t(14),
            t(20),
            Payload::Chunk {
                protocol: "pipeline-gdr-write",
                stage: "rdma",
                index: 1,
                size: 1 << 19,
                op_id: 102,
            },
        );
        r.instant(pe1, "op-flow", t(20), Payload::FlowEnd { id: 102 });

        let mut d = obs::Decision {
            op: "put",
            size: 64,
            src_pe: 0,
            dst_pe: 1,
            src_dev: true,
            dst_dev: true,
            same_node: false,
            chosen: "direct-gdr",
            ..Default::default()
        };
        d.candidates.push("direct-gdr");
        r.decision(pe0, t(1), d);

        // link samples: queue ramps to 2 (one contention window)
        for (us, total, busy, q) in [(2u64, 4096u64, 1u64, 1u32), (3, 8192, 2, 2), (4, 12288, 3, 1)]
        {
            r.instant(
                lk,
                "link",
                t(us),
                Payload::LinkSample {
                    total,
                    busy_ps: busy * 1_000_000,
                    queue: q,
                },
            );
        }
        r.chrome_trace()
    }

    #[test]
    fn analyzes_critical_paths_stages_and_flows() {
        let rep = analyze_str(&synthetic_trace()).unwrap();
        assert_eq!(rep.ops_analyzed, 2);
        assert_eq!(rep.flow_started, 2);
        assert_eq!(rep.flow_matched, 2);
        assert!((rep.flow_linkage() - 1.0).abs() < 1e-9);

        // direct put: critical path extends to the remote flow end
        let direct = &rep.protocols["put/direct-gdr"];
        assert_eq!(direct.count, 1);
        assert!((direct.mean_us() - 8.0).abs() < 1e-6, "{}", direct.mean_us());
        assert!((direct.stages["direct"] - 4.0).abs() < 1e-6);

        // pipelined put: end = last chunk end (20us), d2h union = 4us
        let pipe = &rep.protocols["put/pipeline-gdr-write"];
        assert!((pipe.mean_us() - 10.0).abs() < 1e-6, "{}", pipe.mean_us());
        assert!((pipe.stages["d2h"] - 4.0).abs() < 1e-6, "{:?}", pipe.stages);
        assert!((pipe.stages["rdma"] - 6.0).abs() < 1e-6);

        assert_eq!(rep.decisions["put/direct-gdr"], 1);

        let lk = &rep.links["pcie/gpu0/d2h"];
        assert_eq!(lk.samples, 3);
        assert_eq!(lk.bytes, 12288);
        assert_eq!(lk.peak_queue, 2);
        assert_eq!(lk.contended_windows, 1);
    }

    #[test]
    fn text_report_has_ci_anchor_lines() {
        let rep = analyze_str(&synthetic_trace()).unwrap();
        let txt = rep.text();
        assert!(txt.contains("ops-analyzed: 2"), "{txt}");
        assert!(txt.contains("critical path"), "{txt}");
        assert!(txt.contains("flow-linkage: 100.0%"), "{txt}");
    }

    #[test]
    fn json_report_is_deterministic_and_parses() {
        let rep = analyze_str(&synthetic_trace()).unwrap();
        let j1 = rep.to_json();
        let j2 = analyze_str(&synthetic_trace()).unwrap().to_json();
        assert_eq!(j1, j2, "same trace must yield byte-identical JSON");
        let v = obs::json::parse(&j1).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str().unwrap(),
            "gdrprof-report-v1"
        );
        assert_eq!(v.get("ops_analyzed").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(
            v.get("flow").unwrap().get("linkage").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn malformed_documents_are_errors() {
        assert!(Trace::parse("{\"traceEvents\":[").is_err());
        assert!(Trace::parse("{}").is_err(), "missing traceEvents array");
        assert!(Trace::parse("[]").is_err());
        // event without mandatory fields
        assert!(Trace::parse(r#"{"traceEvents":[{"ts":1}]}"#).is_err());
    }

    /// The synthetic trace plus fault machinery: op 101 draws one
    /// transient fault and one retry before completing; an op that
    /// never completes (no span) draws a fault; one fallback re-routes
    /// a put away from direct-gdr.
    fn synthetic_faulted_trace() -> String {
        let r = Recorder::new(ObsLevel::Spans);
        let pe0 = r.track(TrackKind::Pe, 0);
        r.instant(pe0, "op-flow", t(1), Payload::FlowStart { id: 101 });
        r.instant(
            pe0,
            "fault",
            t(1),
            Payload::Fault {
                kind: "cqe-flush",
                protocol: "direct-gdr",
                op_id: 101,
            },
        );
        r.instant(
            pe0,
            "retry",
            t(2),
            Payload::Retry {
                protocol: "direct-gdr",
                attempt: 1,
                backoff_ns: 2_000,
                op_id: 101,
            },
        );
        r.span(
            pe0,
            "put",
            t(2),
            t(5),
            Payload::Op {
                op: "put",
                protocol: "direct-gdr",
                size: 64,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                op_id: 101,
            },
        );
        // op 103 faults and never completes (no op span)
        r.instant(
            pe0,
            "fault",
            t(6),
            Payload::Fault {
                kind: "retry-exceeded",
                protocol: "direct-gdr",
                op_id: 103,
            },
        );
        r.instant(
            pe0,
            "fallback",
            t(7),
            Payload::Fallback {
                op: "put",
                from: "direct-gdr",
                to: "proxy-pipeline",
                op_id: 104,
            },
        );
        r.chrome_trace()
    }

    #[test]
    fn fault_events_aggregate_into_recovery_stats() {
        let rep = analyze_str(&synthetic_faulted_trace()).unwrap();
        let f = &rep.faults["direct-gdr"];
        assert_eq!(f.injected, 2);
        assert_eq!(f.retried, 1);
        assert_eq!(f.faulted_ops, 2);
        assert_eq!(f.recovered, 1, "only op 101 completed");
        assert_eq!(f.fallbacks, 1);
        assert!((f.recovery_rate() - 0.5).abs() < 1e-9);
        let txt = rep.text();
        assert!(txt.contains("fault injection:"), "{txt}");
        // a clean trace keeps its text free of the fault section
        let clean = analyze_str(&synthetic_trace()).unwrap();
        assert!(!clean.text().contains("fault injection:"));
    }

    #[test]
    fn diff_gates_on_recovery_rate_regressions() {
        let mut a = analyze_str(&synthetic_faulted_trace()).unwrap();
        let mut b = a.clone();
        // candidate recovers none of its faulted ops
        b.faults.get_mut("direct-gdr").unwrap().recovered = 0;
        let d = diff(&a, &b, 10.0);
        assert_eq!(d.regressions(), 1);
        let row = &d.recovery[0];
        assert!(row.regressed && row.b_rate < row.a_rate);
        assert!(d.text().contains("recovery-rate:"), "{}", d.text());
        // equal rates: no regression
        let d2 = diff(&a, &a.clone(), 10.0);
        assert_eq!(d2.regressions(), 0);
        // a fault-free pair produces no recovery section at all
        a.faults.clear();
        let mut c = analyze_str(&synthetic_trace()).unwrap();
        c.faults.clear();
        let d3 = diff(&c, &c.clone(), 10.0);
        assert!(d3.recovery.is_empty());
        assert!(!d3.text().contains("recovery-rate:"));
    }

    /// The faulted trace plus a full circuit-breaker lifecycle on
    /// direct-gdr (demote -> probe -> promote) and a second protocol
    /// that stays demoted (demote only).
    fn synthetic_health_trace() -> String {
        let r = Recorder::new(ObsLevel::Spans);
        let pe0 = r.track(TrackKind::Pe, 0);
        for (name, proto, us) in [
            ("demote", "direct-gdr", 3u64),
            ("probe", "direct-gdr", 8),
            ("promote", "direct-gdr", 9),
            ("demote", "host-rdma", 5),
        ] {
            r.instant(
                pe0,
                name,
                t(us),
                Payload::Health {
                    protocol: proto,
                    op_id: 100 + us,
                },
            );
        }
        r.chrome_trace()
    }

    #[test]
    fn health_events_aggregate_into_lifecycle_stats() {
        let rep = analyze_str(&synthetic_health_trace()).unwrap();
        let dg = &rep.health["direct-gdr"];
        assert_eq!((dg.demotes, dg.probes, dg.promotes), (1, 1, 1));
        assert!((dg.promote_rate() - 1.0).abs() < 1e-9);
        let hr = &rep.health["host-rdma"];
        assert_eq!((hr.demotes, hr.probes, hr.promotes), (1, 0, 0));
        assert!(hr.promote_rate().abs() < 1e-9, "never promoted back");
        let txt = rep.text();
        assert!(txt.contains("protocol health:"), "{txt}");
        assert!(txt.contains("promote-rate 100.0%"), "{txt}");
        // a trace without breaker activity keeps its text clean
        let clean = analyze_str(&synthetic_trace()).unwrap();
        assert!(clean.health.is_empty());
        assert!(!clean.text().contains("protocol health:"));
        // and the JSON always carries the (possibly empty) health object
        let v = obs::json::parse(&clean.to_json()).unwrap();
        assert!(v.get("health").is_some());
        let v = obs::json::parse(&rep.to_json()).unwrap();
        let dg = v.get("health").unwrap().get("direct-gdr").unwrap();
        assert_eq!(dg.get("promote_rate").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn diff_gates_on_promote_rate_regressions() {
        let a = analyze_str(&synthetic_health_trace()).unwrap();
        let mut b = a.clone();
        // candidate never promotes direct-gdr back
        b.health.get_mut("direct-gdr").unwrap().promotes = 0;
        let d = diff(&a, &b, 10.0);
        let row = d
            .health
            .iter()
            .find(|r| r.protocol == "direct-gdr")
            .unwrap();
        assert!(row.regressed && row.b_rate < row.a_rate);
        assert!(d.regressions() >= 1);
        assert!(d.text().contains("promote-rate"), "{}", d.text());
        // identical lifecycles: no regression from health rows
        let d2 = diff(&a, &a.clone(), 10.0);
        assert!(d2.health.iter().all(|r| !r.regressed));
        // breaker-free pair produces no health section at all
        let c = analyze_str(&synthetic_trace()).unwrap();
        let d3 = diff(&c, &c.clone(), 10.0);
        assert!(d3.health.is_empty());
        assert!(!d3.text().contains("promote-rate"));
    }

    #[test]
    fn regressed_rows_attribute_the_slowest_growing_stage() {
        let a = analyze_str(&synthetic_trace()).unwrap();
        let mut b = a.clone();
        // candidate: the pipeline's rdma stage doubles, dragging the
        // op mean over the threshold; d2h stays flat
        {
            let st = b.protocols.get_mut("put/pipeline-gdr-write").unwrap();
            st.total_us += 6.0;
            *st.stages.get_mut("rdma").unwrap() += 6.0;
        }
        let d = diff(&a, &b, 10.0);
        let row = d
            .rows
            .iter()
            .find(|r| r.key == "put/pipeline-gdr-write")
            .unwrap();
        assert!(row.regressed);
        let sd = row.stage.as_ref().expect("stage attribution");
        assert_eq!(sd.stage, "rdma");
        assert!((sd.b_us - sd.a_us - 6.0).abs() < 1e-6, "{sd:?}");
        assert!(d.text().contains("stage rdma"), "{}", d.text());
        // non-regressed rows carry no attribution
        assert!(d
            .rows
            .iter()
            .filter(|r| !r.regressed)
            .all(|r| r.stage.is_none()));
    }

    #[test]
    fn diff_flags_regressions_over_threshold() {
        let a = analyze_str(&synthetic_trace()).unwrap();
        let mut b = a.clone();
        // candidate: direct-gdr 50% slower
        b.protocols.get_mut("put/direct-gdr").unwrap().total_us *= 1.5;
        let d = diff(&a, &b, 10.0);
        assert_eq!(d.regressions(), 1);
        let row = d.rows.iter().find(|r| r.key == "put/direct-gdr").unwrap();
        assert!(row.regressed);
        assert!((row.delta_pct.unwrap() - 50.0).abs() < 1e-6);
        // within threshold: no regression
        let d2 = diff(&a, &b, 60.0);
        assert_eq!(d2.regressions(), 0);
        assert!(d2.text().contains("regressions: 0"));
    }
}
