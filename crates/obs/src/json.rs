//! Minimal JSON: a string-building writer and a strict recursive-descent
//! parser.
//!
//! The workspace builds offline against a stub `serde` (see
//! `compat/serde`), so the Chrome-trace exporter hand-rolls its wire
//! format here. The parser exists so tests can load a trace back and
//! assert on its structure — it is small but honest: escapes, nesting,
//! and number forms are handled; anything malformed is an `Err`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite f64. Integral values print without a fraction so
/// traces stay byte-stable across platforms.
pub fn write_num(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "non-finite number in trace");
    if v == v.trunc() && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Incremental writer for one JSON object: `field(...)` chains append
/// `"key":value` pairs with comma management.
pub struct ObjWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjWriter<'a> {
    pub fn new(out: &'a mut String) -> ObjWriter<'a> {
        out.push('{');
        ObjWriter { out, first: true }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_str(self.out, k);
        self.out.push(':');
        self.out
    }

    pub fn str_field(&mut self, k: &str, v: &str) -> &mut Self {
        let out = self.key(k);
        write_str(out, v);
        self
    }

    pub fn num_field(&mut self, k: &str, v: f64) -> &mut Self {
        let out = self.key(k);
        write_num(out, v);
        self
    }

    pub fn u64_field(&mut self, k: &str, v: u64) -> &mut Self {
        let out = self.key(k);
        let _ = write!(out, "{v}");
        self
    }

    pub fn bool_field(&mut self, k: &str, v: bool) -> &mut Self {
        let out = self.key(k);
        let _ = write!(out, "{v}");
        self
    }

    /// Open a raw-valued field: the caller writes the value itself
    /// (nested object/array) into the returned buffer.
    pub fn raw_field(&mut self, k: &str) -> &mut String {
        self.key(k)
    }

    pub fn finish(self) {
        self.out.push('}');
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            map.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // consume one full UTF-8 scalar
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parses_back() {
        let mut out = String::new();
        let mut o = ObjWriter::new(&mut out);
        o.str_field("name", "a\"b\\c\nd")
            .num_field("ts", 1.5)
            .u64_field("big", u64::MAX)
            .bool_field("ok", true);
        o.finish();
        let v = parse(&out).unwrap();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "a\"b\\c\nd");
        assert_eq!(v.get("ts").unwrap().as_f64().unwrap(), 1.5);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":-1.25e2}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_f64().unwrap(), -125.0);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1}x"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        let mut out = String::new();
        write_num(&mut out, 42.0);
        assert_eq!(out, "42");
    }
}
