//! The versioned `thresholds-v1` artifact: a portable JSON table of
//! protocol-switch thresholds.
//!
//! This is the interchange format between the observability tooling and
//! the runtime: `gdrprof crossover --suggest` emits one from measured
//! crossover points, `gdrprof whatif --thresholds` replays recorded
//! decisions against one, and `RuntimeConfig` loads one (via
//! `GDR_SHMEM_THRESHOLDS` or `with_threshold_table`) to override the
//! compiled-in tuned constants. The future autotuner hill-climbs over
//! this artifact rather than over source code.
//!
//! Wire format (entries sorted by name, serialization deterministic):
//!
//! ```json
//! {"schema":"thresholds-v1","entries":{"gdr_put_limit":32768}}
//! ```

use crate::json::{self, ObjWriter, Value};
use std::collections::BTreeMap;

/// Schema marker of the artifact.
pub const THRESHOLDS_SCHEMA: &str = "thresholds-v1";

/// The threshold names the runtime understands — exactly the tunables
/// `RuntimeConfig` exposes and decision records cite by name. Unknown
/// names in an artifact are a hard error (fail loud, not silent).
pub const KNOWN_THRESHOLDS: [&str; 6] = [
    "loopback_put_limit",
    "loopback_get_limit",
    "loopback_dd_limit",
    "gdr_put_limit",
    "gdr_get_limit",
    "proxy_get_min",
];

/// A parsed, validated `thresholds-v1` table. Entries are a subset of
/// [`KNOWN_THRESHOLDS`]; absent names leave the runtime default intact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThresholdTable {
    entries: BTreeMap<String, u64>,
}

impl ThresholdTable {
    pub fn new() -> ThresholdTable {
        ThresholdTable::default()
    }

    /// Set one entry; rejects names the runtime does not understand.
    pub fn set(&mut self, name: &str, value: u64) -> Result<(), String> {
        if !KNOWN_THRESHOLDS.contains(&name) {
            return Err(format!(
                "unknown threshold {name:?} (known: {})",
                KNOWN_THRESHOLDS.join(", ")
            ));
        }
        self.entries.insert(name.to_string(), value);
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Entries in sorted-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Parse and validate a `thresholds-v1` JSON document. Every
    /// failure names what was wrong — these files are hand-editable and
    /// autotuner-generated, so silent acceptance of garbage is the one
    /// thing this loader must never do.
    pub fn from_json_str(doc: &str) -> Result<ThresholdTable, String> {
        let v = json::parse(doc).map_err(|e| format!("thresholds: not JSON: {e}"))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(THRESHOLDS_SCHEMA) => {}
            Some(other) => {
                return Err(format!(
                    "thresholds: schema {other:?}, expected {THRESHOLDS_SCHEMA:?}"
                ))
            }
            None => return Err("thresholds: missing \"schema\" field".to_string()),
        }
        let entries = v
            .get("entries")
            .ok_or("thresholds: missing \"entries\" object")?
            .as_obj()
            .ok_or("thresholds: \"entries\" is not an object")?;
        let mut t = ThresholdTable::new();
        for (name, val) in entries {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("thresholds: entry {name:?} is not a number"))?;
            if n < 0.0 || n != n.trunc() || n > u64::MAX as f64 {
                return Err(format!(
                    "thresholds: entry {name:?} must be a non-negative integer, got {n}"
                ));
            }
            t.set(name, n as u64)?;
        }
        Ok(t)
    }

    /// Deterministic serialization (sorted entries, no whitespace),
    /// terminated by a newline so emitted artifacts `cmp` cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 32 * self.entries.len());
        let mut o = ObjWriter::new(&mut out);
        o.str_field("schema", THRESHOLDS_SCHEMA);
        {
            let buf = o.raw_field("entries");
            let mut e = ObjWriter::new(buf);
            for (name, &value) in &self.entries {
                e.u64_field(name, value);
            }
            e.finish();
        }
        o.finish();
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_stays_sorted() {
        let mut t = ThresholdTable::new();
        t.set("proxy_get_min", 524288).unwrap();
        t.set("gdr_put_limit", 32768).unwrap();
        let doc = t.to_json();
        assert!(doc.starts_with("{\"schema\":\"thresholds-v1\""));
        assert!(doc.ends_with('\n'));
        // sorted entry order regardless of insertion order
        assert!(doc.find("gdr_put_limit").unwrap() < doc.find("proxy_get_min").unwrap());
        let back = ThresholdTable::from_json_str(&doc).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.get("gdr_put_limit"), Some(32768));
        assert_eq!(back.get("loopback_put_limit"), None);
    }

    #[test]
    fn rejects_unknown_names_and_bad_values() {
        assert!(ThresholdTable::new().set("warp_core_limit", 1).is_err());
        let e = ThresholdTable::from_json_str(
            r#"{"schema":"thresholds-v1","entries":{"warp_core_limit":1}}"#,
        )
        .unwrap_err();
        assert!(e.contains("warp_core_limit"), "error must name the entry: {e}");
        let e = ThresholdTable::from_json_str(
            r#"{"schema":"thresholds-v1","entries":{"gdr_put_limit":-5}}"#,
        )
        .unwrap_err();
        assert!(e.contains("non-negative"), "{e}");
        let e = ThresholdTable::from_json_str(r#"{"schema":"thresholds-v2","entries":{}}"#)
            .unwrap_err();
        assert!(e.contains("schema"), "{e}");
        assert!(ThresholdTable::from_json_str("not json").is_err());
        assert!(ThresholdTable::from_json_str(r#"{"entries":{}}"#).is_err());
    }

    #[test]
    fn empty_table_is_valid() {
        let t = ThresholdTable::from_json_str(r#"{"schema":"thresholds-v1","entries":{}}"#)
            .unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
