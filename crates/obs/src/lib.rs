//! Virtual-time tracing and metrics for the simulated OpenSHMEM stack.
//!
//! The runtime is a discrete-event simulation: every interesting moment
//! already has an exact virtual timestamp, so observability here is
//! *deterministic* — two runs of the same program produce byte-identical
//! traces. The subsystem records:
//!
//! * **op spans** — one per `shmem_put`/`get`/atomic/barrier, carrying
//!   the endpoints, memory domains, size, and the protocol that served it;
//! * **protocol-decision records** — for each RMA dispatch, which
//!   [`Protocol`] was chosen, which candidates were considered, and the
//!   threshold values consulted (the paper's §IV tuning knobs);
//! * **pipeline chunk spans** — per-chunk D2H / RDMA / wakeup stages of
//!   the pipelined GDR and proxy designs;
//! * **histograms** — log2-bucketed op latency per (protocol ×
//!   size-class);
//! * **hardware utilization** — bytes and busy-time per HCA TX engine
//!   and per GPU DMA engine, sampled at event granularity.
//!
//! Export formats: Chrome `trace_event` JSON ([`Recorder::chrome_trace`],
//! load in `chrome://tracing` / Perfetto; one "thread" per PE and per
//! hardware agent, timestamps in virtual microseconds) and a plain-text
//! summary ([`Recorder::summary`]).
//!
//! The level switch is [`ObsLevel`]: `Off` (default; the hot path is a
//! single relaxed atomic load and no allocation), `Counters` (histograms
//! and utilization counters), `Spans` (everything).
//!
//! [`Protocol`]: ../shmem_gdr/state/enum.Protocol.html

pub mod chrome;
pub mod hist;
pub mod json;
pub mod thresholds;
pub mod window;

pub use hist::{Hist, Sketch};
pub use thresholds::ThresholdTable;
pub use window::{SloParseError, SloPolicy, SloViolation, WindowSnap};

use parking_lot::Mutex;
use sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Callback invoked on every provisional SLO violation as the run's
/// feed watermark closes windows (see [`Recorder::set_violation_hook`]).
pub type SloHook = Box<dyn Fn(&SloViolation) + Send + Sync>;

/// How much the recorder captures. Order matters: each level is a
/// superset of the previous one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Record nothing; hot paths stay allocation-free.
    #[default]
    Off,
    /// Histograms, engine counters and hardware utilization only.
    Counters,
    /// Everything: counters plus per-op spans, decision records and
    /// pipeline chunk spans.
    Spans,
}

impl ObsLevel {
    /// Parse `"off"` / `"counters"` / `"spans"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ObsLevel::Off),
            "counters" | "1" => Some(ObsLevel::Counters),
            "spans" | "2" | "full" | "trace" => Some(ObsLevel::Spans),
            _ => None,
        }
    }

    /// Read the `GDR_SHMEM_OBS` environment variable; unset or
    /// unrecognized values mean [`ObsLevel::Off`].
    pub fn from_env() -> ObsLevel {
        std::env::var("GDR_SHMEM_OBS")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or(ObsLevel::Off)
    }

    pub fn counters_on(self) -> bool {
        self >= ObsLevel::Counters
    }

    pub fn spans_on(self) -> bool {
        self >= ObsLevel::Spans
    }
}

/// Which logical agent a track belongs to. Tracks are exported sorted
/// by `(kind, index)` so registration order never shows in the output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrackKind {
    /// One per processing element (`pe/N`).
    Pe,
    /// One per node's proxy service thread (`proxy/N`).
    Proxy,
    /// One per HCA TX engine (`hca/N`).
    Hca,
    /// One per GPU's DMA/copy engines (`gpu-dma/N`).
    GpuDma,
    /// The event engine itself (`engine`).
    Engine,
    /// One per individual interconnect link (PCIe h2d/d2h/d2d/p2p
    /// directions, IB TX wire) — named tracks carrying per-reservation
    /// utilization samples. Declared last so link tracks sort after all
    /// agent tracks in the export.
    Link,
}

impl TrackKind {
    fn prefix(self) -> &'static str {
        match self {
            TrackKind::Pe => "pe",
            TrackKind::Proxy => "proxy",
            TrackKind::Hca => "hca",
            TrackKind::GpuDma => "gpu-dma",
            TrackKind::Engine => "engine",
            TrackKind::Link => "link",
        }
    }
}

/// Handle to a registered track; cheap to copy, stable for the life of
/// the recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackId(u32);

/// Fixed-capacity candidate list for a decision record (no allocation
/// on the record path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cands {
    items: [&'static str; Decision::MAX],
    len: u8,
}

impl Cands {
    pub fn push(&mut self, name: &'static str) {
        if (self.len as usize) < Decision::MAX {
            self.items[self.len as usize] = name;
            self.len += 1;
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.items[..self.len as usize].iter().copied()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.iter().any(|c| c == name)
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl FromIterator<&'static str> for Cands {
    fn from_iter<I: IntoIterator<Item = &'static str>>(it: I) -> Cands {
        let mut c = Cands::default();
        for n in it {
            c.push(n);
        }
        c
    }
}

/// Fixed-capacity list of `(threshold-name, value)` pairs consulted by
/// a protocol dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Thresholds {
    items: [(&'static str, u64); Decision::MAX],
    len: u8,
}

impl Thresholds {
    pub fn push(&mut self, name: &'static str, value: u64) {
        if (self.len as usize) < Decision::MAX {
            self.items[self.len as usize] = (name, value);
            self.len += 1;
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.items[..self.len as usize].iter().copied()
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One protocol-dispatch decision: what was asked for, what was
/// considered, what won.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Decision {
    /// `"put"`, `"get"`, `"atomic"`, ...
    pub op: &'static str,
    pub size: u64,
    pub src_pe: u32,
    pub dst_pe: u32,
    /// Source buffer lives in device memory.
    pub src_dev: bool,
    /// Destination buffer lives in device memory.
    pub dst_dev: bool,
    pub same_node: bool,
    /// `Protocol::name()` of the winner.
    pub chosen: &'static str,
    pub candidates: Cands,
    pub thresholds: Thresholds,
    /// Per-op correlation id ([`Payload::Op`]'s `op_id`; `0` when the
    /// decision is uncorrelated).
    pub op_id: u64,
    /// Log2 size class of `size` ([`hist::bucket_index`]); the key the
    /// quantile sketches and crossover profiler bin by.
    pub size_class: u8,
    /// Socket relation of the device end of the transfer relative to the
    /// HCA that would service it: `"intra-socket"`, `"inter-socket"`, or
    /// `"host"` when no device memory is involved (paper Table III).
    pub socket_rel: &'static str,
    /// Where the consulted threshold values came from: `"builtin"` for
    /// the compiled-in tuned table, `"thresholds-v1"` when a
    /// [`ThresholdTable`] artifact was loaded into the config.
    pub tsource: &'static str,
}

impl Decision {
    /// Capacity of the candidate / threshold lists.
    pub const MAX: usize = 4;
}

/// Structured, fixed-size payload attached to an event. `&'static str`
/// fields keep the record path allocation-free.
// `Decision` carries fixed-capacity candidate/threshold arrays inline
// for the same reason — boxing it would put an allocation on the
// dispatch hot path, which costs more than the per-event bytes here.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Payload {
    None,
    /// A completed RMA/sync operation (span on a PE track). `op_id` is
    /// the per-op correlation id tying the span to its chunk stages and
    /// flow events (`0` for uncorrelated spans such as barriers).
    Op {
        op: &'static str,
        protocol: &'static str,
        size: u64,
        src_pe: u32,
        dst_pe: u32,
        src_dev: bool,
        dst_dev: bool,
        same_node: bool,
        op_id: u64,
    },
    /// A protocol-dispatch decision (instant on a PE track).
    Decision(Decision),
    /// One pipeline-chunk stage (span on a PE/proxy track), correlated
    /// to its originating op by `op_id`.
    Chunk {
        protocol: &'static str,
        stage: &'static str,
        index: u32,
        size: u64,
        op_id: u64,
    },
    /// Proxy service-thread activity (span on a proxy track).
    Proxy {
        kind: &'static str,
        size: u64,
        origin_pe: u32,
    },
    /// A hardware transfer occupying an engine (span on a HW track).
    Xfer { size: u64 },
    /// Cumulative byte count on a hardware track (Chrome counter sample).
    Bytes { bytes: u64, total: u64 },
    /// Origin end of a flow arrow (Chrome `"s"` event): emitted on the
    /// initiating PE's track when an op starts.
    FlowStart { id: u64 },
    /// Terminating end of a flow arrow (Chrome `"f"` event): emitted on
    /// the track where the op's payload finally completed.
    FlowEnd { id: u64 },
    /// Per-link utilization sample (Chrome counter sample on a
    /// [`TrackKind::Link`] track): cumulative bytes and busy time plus
    /// the instantaneous queue depth at the reservation's start.
    LinkSample { total: u64, busy_ps: u64, queue: u32 },
    /// An injected fault detected on an op's service path (instant on
    /// the servicing track): `kind` names the anomaly
    /// (`"cqe-flush-err"`, `"cqe-retry-exceeded"`, `"op-timeout"`, ...).
    Fault {
        kind: &'static str,
        protocol: &'static str,
        op_id: u64,
    },
    /// One bounded-backoff retry after a transient fault (instant):
    /// `attempt` is 1-based, `backoff_ns` the virtual-time delay paid
    /// before this attempt.
    Retry {
        protocol: &'static str,
        attempt: u32,
        backoff_ns: u64,
        op_id: u64,
    },
    /// A fallback protocol decision (instant): the op re-routed from
    /// `from` to `to` because of a persistent or capability fault.
    Fallback {
        op: &'static str,
        from: &'static str,
        to: &'static str,
        op_id: u64,
    },
    /// A chunked transfer gave up part-way (instant on the origin PE
    /// track): `delivered` of `total` bytes landed before per-chunk
    /// retries exhausted; the op surfaced
    /// `TransferError::PartialDelivery`.
    PartialDelivery {
        protocol: &'static str,
        delivered: u64,
        total: u64,
        op_id: u64,
    },
    /// A health-breaker event (instant on the acting PE's track): the
    /// instant's *name* is the transition — `"demote"` (circuit opened,
    /// protocol routed around), `"probe"` (half-open trial admitted
    /// after cooldown) or `"promote"` (circuit closed again). `op_id`
    /// correlates to the op whose draw triggered the transition.
    Health {
        protocol: &'static str,
        op_id: u64,
    },
    /// A membership lifecycle event (instant on the affected PE's
    /// track): the instant's *name* is the transition — `"pe-dead"`
    /// (crash instant), `"evict"` / `"view-change"` (lease-expiry
    /// detection applies the epoch bump) or `"rejoin"` (the PE is
    /// re-admitted for point-to-point traffic). `epoch` is the view
    /// epoch in force right after the transition.
    Member { pe: u32, epoch: u64 },
}

/// One recorded event. `dur == 0` renders as an instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub ts: SimTime,
    pub dur: SimDuration,
    pub name: &'static str,
    pub payload: Payload,
}

struct Track {
    kind: TrackKind,
    index: u32,
    name: String,
    events: Vec<Event>,
}

/// Accumulated utilization for one hardware agent.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgentCounters {
    pub ops: u64,
    pub bytes: u64,
    pub busy: SimDuration,
}

#[derive(Default)]
struct Tables {
    tracks: Vec<Track>,
    by_key: BTreeMap<(TrackKind, u32), u32>,
}

/// The event/metric store. Created once per [`ShmemMachine`] and shared
/// (via [`Sink`]) with the hardware layers. All methods are safe to
/// call from PE threads and from engine callbacks.
///
/// [`ShmemMachine`]: ../shmem_gdr/machine/struct.ShmemMachine.html
pub struct Recorder {
    level: ObsLevel,
    /// Span-sampling factor: op-correlated span data (op spans, decision
    /// records, flows, chunk spans) is recorded for 1 in `sample` ops
    /// per PE. Counters and histograms stay exact regardless.
    sample: u64,
    tables: Mutex<Tables>,
    hists: Mutex<BTreeMap<(&'static str, u8), Hist>>,
    /// Quantile sketches keyed `(op, protocol, size-class)` — the
    /// tail-latency (p50/p99/p999) substrate. Exact like the
    /// histograms: active from [`ObsLevel::Counters`] up, never
    /// sampled.
    sketches: Mutex<BTreeMap<(&'static str, &'static str, u8), hist::Sketch>>,
    agents: Mutex<BTreeMap<(TrackKind, u32), AgentCounters>>,
    /// Exact fault-machinery counters keyed `(what, protocol)` where
    /// `what` is `"injected"`, `"retried"`, `"recovered"`,
    /// `"exhausted"`, `"fallback"`, — for event-context chunk posts —
    /// `"chunk-retried"`, `"chunk-recovered"`, `"partial"`,
    /// `"proxy-restart"`, or — for the health breaker — `"demote"`,
    /// `"probe"` and `"promote"`. Active from [`ObsLevel::Counters`]
    /// up, never sampled.
    faults: Mutex<BTreeMap<(&'static str, &'static str), u64>>,
    /// The windowed metrics plane (`None` unless constructed with
    /// [`Recorder::with_windows`]): per-window latency/link/fault
    /// rollups and the SLO watchdog state. Feeds go through the
    /// `*_at` method variants, which carry the virtual timestamp the
    /// whole-run aggregates don't need.
    windows: Mutex<Option<window::WindowPlane>>,
    /// In-run SLO violation hook (the health-breaker bridge). Fired
    /// *after* the windows lock is released, so the hook may call any
    /// recorder method except the `*_at` feeders.
    slo_hook: Mutex<Option<SloHook>>,
    /// Cheap predicate mirroring `slo_hook.is_some()` so the feed path
    /// skips provisional window evaluation when nobody listens.
    has_hook: AtomicBool,
}

impl Recorder {
    pub fn new(level: ObsLevel) -> Arc<Recorder> {
        Self::with_sample(level, 1)
    }

    /// As [`Recorder::new`] with a span-sampling factor: op-correlated
    /// spans are recorded for 1 in `sample` ops (deterministically, by
    /// per-PE op sequence number). `sample <= 1` records everything.
    pub fn with_sample(level: ObsLevel, sample: u64) -> Arc<Recorder> {
        Arc::new(Recorder {
            level,
            sample: sample.max(1),
            tables: Mutex::new(Tables::default()),
            hists: Mutex::new(BTreeMap::new()),
            sketches: Mutex::new(BTreeMap::new()),
            agents: Mutex::new(BTreeMap::new()),
            faults: Mutex::new(BTreeMap::new()),
            windows: Mutex::new(None),
            slo_hook: Mutex::new(None),
            has_hook: AtomicBool::new(false),
        })
    }

    /// As [`Recorder::with_sample`] with the windowed metrics plane
    /// armed: `window_us > 0` (at [`ObsLevel::Counters`] up) rolls
    /// latency sketches, link utilization and fault/health tallies per
    /// `window_us`-wide virtual-time window, and the Chrome export
    /// gains a `metrics` track of `window-snapshot` (and, with an
    /// [`SloPolicy`] set, `slo-violation`) instants. `window_us == 0`
    /// behaves exactly like [`Recorder::with_sample`].
    pub fn with_windows(level: ObsLevel, sample: u64, window_us: u32) -> Arc<Recorder> {
        let r = Self::with_sample(level, sample);
        if window_us > 0 && level.counters_on() {
            *r.windows.lock() = Some(window::WindowPlane::new(window_us));
        }
        r
    }

    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// The span-sampling factor (1 = record every op).
    pub fn sample(&self) -> u64 {
        self.sample
    }

    /// Deterministic 1-in-N sampling predicate on a per-PE op sequence
    /// number.
    pub fn op_sampled(&self, seq: u64) -> bool {
        self.sample <= 1 || seq.is_multiple_of(self.sample)
    }

    pub fn counters_on(&self) -> bool {
        self.level.counters_on()
    }

    pub fn spans_on(&self) -> bool {
        self.level.spans_on()
    }

    /// Whether the windowed metrics plane is armed.
    pub fn windowing_on(&self) -> bool {
        self.windows.lock().is_some()
    }

    /// Install (replace) the SLO policy evaluated at each window close.
    /// A no-op unless the plane is armed ([`Recorder::with_windows`]).
    pub fn set_slo(&self, policy: SloPolicy) {
        if let Some(p) = self.windows.lock().as_mut() {
            p.set_policy(policy);
        }
    }

    /// Register the in-run SLO violation hook. It fires once per
    /// violation when the feed watermark crosses a window boundary —
    /// a *provisional* evaluation; the exported snapshot is the exact
    /// final rollup and may differ for windows that received late
    /// samples. The hook must not call the recorder's `*_at` feeders
    /// (anything else is fine).
    pub fn set_violation_hook(&self, hook: SloHook) {
        *self.slo_hook.lock() = Some(hook);
        self.has_hook.store(true, Ordering::Relaxed);
    }

    /// The exact per-window rollup (empty when the plane is off).
    pub fn window_report(&self) -> Vec<WindowSnap> {
        self.windows.lock().as_ref().map(|p| p.report()).unwrap_or_default()
    }

    /// Run `f` against the window plane (if armed), then fire the
    /// violation hook for whatever provisional closures `f` returned —
    /// with the windows lock already released, so the hook can safely
    /// re-enter the recorder's counter paths.
    fn feed_window(&self, f: impl FnOnce(&mut window::WindowPlane, bool) -> Vec<SloViolation>) {
        let eval = self.has_hook.load(Ordering::Relaxed);
        let provisional = {
            let mut g = self.windows.lock();
            match g.as_mut() {
                Some(p) => f(p, eval),
                None => return,
            }
        };
        if provisional.is_empty() {
            return;
        }
        let hook = self.slo_hook.lock();
        if let Some(h) = hook.as_ref() {
            for v in &provisional {
                h(v);
            }
        }
    }

    /// Register (or look up) the track for `(kind, index)`.
    pub fn track(&self, kind: TrackKind, index: u32) -> TrackId {
        let mut t = self.tables.lock();
        if let Some(&id) = t.by_key.get(&(kind, index)) {
            return TrackId(id);
        }
        let id = t.tracks.len() as u32;
        let name = if kind == TrackKind::Engine {
            "engine".to_string()
        } else {
            format!("{}/{}", kind.prefix(), index)
        };
        t.tracks.push(Track {
            kind,
            index,
            name,
            events: Vec::new(),
        });
        t.by_key.insert((kind, index), id);
        TrackId(id)
    }

    /// As [`Recorder::track`] with an explicit human-readable name (used
    /// for link tracks, whose identity — `pcie/gpu0/h2d`, `ib/hca1/tx` —
    /// is not derivable from `(kind, index)` alone). The name of the
    /// first registration wins.
    pub fn track_named(&self, kind: TrackKind, index: u32, name: &str) -> TrackId {
        let mut t = self.tables.lock();
        if let Some(&id) = t.by_key.get(&(kind, index)) {
            return TrackId(id);
        }
        let id = t.tracks.len() as u32;
        t.tracks.push(Track {
            kind,
            index,
            name: name.to_string(),
            events: Vec::new(),
        });
        t.by_key.insert((kind, index), id);
        TrackId(id)
    }

    /// Record a span `[start, end)`; only at [`ObsLevel::Spans`].
    pub fn span(&self, track: TrackId, name: &'static str, start: SimTime, end: SimTime, payload: Payload) {
        if !self.spans_on() {
            return;
        }
        self.push(
            track,
            Event {
                ts: start,
                dur: end.since(start),
                name,
                payload,
            },
        );
    }

    /// Record an instant event; only at [`ObsLevel::Spans`].
    pub fn instant(&self, track: TrackId, name: &'static str, ts: SimTime, payload: Payload) {
        if !self.spans_on() {
            return;
        }
        self.push(
            track,
            Event {
                ts,
                dur: SimDuration::ZERO,
                name,
                payload,
            },
        );
    }

    /// Record a protocol-dispatch decision on `track`.
    pub fn decision(&self, track: TrackId, ts: SimTime, d: Decision) {
        self.instant(track, "protocol-decision", ts, Payload::Decision(d));
    }

    fn push(&self, track: TrackId, ev: Event) {
        let mut t = self.tables.lock();
        t.tracks[track.0 as usize].events.push(ev);
    }

    /// Feed an op latency into the per-(protocol × size-class)
    /// histogram; active from [`ObsLevel::Counters`] up.
    pub fn latency(&self, protocol: &'static str, size: u64, dur: SimDuration) {
        if !self.counters_on() {
            return;
        }
        let class = hist::bucket_index(size) as u8;
        self.hists
            .lock()
            .entry((protocol, class))
            .or_default()
            .record(dur.as_ps());
    }

    /// As [`Recorder::latency`], additionally feeding the
    /// per-(op × protocol × size-class) quantile sketch; active from
    /// [`ObsLevel::Counters`] up.
    pub fn op_latency(&self, op: &'static str, protocol: &'static str, size: u64, dur: SimDuration) {
        if !self.counters_on() {
            return;
        }
        let class = hist::bucket_index(size) as u8;
        let ps = dur.as_ps();
        self.hists.lock().entry((protocol, class)).or_default().record(ps);
        self.sketches
            .lock()
            .entry((op, protocol, class))
            .or_default()
            .record(ps);
    }

    /// As [`Recorder::op_latency`], additionally feeding the windowed
    /// metrics plane with the op's completion instant `end` (the
    /// window an op belongs to is the one it *finished* in).
    pub fn op_latency_at(
        &self,
        op: &'static str,
        protocol: &'static str,
        size: u64,
        dur: SimDuration,
        end: SimTime,
    ) {
        if !self.counters_on() {
            return;
        }
        self.op_latency(op, protocol, size, dur);
        let class = hist::bucket_index(size) as u8;
        self.feed_window(|p, eval| p.feed_latency(op, protocol, class, dur.as_ps(), end.as_ps(), eval));
    }

    /// Account `bytes` moved (busy for `busy`) on hardware agent
    /// `(kind, index)`; active from [`ObsLevel::Counters`] up. At
    /// [`ObsLevel::Spans`] it also emits a cumulative-bytes counter
    /// sample at `ts` on the agent's track.
    pub fn agent_bytes(&self, kind: TrackKind, index: u32, ts: SimTime, bytes: u64, busy: SimDuration) {
        if !self.counters_on() {
            return;
        }
        let total = {
            let mut a = self.agents.lock();
            let c = a.entry((kind, index)).or_default();
            c.ops += 1;
            c.bytes += bytes;
            c.busy += busy;
            c.bytes
        };
        if self.spans_on() {
            let track = self.track(kind, index);
            self.push(
                track,
                Event {
                    ts,
                    dur: SimDuration::ZERO,
                    name: "bytes",
                    payload: Payload::Bytes { bytes, total },
                },
            );
        }
    }

    /// Per-link utilization sample, fed from a [`sim_core::Link`]
    /// observer. Exact byte/busy/reservation counters accumulate from
    /// [`ObsLevel::Counters`] up (never sampled); at [`ObsLevel::Spans`]
    /// it also emits a counter sample on the link's named track.
    pub fn link_sample(&self, index: u32, name: &str, ev: &sim_core::LinkEvent) {
        if !self.counters_on() {
            return;
        }
        {
            let mut a = self.agents.lock();
            let c = a.entry((TrackKind::Link, index)).or_default();
            c.ops += 1;
            c.bytes += ev.bytes;
            c.busy += ev.depart.since(ev.start);
        }
        self.feed_window(|p, eval| {
            p.feed_link(
                index,
                name,
                ev.start.as_ps(),
                ev.bytes,
                ev.depart.since(ev.start).as_ps(),
                ev.queue_depth,
                eval,
            )
        });
        if self.spans_on() {
            let track = self.track_named(TrackKind::Link, index, name);
            self.push(
                track,
                Event {
                    ts: ev.start,
                    dur: SimDuration::ZERO,
                    name: "link",
                    payload: Payload::LinkSample {
                        total: ev.bytes_total,
                        busy_ps: ev.busy_total.as_ps(),
                        queue: ev.queue_depth,
                    },
                },
            );
        }
    }

    /// Bump the exact fault counter `(what, protocol)`; active from
    /// [`ObsLevel::Counters`] up. `what` is one of `"injected"`,
    /// `"retried"`, `"recovered"`, `"exhausted"`, `"fallback"`,
    /// `"chunk-retried"`, `"chunk-recovered"`, `"partial"`,
    /// `"proxy-restart"`, `"demote"`, `"probe"`, `"promote"`.
    pub fn fault_tally(&self, what: &'static str, protocol: &'static str) {
        if !self.counters_on() {
            return;
        }
        *self.faults.lock().entry((what, protocol)).or_insert(0) += 1;
    }

    /// As [`Recorder::fault_tally`], additionally feeding the windowed
    /// metrics plane with the tally's virtual instant `ts`.
    pub fn fault_tally_at(&self, what: &'static str, protocol: &'static str, ts: SimTime) {
        if !self.counters_on() {
            return;
        }
        self.fault_tally(what, protocol);
        self.feed_window(|p, eval| p.feed_fault(what, protocol, ts.as_ps(), eval));
    }

    /// Snapshot of the fault counters, keyed `(what, protocol)`.
    pub fn fault_counters(&self) -> BTreeMap<(&'static str, &'static str), u64> {
        self.faults.lock().clone()
    }

    /// Snapshot the events of one track (test/inspection helper).
    pub fn events_of(&self, kind: TrackKind, index: u32) -> Vec<Event> {
        let t = self.tables.lock();
        t.by_key
            .get(&(kind, index))
            .map(|&id| t.tracks[id as usize].events.clone())
            .unwrap_or_default()
    }

    /// Visit every event of every track in deterministic `(kind, index)`
    /// order.
    pub fn for_each_event(&self, mut f: impl FnMut(TrackKind, u32, &Event)) {
        let t = self.tables.lock();
        let mut order: Vec<&Track> = t.tracks.iter().collect();
        order.sort_by_key(|tr| (tr.kind, tr.index));
        for tr in order {
            for ev in &tr.events {
                f(tr.kind, tr.index, ev);
            }
        }
    }

    /// Total number of recorded events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tables.lock().tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Number of protocol-decision records across all tracks.
    pub fn decision_count(&self) -> usize {
        let t = self.tables.lock();
        t.tracks
            .iter()
            .flat_map(|tr| tr.events.iter())
            .filter(|e| matches!(e.payload, Payload::Decision(_)))
            .count()
    }

    /// Snapshot of the latency histograms, keyed by
    /// `(protocol, size-class)` where the class is the log2 bucket index
    /// of the op size ([`hist::bucket_index`]).
    pub fn histograms(&self) -> BTreeMap<(&'static str, u8), Hist> {
        self.hists.lock().clone()
    }

    /// Snapshot of the quantile sketches, keyed by
    /// `(op, protocol, size-class)`.
    pub fn quantile_sketches(&self) -> BTreeMap<(&'static str, &'static str, u8), hist::Sketch> {
        self.sketches.lock().clone()
    }

    /// Snapshot of the hardware utilization counters.
    pub fn agent_counters(&self) -> BTreeMap<(TrackKind, u32), AgentCounters> {
        self.agents.lock().clone()
    }

    /// Export everything as Chrome `trace_event` JSON. With the
    /// windowed plane armed, a synthetic `metrics` track carries one
    /// `window-snapshot` instant per non-empty window (at the window's
    /// closing edge) followed by its `slo-violation` instants.
    pub fn chrome_trace(&self) -> String {
        let mut metrics = Vec::new();
        for snap in self.window_report() {
            metrics.push(chrome::MetricEvent {
                ts_ps: snap.end_ps,
                name: "window-snapshot",
                args: snap.args_json(),
            });
            for v in &snap.violations {
                metrics.push(chrome::MetricEvent {
                    ts_ps: v.ts_ps,
                    name: "slo-violation",
                    args: v.args_json(),
                });
            }
        }
        let t = self.tables.lock();
        let mut order: Vec<&Track> = t.tracks.iter().collect();
        order.sort_by_key(|tr| (tr.kind, tr.index));
        chrome::export_with_metrics(
            &order.iter().map(|tr| (tr.name.as_str(), &tr.events[..])).collect::<Vec<_>>(),
            &metrics,
        )
    }

    /// Plain-text summary: histograms and hardware utilization.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== observability summary (level {:?}) ==", self.level);
        let hists = self.hists.lock();
        if !hists.is_empty() {
            let _ = writeln!(out, "-- op latency by (protocol, size-class) --");
            for ((proto, class), h) in hists.iter() {
                let _ = writeln!(
                    out,
                    "{proto:<18} {:<14} n={:<6} min={} p50~{} max={}",
                    hist::size_class_label(*class),
                    h.count,
                    SimDuration::from_ps(h.min()),
                    SimDuration::from_ps(h.approx_median()),
                    SimDuration::from_ps(h.max()),
                );
            }
        }
        let sketches = self.sketches.lock();
        if !sketches.is_empty() {
            let _ = writeln!(out, "-- op latency quantiles (op, protocol, size-class) --");
            for ((op, proto, class), s) in sketches.iter() {
                let _ = writeln!(
                    out,
                    "{op:<10} {proto:<18} {:<14} n={:<6} p50={} p99={} p999={}",
                    hist::size_class_label(*class),
                    s.count,
                    SimDuration::from_ps(s.p50()),
                    SimDuration::from_ps(s.p99()),
                    SimDuration::from_ps(s.p999()),
                );
            }
        }
        let agents = self.agents.lock();
        if !agents.is_empty() {
            let _ = writeln!(out, "-- hardware utilization --");
            for ((kind, idx), c) in agents.iter() {
                let _ = writeln!(
                    out,
                    "{}/{idx:<4} ops={:<7} bytes={:<12} busy={}",
                    kind.prefix(),
                    c.ops,
                    c.bytes,
                    c.busy
                );
            }
        }
        let faults = self.faults.lock();
        if !faults.is_empty() {
            let _ = writeln!(out, "-- fault machinery --");
            for ((what, proto), n) in faults.iter() {
                let _ = writeln!(out, "{what:<10} {proto:<20} {n}");
            }
        }
        let n = self.event_count();
        if n > 0 {
            let _ = writeln!(out, "-- {n} events on {} tracks --", self.tables.lock().tracks.len());
        }
        out
    }
}

/// A late-bound, cloneable handle hardware layers hold so a machine can
/// attach its [`Recorder`] after construction. Unattached (or attached
/// at [`ObsLevel::Off`]) the per-event cost is one atomic load.
#[derive(Clone, Default)]
pub struct Sink {
    inner: Arc<OnceLock<Arc<Recorder>>>,
}

impl Sink {
    pub fn new() -> Sink {
        Sink::default()
    }

    /// Attach a recorder. The first attach wins; later calls are no-ops
    /// (a machine attaches exactly once, at build time).
    pub fn attach(&self, rec: Arc<Recorder>) {
        let _ = self.inner.set(rec);
    }

    /// The recorder, if one is attached and recording at all.
    pub fn get(&self) -> Option<&Recorder> {
        self.inner
            .get()
            .map(|r| r.as_ref())
            .filter(|r| r.level() != ObsLevel::Off)
    }

    /// The recorder, if counters (or more) are being collected.
    pub fn counters(&self) -> Option<&Recorder> {
        self.get().filter(|r| r.counters_on())
    }

    /// The recorder, if full span recording is on.
    pub fn spans(&self) -> Option<&Recorder> {
        self.get().filter(|r| r.spans_on())
    }
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.get() {
            Some(r) => write!(f, "Sink({:?})", r.level()),
            None => write!(f, "Sink(unattached)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_order_and_parse() {
        assert!(ObsLevel::Spans > ObsLevel::Counters);
        assert!(ObsLevel::Counters > ObsLevel::Off);
        assert_eq!(ObsLevel::parse("SPANS"), Some(ObsLevel::Spans));
        assert_eq!(ObsLevel::parse("counters"), Some(ObsLevel::Counters));
        assert_eq!(ObsLevel::parse("off"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse("bogus"), None);
    }

    #[test]
    fn off_records_nothing() {
        let r = Recorder::new(ObsLevel::Off);
        let t = r.track(TrackKind::Pe, 0);
        r.span(t, "put", SimTime::ZERO, SimTime::ZERO + SimDuration::from_us(1), Payload::None);
        r.latency("direct-gdr", 8, SimDuration::from_us(1));
        r.agent_bytes(TrackKind::Hca, 0, SimTime::ZERO, 64, SimDuration::from_us(1));
        assert_eq!(r.event_count(), 0);
        assert!(r.histograms().is_empty());
        assert!(r.agent_counters().is_empty());
    }

    #[test]
    fn counters_level_skips_spans_but_keeps_metrics() {
        let r = Recorder::new(ObsLevel::Counters);
        let t = r.track(TrackKind::Pe, 0);
        r.span(t, "put", SimTime::ZERO, SimTime::ZERO + SimDuration::from_us(1), Payload::None);
        r.latency("direct-gdr", 8, SimDuration::from_us(1));
        r.agent_bytes(TrackKind::Hca, 0, SimTime::ZERO, 64, SimDuration::from_us(1));
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.histograms().len(), 1);
        assert_eq!(r.agent_counters()[&(TrackKind::Hca, 0)].bytes, 64);
    }

    #[test]
    fn op_latency_fills_hists_and_sketches() {
        let off = Recorder::new(ObsLevel::Off);
        off.op_latency("put", "direct-gdr", 64, SimDuration::from_us(1));
        assert!(off.quantile_sketches().is_empty());

        let c = Recorder::new(ObsLevel::Counters);
        c.op_latency("put", "direct-gdr", 64, SimDuration::from_us(1));
        c.op_latency("put", "direct-gdr", 64, SimDuration::from_us(3));
        c.op_latency("get", "direct-gdr", 64, SimDuration::from_us(2));
        assert_eq!(c.histograms().len(), 1, "hists key on (protocol, class)");
        let sk = c.quantile_sketches();
        assert_eq!(sk.len(), 2, "sketches key on (op, protocol, class)");
        let put = &sk[&("put", "direct-gdr", hist::bucket_index(64) as u8)];
        assert_eq!(put.count, 2);
        assert!(put.p99() >= put.p50());
        assert!(c.summary().contains("p999="));
    }

    #[test]
    fn sink_is_inert_until_attached() {
        let s = Sink::new();
        assert!(s.get().is_none());
        s.attach(Recorder::new(ObsLevel::Off));
        assert!(s.get().is_none(), "Off attach stays inert");
        let s2 = Sink::new();
        s2.attach(Recorder::new(ObsLevel::Spans));
        assert!(s2.spans().is_some());
    }

    #[test]
    fn decision_records_are_counted() {
        let r = Recorder::new(ObsLevel::Spans);
        let t = r.track(TrackKind::Pe, 3);
        let mut d = Decision {
            op: "put",
            size: 4096,
            src_pe: 3,
            dst_pe: 1,
            src_dev: true,
            dst_dev: true,
            same_node: false,
            chosen: "pipeline-gdr-write",
            ..Default::default()
        };
        d.candidates.push("direct-gdr");
        d.candidates.push("pipeline-gdr-write");
        d.thresholds.push("gdr_put_limit", 2048);
        r.decision(t, SimTime::ZERO, d);
        assert_eq!(r.decision_count(), 1);
        assert!(d.candidates.contains("direct-gdr"));
        assert_eq!(d.thresholds.iter().next(), Some(("gdr_put_limit", 2048)));
    }

    #[test]
    fn sampling_predicate_is_deterministic_one_in_n() {
        let r = Recorder::with_sample(ObsLevel::Spans, 4);
        assert_eq!(r.sample(), 4);
        let picks: Vec<bool> = (0..8).map(|s| r.op_sampled(s)).collect();
        assert_eq!(picks, [true, false, false, false, true, false, false, false]);
        let r1 = Recorder::new(ObsLevel::Spans);
        assert!((0..100).all(|s| r1.op_sampled(s)), "sample=1 records every op");
    }

    #[test]
    fn link_samples_keep_exact_counters_and_span_gating() {
        let ev = sim_core::LinkEvent {
            start: SimTime::ZERO,
            depart: SimTime::ZERO + SimDuration::from_us(3),
            arrive: SimTime::ZERO + SimDuration::from_us(4),
            bytes: 1000,
            queue_depth: 2,
            bytes_total: 5000,
            busy_total: SimDuration::from_us(9),
        };
        let c = Recorder::new(ObsLevel::Counters);
        c.link_sample(7, "pcie/gpu0/h2d", &ev);
        let agg = c.agent_counters()[&(TrackKind::Link, 7)];
        assert_eq!((agg.ops, agg.bytes), (1, 1000));
        assert_eq!(agg.busy, SimDuration::from_us(3));
        assert_eq!(c.event_count(), 0, "no events below Spans");

        let s = Recorder::new(ObsLevel::Spans);
        s.link_sample(7, "pcie/gpu0/h2d", &ev);
        assert_eq!(s.event_count(), 1);
        let got = s.events_of(TrackKind::Link, 7);
        assert_eq!(
            got[0].payload,
            Payload::LinkSample { total: 5000, busy_ps: 9_000_000, queue: 2 }
        );
    }

    #[test]
    fn fault_counters_are_exact_and_level_gated() {
        let off = Recorder::new(ObsLevel::Off);
        off.fault_tally("injected", "direct-gdr");
        assert!(off.fault_counters().is_empty());

        let c = Recorder::new(ObsLevel::Counters);
        c.fault_tally("injected", "direct-gdr");
        c.fault_tally("injected", "direct-gdr");
        c.fault_tally("recovered", "direct-gdr");
        c.fault_tally("fallback", "pipeline-gdr-write");
        let f = c.fault_counters();
        assert_eq!(f[&("injected", "direct-gdr")], 2);
        assert_eq!(f[&("recovered", "direct-gdr")], 1);
        assert_eq!(f[&("fallback", "pipeline-gdr-write")], 1);
        assert!(c.summary().contains("fault machinery"));
    }

    #[test]
    fn tracks_export_sorted_by_kind_then_index() {
        let r = Recorder::new(ObsLevel::Spans);
        // register out of order
        let h = r.track(TrackKind::Hca, 1);
        let p1 = r.track(TrackKind::Pe, 1);
        let p0 = r.track(TrackKind::Pe, 0);
        for t in [h, p1, p0] {
            r.instant(t, "x", SimTime::ZERO, Payload::None);
        }
        let mut seen = Vec::new();
        r.for_each_event(|k, i, _| seen.push((k, i)));
        assert_eq!(
            seen,
            vec![(TrackKind::Pe, 0), (TrackKind::Pe, 1), (TrackKind::Hca, 1)]
        );
    }
}
