//! Log2-bucketed histograms.
//!
//! 65 buckets cover the full `u64` range: bucket 0 holds exactly the
//! value `0`, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`. The
//! same bucketing doubles as the *size-class* key for per-protocol
//! latency histograms (an 8 KiB put is class 14).

/// Bucket index for a value: 0 for `0`, else `ilog2(v) + 1` (so
/// `u64::MAX` lands in bucket 64).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        v.ilog2() as usize + 1
    }
}

/// Lower edge of bucket `i` (the smallest value it admits).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Human label for a *size class* (a bucket index applied to byte
/// counts): `"0B"`, `"[1B,2B)"`, ... rendered with power-of-two bytes.
pub fn size_class_label(class: u8) -> String {
    match class {
        0 => "0B".to_string(),
        c => format!("[{},{})", fmt_bytes(1u64 << (c - 1)), fmt_bytes_pow2(c as u32)),
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{}GiB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// `2^exp` rendered as bytes; `2^64` (which overflows u64) spelled out.
fn fmt_bytes_pow2(exp: u32) -> String {
    if exp >= 64 {
        "2^64B".to_string()
    } else {
        fmt_bytes(1u64 << exp)
    }
}

/// A log2 histogram with exact count/sum and min/max extremes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    pub buckets: [u64; 65],
    pub count: u64,
    pub sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Hist {
    pub fn new() -> Hist {
        Hist::default()
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Lower edge of the bucket holding the median sample — a cheap
    /// within-2x estimate, which is all a log2 histogram can promise.
    pub fn approx_median(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let half = self.count.div_ceil(2);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= half {
                return bucket_floor(i);
            }
        }
        unreachable!("count is the sum of the buckets");
    }

    /// Non-empty buckets as `(bucket-index, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(64), 1 << 63);
    }

    #[test]
    fn extremes_zero_one_max() {
        let mut h = Hist::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum, u64::MAX as u128 + 1);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Hist::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.approx_median(), 0);
        assert_eq!(h.nonzero().count(), 0);
    }

    #[test]
    fn median_lands_in_right_bucket() {
        let mut h = Hist::new();
        for v in [10, 12, 100, 1000, 1001] {
            h.record(v);
        }
        // median sample is 100 -> bucket_index(100)=7, floor 64
        assert_eq!(h.approx_median(), 64);
        assert_eq!(h.mean(), (10 + 12 + 100 + 1000 + 1001) / 5);
    }

    #[test]
    fn size_class_labels() {
        assert_eq!(size_class_label(0), "0B");
        assert_eq!(size_class_label(1), "[1B,2B)");
        assert_eq!(size_class_label(14), "[8KiB,16KiB)");
        assert_eq!(size_class_label(34), "[8GiB,16GiB)");
        assert_eq!(size_class_label(64), "[8589934592GiB,2^64B)");
    }
}
