//! Log2-bucketed histograms.
//!
//! 65 buckets cover the full `u64` range: bucket 0 holds exactly the
//! value `0`, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`. The
//! same bucketing doubles as the *size-class* key for per-protocol
//! latency histograms (an 8 KiB put is class 14).

/// Bucket index for a value: 0 for `0`, else `ilog2(v) + 1` (so
/// `u64::MAX` lands in bucket 64).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        v.ilog2() as usize + 1
    }
}

/// Lower edge of bucket `i` (the smallest value it admits).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Human label for a *size class* (a bucket index applied to byte
/// counts): `"0B"`, `"[1B,2B)"`, ... rendered with power-of-two bytes.
pub fn size_class_label(class: u8) -> String {
    match class {
        0 => "0B".to_string(),
        c => format!("[{},{})", fmt_bytes(1u64 << (c - 1)), fmt_bytes_pow2(c as u32)),
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{}GiB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// `2^exp` rendered as bytes; `2^64` (which overflows u64) spelled out.
fn fmt_bytes_pow2(exp: u32) -> String {
    if exp >= 64 {
        "2^64B".to_string()
    } else {
        fmt_bytes(1u64 << exp)
    }
}

/// A log2 histogram with exact count/sum and min/max extremes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    pub buckets: [u64; 65],
    pub count: u64,
    pub sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Hist {
    pub fn new() -> Hist {
        Hist::default()
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Lower edge of the bucket holding the median sample — a cheap
    /// within-2x estimate, which is all a log2 histogram can promise.
    pub fn approx_median(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let half = self.count.div_ceil(2);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= half {
                return bucket_floor(i);
            }
        }
        unreachable!("count is the sum of the buckets");
    }

    /// Non-empty buckets as `(bucket-index, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

/// Number of buckets in a [`Sketch`]: 16 exact buckets for values
/// `< 16` plus 16 log-linear sub-buckets per power-of-two exponent
/// `4..=63`.
pub const SKETCH_BUCKETS: usize = 16 + 60 * 16;

/// Bucket index of `v` in the HDR-style log-linear layout: values
/// below 16 get exact buckets; above, each power-of-two range is split
/// into 16 linear sub-buckets, bounding relative error at 1/16.
#[inline]
pub fn sketch_bucket(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let e = v.ilog2();
        16 + ((e - 4) as usize) * 16 + (((v >> (e - 4)) & 15) as usize)
    }
}

/// Lower edge of sketch bucket `i` (the smallest value it admits).
#[inline]
pub fn sketch_bucket_floor(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        (16 + ((i - 16) % 16) as u64) << ((i - 16) / 16)
    }
}

/// A deterministic HDR-style quantile sketch: fixed log-linear buckets
/// (≤ 6.25 % relative error), exact count/sum/min/max. Identical input
/// sequences produce identical sketches — and therefore byte-identical
/// reports — which is what lets CI `cmp` quantile output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sketch {
    buckets: Vec<u64>,
    pub count: u64,
    pub sum: u128,
    min: u64,
    max: u64,
}

impl Default for Sketch {
    fn default() -> Sketch {
        Sketch {
            buckets: vec![0; SKETCH_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Sketch {
    pub fn new() -> Sketch {
        Sketch::default()
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[sketch_bucket(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the floor of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped into
    /// `[min, max]` so single-sample and extreme quantiles stay exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return sketch_bucket_floor(i).clamp(self.min, self.max);
            }
        }
        unreachable!("count is the sum of the buckets");
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(64), 1 << 63);
    }

    #[test]
    fn extremes_zero_one_max() {
        let mut h = Hist::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[64], 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum, u64::MAX as u128 + 1);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Hist::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.approx_median(), 0);
        assert_eq!(h.nonzero().count(), 0);
    }

    #[test]
    fn median_lands_in_right_bucket() {
        let mut h = Hist::new();
        for v in [10, 12, 100, 1000, 1001] {
            h.record(v);
        }
        // median sample is 100 -> bucket_index(100)=7, floor 64
        assert_eq!(h.approx_median(), 64);
        assert_eq!(h.mean(), (10 + 12 + 100 + 1000 + 1001) / 5);
    }

    #[test]
    fn sketch_bucket_edges_are_exact_and_invertible() {
        // exact region: one bucket per value below 16
        for v in 0..16u64 {
            assert_eq!(sketch_bucket(v), v as usize);
            assert_eq!(sketch_bucket_floor(v as usize), v);
        }
        // exact powers of two start a fresh sub-bucket row
        for e in 4..64u32 {
            let v = 1u64 << e;
            let i = sketch_bucket(v);
            assert_eq!(sketch_bucket_floor(i), v, "2^{e} must be its own floor");
        }
        // the largest representable value lands in the last bucket
        assert_eq!(sketch_bucket(u64::MAX), SKETCH_BUCKETS - 1);
        // floors are monotone, so quantile walking is well-ordered
        for i in 1..SKETCH_BUCKETS {
            assert!(sketch_bucket_floor(i) > sketch_bucket_floor(i - 1));
        }
    }

    #[test]
    fn sketch_relative_error_is_bounded() {
        for v in [17u64, 100, 1000, 12345, 1 << 20, (1 << 30) + 7, u64::MAX / 3] {
            let f = sketch_bucket_floor(sketch_bucket(v));
            assert!(f <= v, "floor {f} above value {v}");
            assert!(
                (v - f) as f64 / v as f64 <= 1.0 / 16.0,
                "relative error too large for {v}: floor {f}"
            );
        }
    }

    #[test]
    fn sketch_zero_and_boundary_values() {
        let mut s = Sketch::new();
        s.record(0); // zero-byte op class
        assert_eq!(s.p50(), 0);
        assert_eq!(s.min(), 0);
        s.record(8192); // exact power of two
        s.record(8192);
        assert_eq!(s.max(), 8192);
        assert_eq!(s.p99(), 8192, "exact powers of two must round-trip");
        let mut big = Sketch::new();
        big.record(u64::MAX); // largest class
        assert_eq!(big.p50(), u64::MAX, "single sample quantiles are exact");
        assert_eq!(big.p999(), u64::MAX);
    }

    #[test]
    fn sketch_quantiles_on_a_spread() {
        let mut s = Sketch::new();
        for v in 1..=1000u64 {
            s.record(v);
        }
        let p50 = s.p50();
        assert!((450..=500).contains(&p50), "p50 {p50} out of range");
        let p99 = s.p99();
        assert!((928..=990).contains(&p99), "p99 {p99} out of range");
        let p999 = s.p999();
        assert!((937..=999).contains(&p999), "p999 {p999} out of range");
        assert!(p50 <= p99 && p99 <= p999, "quantiles must be monotone");
    }

    #[test]
    fn sketch_is_deterministic_across_runs() {
        let run = || {
            let mut s = Sketch::new();
            // fixed LCG: same seed, same stream, same sketch
            let mut x = 0x2545f491u64;
            for _ in 0..5000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s.record(x >> 33);
            }
            (s.p50(), s.p99(), s.p999(), s.count, s.sum)
        };
        assert_eq!(run(), run(), "two seeded runs must agree bucket-for-bucket");
    }

    #[test]
    fn empty_sketch_is_calm() {
        let s = Sketch::new();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn size_class_labels() {
        assert_eq!(size_class_label(0), "0B");
        assert_eq!(size_class_label(1), "[1B,2B)");
        assert_eq!(size_class_label(14), "[8KiB,16KiB)");
        assert_eq!(size_class_label(34), "[8GiB,16GiB)");
        assert_eq!(size_class_label(64), "[8589934592GiB,2^64B)");
    }
}
