//! Virtual-time windowed metrics plane and in-run SLO watchdogs.
//!
//! The whole-run aggregates ([`Recorder::quantile_sketches`],
//! link/fault counters) average away anything time-local: a burst
//! window, a demotion episode, a traffic shift. This module rolls the
//! same metrics **per fixed-width virtual-time window** instead:
//!
//! * a [`WindowPlane`] buckets op latencies, link reservations and
//!   fault/health tallies by `ts / width` into [`WindowAccum`]s;
//! * a declarative [`SloPolicy`] (budget grammar below) is evaluated
//!   against each window, yielding typed [`SloViolation`]s;
//! * at export time [`WindowPlane::report`] recomputes every window
//!   snapshot from the accumulated data — a pure function of the
//!   recorded stream, so two identical runs serialize byte-identical
//!   `window-snapshot` / `slo-violation` trace records.
//!
//! In-run, the plane also evaluates windows *provisionally* as the
//! feed watermark crosses a window boundary, so a registered violation
//! hook (the health-breaker bridge) can react while the run is still
//! going. Late-arriving samples (a link reservation that started
//! before an already-crossed boundary) still land in their true
//! window: the hook sees the provisional view, the exported snapshot
//! is the exact final rollup.
//!
//! Budget grammar (`GDR_SHMEM_OBS_SLO`; clauses split on `;` or `,`):
//!
//! ```text
//! p99:<op>/<protocol>/<class>=<budget_us>   p99 per cell ('*' wildcards; class cNN, NN or '*')
//! contended:<link-substr>=<max_frac>        queued-sample fraction per matching link
//! recovery:<protocol>=<min_frac>            recovered/injected per protocol
//! promote:<protocol>=<min_frac>             promotes/demotes per protocol
//! ```
//!
//! [`Recorder::quantile_sketches`]: crate::Recorder::quantile_sketches

use crate::hist::Sketch;
use crate::json::ObjWriter;
use std::collections::BTreeMap;

fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// One clause of an [`SloPolicy`].
#[derive(Clone, Debug, PartialEq)]
pub enum SloClause {
    /// `p99:<op>/<protocol>/<class>=<budget_us>` — the window's p99
    /// critical-path latency for every matching
    /// (op × protocol × size-class) cell must stay at or under the
    /// budget (virtual microseconds). `*` matches any op/protocol;
    /// `class` is `cNN`, a plain number, or `*`.
    P99 {
        op: String,
        protocol: String,
        class: Option<u8>,
        budget_us: f64,
    },
    /// `contended:<link-substr>=<max_frac>` — the fraction of a
    /// matching link's reservations that queued behind another
    /// (queue depth ≥ 2) must stay at or under `max_frac`. The key is
    /// a substring of the link track name (`*` matches every link).
    Contended { link: String, max_frac: f64 },
    /// `recovery:<protocol>=<min_frac>` — `recovered / injected` for a
    /// matching protocol must stay at or above `min_frac` (windows
    /// with no injected faults pass vacuously).
    Recovery { protocol: String, min_frac: f64 },
    /// `promote:<protocol>=<min_frac>` — `promotes / demotes` for a
    /// matching protocol must stay at or above `min_frac` (windows
    /// with no demotions pass vacuously).
    Promote { protocol: String, min_frac: f64 },
}

/// Why an SLO spec string failed to parse. Rendered with the offending
/// clause so `GDR_SHMEM_OBS_SLO` typos fail loudly and precisely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SloParseError {
    /// A clause without `=<value>`.
    MissingBudget(String),
    /// A clause without a `kind:` prefix, or an unrecognized kind.
    UnknownKind(String),
    /// A `p99:` key that is not `<op>/<protocol>/<class>`.
    BadCellKey(String),
    /// A size class that is not `cNN`, a number, or `*`.
    BadClass(String),
    /// A budget value that is not a finite number.
    BadNumber(String),
}

impl std::fmt::Display for SloParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SloParseError::MissingBudget(c) => write!(f, "slo clause {c:?}: missing '=<budget>'"),
            SloParseError::UnknownKind(c) => write!(
                f,
                "slo clause {c:?}: unknown kind (expected p99:/contended:/recovery:/promote:)"
            ),
            SloParseError::BadCellKey(c) => {
                write!(f, "slo clause {c:?}: p99 key must be <op>/<protocol>/<class>")
            }
            SloParseError::BadClass(c) => {
                write!(f, "slo clause {c:?}: size class must be cNN, a number, or '*'")
            }
            SloParseError::BadNumber(c) => write!(f, "slo clause {c:?}: budget is not a number"),
        }
    }
}

impl std::error::Error for SloParseError {}

/// A declarative set of per-window budgets, evaluated at every window
/// close. Parse one from the grammar with [`SloPolicy::parse`], or
/// build clauses programmatically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SloPolicy {
    pub clauses: Vec<SloClause>,
}

fn parse_class(s: &str, clause: &str) -> Result<Option<u8>, SloParseError> {
    if s == "*" {
        return Ok(None);
    }
    let digits = s.strip_prefix('c').unwrap_or(s);
    digits
        .parse::<u8>()
        .map(Some)
        .map_err(|_| SloParseError::BadClass(clause.to_string()))
}

impl SloPolicy {
    pub fn new() -> SloPolicy {
        SloPolicy::default()
    }

    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Parse the budget grammar (see the module docs). Empty clauses
    /// are skipped, so trailing separators are harmless.
    pub fn parse(spec: &str) -> Result<SloPolicy, SloParseError> {
        let mut clauses = Vec::new();
        for raw in spec.split([';', ',']) {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            let (head, val) = clause
                .split_once('=')
                .ok_or_else(|| SloParseError::MissingBudget(clause.to_string()))?;
            let value: f64 = val
                .trim()
                .parse()
                .ok()
                .filter(|v: &f64| v.is_finite())
                .ok_or_else(|| SloParseError::BadNumber(clause.to_string()))?;
            let (kind, key) = head
                .split_once(':')
                .ok_or_else(|| SloParseError::UnknownKind(clause.to_string()))?;
            let key = key.trim();
            match kind.trim() {
                "p99" => {
                    let mut parts = key.split('/');
                    match (parts.next(), parts.next(), parts.next(), parts.next()) {
                        (Some(op), Some(proto), Some(cls), None) => clauses.push(SloClause::P99 {
                            op: op.to_string(),
                            protocol: proto.to_string(),
                            class: parse_class(cls, clause)?,
                            budget_us: value,
                        }),
                        _ => return Err(SloParseError::BadCellKey(clause.to_string())),
                    }
                }
                "contended" => clauses.push(SloClause::Contended {
                    link: key.to_string(),
                    max_frac: value,
                }),
                "recovery" => clauses.push(SloClause::Recovery {
                    protocol: key.to_string(),
                    min_frac: value,
                }),
                "promote" => clauses.push(SloClause::Promote {
                    protocol: key.to_string(),
                    min_frac: value,
                }),
                _ => return Err(SloParseError::UnknownKind(clause.to_string())),
            }
        }
        Ok(SloPolicy { clauses })
    }
}

/// One budget breach in one window. `kind` is `"p99"`, `"contended"`,
/// `"recovery"` or `"promote"`; the cell/link fields that don't apply
/// to the kind are empty strings. `ts_ps` is the closing edge of the
/// violating window — the virtual instant the watchdog fires at.
#[derive(Clone, Debug, PartialEq)]
pub struct SloViolation {
    pub window: u64,
    pub ts_ps: u64,
    pub kind: &'static str,
    pub op: String,
    pub protocol: String,
    pub class: String,
    pub link: String,
    pub actual: f64,
    pub budget: f64,
}

impl SloViolation {
    /// The Chrome-trace `args` object of the `slo-violation` instant.
    pub fn args_json(&self) -> String {
        let mut out = String::new();
        let mut o = ObjWriter::new(&mut out);
        o.u64_field("window", self.window)
            .str_field("kind", self.kind)
            .str_field("op", &self.op)
            .str_field("protocol", &self.protocol)
            .str_field("class", &self.class)
            .str_field("link", &self.link)
            .num_field("actual", self.actual)
            .num_field("budget", self.budget);
        o.finish();
        out
    }
}

/// Per-window accumulation for one (op × protocol × size-class) cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSnap {
    pub op: &'static str,
    pub protocol: &'static str,
    pub class: u8,
    pub count: u64,
    pub p50_ps: u64,
    pub p99_ps: u64,
}

/// Per-window accumulation for one link track.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkSnap {
    pub link: String,
    pub bytes: u64,
    pub busy_ps: u64,
    /// Reservations that started inside the window.
    pub samples: u64,
    /// Reservations that queued behind another (queue depth ≥ 2).
    pub queued: u64,
}

/// Per-window fault/health tally (`what` is a
/// [`Recorder::fault_tally`] key — `"injected"`, `"demote"`, ...).
///
/// [`Recorder::fault_tally`]: crate::Recorder::fault_tally
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSnap {
    pub what: &'static str,
    pub protocol: &'static str,
    pub n: u64,
}

/// One closed window, ready for export: the deterministic final rollup
/// of everything that landed in `[start_ps, end_ps)`, plus the SLO
/// violations the policy finds in it.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSnap {
    pub index: u64,
    pub start_ps: u64,
    pub end_ps: u64,
    pub cells: Vec<CellSnap>,
    pub links: Vec<LinkSnap>,
    pub faults: Vec<FaultSnap>,
    pub violations: Vec<SloViolation>,
}

impl WindowSnap {
    /// The Chrome-trace `args` object of the `window-snapshot` instant.
    pub fn args_json(&self) -> String {
        let mut out = String::new();
        let mut o = ObjWriter::new(&mut out);
        o.u64_field("window", self.index)
            .num_field("start_us", us(self.start_ps))
            .num_field("end_us", us(self.end_ps));
        {
            let buf = o.raw_field("cells");
            buf.push('[');
            for (i, c) in self.cells.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut w = ObjWriter::new(buf);
                w.str_field("op", c.op)
                    .str_field("protocol", c.protocol)
                    .u64_field("class", c.class as u64)
                    .u64_field("count", c.count)
                    .num_field("p50_us", us(c.p50_ps))
                    .num_field("p99_us", us(c.p99_ps));
                w.finish();
            }
            buf.push(']');
        }
        {
            let buf = o.raw_field("links");
            buf.push('[');
            for (i, l) in self.links.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut w = ObjWriter::new(buf);
                w.str_field("link", &l.link)
                    .u64_field("bytes", l.bytes)
                    .num_field("busy_us", us(l.busy_ps))
                    .u64_field("samples", l.samples)
                    .u64_field("queued", l.queued);
                w.finish();
            }
            buf.push(']');
        }
        {
            let buf = o.raw_field("faults");
            buf.push('[');
            for (i, fa) in self.faults.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut w = ObjWriter::new(buf);
                w.str_field("what", fa.what)
                    .str_field("protocol", fa.protocol)
                    .u64_field("n", fa.n);
                w.finish();
            }
            buf.push(']');
        }
        o.finish();
        out
    }
}

struct LinkWin {
    name: String,
    bytes: u64,
    busy_ps: u64,
    samples: u64,
    queued: u64,
}

/// Everything that landed in one window, keyed for deterministic
/// iteration.
#[derive(Default)]
struct WindowAccum {
    cells: BTreeMap<(&'static str, &'static str, u8), Sketch>,
    links: BTreeMap<u32, LinkWin>,
    faults: BTreeMap<(&'static str, &'static str), u64>,
}

fn pat(pattern: &str, value: &str) -> bool {
    pattern == "*" || pattern == value
}

fn eval_window(policy: &SloPolicy, idx: u64, width_ps: u64, acc: &WindowAccum) -> Vec<SloViolation> {
    let end_ps = (idx + 1) * width_ps;
    let mut out = Vec::new();
    for clause in &policy.clauses {
        match clause {
            SloClause::P99 {
                op,
                protocol,
                class,
                budget_us,
            } => {
                for ((cop, cproto, ccls), sk) in &acc.cells {
                    if !pat(op, cop) || !pat(protocol, cproto) {
                        continue;
                    }
                    if let Some(c) = class {
                        if c != ccls {
                            continue;
                        }
                    }
                    let p99_us = us(sk.p99());
                    if p99_us > *budget_us {
                        out.push(SloViolation {
                            window: idx,
                            ts_ps: end_ps,
                            kind: "p99",
                            op: cop.to_string(),
                            protocol: cproto.to_string(),
                            class: format!("c{ccls:02}"),
                            link: String::new(),
                            actual: p99_us,
                            budget: *budget_us,
                        });
                    }
                }
            }
            SloClause::Contended { link, max_frac } => {
                for lw in acc.links.values() {
                    if lw.samples == 0 || !(link == "*" || lw.name.contains(link.as_str())) {
                        continue;
                    }
                    let frac = lw.queued as f64 / lw.samples as f64;
                    if frac > *max_frac {
                        out.push(SloViolation {
                            window: idx,
                            ts_ps: end_ps,
                            kind: "contended",
                            op: String::new(),
                            protocol: String::new(),
                            class: String::new(),
                            link: lw.name.clone(),
                            actual: frac,
                            budget: *max_frac,
                        });
                    }
                }
            }
            SloClause::Recovery { protocol, min_frac } => {
                for (&(what, proto), &injected) in &acc.faults {
                    if what != "injected" || injected == 0 || !pat(protocol, proto) {
                        continue;
                    }
                    let recovered = acc.faults.get(&("recovered", proto)).copied().unwrap_or(0);
                    let rate = recovered as f64 / injected as f64;
                    if rate < *min_frac {
                        out.push(SloViolation {
                            window: idx,
                            ts_ps: end_ps,
                            kind: "recovery",
                            op: String::new(),
                            protocol: proto.to_string(),
                            class: String::new(),
                            link: String::new(),
                            actual: rate,
                            budget: *min_frac,
                        });
                    }
                }
            }
            SloClause::Promote { protocol, min_frac } => {
                for (&(what, proto), &demotes) in &acc.faults {
                    if what != "demote" || demotes == 0 || !pat(protocol, proto) {
                        continue;
                    }
                    let promotes = acc.faults.get(&("promote", proto)).copied().unwrap_or(0);
                    let rate = promotes.min(demotes) as f64 / demotes as f64;
                    if rate < *min_frac {
                        out.push(SloViolation {
                            window: idx,
                            ts_ps: end_ps,
                            kind: "promote",
                            op: String::new(),
                            protocol: proto.to_string(),
                            class: String::new(),
                            link: String::new(),
                            actual: rate,
                            budget: *min_frac,
                        });
                    }
                }
            }
        }
    }
    out
}

/// The windowed metrics plane: buckets the recorder's metric stream by
/// fixed-width virtual-time windows and evaluates the [`SloPolicy`] at
/// each window close. Owned by the recorder behind its own lock; all
/// feed methods return the *provisional* violations of windows the
/// feed watermark just crossed (empty unless `eval`), for the in-run
/// hook. [`WindowPlane::report`] is the exact export-time rollup.
pub struct WindowPlane {
    width_ps: u64,
    policy: SloPolicy,
    open: BTreeMap<u64, WindowAccum>,
    /// Window index below which the in-run hook has already seen a
    /// provisional evaluation.
    hook_frontier: u64,
}

impl WindowPlane {
    /// `width_us` must be nonzero (the recorder gates on it).
    pub fn new(width_us: u32) -> WindowPlane {
        WindowPlane {
            width_ps: width_us.max(1) as u64 * 1_000_000,
            policy: SloPolicy::default(),
            open: BTreeMap::new(),
            hook_frontier: 0,
        }
    }

    pub fn width_ps(&self) -> u64 {
        self.width_ps
    }

    pub fn set_policy(&mut self, policy: SloPolicy) {
        self.policy = policy;
    }

    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    fn advance(&mut self, idx: u64, eval: bool) -> Vec<SloViolation> {
        let mut out = Vec::new();
        if idx > self.hook_frontier {
            if eval && !self.policy.is_empty() {
                let crossed: Vec<u64> = self
                    .open
                    .range(self.hook_frontier..idx)
                    .map(|(&w, _)| w)
                    .collect();
                for w in crossed {
                    out.extend(eval_window(&self.policy, w, self.width_ps, &self.open[&w]));
                }
            }
            self.hook_frontier = idx;
        }
        out
    }

    /// Feed one op-latency sample completed at `ts_ps`.
    pub fn feed_latency(
        &mut self,
        op: &'static str,
        protocol: &'static str,
        class: u8,
        dur_ps: u64,
        ts_ps: u64,
        eval: bool,
    ) -> Vec<SloViolation> {
        let idx = ts_ps / self.width_ps;
        let v = self.advance(idx, eval);
        self.open
            .entry(idx)
            .or_default()
            .cells
            .entry((op, protocol, class))
            .or_default()
            .record(dur_ps);
        v
    }

    /// Feed one fault/health tally stamped at `ts_ps`.
    pub fn feed_fault(
        &mut self,
        what: &'static str,
        protocol: &'static str,
        ts_ps: u64,
        eval: bool,
    ) -> Vec<SloViolation> {
        let idx = ts_ps / self.width_ps;
        let v = self.advance(idx, eval);
        *self
            .open
            .entry(idx)
            .or_default()
            .faults
            .entry((what, protocol))
            .or_insert(0) += 1;
        v
    }

    /// Feed one link reservation that started at `ts_ps`.
    #[allow(clippy::too_many_arguments)]
    pub fn feed_link(
        &mut self,
        index: u32,
        name: &str,
        ts_ps: u64,
        bytes: u64,
        busy_ps: u64,
        queue: u32,
        eval: bool,
    ) -> Vec<SloViolation> {
        let idx = ts_ps / self.width_ps;
        let v = self.advance(idx, eval);
        let lw = self
            .open
            .entry(idx)
            .or_default()
            .links
            .entry(index)
            .or_insert_with(|| LinkWin {
                name: name.to_string(),
                bytes: 0,
                busy_ps: 0,
                samples: 0,
                queued: 0,
            });
        lw.bytes += bytes;
        lw.busy_ps += busy_ps;
        lw.samples += 1;
        if queue >= 2 {
            lw.queued += 1;
        }
        v
    }

    /// The exact final rollup: every non-empty window in index order,
    /// with the policy evaluated against the complete window contents.
    /// Pure and idempotent — late samples are in their true window.
    pub fn report(&self) -> Vec<WindowSnap> {
        self.open
            .iter()
            .map(|(&idx, acc)| WindowSnap {
                index: idx,
                start_ps: idx * self.width_ps,
                end_ps: (idx + 1) * self.width_ps,
                cells: acc
                    .cells
                    .iter()
                    .map(|(&(op, protocol, class), sk)| CellSnap {
                        op,
                        protocol,
                        class,
                        count: sk.count,
                        p50_ps: sk.p50(),
                        p99_ps: sk.p99(),
                    })
                    .collect(),
                links: acc
                    .links
                    .values()
                    .map(|l| LinkSnap {
                        link: l.name.clone(),
                        bytes: l.bytes,
                        busy_ps: l.busy_ps,
                        samples: l.samples,
                        queued: l.queued,
                    })
                    .collect(),
                faults: acc
                    .faults
                    .iter()
                    .map(|(&(what, protocol), &n)| FaultSnap { what, protocol, n })
                    .collect(),
                violations: eval_window(&self.policy, idx, self.width_ps, acc),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000_000; // ps per us

    #[test]
    fn policy_grammar_round_trips() {
        let p = SloPolicy::parse("p99:put/*/c14=25.5; contended:ib=0.4, recovery:*=0.9;promote:direct-gdr=1").unwrap();
        assert_eq!(p.clauses.len(), 4);
        assert_eq!(
            p.clauses[0],
            SloClause::P99 {
                op: "put".into(),
                protocol: "*".into(),
                class: Some(14),
                budget_us: 25.5
            }
        );
        assert_eq!(
            p.clauses[1],
            SloClause::Contended { link: "ib".into(), max_frac: 0.4 }
        );
        assert_eq!(
            p.clauses[2],
            SloClause::Recovery { protocol: "*".into(), min_frac: 0.9 }
        );
        assert_eq!(
            p.clauses[3],
            SloClause::Promote { protocol: "direct-gdr".into(), min_frac: 1.0 }
        );
        // bare-number and wildcard classes parse too
        let q = SloPolicy::parse("p99:*/*/14=1;p99:get/direct-gdr/*=2").unwrap();
        assert_eq!(q.clauses.len(), 2);
        // trailing separators are harmless
        assert!(SloPolicy::parse("p99:put/*/*=5;").is_ok());
        assert!(SloPolicy::parse("").unwrap().is_empty());
    }

    #[test]
    fn policy_grammar_fails_loudly() {
        assert_eq!(
            SloPolicy::parse("p99:put/*/*"),
            Err(SloParseError::MissingBudget("p99:put/*/*".into()))
        );
        assert_eq!(
            SloPolicy::parse("p98:put/*/*=1"),
            Err(SloParseError::UnknownKind("p98:put/*/*=1".into()))
        );
        assert_eq!(
            SloPolicy::parse("latency=1"),
            Err(SloParseError::UnknownKind("latency=1".into()))
        );
        assert_eq!(
            SloPolicy::parse("p99:put/direct-gdr=1"),
            Err(SloParseError::BadCellKey("p99:put/direct-gdr=1".into()))
        );
        assert_eq!(
            SloPolicy::parse("p99:put/*/xl=1"),
            Err(SloParseError::BadClass("p99:put/*/xl=1".into()))
        );
        assert_eq!(
            SloPolicy::parse("contended:ib=lots"),
            Err(SloParseError::BadNumber("contended:ib=lots".into()))
        );
        // errors render the offending clause
        let msg = SloPolicy::parse("p98:x=1").unwrap_err().to_string();
        assert!(msg.contains("p98:x=1"), "{msg}");
    }

    #[test]
    fn windows_bucket_by_virtual_time() {
        let mut p = WindowPlane::new(50);
        p.feed_latency("put", "direct-gdr", 14, 3 * US, 10 * US, false);
        p.feed_latency("put", "direct-gdr", 14, 5 * US, 60 * US, false);
        p.feed_latency("get", "direct-gdr", 14, 7 * US, 60 * US, false);
        p.feed_fault("injected", "direct-gdr", 55 * US, false);
        p.feed_link(0, "ib/hca0/tx", 12 * US, 4096, US, 2, false);
        let snaps = p.report();
        assert_eq!(snaps.len(), 2);
        assert_eq!((snaps[0].index, snaps[0].start_ps, snaps[0].end_ps), (0, 0, 50 * US));
        assert_eq!(snaps[0].cells.len(), 1);
        assert_eq!(snaps[0].cells[0].count, 1);
        assert_eq!(snaps[0].links.len(), 1);
        assert_eq!((snaps[0].links[0].samples, snaps[0].links[0].queued), (1, 1));
        assert_eq!(snaps[1].index, 1);
        assert_eq!(snaps[1].cells.len(), 2, "cells key on (op, protocol, class)");
        assert_eq!(snaps[1].faults, vec![FaultSnap { what: "injected", protocol: "direct-gdr", n: 1 }]);
    }

    #[test]
    fn report_is_idempotent_and_handles_late_samples() {
        let mut p = WindowPlane::new(50);
        p.feed_latency("put", "direct-gdr", 14, US, 60 * US, true);
        // a late sample for window 0 after the watermark crossed it
        p.feed_latency("put", "direct-gdr", 14, US, 10 * US, true);
        let a = p.report();
        let b = p.report();
        assert_eq!(a, b, "report is a pure function of the accumulated stream");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].cells[0].count, 1, "late sample landed in its true window");
    }

    #[test]
    fn slo_violations_fire_only_in_breaching_windows() {
        let mut p = WindowPlane::new(50);
        p.set_policy(SloPolicy::parse("p99:put/*/*=10").unwrap());
        p.feed_latency("put", "direct-gdr", 14, 2 * US, 10 * US, false); // ok
        p.feed_latency("put", "direct-gdr", 14, 80 * US, 60 * US, false); // breach
        p.feed_latency("get", "direct-gdr", 14, 80 * US, 60 * US, false); // op mismatch
        let snaps = p.report();
        assert!(snaps[0].violations.is_empty(), "no violation inside budget");
        assert_eq!(snaps[1].violations.len(), 1);
        let v = &snaps[1].violations[0];
        assert_eq!((v.kind, v.window), ("p99", 1));
        assert_eq!(v.protocol, "direct-gdr");
        assert_eq!(v.class, "c14");
        assert_eq!(v.ts_ps, 2 * 50 * US, "violation stamps the window close");
        assert!(v.actual > v.budget);
    }

    #[test]
    fn contended_recovery_and_promote_clauses_evaluate() {
        let mut p = WindowPlane::new(50);
        p.set_policy(SloPolicy::parse("contended:ib=0.4;recovery:*=0.9;promote:*=0.5").unwrap());
        // 2 of 3 reservations queued -> 0.66 > 0.4
        p.feed_link(0, "ib/hca0/tx", 10 * US, 100, US, 1, false);
        p.feed_link(0, "ib/hca0/tx", 11 * US, 100, US, 2, false);
        p.feed_link(0, "ib/hca0/tx", 12 * US, 100, US, 3, false);
        // pcie link also contended but the clause only matches "ib"
        p.feed_link(1, "pcie/gpu0/h2d", 10 * US, 100, US, 5, false);
        // 1 of 2 injected recovered -> 0.5 < 0.9
        p.feed_fault("injected", "direct-gdr", 10 * US, false);
        p.feed_fault("injected", "direct-gdr", 11 * US, false);
        p.feed_fault("recovered", "direct-gdr", 12 * US, false);
        // demote without promote -> 0.0 < 0.5
        p.feed_fault("demote", "direct-gdr", 13 * US, false);
        let snaps = p.report();
        let kinds: Vec<&str> = snaps[0].violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, ["contended", "recovery", "promote"]);
        assert_eq!(snaps[0].violations[0].link, "ib/hca0/tx");
        assert_eq!(snaps[0].violations[1].actual, 0.5);
        assert_eq!(snaps[0].violations[2].actual, 0.0);
    }

    #[test]
    fn provisional_eval_fires_when_watermark_crosses() {
        let mut p = WindowPlane::new(50);
        p.set_policy(SloPolicy::parse("p99:put/*/*=10").unwrap());
        let v0 = p.feed_latency("put", "direct-gdr", 14, 80 * US, 10 * US, true);
        assert!(v0.is_empty(), "window 0 still open");
        let v1 = p.feed_latency("put", "direct-gdr", 14, US, 120 * US, true);
        assert_eq!(v1.len(), 1, "crossing the boundary evaluates window 0");
        assert_eq!(v1[0].window, 0);
        let v2 = p.feed_latency("put", "direct-gdr", 14, US, 130 * US, true);
        assert!(v2.is_empty(), "each window is provisionally evaluated once");
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let mut p = WindowPlane::new(50);
            p.set_policy(SloPolicy::parse("p99:put/*/*=1").unwrap());
            p.feed_latency("put", "direct-gdr", 14, 3 * US, 10 * US, false);
            p.feed_link(0, "ib/hca0/tx", 12 * US, 4096, US, 2, false);
            p.feed_fault("injected", "direct-gdr", 13 * US, false);
            let s = p.report();
            (s[0].args_json(), s[0].violations[0].args_json())
        };
        assert_eq!(build(), build());
        let (snap, viol) = build();
        assert!(snap.contains("\"window\":0"), "{snap}");
        assert!(snap.contains("\"cells\":[{\"op\":\"put\""), "{snap}");
        assert!(snap.contains("\"links\":[{\"link\":\"ib/hca0/tx\""), "{snap}");
        assert!(snap.contains("\"faults\":[{\"what\":\"injected\""), "{snap}");
        assert!(viol.contains("\"kind\":\"p99\""), "{viol}");
        assert!(viol.contains("\"budget\":1"), "{viol}");
    }
}
