//! Chrome `trace_event` JSON export.
//!
//! Output loads in `chrome://tracing` or Perfetto. Each recorder track
//! becomes one "thread" (tid) of a single process, named via `"M"`
//! metadata events; timestamps and durations are **virtual**
//! microseconds (`ts`/`dur` floats, picosecond-exact since 1 ps =
//! 1e-6 us). Spans are `"X"` complete events, decision records and
//! other instants are `"i"` thread-scoped instant events, and
//! hardware byte samples are `"C"` counter events.

use crate::json::{write_str, ObjWriter};
use crate::{Event, Payload};

fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

fn write_args(out: &mut String, p: &Payload) {
    match p {
        Payload::None => {
            out.push_str("{}");
        }
        Payload::Op {
            op,
            protocol,
            size,
            src_pe,
            dst_pe,
            src_dev,
            dst_dev,
            same_node,
            op_id,
        } => {
            let mut o = ObjWriter::new(out);
            o.str_field("op", op)
                .str_field("protocol", protocol)
                .u64_field("size", *size)
                .u64_field("src_pe", *src_pe as u64)
                .u64_field("dst_pe", *dst_pe as u64)
                .bool_field("src_dev", *src_dev)
                .bool_field("dst_dev", *dst_dev)
                .bool_field("same_node", *same_node)
                .u64_field("op_id", *op_id);
            o.finish();
        }
        Payload::Decision(d) => {
            let mut o = ObjWriter::new(out);
            o.str_field("op", d.op)
                .u64_field("size", d.size)
                .u64_field("size_class", d.size_class as u64)
                .u64_field("src_pe", d.src_pe as u64)
                .u64_field("dst_pe", d.dst_pe as u64)
                .bool_field("src_dev", d.src_dev)
                .bool_field("dst_dev", d.dst_dev)
                .bool_field("same_node", d.same_node)
                .str_field("socket_rel", d.socket_rel)
                .str_field("chosen", d.chosen)
                .u64_field("op_id", d.op_id)
                .str_field("tsource", d.tsource);
            {
                let buf = o.raw_field("candidates");
                buf.push('[');
                for (i, c) in d.candidates.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    write_str(buf, c);
                }
                buf.push(']');
            }
            {
                let buf = o.raw_field("thresholds");
                let mut t = ObjWriter::new(buf);
                for (name, v) in d.thresholds.iter() {
                    t.u64_field(name, v);
                }
                t.finish();
            }
            o.finish();
        }
        Payload::Chunk {
            protocol,
            stage,
            index,
            size,
            op_id,
        } => {
            let mut o = ObjWriter::new(out);
            o.str_field("protocol", protocol)
                .str_field("stage", stage)
                .u64_field("chunk", *index as u64)
                .u64_field("size", *size)
                .u64_field("op_id", *op_id);
            o.finish();
        }
        Payload::Proxy {
            kind,
            size,
            origin_pe,
        } => {
            let mut o = ObjWriter::new(out);
            o.str_field("kind", kind)
                .u64_field("size", *size)
                .u64_field("origin_pe", *origin_pe as u64);
            o.finish();
        }
        Payload::Xfer { size } => {
            let mut o = ObjWriter::new(out);
            o.u64_field("size", *size);
            o.finish();
        }
        Payload::Bytes { bytes, total } => {
            let mut o = ObjWriter::new(out);
            o.u64_field("delta", *bytes).u64_field("bytes", *total);
            o.finish();
        }
        Payload::FlowStart { id } | Payload::FlowEnd { id } => {
            let mut o = ObjWriter::new(out);
            o.u64_field("op_id", *id);
            o.finish();
        }
        Payload::LinkSample { total, busy_ps, queue } => {
            let mut o = ObjWriter::new(out);
            o.u64_field("bytes", *total)
                .num_field("busy_us", us(*busy_ps))
                .u64_field("queue", *queue as u64);
            o.finish();
        }
        Payload::Fault { kind, protocol, op_id } => {
            let mut o = ObjWriter::new(out);
            o.str_field("kind", kind)
                .str_field("protocol", protocol)
                .u64_field("op_id", *op_id);
            o.finish();
        }
        Payload::Retry {
            protocol,
            attempt,
            backoff_ns,
            op_id,
        } => {
            let mut o = ObjWriter::new(out);
            o.str_field("protocol", protocol)
                .u64_field("attempt", *attempt as u64)
                .u64_field("backoff_ns", *backoff_ns)
                .u64_field("op_id", *op_id);
            o.finish();
        }
        Payload::Fallback { op, from, to, op_id } => {
            let mut o = ObjWriter::new(out);
            o.str_field("op", op)
                .str_field("from", from)
                .str_field("to", to)
                .u64_field("op_id", *op_id);
            o.finish();
        }
        Payload::PartialDelivery {
            protocol,
            delivered,
            total,
            op_id,
        } => {
            let mut o = ObjWriter::new(out);
            o.str_field("protocol", protocol)
                .u64_field("delivered", *delivered)
                .u64_field("total", *total)
                .u64_field("op_id", *op_id);
            o.finish();
        }
        Payload::Health { protocol, op_id } => {
            let mut o = ObjWriter::new(out);
            o.str_field("protocol", protocol).u64_field("op_id", *op_id);
            o.finish();
        }
        Payload::Member { pe, epoch } => {
            let mut o = ObjWriter::new(out);
            o.u64_field("pe", *pe as u64).u64_field("epoch", *epoch);
            o.finish();
        }
    }
}

fn write_event(out: &mut String, tid: usize, ev: &Event) {
    let mut o = ObjWriter::new(out);
    o.num_field("pid", 1.0).num_field("tid", tid as f64);
    match ev.payload {
        Payload::Bytes { total, .. } => {
            // counter sample: Chrome plots args values over time
            o.str_field("ph", "C").str_field("name", ev.name);
            o.num_field("ts", us(ev.ts.as_ps()));
            let buf = o.raw_field("args");
            let mut a = ObjWriter::new(buf);
            a.u64_field("bytes", total);
            a.finish();
        }
        Payload::LinkSample { .. } => {
            o.str_field("ph", "C").str_field("name", ev.name);
            o.num_field("ts", us(ev.ts.as_ps()));
            let buf = o.raw_field("args");
            write_args(buf, &ev.payload);
        }
        Payload::FlowStart { id } => {
            o.str_field("ph", "s")
                .str_field("cat", "flow")
                .str_field("name", ev.name)
                .u64_field("id", id);
            o.num_field("ts", us(ev.ts.as_ps()));
            let buf = o.raw_field("args");
            write_args(buf, &ev.payload);
        }
        Payload::FlowEnd { id } => {
            // bp:"e" binds the arrow to the enclosing slice's end
            o.str_field("ph", "f")
                .str_field("bp", "e")
                .str_field("cat", "flow")
                .str_field("name", ev.name)
                .u64_field("id", id);
            o.num_field("ts", us(ev.ts.as_ps()));
            let buf = o.raw_field("args");
            write_args(buf, &ev.payload);
        }
        _ if ev.dur.is_zero() => {
            o.str_field("ph", "i").str_field("s", "t").str_field("name", ev.name);
            o.num_field("ts", us(ev.ts.as_ps()));
            let buf = o.raw_field("args");
            write_args(buf, &ev.payload);
        }
        _ => {
            o.str_field("ph", "X").str_field("name", ev.name);
            o.num_field("ts", us(ev.ts.as_ps()));
            o.num_field("dur", us(ev.dur.as_ps()));
            let buf = o.raw_field("args");
            write_args(buf, &ev.payload);
        }
    }
    o.finish();
}

/// A synthesized event on the `metrics` track (window snapshots and
/// SLO violations): the recorder renders the `args` object up front,
/// the exporter only places it at its virtual timestamp.
pub struct MetricEvent {
    pub ts_ps: u64,
    pub name: &'static str,
    pub args: String,
}

/// Export tracks (already sorted by the recorder) as a complete Chrome
/// trace document: `{"displayTimeUnit":"ns","traceEvents":[...]}`.
pub fn export(tracks: &[(&str, &[Event])]) -> String {
    export_with_metrics(tracks, &[])
}

/// As [`export`], appending a synthetic `metrics` track (tid =
/// `tracks.len()`) of thread-scoped instants for `metrics`, which must
/// already be in emission order. With `metrics` empty the output is
/// byte-identical to [`export`] — no empty track is created.
pub fn export_with_metrics(tracks: &[(&str, &[Event])], metrics: &[MetricEvent]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    let mut names: Vec<&str> = tracks.iter().map(|(name, _)| *name).collect();
    if !metrics.is_empty() {
        names.push("metrics");
    }
    for (tid, name) in names.iter().enumerate() {
        sep(&mut out);
        let mut o = ObjWriter::new(&mut out);
        o.str_field("ph", "M").str_field("name", "thread_name");
        o.num_field("pid", 1.0).num_field("tid", tid as f64);
        let buf = o.raw_field("args");
        let mut a = ObjWriter::new(buf);
        a.str_field("name", name);
        a.finish();
        o.finish();
    }
    for (tid, (_, events)) in tracks.iter().enumerate() {
        // stable sort: simultaneous events keep their recorded order
        let mut order: Vec<&Event> = events.iter().collect();
        order.sort_by_key(|e| e.ts);
        for ev in order {
            sep(&mut out);
            write_event(&mut out, tid, ev);
        }
    }
    for m in metrics {
        sep(&mut out);
        let mut o = ObjWriter::new(&mut out);
        o.num_field("pid", 1.0).num_field("tid", tracks.len() as f64);
        o.str_field("ph", "i").str_field("s", "t").str_field("name", m.name);
        o.num_field("ts", us(m.ts_ps));
        o.raw_field("args").push_str(&m.args);
        o.finish();
    }
    out.push_str("\n]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::{Decision, ObsLevel, Recorder, TrackKind};
    use sim_core::{SimDuration, SimTime};

    /// Fetch a field, panicking with the field's name — not a bare
    /// `unwrap()` — when the exported document drops or retypes it.
    fn field<'a>(v: &'a json::Value, key: &str) -> &'a json::Value {
        v.get(key).unwrap_or_else(|| panic!("event missing field {key:?}"))
    }

    fn str_of<'a>(v: &'a json::Value, key: &str) -> &'a str {
        field(v, key)
            .as_str()
            .unwrap_or_else(|| panic!("field {key:?} is not a string"))
    }

    fn num_of(v: &json::Value, key: &str) -> f64 {
        field(v, key)
            .as_f64()
            .unwrap_or_else(|| panic!("field {key:?} is not a number"))
    }

    fn events(doc: &json::Value) -> &[json::Value] {
        field(doc, "traceEvents")
            .as_arr()
            .expect("traceEvents is not an array")
    }

    #[test]
    fn trace_parses_and_has_named_threads() {
        let r = Recorder::new(ObsLevel::Spans);
        let pe = r.track(TrackKind::Pe, 0);
        let t0 = SimTime::ZERO + SimDuration::from_us(2);
        r.span(
            pe,
            "put",
            t0,
            t0 + SimDuration::from_us(5),
            Payload::Op {
                op: "put",
                protocol: "direct-gdr",
                size: 128,
                src_pe: 0,
                dst_pe: 1,
                src_dev: true,
                dst_dev: true,
                same_node: false,
                op_id: 7,
            },
        );
        r.decision(
            pe,
            t0,
            Decision {
                op: "put",
                chosen: "direct-gdr",
                ..Default::default()
            },
        );
        r.agent_bytes(TrackKind::Hca, 0, t0, 128, SimDuration::from_us(1));

        let doc = json::parse(&r.chrome_trace()).expect("valid JSON");
        let evs = events(&doc);
        let metas: Vec<&str> = evs
            .iter()
            .filter(|e| str_of(e, "ph") == "M")
            .map(|e| str_of(field(e, "args"), "name"))
            .collect();
        assert_eq!(metas, ["pe/0", "hca/0"]);
        let span = evs.iter().find(|e| str_of(e, "ph") == "X").expect("one span");
        assert_eq!(num_of(span, "ts"), 2.0);
        assert_eq!(num_of(span, "dur"), 5.0);
        assert_eq!(str_of(field(span, "args"), "protocol"), "direct-gdr");
        assert!(evs.iter().any(|e| str_of(e, "ph") == "C"));
        assert!(evs.iter().any(|e| str_of(e, "name") == "protocol-decision"));
    }

    #[test]
    fn flow_and_link_events_export_with_expected_phases() {
        let r = Recorder::new(ObsLevel::Spans);
        let pe = r.track(TrackKind::Pe, 0);
        let t0 = SimTime::ZERO + SimDuration::from_us(1);
        let t1 = t0 + SimDuration::from_us(4);
        r.instant(pe, "op-flow", t0, Payload::FlowStart { id: 42 });
        r.instant(r.track(TrackKind::Pe, 1), "op-flow", t1, Payload::FlowEnd { id: 42 });
        let lk = r.track_named(TrackKind::Link, 3, "pcie/gpu0/d2h");
        r.instant(
            lk,
            "link",
            t0,
            Payload::LinkSample { total: 4096, busy_ps: 2_000_000, queue: 2 },
        );

        let doc = json::parse(&r.chrome_trace()).expect("valid JSON");
        let evs = events(&doc);
        let s = evs.iter().find(|e| str_of(e, "ph") == "s").expect("flow start");
        assert_eq!(str_of(s, "cat"), "flow");
        assert_eq!(num_of(s, "id"), 42.0);
        let f = evs.iter().find(|e| str_of(e, "ph") == "f").expect("flow end");
        assert_eq!(str_of(f, "bp"), "e");
        assert_eq!(num_of(f, "id"), 42.0);
        let c = evs
            .iter()
            .find(|e| str_of(e, "ph") == "C")
            .expect("link counter sample");
        let args = field(c, "args");
        assert_eq!(num_of(args, "bytes"), 4096.0);
        assert_eq!(num_of(args, "busy_us"), 2.0);
        assert_eq!(num_of(args, "queue"), 2.0);
        // the link track is named by its registration name
        assert!(evs
            .iter()
            .any(|e| str_of(e, "ph") == "M" && str_of(field(e, "args"), "name") == "pcie/gpu0/d2h"));
    }

    #[test]
    fn fault_retry_fallback_export_as_named_instants() {
        let r = Recorder::new(ObsLevel::Spans);
        let pe = r.track(TrackKind::Pe, 0);
        let t0 = SimTime::ZERO + SimDuration::from_us(1);
        r.instant(
            pe,
            "fault",
            t0,
            Payload::Fault { kind: "cqe-flush-err", protocol: "direct-gdr", op_id: 5 },
        );
        r.instant(
            pe,
            "retry",
            t0 + SimDuration::from_us(1),
            Payload::Retry { protocol: "direct-gdr", attempt: 1, backoff_ns: 4000, op_id: 5 },
        );
        r.instant(
            pe,
            "fallback",
            t0 + SimDuration::from_us(2),
            Payload::Fallback {
                op: "put",
                from: "direct-gdr",
                to: "host-pipeline-staged",
                op_id: 5,
            },
        );
        r.instant(
            pe,
            "chunk-retry",
            t0 + SimDuration::from_us(3),
            Payload::Retry { protocol: "pipeline-gdr-write", attempt: 1, backoff_ns: 4000, op_id: 6 },
        );
        r.instant(
            pe,
            "partial-delivery",
            t0 + SimDuration::from_us(4),
            Payload::PartialDelivery {
                protocol: "pipeline-gdr-write",
                delivered: 1 << 20,
                total: 4 << 20,
                op_id: 6,
            },
        );

        let doc = json::parse(&r.chrome_trace()).expect("valid JSON");
        let evs = events(&doc);
        let by_name = |n: &str| {
            evs.iter()
                .find(|e| str_of(e, "name") == n)
                .unwrap_or_else(|| panic!("missing {n} instant"))
        };
        let f = by_name("fault");
        assert_eq!(str_of(f, "ph"), "i");
        assert_eq!(str_of(field(f, "args"), "kind"), "cqe-flush-err");
        let rt = by_name("retry");
        assert_eq!(num_of(field(rt, "args"), "attempt"), 1.0);
        assert_eq!(num_of(field(rt, "args"), "backoff_ns"), 4000.0);
        let fb = by_name("fallback");
        assert_eq!(str_of(field(fb, "args"), "from"), "direct-gdr");
        assert_eq!(str_of(field(fb, "args"), "to"), "host-pipeline-staged");
        let cr = by_name("chunk-retry");
        assert_eq!(str_of(cr, "ph"), "i");
        assert_eq!(num_of(field(cr, "args"), "attempt"), 1.0);
        let pd = by_name("partial-delivery");
        assert_eq!(str_of(pd, "ph"), "i");
        assert_eq!(num_of(field(pd, "args"), "delivered"), 1048576.0);
        assert_eq!(num_of(field(pd, "args"), "total"), 4194304.0);
    }

    #[test]
    fn metrics_track_appends_after_all_tracks() {
        let r = Recorder::with_windows(ObsLevel::Spans, 1, 50);
        let pe = r.track(TrackKind::Pe, 0);
        let t0 = SimTime::ZERO + SimDuration::from_us(10);
        r.span(pe, "put", t0, t0 + SimDuration::from_us(3), Payload::None);
        r.op_latency_at("put", "direct-gdr", 8192, SimDuration::from_us(3), t0 + SimDuration::from_us(3));
        r.set_slo(crate::SloPolicy::parse("p99:put/*/*=1").expect("valid policy"));

        let doc = json::parse(&r.chrome_trace()).expect("valid JSON");
        let evs = events(&doc);
        // the synthetic track is named and carries the snapshot + violation
        assert!(evs
            .iter()
            .any(|e| str_of(e, "ph") == "M" && str_of(field(e, "args"), "name") == "metrics"));
        let snap = evs
            .iter()
            .find(|e| str_of(e, "name") == "window-snapshot")
            .expect("window snapshot instant");
        assert_eq!(str_of(snap, "ph"), "i");
        assert_eq!(num_of(snap, "ts"), 50.0, "snapshot sits at the window close");
        assert_eq!(num_of(field(snap, "args"), "window"), 0.0);
        let viol = evs
            .iter()
            .find(|e| str_of(e, "name") == "slo-violation")
            .expect("slo violation instant");
        assert_eq!(str_of(field(viol, "args"), "kind"), "p99");
        // without windowing the export has no metrics track at all
        let plain = Recorder::new(ObsLevel::Spans);
        let p0 = plain.track(TrackKind::Pe, 0);
        plain.span(p0, "put", t0, t0 + SimDuration::from_us(3), Payload::None);
        assert!(!plain.chrome_trace().contains("metrics"));
    }

    #[test]
    fn identical_recordings_export_identically() {
        let make = || {
            let r = Recorder::new(ObsLevel::Spans);
            let pe = r.track(TrackKind::Pe, 7);
            for i in 0..10u64 {
                let t = SimTime::ZERO + SimDuration::from_ns(i * 100);
                r.span(pe, "op", t, t + SimDuration::from_ns(50), Payload::None);
            }
            r.chrome_trace()
        };
        assert_eq!(make(), make());
    }
}
