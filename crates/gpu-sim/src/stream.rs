//! CUDA streams: in-order asynchronous operation queues.
//!
//! Only what the pipelined protocols need: enqueue memcpys (and generic
//! delays) that execute strictly in order, and synchronize on the tail.

use crate::GpuRuntime;
use parking_lot::Mutex;
use pcie_sim::mem::MemRef;
use sim_core::{Completion, SimDuration, TaskCtx};
use std::sync::Arc;

/// An in-order async work queue (the analogue of `cudaStream_t`).
pub struct Stream {
    rt: Arc<GpuRuntime>,
    tail: Mutex<Option<Completion>>,
}

impl Stream {
    pub fn new(rt: Arc<GpuRuntime>) -> Stream {
        Stream {
            rt,
            tail: Mutex::new(None),
        }
    }

    /// Enqueue an async memcpy; it starts once every earlier op on this
    /// stream finished. Charges the async-launch cost to the caller.
    /// Returns this op's completion.
    pub fn memcpy(&self, ctx: &TaskCtx, src: MemRef, dst: MemRef, len: u64) -> Completion {
        ctx.advance(self.rt.cluster().hw().gpu.memcpy_async_launch);
        let done = Completion::new();
        let rt = self.rt.clone();
        let done2 = done.clone();
        let start = Box::new(move |s: &mut sim_core::Sched<'_>| {
            rt.dma_start(s, src, dst, len, &done2);
        });
        let mut tail = self.tail.lock();
        ctx.with_sched(|s| match tail.as_ref() {
            Some(prev) => s.call_on(prev, 1, start),
            None => start(s),
        });
        *tail = Some(done.clone());
        done
    }

    /// Enqueue a fixed-cost operation (e.g. a kernel) on the stream.
    pub fn exec(&self, ctx: &TaskCtx, cost: SimDuration) -> Completion {
        let done = Completion::new();
        let done2 = done.clone();
        let start = Box::new(move |s: &mut sim_core::Sched<'_>| {
            let done3 = done2.clone();
            s.schedule_in(cost, Box::new(move |s| s.signal(&done3, 1)));
        });
        let mut tail = self.tail.lock();
        ctx.with_sched(|s| match tail.as_ref() {
            Some(prev) => s.call_on(prev, 1, start),
            None => start(s),
        });
        *tail = Some(done.clone());
        done
    }

    /// `cudaStreamSynchronize`: block until everything enqueued completed.
    pub fn synchronize(&self, ctx: &TaskCtx) {
        let tail = self.tail.lock().clone();
        if let Some(t) = tail {
            ctx.wait(&t);
        }
    }

    /// `cudaEventRecord`: returns an event that fires when every op
    /// enqueued so far has completed. Wait on it with
    /// [`GpuEvent::synchronize`] or query it with [`GpuEvent::query`].
    pub fn record_event(&self, ctx: &TaskCtx) -> GpuEvent {
        let fired = Completion::new();
        let tail = self.tail.lock().clone();
        let f2 = fired.clone();
        ctx.with_sched(|s| match tail.as_ref() {
            Some(prev) => s.call_on(prev, 1, Box::new(move |s| s.signal(&f2, 1))),
            None => s.signal(&f2, 1),
        });
        GpuEvent { fired }
    }
}

/// A recorded stream event (`cudaEvent_t`).
#[derive(Clone)]
pub struct GpuEvent {
    fired: Completion,
}

impl GpuEvent {
    /// `cudaEventSynchronize`.
    pub fn synchronize(&self, ctx: &TaskCtx) {
        ctx.wait(&self.fired);
    }

    /// `cudaEventQuery`: has the event fired yet?
    pub fn query(&self) -> bool {
        self.fired.is_done(1)
    }

    /// `cudaEventElapsedTime`: microseconds between two fired events.
    pub fn elapsed_us_since(&self, earlier: &GpuEvent) -> f64 {
        let a = earlier.fired.time().expect("earlier event not fired");
        let b = self.fired.time().expect("event not fired");
        (b - a).as_us_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::mem::MemSpace;
    use pcie_sim::{Cluster, ClusterSpec, GpuId, HwProfile, ProcId};
    use sim_core::Sim;

    #[test]
    fn stream_ops_run_in_order_and_sync_waits() {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(1, 1), HwProfile::wilkes());
        cluster.create_host_arena(ProcId(0), 1 << 20);
        let rt = GpuRuntime::new(&sim, cluster, 1 << 20);
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let g = rt2.gpu(GpuId(0));
            let dbuf = g.malloc(1 << 16).unwrap();
            let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            rt2.cluster().mem().write_bytes(h, &[0xAB; 1024]).unwrap();

            let stream = Stream::new(rt2.clone());
            let c1 = stream.memcpy(&ctx, h, dbuf, 1024); // H2D
            let c2 = stream.memcpy(&ctx, dbuf, h.add(4096), 1024); // D2H of same data
            stream.synchronize(&ctx);
            assert!(c1.is_done(1) && c2.is_done(1));
            // Ordering mattered: the D2H must observe the H2D's bytes.
            let out = rt2.cluster().mem().read_bytes(h.add(4096), 1024).unwrap();
            assert!(out.iter().all(|&b| b == 0xAB));
        });
    }

    #[test]
    fn exec_serializes_with_copies() {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(1, 1), HwProfile::wilkes());
        cluster.create_host_arena(ProcId(0), 4096);
        let rt = GpuRuntime::new(&sim, cluster, 1 << 20);
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let stream = Stream::new(rt2.clone());
            let t0 = ctx.now();
            stream.exec(&ctx, SimDuration::from_us(10));
            stream.exec(&ctx, SimDuration::from_us(5));
            stream.synchronize(&ctx);
            let waited = ctx.now() - t0;
            assert!(waited >= SimDuration::from_us(15), "got {waited}");
        });
    }
}

#[cfg(test)]
mod event_tests {
    use super::*;
    use pcie_sim::{Cluster, ClusterSpec, HwProfile, ProcId};
    use sim_core::Sim;

    fn rt() -> (Sim, Arc<GpuRuntime>) {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(1, 1), HwProfile::wilkes());
        cluster.create_host_arena(ProcId(0), 1 << 20);
        let rt = GpuRuntime::new(&sim, cluster, 8 << 20);
        (sim, rt)
    }

    #[test]
    fn events_time_stream_sections() {
        let (sim, rt) = rt();
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let stream = Stream::new(rt2.clone());
            let start = stream.record_event(&ctx);
            stream.exec(&ctx, SimDuration::from_us(40));
            let end = stream.record_event(&ctx);
            end.synchronize(&ctx);
            assert!(start.query() && end.query());
            let us = end.elapsed_us_since(&start);
            assert!((us - 40.0).abs() < 1.0, "elapsed {us}");
        });
    }

    #[test]
    fn event_on_empty_stream_fires_immediately() {
        let (sim, rt) = rt();
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let stream = Stream::new(rt2.clone());
            let ev = stream.record_event(&ctx);
            assert!(ev.query());
            ev.synchronize(&ctx); // no hang
        });
    }
}
