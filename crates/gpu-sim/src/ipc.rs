//! CUDA IPC: exporting device buffers to sibling processes on one node.
//!
//! A process obtains an [`IpcHandle`] for a device allocation and another
//! process on the same node opens it, after which the buffer is directly
//! addressable (peer copies work). Opening is expensive the first time per
//! (process, device) pair; the runtime caches mappings exactly like the
//! paper's initialization-time IPC exchange (§III-A).

use crate::GpuRuntime;
use parking_lot::Mutex;
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::{GpuId, ProcId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// An exported device buffer (the analogue of `cudaIpcMemHandle_t`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IpcHandle {
    pub mem: MemRef,
    pub len: u64,
}

/// Per-cluster registry of which processes already mapped which devices.
#[derive(Default)]
pub struct IpcRegistry {
    open: Mutex<HashSet<(ProcId, GpuId)>>,
}

impl IpcRegistry {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Error opening an IPC handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IpcError {
    /// The handle does not point at device memory.
    NotDeviceMemory,
    /// Opener and owner are on different nodes (IPC is intra-node only).
    CrossNode,
}

impl std::fmt::Display for IpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcError::NotDeviceMemory => write!(f, "IPC handle must reference device memory"),
            IpcError::CrossNode => write!(f, "CUDA IPC only works between processes on one node"),
        }
    }
}

impl std::error::Error for IpcError {}

impl GpuRuntime {
    /// `cudaIpcGetMemHandle`.
    pub fn ipc_get_handle(&self, mem: MemRef, len: u64) -> Result<IpcHandle, IpcError> {
        if !mem.is_device() {
            return Err(IpcError::NotDeviceMemory);
        }
        Ok(IpcHandle { mem, len })
    }

    /// `cudaIpcOpenMemHandle` for process `opener`: validates locality,
    /// charges the one-time mapping cost, and returns the peer-usable ref.
    pub fn ipc_open(
        self: &Arc<Self>,
        ctx: &sim_core::TaskCtx,
        opener: ProcId,
        handle: IpcHandle,
    ) -> Result<MemRef, IpcError> {
        let gpu = match handle.mem.space {
            MemSpace::Device(g) => g,
            _ => return Err(IpcError::NotDeviceMemory),
        };
        let topo = self.cluster().topo();
        if topo.node_of(opener) != topo.node_of_gpu(gpu) {
            return Err(IpcError::CrossNode);
        }
        let first = self.ipc().open.lock().insert((opener, gpu));
        if first {
            ctx.advance(self.cluster().hw().gpu.ipc_open_cost);
        }
        Ok(handle.mem)
    }

    /// Whether `opener` already mapped `gpu` (mapping-cache hit).
    pub fn ipc_is_open(&self, opener: ProcId, gpu: GpuId) -> bool {
        self.ipc().open.lock().contains(&(opener, gpu))
    }

    /// Record a mapping without charging time — used by runtimes that
    /// perform the whole IPC exchange during initialization (paper
    /// §III-A) and account for it there.
    pub fn ipc_mark_open(&self, opener: ProcId, gpu: GpuId) {
        self.ipc().open.lock().insert((opener, gpu));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuRuntime;
    use pcie_sim::{Cluster, ClusterSpec, HwProfile};
    use sim_core::Sim;

    #[test]
    fn ipc_open_charges_once_and_is_node_local() {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(2, 2), HwProfile::wilkes());
        let rt = GpuRuntime::new(&sim, cluster, 1 << 20);
        let owner_buf = rt.gpu(GpuId(0)).malloc(4096).unwrap();
        let handle = rt.ipc_get_handle(owner_buf, 4096).unwrap();

        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            // pe1 is on node0 with gpu0's owner: open succeeds, costs time.
            let t0 = ctx.now();
            let r = rt2.ipc_open(&ctx, ProcId(1), handle).unwrap();
            assert_eq!(r, owner_buf);
            let cost1 = ctx.now() - t0;
            assert!(!cost1.is_zero());
            // second open of same device is cached
            let t1 = ctx.now();
            rt2.ipc_open(&ctx, ProcId(1), handle).unwrap();
            assert!((ctx.now() - t1).is_zero());
            assert!(rt2.ipc_is_open(ProcId(1), GpuId(0)));
            // pe2 is on node1: cross-node open fails
            assert_eq!(
                rt2.ipc_open(&ctx, ProcId(2), handle).unwrap_err(),
                IpcError::CrossNode
            );
        });
    }

    #[test]
    fn host_memory_cannot_be_exported() {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(1, 2), HwProfile::wilkes());
        let rt = GpuRuntime::new(&sim, cluster, 1 << 20);
        let r = MemRef::new(MemSpace::Host(ProcId(0)), 0);
        assert_eq!(
            rt.ipc_get_handle(r, 16).unwrap_err(),
            IpcError::NotDeviceMemory
        );
    }
}
