//! `cudaMemcpy`-style data movement with modelled DMA timing.
//!
//! Classification follows UVA semantics: the copy kind is inferred from
//! the source and destination spaces, exactly like `cudaMemcpyDefault`.
//! Bytes really move (through the cluster [`MemoryMap`]) at the virtual
//! instant the modelled DMA completes.

use crate::device::GpuDevice;
use crate::GpuRuntime;
use pcie_sim::mem::{MemError, MemRef, MemSpace};
use pcie_sim::profile::P2pDir;
use pcie_sim::GpuId;
use sim_core::{Completion, LinkGrant, Sched, SimDuration, SimTime, TaskCtx};
use std::sync::Arc;

/// The inferred direction of a memcpy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyKind {
    /// Host/shared -> host/shared (plain CPU memcpy).
    HostToHost,
    /// Host/shared -> device DMA.
    HostToDevice(GpuId),
    /// Device -> host/shared DMA.
    DeviceToHost(GpuId),
    /// Within one device.
    DeviceToDevice(GpuId),
    /// Between two devices (CUDA IPC / peer access over PCIe).
    PeerToPeer { src: GpuId, dst: GpuId },
}

/// Classify a copy from its endpoint spaces.
pub fn classify(src: MemRef, dst: MemRef) -> CopyKind {
    match (src.space, dst.space) {
        (MemSpace::Device(a), MemSpace::Device(b)) if a == b => CopyKind::DeviceToDevice(a),
        (MemSpace::Device(a), MemSpace::Device(b)) => CopyKind::PeerToPeer { src: a, dst: b },
        (MemSpace::Device(a), _) => CopyKind::DeviceToHost(a),
        (_, MemSpace::Device(b)) => CopyKind::HostToDevice(b),
        _ => CopyKind::HostToHost,
    }
}

impl GpuRuntime {
    /// Validate a copy's endpoints before any time is spent.
    pub fn validate_copy(&self, src: MemRef, dst: MemRef, len: u64) -> Result<(), MemError> {
        let check = |r: MemRef| -> Result<(), MemError> {
            let a = self.cluster().mem().get(r.space)?;
            let size = a.size();
            if r.offset.checked_add(len).is_none_or(|end| end > size) {
                return Err(MemError::OutOfBounds {
                    space: r.space,
                    offset: r.offset,
                    len,
                    size,
                });
            }
            Ok(())
        };
        check(src)?;
        check(dst)
    }

    /// Record one DMA-engine occupancy with the attached recorder (if
    /// any): utilization counters at `Counters`, plus an engine span at
    /// `Spans`.
    fn note_dma(&self, engine: &'static str, g: GpuId, len: u64, grant: &LinkGrant) {
        if let Some(rec) = self.obs.counters() {
            rec.agent_bytes(
                obs::TrackKind::GpuDma,
                g.0,
                grant.start,
                len,
                grant.depart.since(grant.start),
            );
            if rec.spans_on() {
                let track = rec.track(obs::TrackKind::GpuDma, g.0);
                rec.span(track, engine, grant.start, grant.arrive, obs::Payload::Xfer { size: len });
            }
        }
    }

    /// Classify `src -> dst`, reserve the right DMA engine(s) for `len`
    /// bytes starting `now`, and return the arrival instant of the last
    /// byte. Shared by [`dma_start`](Self::dma_start) and
    /// [`memcpy2d_sync`](Self::memcpy2d_sync).
    fn reserve_transfer(&self, now: SimTime, src: MemRef, dst: MemRef, len: u64) -> SimTime {
        let hw = *self.cluster().hw();
        match classify(src, dst) {
            CopyKind::HostToHost => {
                now + hw.host.memcpy_overhead + SimDuration::for_bytes(len, hw.host.memcpy_bw)
            }
            CopyKind::HostToDevice(g) => {
                let grant = self.gpu(g).h2d.lock().reserve(now, len);
                self.note_dma("h2d", g, len, &grant);
                grant.arrive
            }
            CopyKind::DeviceToHost(g) => {
                let grant = self.gpu(g).d2h.lock().reserve(now, len);
                self.note_dma("d2h", g, len, &grant);
                grant.arrive
            }
            CopyKind::DeviceToDevice(g) => {
                let grant = self.gpu(g).d2d.lock().reserve(now, len);
                self.note_dma("d2d", g, len, &grant);
                grant.arrive
            }
            CopyKind::PeerToPeer { src: a, dst: b } => {
                // A peer copy reads from `a` and writes into `b`; the
                // chipset caps it at the P2P write bandwidth for the
                // socket relation between the two devices.
                let topo = self.cluster().topo();
                let intra = topo.node_of_gpu(a) == topo.node_of_gpu(b)
                    && topo.socket_of_gpu(a) == topo.socket_of_gpu(b);
                let eff = hw.pcie.p2p_bw(P2pDir::WriteToGpu, intra);
                let ga = self.gpu(a).d2h.lock().reserve_with(now, len, eff);
                let gb = self.gpu(b).h2d.lock().reserve_with(now, len, eff);
                self.note_dma("p2p-out", a, len, &ga);
                self.note_dma("p2p-in", b, len, &gb);
                ga.arrive.max(gb.arrive)
            }
        }
    }

    /// Start the DMA for a memcpy *now* (engine lock held via `Sched`);
    /// signals `done` (+1) at the modelled completion instant, after the
    /// bytes have actually been copied.
    ///
    /// This is the async building block; it charges no CPU-side launch
    /// cost (callers account for that — see [`GpuRuntime::memcpy_sync`]
    /// and [`GpuRuntime::memcpy_async`]).
    pub fn dma_start(self: &Arc<Self>, s: &mut Sched<'_>, src: MemRef, dst: MemRef, len: u64, done: &Completion) {
        if let Err(e) = self.validate_copy(src, dst, len) {
            panic!("memcpy validation failed: {e}");
        }
        let arrive = self.reserve_transfer(s.now(), src, dst, len);
        let rt = self.clone();
        let done = done.clone();
        s.schedule_at(
            arrive,
            Box::new(move |s| {
                rt.cluster()
                    .mem()
                    .copy(src, dst, len)
                    .expect("validated memcpy failed");
                s.signal(&done, 1);
            }),
        );
    }

    /// `cudaMemcpy` (synchronous): charges the driver overhead to the
    /// calling PE, runs the DMA, and returns when the data has landed.
    pub fn memcpy_sync(self: &Arc<Self>, ctx: &TaskCtx, src: MemRef, dst: MemRef, len: u64) {
        ctx.advance(self.cluster().hw().gpu.memcpy_overhead);
        let done = Completion::new();
        ctx.with_sched(|s| self.dma_start(s, src, dst, len, &done));
        ctx.wait(&done);
    }

    /// `cudaMemcpyAsync`: charges only the launch cost to the calling PE
    /// and returns a completion that fires when the transfer lands.
    pub fn memcpy_async(self: &Arc<Self>, ctx: &TaskCtx, src: MemRef, dst: MemRef, len: u64) -> Completion {
        ctx.advance(self.cluster().hw().gpu.memcpy_async_launch);
        let done = Completion::new();
        ctx.with_sched(|s| self.dma_start(s, src, dst, len, &done));
        done
    }

    /// Model a kernel launch + execution on the calling PE's stream
    /// (synchronous; the PE blocks as if it called `cudaDeviceSynchronize`).
    pub fn kernel_sync(&self, ctx: &TaskCtx, cost: SimDuration) {
        ctx.advance(self.cluster().hw().gpu.kernel_launch + cost);
    }

    /// `cudaMemset` (synchronous): fill `len` bytes with `value`.
    pub fn memset_sync(self: &Arc<Self>, ctx: &TaskCtx, dst: MemRef, value: u8, len: u64) {
        let hw = *self.cluster().hw();
        // device-side fill runs at on-device bandwidth; host at memcpy bw
        let bw = if dst.is_device() {
            hw.gpu.d2d_bw
        } else {
            hw.host.memcpy_bw
        };
        ctx.advance(hw.gpu.memcpy_overhead + SimDuration::for_bytes(len, bw));
        let arena = self
            .cluster()
            .mem()
            .get(dst.space)
            .unwrap_or_else(|e| panic!("memset target: {e}"));
        arena
            .write(dst.offset, &vec![value; len as usize])
            .unwrap_or_else(|e| panic!("memset: {e}"));
    }

    /// `cudaMemcpy2D` (synchronous): copy `rows` rows of `row_bytes`
    /// each, with independent source and destination pitches. A single
    /// DMA descriptor on real hardware — one launch overhead, one
    /// transfer of `rows * row_bytes` payload.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy2d_sync(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        src: MemRef,
        src_pitch: u64,
        dst: MemRef,
        dst_pitch: u64,
        row_bytes: u64,
        rows: u64,
    ) {
        assert!(src_pitch >= row_bytes && dst_pitch >= row_bytes, "pitch < row");
        // validate both full extents up front so a bad descriptor fails
        // here, not inside an event callback
        if rows > 0 {
            let src_extent = (rows - 1) * src_pitch + row_bytes;
            let dst_extent = (rows - 1) * dst_pitch + row_bytes;
            if let Err(e) = self.validate_copy(src, src, src_extent) {
                panic!("memcpy2d source extent invalid: {e}");
            }
            if let Err(e) = self.validate_copy(dst, dst, dst_extent) {
                panic!("memcpy2d destination extent invalid: {e}");
            }
        }
        ctx.advance(self.cluster().hw().gpu.memcpy_overhead);
        let done = Completion::new();
        let payload = rows * row_bytes;
        // one DMA reservation for the whole strided transfer
        let me = self.clone();
        let done2 = done.clone();
        ctx.with_sched(move |s| {
            // peer 2D copies obey the same chipset caps as 1D
            let arrive = me.reserve_transfer(s.now(), src, dst, payload);
            let me2 = me.clone();
            s.schedule_at(
                arrive,
                Box::new(move |s| {
                    for r in 0..rows {
                        me2.cluster()
                            .mem()
                            .copy(
                                src.add(r * src_pitch),
                                dst.add(r * dst_pitch),
                                row_bytes,
                            )
                            .unwrap_or_else(|e| panic!("memcpy2d row {r}: {e}"));
                    }
                    s.signal(&done2, 1);
                }),
            );
        });
        ctx.wait(&done);
    }
}

/// Convenience: predict the unloaded duration of a sync memcpy (for tests).
pub fn unloaded_sync_memcpy(
    rt: &GpuRuntime,
    src: MemRef,
    dst: MemRef,
    len: u64,
) -> SimDuration {
    let hw = rt.cluster().hw();
    let dma = match classify(src, dst) {
        CopyKind::HostToHost => {
            hw.host.memcpy_overhead + SimDuration::for_bytes(len, hw.host.memcpy_bw)
        }
        CopyKind::HostToDevice(_) => {
            hw.pcie.latency + SimDuration::for_bytes(len, hw.gpu.h2d_bw)
        }
        CopyKind::DeviceToHost(_) => {
            hw.pcie.latency + SimDuration::for_bytes(len, hw.gpu.d2h_bw)
        }
        CopyKind::DeviceToDevice(_) => {
            SimDuration::from_ns(50) + SimDuration::for_bytes(len, hw.gpu.d2d_bw)
        }
        CopyKind::PeerToPeer { .. } => hw.pcie.latency, // callers don't use this for P2P
    };
    hw.gpu.memcpy_overhead + dma
}

/// Expose the per-device links for raw-path experiments (Table III).
impl GpuRuntime {
    /// Reserve a raw P2P DMA on a GPU's PCIe port and return its arrival
    /// instant. `dir` is relative to the GPU. Used by the HCA model (GDR)
    /// and the Table III harness.
    pub fn p2p_reserve(
        &self,
        gpu: &GpuDevice,
        now: sim_core::SimTime,
        len: u64,
        dir: P2pDir,
        intra_socket: bool,
    ) -> sim_core::LinkGrant {
        let eff = self.cluster().hw().pcie.p2p_bw(dir, intra_socket);
        let (engine, grant) = match dir {
            P2pDir::ReadFromGpu => ("p2p-out", gpu.p2p_out.lock().reserve_with(now, len, eff)),
            P2pDir::WriteToGpu => ("p2p-in", gpu.p2p_in.lock().reserve_with(now, len, eff)),
        };
        self.note_dma(engine, gpu.id(), len, &grant);
        grant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::ProcId;

    #[test]
    fn classification_matrix() {
        let h = |p| MemRef::new(MemSpace::Host(ProcId(p)), 0);
        let d = |g| MemRef::new(MemSpace::Device(GpuId(g)), 0);
        assert_eq!(classify(h(0), h(1)), CopyKind::HostToHost);
        assert_eq!(classify(h(0), d(1)), CopyKind::HostToDevice(GpuId(1)));
        assert_eq!(classify(d(2), h(0)), CopyKind::DeviceToHost(GpuId(2)));
        assert_eq!(classify(d(2), d(2)), CopyKind::DeviceToDevice(GpuId(2)));
        assert_eq!(
            classify(d(0), d(1)),
            CopyKind::PeerToPeer {
                src: GpuId(0),
                dst: GpuId(1)
            }
        );
    }
}

#[cfg(test)]
mod memset_2d_tests {
    use super::*;
    use crate::GpuRuntime;
    use pcie_sim::{Cluster, ClusterSpec, GpuId, HwProfile, ProcId};
    use sim_core::Sim;

    fn rt() -> (Sim, Arc<GpuRuntime>) {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(1, 1), HwProfile::wilkes());
        cluster.create_host_arena(ProcId(0), 1 << 20);
        let rt = GpuRuntime::new(&sim, cluster, 8 << 20);
        (sim, rt)
    }

    #[test]
    fn memset_fills_device_memory() {
        let (sim, rt) = rt();
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let d = rt2.gpu(GpuId(0)).malloc(4096).unwrap();
            rt2.memset_sync(&ctx, d, 0x7E, 4096);
            assert!(rt2
                .cluster()
                .mem()
                .read_bytes(d, 4096)
                .unwrap()
                .iter()
                .all(|&b| b == 0x7E));
        });
    }

    #[test]
    fn memcpy2d_moves_a_submatrix() {
        let (sim, rt) = rt();
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            // host matrix: 8 rows x 16 bytes, pitch 32
            for r in 0..8u64 {
                rt2.cluster()
                    .mem()
                    .write_bytes(h.add(r * 32), &[r as u8 + 1; 16])
                    .unwrap();
            }
            let d = rt2.gpu(GpuId(0)).malloc(4096).unwrap();
            // pack into the device with pitch 16 (contiguous)
            rt2.memcpy2d_sync(&ctx, h, 32, d, 16, 16, 8);
            let got = rt2.cluster().mem().read_bytes(d, 128).unwrap();
            for r in 0..8usize {
                assert!(
                    got[r * 16..(r + 1) * 16].iter().all(|&b| b == r as u8 + 1),
                    "row {r}"
                );
            }
        });
    }

    #[test]
    fn memcpy2d_strided_costs_one_transfer_not_rows() {
        let (sim, rt) = rt();
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            let d = rt2.gpu(GpuId(0)).malloc(1 << 20).unwrap();
            let t0 = ctx.now();
            rt2.memcpy2d_sync(&ctx, h, 1024, d, 512, 512, 128); // 64 KiB payload
            let one_desc = ctx.now() - t0;
            // the same payload as 128 separate syncs would cost >128 overheads
            let hw = rt2.cluster().hw();
            assert!(
                one_desc < hw.gpu.memcpy_overhead * 4,
                "2D copy should cost ~one descriptor: {one_desc}"
            );
        });
    }
}
