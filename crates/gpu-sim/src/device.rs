//! Simulated GPU devices: device memory, allocator, and DMA engine links.

use parking_lot::Mutex;
use pcie_sim::alloc::{OutOfMemory, RangeAlloc};
use pcie_sim::mem::{Arena, MemRef, MemSpace};
use pcie_sim::profile::HwProfile;
use pcie_sim::GpuId;
use sim_core::{Link, LinkSpec, SimDuration};
use std::sync::Arc;

/// Allocation granularity of `cuda_malloc` (CUDA guarantees at least 256 B).
pub const DEVICE_ALLOC_ALIGN: u64 = 256;

/// One simulated GPU: its memory arena, DMA engine links and allocator.
pub struct GpuDevice {
    id: GpuId,
    arena: Arc<Arena>,
    /// Host -> device DMA engine (also the write side of P2P traffic).
    pub(crate) h2d: Mutex<Link>,
    /// Device -> host DMA engine (also the read side of P2P traffic).
    pub(crate) d2h: Mutex<Link>,
    /// On-device copy engine.
    pub(crate) d2d: Mutex<Link>,
    /// Raw PCIe port, inbound (peer/HCA P2P writes into the GPU).
    pub(crate) p2p_in: Mutex<Link>,
    /// Raw PCIe port, outbound (peer/HCA P2P reads from the GPU).
    pub(crate) p2p_out: Mutex<Link>,
    heap: Mutex<RangeAlloc>,
}

impl GpuDevice {
    pub fn new(id: GpuId, arena: Arc<Arena>, hw: &HwProfile) -> Arc<GpuDevice> {
        let size = arena.size();
        Arc::new(GpuDevice {
            id,
            arena,
            h2d: Mutex::new(Link::new(LinkSpec::new(hw.pcie.latency, hw.gpu.h2d_bw))),
            d2h: Mutex::new(Link::new(LinkSpec::new(hw.pcie.latency, hw.gpu.d2h_bw))),
            d2d: Mutex::new(Link::new(LinkSpec::new(
                SimDuration::from_ns(50),
                hw.gpu.d2d_bw,
            ))),
            p2p_in: Mutex::new(Link::new(LinkSpec::new(hw.pcie.latency, hw.pcie.port_bw))),
            p2p_out: Mutex::new(Link::new(LinkSpec::new(hw.pcie.latency, hw.pcie.port_bw))),
            heap: Mutex::new(RangeAlloc::new(size, DEVICE_ALLOC_ALIGN)),
        })
    }

    pub fn id(&self) -> GpuId {
        self.id
    }

    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    pub fn mem_size(&self) -> u64 {
        self.arena.size()
    }

    pub fn mem_allocated(&self) -> u64 {
        self.heap.lock().allocated()
    }

    /// `cudaMalloc`: allocate device memory, returning a UVA-style ref.
    pub fn malloc(&self, size: u64) -> Result<MemRef, OutOfMemory> {
        let off = self.heap.lock().alloc(size)?;
        Ok(MemRef::new(MemSpace::Device(self.id), off))
    }

    /// `cudaFree`.
    pub fn free(&self, r: MemRef, size: u64) {
        assert_eq!(
            r.space,
            MemSpace::Device(self.id),
            "freeing foreign pointer on {}",
            self.id
        );
        self.heap.lock().free(r.offset, size);
    }
}

impl std::fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GpuDevice({}, {}/{} bytes used)",
            self.id,
            self.mem_allocated(),
            self.mem_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::mem::Arena;

    fn dev() -> Arc<GpuDevice> {
        let arena = Arena::new(MemSpace::Device(GpuId(0)), 1 << 20);
        GpuDevice::new(GpuId(0), arena, &HwProfile::wilkes())
    }

    #[test]
    fn malloc_returns_device_refs() {
        let g = dev();
        let a = g.malloc(100).unwrap();
        let b = g.malloc(100).unwrap();
        assert!(a.is_device());
        assert_ne!(a.offset, b.offset);
        assert_eq!(g.mem_allocated(), 512); // two aligned blocks
        g.free(a, 100);
        g.free(b, 100);
        assert_eq!(g.mem_allocated(), 0);
    }

    #[test]
    fn oom_when_device_memory_exhausted() {
        let g = dev();
        assert!(g.malloc(2 << 20).is_err());
    }

    #[test]
    #[should_panic(expected = "foreign pointer")]
    fn freeing_foreign_pointer_panics() {
        let g = dev();
        g.free(MemRef::new(MemSpace::Device(GpuId(3)), 0), 64);
    }
}
