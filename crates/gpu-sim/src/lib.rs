//! # gpu-sim — CUDA-like simulated GPU runtime
//!
//! Provides the device-side substrate the paper's runtime depends on:
//! device memory with a real allocator, `cudaMemcpy`-style transfers with
//! modelled DMA engines and PCIe timing, CUDA IPC handles, streams, and
//! UVA pointer classification. Bytes really move; time is virtual.
//!
//! ```
//! use gpu_sim::GpuRuntime;
//! use pcie_sim::{Cluster, ClusterSpec, HwProfile, GpuId, ProcId, MemRef, MemSpace};
//! use sim_core::Sim;
//!
//! let sim = Sim::new();
//! let cluster = Cluster::new(ClusterSpec::wilkes(1, 1), HwProfile::wilkes());
//! cluster.create_host_arena(ProcId(0), 4096);
//! let rt = GpuRuntime::new(&sim, cluster, 1 << 20);
//! let rt2 = rt.clone();
//! sim.run(1, move |ctx| {
//!     let dbuf = rt2.gpu(GpuId(0)).malloc(256).unwrap();
//!     let host = MemRef::new(MemSpace::Host(ProcId(0)), 0);
//!     rt2.cluster().mem().write_bytes(host, b"gpu!").unwrap();
//!     rt2.memcpy_sync(&ctx, host, dbuf, 4);
//!     assert_eq!(rt2.cluster().mem().read_bytes(dbuf, 4).unwrap(), b"gpu!");
//! });
//! ```

pub mod copy;
pub mod device;
pub mod ipc;
pub mod stream;

pub use copy::{classify, CopyKind};
pub use device::{GpuDevice, DEVICE_ALLOC_ALIGN};
pub use ipc::{IpcError, IpcHandle, IpcRegistry};
pub use stream::Stream;

use pcie_sim::mem::MemSpace;
use pcie_sim::{Cluster, GpuId};
use sim_core::Sim;
use std::sync::Arc;

/// The per-cluster GPU runtime: all devices plus the IPC registry.
pub struct GpuRuntime {
    sim: Sim,
    cluster: Arc<Cluster>,
    gpus: Vec<Arc<GpuDevice>>,
    ipc: IpcRegistry,
    obs: obs::Sink,
}

/// Link-track slots per GPU in the obs index space (h2d, d2h, d2d,
/// p2p-in, p2p-out).
const LINKS_PER_GPU: usize = 5;

impl GpuRuntime {
    /// Build every GPU in the cluster with `dev_mem_bytes` of memory each.
    pub fn new(sim: &Sim, cluster: Arc<Cluster>, dev_mem_bytes: u64) -> Arc<GpuRuntime> {
        let hw = *cluster.hw();
        let gpus = (0..cluster.topo().ngpus())
            .map(|i| {
                let id = GpuId(i as u32);
                let arena = cluster
                    .mem()
                    .create(MemSpace::Device(id), dev_mem_bytes as usize);
                GpuDevice::new(id, arena, &hw)
            })
            .collect();
        let rt = Arc::new(GpuRuntime {
            sim: sim.clone(),
            cluster,
            gpus,
            ipc: IpcRegistry::new(),
            obs: obs::Sink::new(),
        });
        // Per-link utilization: every PCIe/DMA link reports its
        // reservations through the late-bound sink, so a machine that
        // attaches a recorder gets one named utilization track per link.
        for (i, gpu) in rt.gpus.iter().enumerate() {
            let links = [
                ("h2d", &gpu.h2d),
                ("d2h", &gpu.d2h),
                ("d2d", &gpu.d2d),
                ("p2p-in", &gpu.p2p_in),
                ("p2p-out", &gpu.p2p_out),
            ];
            for (slot, (tag, link)) in links.into_iter().enumerate() {
                let sink = rt.obs.clone();
                let name = format!("pcie/gpu{i}/{tag}");
                let index = (i * LINKS_PER_GPU + slot) as u32;
                link.lock().set_observer(Box::new(move |ev| {
                    if let Some(rec) = sink.counters() {
                        rec.link_sample(index, &name, ev);
                    }
                }));
            }
        }
        rt
    }

    /// Late-bound observability sink; a machine attaches its recorder
    /// here so DMA-engine utilization lands in the trace.
    pub fn obs(&self) -> &obs::Sink {
        &self.obs
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn gpu(&self, id: GpuId) -> &Arc<GpuDevice> {
        &self.gpus[id.index()]
    }

    pub fn gpus(&self) -> &[Arc<GpuDevice>] {
        &self.gpus
    }

    pub(crate) fn ipc(&self) -> &IpcRegistry {
        &self.ipc
    }

    /// Install the plan's `GpuPcie`-scoped fault windows on the indexed
    /// GPU's PCIe attachment: all five engine links (h2d, d2h, d2d and
    /// both raw P2P ports) see the same degradation/blackout interval,
    /// which also throttles GDR gather/scatter through those ports.
    pub fn install_fault_windows(&self, plan: &faults::FaultPlan) {
        for w in plan.link_windows() {
            if w.scope != faults::LinkScope::GpuPcie {
                continue;
            }
            let window = sim_core::LinkFaultWindow {
                start: sim_core::SimTime(w.start_ns.saturating_mul(sim_core::PS_PER_NS)),
                end: sim_core::SimTime(w.end_ns.saturating_mul(sim_core::PS_PER_NS)),
                bw_multiplier: f64::from(w.bw_permille) / 1000.0,
            };
            for (i, gpu) in self.gpus.iter().enumerate() {
                if w.index == faults::ALL || w.index as usize == i {
                    for link in [&gpu.h2d, &gpu.d2h, &gpu.d2d, &gpu.p2p_in, &gpu.p2p_out] {
                        link.lock().add_fault_window(window);
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for GpuRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GpuRuntime({} gpus)", self.gpus.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie_sim::mem::MemRef;
    use pcie_sim::{ClusterSpec, HwProfile, ProcId};
    use sim_core::SimDuration;

    fn setup(nodes: usize, ppn: usize) -> (Sim, Arc<GpuRuntime>) {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(nodes, ppn), HwProfile::wilkes());
        for p in cluster.topo().all_procs() {
            cluster.create_host_arena(p, 1 << 20);
        }
        let rt = GpuRuntime::new(&sim, cluster, 8 << 20);
        (sim, rt)
    }

    #[test]
    fn h2d_d2h_round_trip_preserves_data() {
        let (sim, rt) = setup(1, 1);
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let d = rt2.gpu(GpuId(0)).malloc(4096).unwrap();
            let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            let payload: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
            rt2.cluster().mem().write_bytes(h, &payload).unwrap();
            rt2.memcpy_sync(&ctx, h, d, 4096);
            // scribble over host, then read back from device
            rt2.cluster().mem().write_bytes(h, &vec![0; 4096]).unwrap();
            rt2.memcpy_sync(&ctx, d, h, 4096);
            assert_eq!(rt2.cluster().mem().read_bytes(h, 4096).unwrap(), payload);
        });
    }

    #[test]
    fn sync_memcpy_takes_overhead_plus_dma_time() {
        let (sim, rt) = setup(1, 1);
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let hw = *rt2.cluster().hw();
            let d = rt2.gpu(GpuId(0)).malloc(1 << 20).unwrap();
            let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            let t0 = ctx.now();
            rt2.memcpy_sync(&ctx, h, d, 1 << 20);
            let took = ctx.now() - t0;
            let expect = hw.gpu.memcpy_overhead
                + hw.pcie.latency
                + SimDuration::for_bytes(1 << 20, hw.gpu.h2d_bw);
            assert_eq!(took, expect);
        });
    }

    #[test]
    fn async_memcpy_overlaps_with_compute() {
        let (sim, rt) = setup(1, 1);
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let d = rt2.gpu(GpuId(0)).malloc(1 << 20).unwrap();
            let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            let t0 = ctx.now();
            let done = rt2.memcpy_async(&ctx, h, d, 1 << 20);
            // A 1 MiB H2D takes ~175us; do 200us of compute meanwhile.
            ctx.advance(SimDuration::from_us(200));
            ctx.wait(&done);
            let took = ctx.now() - t0;
            // Total must be ~max(copy, compute) + launch, not the sum.
            assert!(took < SimDuration::from_us(210), "no overlap: {took}");
        });
    }

    #[test]
    fn peer_copy_between_sockets_is_slower() {
        let (sim, rt) = setup(1, 2); // gpu0 socket0, gpu1 socket1
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let a = rt2.gpu(GpuId(0)).malloc(1 << 20).unwrap();
            let b = rt2.gpu(GpuId(1)).malloc(1 << 20).unwrap();
            let t0 = ctx.now();
            rt2.memcpy_sync(&ctx, a, b, 1 << 20);
            let inter = ctx.now() - t0;
            // same-device copy is far faster
            let c = rt2.gpu(GpuId(0)).malloc(1 << 20).unwrap();
            let t1 = ctx.now();
            rt2.memcpy_sync(&ctx, a, c, 1 << 20);
            let local = ctx.now() - t1;
            assert!(inter > local * 10, "inter={inter} local={local}");
        });
    }

    #[test]
    fn dma_engines_serialize_per_direction() {
        let (sim, rt) = setup(1, 1);
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let d = rt2.gpu(GpuId(0)).malloc(2 << 20).unwrap();
            let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
            let t0 = ctx.now();
            let c1 = rt2.memcpy_async(&ctx, h, d, 1 << 20);
            let c2 = rt2.memcpy_async(&ctx, h, d.add(1 << 20), 1 << 20);
            ctx.wait(&c1);
            ctx.wait(&c2);
            let took = ctx.now() - t0;
            let hw = rt2.cluster().hw();
            let one = SimDuration::for_bytes(1 << 20, hw.gpu.h2d_bw);
            // Two same-direction copies on one engine serialize.
            assert!(took >= one * 2, "took {took}, one copy {one}");
        });
    }

    #[test]
    fn pcie_fault_window_degrades_h2d_copies() {
        let timed = |faulted: bool| {
            let (sim, rt) = setup(1, 1);
            if faulted {
                // halve GPU0's PCIe bandwidth for the first 10 ms
                rt.install_fault_windows(&faults::FaultPlan::default().with_link_window(
                    faults::LinkWindow {
                        scope: faults::LinkScope::GpuPcie,
                        index: 0,
                        start_ns: 0,
                        end_ns: 10_000_000,
                        bw_permille: 500,
                    },
                ));
            }
            let rt2 = rt.clone();
            let out = sim.run(1, move |ctx| {
                let d = rt2.gpu(GpuId(0)).malloc(1 << 20).unwrap();
                let h = MemRef::new(MemSpace::Host(ProcId(0)), 0);
                let t0 = ctx.now();
                rt2.memcpy_sync(&ctx, h, d, 1 << 20);
                (ctx.now() - t0).as_us_f64()
            });
            out[0]
        };
        let clean = timed(false);
        let slow = timed(true);
        assert!(
            slow > clean * 1.8 && slow < clean * 2.2,
            "half-rate window not visible: clean {clean}us vs faulted {slow}us"
        );
    }

    #[test]
    #[should_panic(expected = "memcpy validation failed")]
    fn out_of_bounds_copy_panics_at_launch() {
        let (sim, rt) = setup(1, 1);
        let rt2 = rt.clone();
        sim.run(1, move |ctx| {
            let d = rt2.gpu(GpuId(0)).malloc(256).unwrap();
            let h = MemRef::new(MemSpace::Host(ProcId(0)), (1 << 20) - 8);
            rt2.memcpy_sync(&ctx, h, d, 4096);
        });
    }
}
