//! The discrete-event engine and its conservative thread coordination.
//!
//! Processing elements (PEs) run as ordinary OS threads so that benchmark
//! and application code can be written as straight-line SHMEM programs.
//! All *timing* however is virtual: the global clock only advances when
//! every task is blocked (on a time advance or on a [`Completion`]), at
//! which point whichever thread blocked last drives the event heap.
//!
//! Hardware models (DMA engines, HCAs, proxies) are not threads; they are
//! chains of scheduled closures (`Action`s) that fire at virtual instants,
//! move bytes between arenas, and signal completions.
//!
//! # Determinism
//!
//! Event execution order is fully deterministic: ties at the same instant
//! break on a monotonically increasing sequence number. The only residual
//! nondeterminism is the order in which *concurrently runnable* PE threads
//! reach the engine within the same virtual instant; protocols that care
//! (all benchmarks in this workspace) serialize through completions and
//! barriers, so reported aggregate timings are stable run to run.

use crate::time::{SimDuration, SimTime};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a task (PE thread) registered with the engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// A deferred closure run by the engine at a virtual instant.
pub type Action = Box<dyn FnOnce(&mut Sched<'_>) + Send>;

struct EventEntry {
    at: SimTime,
    seq: u64,
    action: Action,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Default)]
struct TaskState {
    ready: bool,
    wait_reason: Option<String>,
    alive: bool,
    /// Counted in `Core::runnable` (executing user code or woken).
    running: bool,
}

/// Aggregate engine counters, readable after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Total events executed since engine creation.
    pub events_executed: u64,
    /// High-water mark of the pending-event heap.
    pub max_heap_len: usize,
    /// Number of task wake-ups delivered.
    pub wakeups: u64,
    /// Number of `signal` calls on completions.
    pub completions_signalled: u64,
    /// Events a *blocked* task had to drive itself because no task was
    /// runnable — each one is a stall where virtual time could only
    /// advance through the event heap.
    pub time_advance_stalls: u64,
}

struct Core {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<EventEntry>,
    /// Tasks currently executing user code (or marked ready to resume).
    runnable: usize,
    /// Tasks spawned and not yet exited.
    live: usize,
    tasks: Vec<TaskState>,
    stats: EngineStats,
    /// Set when a driver thread panicked (deadlock or event-action panic)
    /// so blocked sibling threads unwind instead of hanging in `cv.wait`.
    poisoned: bool,
    /// Set by `wake` so drivers only broadcast the condvar when a task
    /// actually became runnable (most events are pure hardware chains).
    pending_wakes: bool,
}

impl Core {
    fn pop_due(&mut self) -> Option<EventEntry> {
        self.events.pop()
    }

    fn wake(&mut self, task: TaskId) {
        let st = &mut self.tasks[task.0];
        assert!(st.alive, "woke dead {task}");
        if !st.ready {
            st.ready = true;
            st.running = true;
            self.runnable += 1;
            self.stats.wakeups += 1;
            self.pending_wakes = true;
        }
    }

    fn deadlock_dump(&self) -> String {
        let mut s = String::from("virtual-time deadlock: no runnable task and no pending event\n");
        for (i, t) in self.tasks.iter().enumerate() {
            if t.alive && !t.ready {
                let why = t.wait_reason.as_deref().unwrap_or("<unknown>");
                s.push_str(&format!("  task{i}: waiting on {why}\n"));
            }
        }
        s
    }
}

struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
}

/// Handle to a simulation. Cheap to clone; all clones share one clock.
#[derive(Clone)]
pub struct Sim {
    sh: Arc<Shared>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

/// Scheduling context handed to event callbacks and to
/// [`Sim::with_sched`] closures. Everything that mutates engine state or
/// signals completions goes through this type, which guarantees the engine
/// lock is held.
pub struct Sched<'a> {
    core: &'a mut Core,
}

impl<'a> Sched<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Schedule `action` to run at absolute time `at` (>= now).
    pub fn schedule_at(&mut self, at: SimTime, action: Action) {
        debug_assert!(at >= self.core.now, "scheduling into the past");
        let seq = self.core.seq;
        self.core.seq += 1;
        self.core.events.push(EventEntry { at, seq, action });
        let len = self.core.events.len();
        if len > self.core.stats.max_heap_len {
            self.core.stats.max_heap_len = len;
        }
    }

    /// Schedule `action` to run after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, action: Action) {
        let at = self.core.now + delay;
        self.schedule_at(at, action);
    }

    /// Mark a blocked task runnable again.
    pub fn wake(&mut self, task: TaskId) {
        self.core.wake(task);
    }

    /// Add `n` to a completion counter, waking satisfied waiters and
    /// scheduling any attached continuation actions (they run at the
    /// current instant, after already-queued same-instant events).
    pub fn signal(&mut self, c: &Completion, n: u64) {
        self.core.stats.completions_signalled += 1;
        let now = self.core.now;
        let fired = {
            let mut st = c.inner.lock();
            st.count += n;
            if st.first_at.is_none() {
                st.first_at = Some(now);
            }
            let count = st.count;
            let mut fired = Vec::new();
            let mut kept = Vec::new();
            for wt in st.waiters.drain(..) {
                if wt.threshold <= count {
                    fired.push(wt.kind);
                } else {
                    kept.push(wt);
                }
            }
            st.waiters = kept;
            fired
        };
        for k in fired {
            match k {
                WaiterKind::Task(t) => self.core.wake(t),
                WaiterKind::Action(a) => self.schedule_in(SimDuration::ZERO, a),
            }
        }
    }

    /// Run `action` once `c` reaches `threshold` (immediately if already
    /// there). The continuation fires at the instant the threshold is
    /// crossed — the idiom for chaining pipeline stages.
    pub fn call_on(&mut self, c: &Completion, threshold: u64, action: Action) {
        {
            let mut st = c.inner.lock();
            if st.count < threshold {
                st.waiters.push(CompWaiter {
                    threshold,
                    kind: WaiterKind::Action(action),
                });
                return;
            }
        }
        self.schedule_in(SimDuration::ZERO, action);
    }
}

/// Per-task handle passed to the task body by [`Sim::run`].
pub struct TaskCtx {
    sim: Sim,
    id: TaskId,
    rank: usize,
}

impl TaskCtx {
    /// This task's engine-global id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// This task's rank within its `Sim::run` group (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The owning simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Spend `d` of virtual time (models computation or fixed overhead).
    pub fn advance(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let me = self.id;
        let mut guard = self.sim.sh.core.lock();
        let at = guard.now + d;
        {
            // go through the canonical scheduler so stats and the
            // monotonicity check apply to task wake-ups too
            let core: &mut Core = &mut guard;
            let mut sched = Sched { core };
            sched.schedule_at(at, Box::new(move |s| s.wake(me)));
        }
        self.sim
            .block_current(&mut guard, me, format!("advance until {at}"));
    }

    /// Block until `c`'s counter reaches at least `threshold`.
    pub fn wait_threshold(&self, c: &Completion, threshold: u64) {
        let me = self.id;
        let mut guard = self.sim.sh.core.lock();
        {
            let mut st = c.inner.lock();
            if st.count >= threshold {
                return;
            }
            st.waiters.push(CompWaiter {
                threshold,
                kind: WaiterKind::Task(me),
            });
        }
        self.sim
            .block_current(&mut guard, me, format!("completion>={threshold}"));
    }

    /// Block until `c` has been signalled at least once.
    pub fn wait(&self, c: &Completion) {
        self.wait_threshold(c, 1);
    }

    /// Block until `c` reaches `threshold` or virtual time advances by
    /// `timeout`, whichever comes first — the engine-level quiesce
    /// watchdog. Returns `Ok(())` if the threshold was reached and
    /// `Err(dump)` with a [`Sim::blocked_dump`] diagnostic if the
    /// deadline fired first. A zero `timeout` degrades to a plain
    /// [`TaskCtx::wait_threshold`], keeping unwatched runs' event order
    /// byte-identical.
    ///
    /// The deadline is a real scheduled event, so a completion that
    /// never arrives (a lost CQE with retries disabled) keeps the event
    /// heap non-empty: the engine reaches the deadline and hands back a
    /// typed failure instead of tripping the virtual-time deadlock
    /// panic. On timeout the threshold waiter attached to `c` stays
    /// registered and fires harmlessly if the completion lands later.
    pub fn wait_threshold_deadline(
        &self,
        c: &Completion,
        threshold: u64,
        timeout: SimDuration,
    ) -> Result<(), String> {
        if timeout.is_zero() {
            self.wait_threshold(c, threshold);
            return Ok(());
        }
        let fired = Completion::new();
        self.with_sched(|s| {
            let f1 = fired.clone();
            s.call_on(c, threshold, Box::new(move |s| s.signal(&f1, 1)));
            let f2 = fired.clone();
            s.schedule_in(timeout, Box::new(move |s| s.signal(&f2, 1)));
        });
        self.wait_threshold(&fired, 1);
        if c.is_done(threshold) {
            Ok(())
        } else {
            Err(self.sim.blocked_dump())
        }
    }

    /// Run a closure with the scheduler (engine lock held): the doorway for
    /// hardware models invoked from PE context.
    pub fn with_sched<R>(&self, f: impl FnOnce(&mut Sched<'_>) -> R) -> R {
        self.sim.with_sched(f)
    }
}

impl Sim {
    pub fn new() -> Sim {
        Sim {
            sh: Arc::new(Shared {
                core: Mutex::new(Core {
                    now: SimTime::ZERO,
                    seq: 0,
                    events: BinaryHeap::new(),
                    runnable: 0,
                    live: 0,
                    tasks: Vec::new(),
                    stats: EngineStats::default(),
                    poisoned: false,
                    pending_wakes: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sh.core.lock().now
    }

    /// Engine counters so far.
    pub fn stats(&self) -> EngineStats {
        self.sh.core.lock().stats
    }

    /// Diagnostic snapshot of every blocked task's wait reason plus the
    /// pending-event count — what a quiesce-watchdog timeout reports so
    /// a stuck wait names its suspects instead of just timing out.
    pub fn blocked_dump(&self) -> String {
        let guard = self.sh.core.lock();
        let mut s = format!(
            "blocked tasks at t={} ({} events pending):\n",
            guard.now,
            guard.events.len()
        );
        for (i, t) in guard.tasks.iter().enumerate() {
            if t.alive && !t.ready && !t.running {
                let why = t.wait_reason.as_deref().unwrap_or("<unknown>");
                s.push_str(&format!("  task{i}: waiting on {why}\n"));
            }
        }
        s
    }

    /// Run a closure with the scheduler (engine lock held).
    pub fn with_sched<R>(&self, f: impl FnOnce(&mut Sched<'_>) -> R) -> R {
        let mut guard = self.sh.core.lock();
        let mut sched = Sched { core: &mut guard };
        let r = f(&mut sched);
        // The closure may have woken tasks (e.g. by signalling a
        // completion); threads parked in cv.wait must learn about it.
        if guard.pending_wakes {
            guard.pending_wakes = false;
            self.sh.cv.notify_all();
        }
        r
    }

    // (helper) run one popped event with the guard held.
    fn exec_event(sh: &Shared, guard: &mut MutexGuard<'_, Core>, ev: EventEntry) {
        debug_assert!(ev.at >= guard.now);
        guard.now = ev.at;
        guard.stats.events_executed += 1;
        let core: &mut Core = guard;
        let mut sched = Sched { core };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (ev.action)(&mut sched);
        }));
        if let Err(payload) = r {
            guard.poisoned = true;
            sh.cv.notify_all();
            std::panic::resume_unwind(payload);
        }
    }

    /// Spawn `n` tasks running `f(ctx)` and block until all finish, then
    /// drain any remaining events (letting in-flight hardware settle).
    /// Returns each task's result, indexed by rank.
    ///
    /// Virtual time persists across consecutive `run` calls.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(TaskCtx) -> T + Send + Sync,
    {
        assert!(n > 0, "need at least one task");
        let base = {
            let mut core = self.sh.core.lock();
            assert_eq!(core.live, 0, "nested/overlapping Sim::run is not supported");
            let base = core.tasks.len();
            for _ in 0..n {
                core.tasks.push(TaskState {
                    ready: false,
                    wait_reason: None,
                    alive: true,
                    running: true,
                });
            }
            core.live += n;
            core.runnable += n;
            base
        };
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, slot) in out.iter_mut().enumerate() {
                let sim = self.clone();
                let f = &f;
                handles.push(scope.spawn(move |_| {
                    let id = TaskId(base + rank);
                    let ctx = TaskCtx {
                        sim: sim.clone(),
                        id,
                        rank,
                    };
                    // A panicking task must release its accounting and
                    // poison the engine, or sibling tasks hang forever.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(ctx)));
                    match r {
                        Ok(v) => {
                            sim.task_exit(id);
                            *slot = Some(v);
                        }
                        Err(payload) => {
                            sim.task_abort(id);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }));
            }
            let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
            for h in handles {
                if let Err(payload) = h.join() {
                    panics.push(payload);
                }
            }
            if !panics.is_empty() {
                // Prefer the root-cause panic over the secondary
                // "simulation poisoned" panics of its siblings.
                let is_poison = |p: &Box<dyn std::any::Any + Send>| {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_default();
                    msg.contains("simulation poisoned")
                };
                let idx = panics.iter().position(|p| !is_poison(p)).unwrap_or(0);
                std::panic::resume_unwind(panics.swap_remove(idx));
            }
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        self.drain();
        out.into_iter().map(|o| o.expect("task result")).collect()
    }

    /// Execute every pending event (advancing time) until the heap is empty.
    pub fn drain(&self) {
        let mut guard = self.sh.core.lock();
        assert_eq!(
            guard.live, 0,
            "drain() while tasks are live would execute events out from under them"
        );
        while let Some(ev) = guard.pop_due() {
            Self::exec_event(&self.sh, &mut guard, ev);
        }
    }

    fn task_exit(&self, id: TaskId) {
        let mut guard = self.sh.core.lock();
        guard.tasks[id.0].alive = false;
        guard.tasks[id.0].running = false;
        guard.live -= 1;
        guard.runnable -= 1;
        // If everyone left is blocked, keep the world turning before we go.
        while guard.runnable == 0 && guard.live > 0 {
            match guard.pop_due() {
                Some(ev) => Self::exec_event(&self.sh, &mut guard, ev),
                None => {
                    guard.poisoned = true;
                    self.sh.cv.notify_all();
                    panic!("{}", guard.deadlock_dump())
                }
            }
        }
        self.sh.cv.notify_all();
    }

    /// A task died by panic: release its accounting and poison the
    /// engine so its siblings unwind instead of deadlocking.
    fn task_abort(&self, id: TaskId) {
        let mut guard = self.sh.core.lock();
        let st = &mut guard.tasks[id.0];
        st.alive = false;
        if st.running {
            st.running = false;
            guard.runnable -= 1;
        }
        guard.live -= 1;
        guard.poisoned = true;
        self.sh.cv.notify_all();
    }

    /// Block the calling task until it is woken. Must be entered with the
    /// engine lock held and the task registered as a waiter somewhere.
    fn block_current(&self, guard: &mut MutexGuard<'_, Core>, me: TaskId, reason: String) {
        guard.tasks[me.0].wait_reason = Some(reason);
        guard.tasks[me.0].running = false;
        guard.runnable -= 1;
        loop {
            if guard.poisoned {
                panic!("simulation poisoned by an earlier panic in another task");
            }
            if guard.tasks[me.0].ready {
                guard.tasks[me.0].ready = false;
                guard.tasks[me.0].wait_reason = None;
                // `runnable` was already incremented by the waker.
                self.sh.cv.notify_all();
                return;
            }
            if guard.runnable == 0 {
                match guard.pop_due() {
                    Some(ev) => {
                        guard.stats.time_advance_stalls += 1;
                        Self::exec_event(&self.sh, guard, ev);
                        if guard.pending_wakes {
                            guard.pending_wakes = false;
                            self.sh.cv.notify_all();
                        }
                    }
                    None => {
                        guard.poisoned = true;
                        self.sh.cv.notify_all();
                        panic!("{}", guard.deadlock_dump())
                    }
                }
            } else {
                self.sh.cv.wait(guard);
            }
        }
    }
}

enum WaiterKind {
    Task(TaskId),
    Action(Action),
}

struct CompWaiter {
    threshold: u64,
    kind: WaiterKind,
}

struct CompState {
    count: u64,
    waiters: Vec<CompWaiter>,
    /// Instant of the first signal (event-timestamping).
    first_at: Option<SimTime>,
}

/// A counting completion flag: hardware callbacks [`Sched::signal`] it,
/// tasks [`TaskCtx::wait_threshold`] on it. This is the moral equivalent
/// of a completion queue entry counter.
///
/// All mutation happens under the engine lock (enforced by the `Sched`
/// API), so there are no lost wake-ups.
#[derive(Clone)]
pub struct Completion {
    inner: Arc<Mutex<CompState>>,
}

impl Default for Completion {
    fn default() -> Self {
        Self::new()
    }
}

impl Completion {
    pub fn new() -> Completion {
        Completion {
            inner: Arc::new(Mutex::new(CompState {
                count: 0,
                waiters: Vec::new(),
                first_at: None,
            })),
        }
    }

    /// Racy read of the counter (fine for asserts and polling).
    pub fn peek(&self) -> u64 {
        self.inner.lock().count
    }

    /// True once the counter reached `threshold`.
    pub fn is_done(&self, threshold: u64) -> bool {
        self.peek() >= threshold
    }

    /// Virtual instant of the first signal, if any (event timestamps).
    pub fn time(&self) -> Option<SimTime> {
        self.inner.lock().first_at
    }
}

impl fmt::Debug for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Completion({})", self.peek())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicU64, Ordering as AO};

    #[test]
    fn advance_moves_clock() {
        let sim = Sim::new();
        let end = sim.run(1, |ctx| {
            ctx.advance(SimDuration::from_us(5));
            ctx.advance(SimDuration::from_us(7));
            ctx.now()
        });
        assert_eq!(end[0].as_us_f64(), 12.0);
    }

    #[test]
    fn two_tasks_interleave_in_time_order() {
        let sim = Sim::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        sim.run(2, move |ctx| {
            let me = ctx.id().0;
            // task0 steps 10us, task1 steps 4us: pure time interleaving.
            let step = if me == 0 { 10 } else { 4 };
            for i in 0..3 {
                ctx.advance(SimDuration::from_us(step));
                l2.lock().push((ctx.now().as_us_f64() as u64, me, i));
            }
        });
        let mut v = log.lock().clone();
        let sorted = {
            let mut s = v.clone();
            s.sort();
            s
        };
        v.sort();
        assert_eq!(v, sorted);
        // task1 wakes at 4, 8, 12; task0 at 10, 20, 30.
        let times: Vec<u64> = v.iter().map(|e| e.0).collect();
        assert_eq!(times, vec![4, 8, 10, 12, 20, 30]);
    }

    #[test]
    fn completion_wakes_waiter() {
        let sim = Sim::new();
        let c = Completion::new();
        let c2 = c.clone();
        let out = sim.run(2, move |ctx| {
            if ctx.id().0 == 0 {
                // waiter
                ctx.wait(&c2);
                ctx.now().as_us_f64() as u64
            } else {
                ctx.advance(SimDuration::from_us(9));
                ctx.with_sched(|s| s.signal(&c2, 1));
                0
            }
        });
        assert_eq!(out[0], 9);
    }

    #[test]
    fn deadline_wait_times_out_on_lost_completion() {
        // a completion that is never signalled: without the deadline
        // this would be the virtual-time deadlock panic; with it the
        // task gets a typed Err carrying the blocked-task dump
        let sim = Sim::new();
        let c = Completion::new();
        let out = sim.run(1, move |ctx| {
            let r = ctx.wait_threshold_deadline(&c, 1, SimDuration::from_us(50));
            (r, ctx.now().as_us_f64() as u64)
        });
        let (r, t) = out[0].clone();
        assert_eq!(t, 50, "deadline must advance the clock to exactly timeout");
        let dump = r.expect_err("lost completion must time out");
        assert!(dump.contains("events pending"), "dump was {dump:?}");
    }

    #[test]
    fn deadline_wait_succeeds_before_timeout() {
        let sim = Sim::new();
        let c = Completion::new();
        let c2 = c.clone();
        let out = sim.run(2, move |ctx| {
            if ctx.id().0 == 0 {
                let r = ctx.wait_threshold_deadline(&c2, 2, SimDuration::from_us(100));
                assert!(r.is_ok());
                ctx.now().as_us_f64() as u64
            } else {
                for _ in 0..2 {
                    ctx.advance(SimDuration::from_us(3));
                    ctx.with_sched(|s| s.signal(&c2, 1));
                }
                0
            }
        });
        assert_eq!(out[0], 6, "waiter must resume at signal time, not deadline");
    }

    #[test]
    fn deadline_wait_zero_timeout_is_plain_wait() {
        let sim = Sim::new();
        let c = Completion::new();
        let c2 = c.clone();
        let out = sim.run(2, move |ctx| {
            if ctx.id().0 == 0 {
                ctx.wait_threshold_deadline(&c2, 1, SimDuration::ZERO).unwrap();
                ctx.now().as_us_f64() as u64
            } else {
                ctx.advance(SimDuration::from_us(4));
                ctx.with_sched(|s| s.signal(&c2, 1));
                0
            }
        });
        assert_eq!(out[0], 4);
    }

    #[test]
    fn threshold_wait_counts() {
        let sim = Sim::new();
        let c = Completion::new();
        let c2 = c.clone();
        let out = sim.run(2, move |ctx| {
            if ctx.id().0 == 0 {
                ctx.wait_threshold(&c2, 3);
                ctx.now().as_us_f64() as u64
            } else {
                for _ in 0..3 {
                    ctx.advance(SimDuration::from_us(2));
                    ctx.with_sched(|s| s.signal(&c2, 1));
                }
                0
            }
        });
        assert_eq!(out[0], 6);
        assert!(c.is_done(3));
    }

    #[test]
    fn wait_on_already_satisfied_completion_returns_immediately() {
        let sim = Sim::new();
        let c = Completion::new();
        sim.with_sched(|s| s.signal(&c, 5));
        let t = sim.run(1, |ctx| {
            ctx.wait_threshold(&c, 5);
            ctx.now()
        });
        assert_eq!(t[0], SimTime::ZERO);
    }

    #[test]
    fn event_chains_execute_in_order() {
        let sim = Sim::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let c = Completion::new();
        let c2 = c.clone();
        sim.run(1, move |ctx| {
            let h = h.clone();
            let c = c2.clone();
            ctx.with_sched(move |s| {
                // chain: a -> b -> signal
                s.schedule_in(
                    SimDuration::from_us(1),
                    Box::new(move |s| {
                        h.fetch_add(1, AO::SeqCst);
                        let h2 = h.clone();
                        let c2 = c.clone();
                        s.schedule_in(
                            SimDuration::from_us(1),
                            Box::new(move |s| {
                                h2.fetch_add(1, AO::SeqCst);
                                s.signal(&c2, 1);
                            }),
                        );
                    }),
                );
            });
            ctx.wait(&c2);
            assert_eq!(ctx.now().as_us_f64(), 2.0);
        });
        assert_eq!(hits.load(AO::SeqCst), 2);
    }

    #[test]
    fn same_instant_events_fifo_by_seq() {
        let sim = Sim::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10u32 {
            let o = order.clone();
            sim.with_sched(|s| {
                s.schedule_in(
                    SimDuration::from_us(1),
                    Box::new(move |_| o.lock().push(i)),
                )
            });
        }
        sim.drain();
        assert_eq!(*order.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "virtual-time deadlock")]
    fn deadlock_is_detected() {
        let sim = Sim::new();
        let c = Completion::new();
        sim.run(1, move |ctx| {
            ctx.wait(&c); // nobody will ever signal
        });
    }

    #[test]
    fn time_persists_across_runs() {
        let sim = Sim::new();
        sim.run(1, |ctx| ctx.advance(SimDuration::from_us(3)));
        let t = sim.run(1, |ctx| {
            ctx.advance(SimDuration::from_us(4));
            ctx.now()
        });
        assert_eq!(t[0].as_us_f64(), 7.0);
    }

    #[test]
    fn run_returns_results_by_rank() {
        let sim = Sim::new();
        let out = sim.run(8, |ctx| ctx.id().0 * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn stats_count_events() {
        let sim = Sim::new();
        sim.run(1, |ctx| {
            ctx.advance(SimDuration::from_us(1));
            ctx.advance(SimDuration::from_us(1));
        });
        assert!(sim.stats().events_executed >= 2);
    }

    #[test]
    fn many_tasks_barrier_style_sync() {
        // All tasks advance different amounts then signal a shared counter;
        // one task waits for all. Stress the wake bookkeeping.
        let sim = Sim::new();
        let n = 16;
        let c = Completion::new();
        let c2 = c.clone();
        let out = sim.run(n, move |ctx| {
            let me = ctx.id().0 as u64;
            ctx.advance(SimDuration::from_us(me + 1));
            ctx.with_sched(|s| s.signal(&c2, 1));
            ctx.wait_threshold(&c2, n as u64);
            ctx.now().as_us_f64() as u64
        });
        // Everyone resumes when the slowest (16us) signals.
        assert!(out.iter().all(|&t| t == n as u64));
    }
}

#[cfg(test)]
mod continuation_tests {
    use super::*;
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicU64, Ordering as AO};
    use std::sync::Arc;

    #[test]
    fn call_on_fires_when_threshold_crossed() {
        let sim = Sim::new();
        let c = Completion::new();
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        let c2 = c.clone();
        sim.with_sched(move |s| {
            let h2 = h.clone();
            s.call_on(&c2, 3, Box::new(move |_| {
                h2.store(1, AO::SeqCst);
            }));
        });
        sim.with_sched(|s| s.signal(&c, 2));
        sim.drain();
        assert_eq!(hit.load(AO::SeqCst), 0, "fired below threshold");
        sim.with_sched(|s| s.signal(&c, 1));
        sim.drain();
        assert_eq!(hit.load(AO::SeqCst), 1);
    }

    #[test]
    fn call_on_already_satisfied_fires_immediately() {
        let sim = Sim::new();
        let c = Completion::new();
        sim.with_sched(|s| s.signal(&c, 5));
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        sim.with_sched(move |s| {
            s.call_on(&c, 2, Box::new(move |_| {
                h.store(7, AO::SeqCst);
            }));
        });
        sim.drain();
        assert_eq!(hit.load(AO::SeqCst), 7);
    }

    #[test]
    fn chained_continuations_model_a_pipeline() {
        // c1 -> schedule work -> signal c2 -> continuation on c2
        let sim = Sim::new();
        let c1 = Completion::new();
        let c2 = Completion::new();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        let c1b = c1.clone();
        let c2b = c2.clone();
        let c2d = c2.clone();
        sim.with_sched(move |s| {
            s.call_on(&c1b, 1, Box::new(move |s| {
                o1.lock().push("stage1");
                let c2c = c2b.clone();
                s.schedule_in(SimDuration::from_us(3), Box::new(move |s| s.signal(&c2c, 1)));
            }));
            s.call_on(&c2d, 1, Box::new(move |_| {
                o2.lock().push("stage2");
            }));
        });
        sim.with_sched(|s| s.signal(&c1, 1));
        sim.drain();
        assert_eq!(*order.lock(), vec!["stage1", "stage2"]);
        assert_eq!(sim.now().as_us_f64(), 3.0);
    }

    #[test]
    fn mixed_task_and_action_waiters_both_fire() {
        let sim = Sim::new();
        let c = Completion::new();
        let act = Arc::new(AtomicU64::new(0));
        let a2 = act.clone();
        let c2 = c.clone();
        let c3 = c.clone();
        let out = sim.run(2, move |ctx| {
            if ctx.id().0 == 0 {
                let a3 = a2.clone();
                ctx.with_sched(|s| {
                    s.call_on(&c2, 1, Box::new(move |_| {
                        a3.store(1, AO::SeqCst);
                    }));
                });
                ctx.wait(&c2); // also wait as a task
                ctx.now().as_us_f64()
            } else {
                ctx.advance(SimDuration::from_us(4));
                ctx.with_sched(|s| s.signal(&c3, 1));
                0.0
            }
        });
        assert_eq!(out[0], 4.0);
        assert_eq!(act.load(AO::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "boom")] // the ROOT cause is re-raised
    fn sibling_panic_poisons_blocked_tasks() {
        let sim = Sim::new();
        let c = Completion::new();
        sim.run(2, move |ctx| {
            if ctx.id().0 == 0 {
                // block forever; must be unblocked by the poison
                ctx.wait(&c);
            } else {
                ctx.advance(SimDuration::from_us(1));
                panic!("boom");
            }
        });
    }
}
