//! Bandwidth/latency resources with FIFO occupancy.
//!
//! A [`Link`] models one direction of a physical interconnect segment
//! (a PCIe lane bundle, the IB wire, a QPI hop, a DMA engine). Transfers
//! serialize on the link: a reservation occupies the link for
//! `bytes / bandwidth`, and the payload arrives `latency` after it left.
//! This is a cut-through model — latency does not hold the link.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of a link (serializable as part of a hardware profile).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Propagation + fixed per-transfer latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl LinkSpec {
    pub fn new(latency: SimDuration, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        LinkSpec { latency, bandwidth }
    }

    /// Unloaded time for `bytes` to fully arrive.
    pub fn unloaded(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::for_bytes(bytes, self.bandwidth)
    }
}

/// The granted schedule for a reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkGrant {
    /// When the transfer begins occupying the link.
    pub start: SimTime,
    /// When the link becomes free again (last byte pushed in).
    pub depart: SimTime,
    /// When the last byte arrives at the far end.
    pub arrive: SimTime,
}

/// A FIFO-serialized link. Wrap in the owning structure's lock; all
/// reservations must happen under the engine lock (via `Sched`/`with_sched`)
/// so queueing order matches virtual-time order.
#[derive(Debug)]
pub struct Link {
    spec: LinkSpec,
    next_free: SimTime,
    /// Total bytes ever pushed through (for utilization reporting).
    bytes_total: u64,
    /// Cumulative busy time.
    busy: SimDuration,
}

impl Link {
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            next_free: SimTime::ZERO,
            bytes_total: 0,
            busy: SimDuration::ZERO,
        }
    }

    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Reserve the link for `bytes` starting no earlier than `now`.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> LinkGrant {
        self.reserve_with(now, bytes, self.spec.bandwidth)
    }

    /// Reserve the link with an *effective* bandwidth below the native one
    /// (e.g. a PCIe P2P transfer capped by the chipset, paper Table III).
    /// The link stays occupied for the slower transfer's full duration.
    pub fn reserve_with(&mut self, now: SimTime, bytes: u64, effective_bw: f64) -> LinkGrant {
        assert!(
            effective_bw.is_finite() && effective_bw > 0.0,
            "effective bandwidth must be positive and finite, got {effective_bw}"
        );
        let bw = effective_bw.min(self.spec.bandwidth);
        let start = now.max(self.next_free);
        let occupy = SimDuration::for_bytes(bytes, bw);
        let depart = start + occupy;
        let arrive = depart + self.spec.latency;
        self.next_free = depart;
        self.bytes_total += bytes;
        self.busy += occupy;
        LinkGrant {
            start,
            depart,
            arrive,
        }
    }

    /// Earliest instant a new reservation could start.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(lat_us: u64, gbps: f64) -> Link {
        Link::new(LinkSpec::new(SimDuration::from_us(lat_us), gbps * 1e9))
    }

    #[test]
    fn unloaded_transfer_time() {
        let mut l = mk(1, 1.0); // 1us latency, 1 GB/s
        let g = l.reserve(SimTime::ZERO, 1_000_000); // 1 MB -> 1 ms occupy
        assert_eq!(g.start, SimTime::ZERO);
        assert_eq!(g.depart.as_us_f64(), 1000.0);
        assert_eq!(g.arrive.as_us_f64(), 1001.0);
    }

    #[test]
    fn back_to_back_transfers_queue_fifo() {
        let mut l = mk(1, 1.0);
        let a = l.reserve(SimTime::ZERO, 1_000_000);
        let b = l.reserve(SimTime::ZERO, 1_000_000);
        assert_eq!(b.start, a.depart);
        assert_eq!(b.depart.as_us_f64(), 2000.0);
        // Latency is per-transfer, not occupying the link.
        assert_eq!(b.arrive.as_us_f64(), 2001.0);
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut l = mk(0, 1.0);
        let a = l.reserve(SimTime::ZERO, 1000);
        let later = a.depart + SimDuration::from_us(50);
        let b = l.reserve(later, 1000);
        assert_eq!(b.start, later);
    }

    #[test]
    fn zero_byte_transfer_costs_only_latency() {
        let mut l = mk(2, 1.0);
        let g = l.reserve(SimTime::ZERO, 0);
        assert_eq!(g.start, g.depart);
        assert_eq!(g.arrive.as_us_f64(), 2.0);
    }

    #[test]
    fn accounting_accumulates() {
        let mut l = mk(0, 1.0);
        l.reserve(SimTime::ZERO, 500);
        l.reserve(SimTime::ZERO, 1500);
        assert_eq!(l.bytes_total(), 2000);
        assert_eq!(l.busy_time(), SimDuration::for_bytes(2000, 1e9));
    }

    #[test]
    fn next_free_monotonic_under_random_loads() {
        let mut l = mk(1, 6.4);
        let mut now = SimTime::ZERO;
        let mut prev_free = SimTime::ZERO;
        for i in 0..100u64 {
            now += SimDuration::from_ns(i * 37 % 900);
            let g = l.reserve(now, (i * 7919) % 100_000);
            assert!(g.start >= now);
            assert!(g.depart >= g.start);
            assert!(g.arrive >= g.depart);
            assert!(l.next_free() >= prev_free, "next_free regressed");
            prev_free = l.next_free();
        }
    }
}
