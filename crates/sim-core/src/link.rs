//! Bandwidth/latency resources with FIFO occupancy.
//!
//! A [`Link`] models one direction of a physical interconnect segment
//! (a PCIe lane bundle, the IB wire, a QPI hop, a DMA engine). Transfers
//! serialize on the link: a reservation occupies the link for
//! `bytes / bandwidth`, and the payload arrives `latency` after it left.
//! This is a cut-through model — latency does not hold the link.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static description of a link (serializable as part of a hardware profile).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Propagation + fixed per-transfer latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl LinkSpec {
    pub fn new(latency: SimDuration, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        LinkSpec { latency, bandwidth }
    }

    /// Unloaded time for `bytes` to fully arrive.
    pub fn unloaded(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::for_bytes(bytes, self.bandwidth)
    }
}

/// The granted schedule for a reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkGrant {
    /// When the transfer begins occupying the link.
    pub start: SimTime,
    /// When the link becomes free again (last byte pushed in).
    pub depart: SimTime,
    /// When the last byte arrives at the far end.
    pub arrive: SimTime,
}

/// One reservation's snapshot, delivered to a link observer (see
/// [`Link::set_observer`]). Carries both the per-transfer schedule and
/// the link's cumulative accounting so a recorder never needs to call
/// back into the (locked) link.
#[derive(Clone, Copy, Debug)]
pub struct LinkEvent {
    /// When the transfer begins occupying the link.
    pub start: SimTime,
    /// When the link becomes free again.
    pub depart: SimTime,
    /// When the last byte arrives at the far end.
    pub arrive: SimTime,
    /// Payload size of this reservation.
    pub bytes: u64,
    /// Reservations (including this one) still occupying or queued on
    /// the link when this one was requested — >1 means the transfer had
    /// to wait.
    pub queue_depth: u32,
    /// Cumulative bytes through the link, including this reservation.
    pub bytes_total: u64,
    /// Cumulative busy time, including this reservation.
    pub busy_total: SimDuration,
}

/// Callback fired on every [`Link`] reservation.
pub type LinkObserver = Box<dyn FnMut(&LinkEvent) + Send>;

/// A degradation or blackout window on a link, for fault injection.
///
/// Transfers whose (queue-adjusted) start falls inside `[start, end)`
/// run at `bandwidth × bw_multiplier`; a multiplier of `0.0` is a
/// blackout — the transfer cannot start until the window ends. The
/// multiplier applies to the whole transfer (a transfer straddling the
/// window edge is not re-rated mid-flight — a deliberate model
/// simplification that keeps grants single-segment).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaultWindow {
    pub start: SimTime,
    pub end: SimTime,
    /// Bandwidth multiplier in `[0.0, 1.0]`; `0.0` = full outage.
    pub bw_multiplier: f64,
}

/// A FIFO-serialized link. Wrap in the owning structure's lock; all
/// reservations must happen under the engine lock (via `Sched`/`with_sched`)
/// so queueing order matches virtual-time order.
pub struct Link {
    spec: LinkSpec,
    next_free: SimTime,
    /// Total bytes ever pushed through (for utilization reporting).
    bytes_total: u64,
    /// Cumulative busy time.
    busy: SimDuration,
    /// Departure times of reservations not yet drained at the most
    /// recent reservation's request time (the instantaneous queue).
    pending: VecDeque<SimTime>,
    observer: Option<LinkObserver>,
    /// Fault-injection windows (empty in healthy operation — the hot
    /// path only pays an `is_empty` check).
    fault_windows: Vec<LinkFaultWindow>,
}

impl Link {
    pub fn new(spec: LinkSpec) -> Self {
        Link {
            spec,
            next_free: SimTime::ZERO,
            bytes_total: 0,
            busy: SimDuration::ZERO,
            pending: VecDeque::new(),
            observer: None,
            fault_windows: Vec::new(),
        }
    }

    /// Install a degradation/blackout window (fault injection). Windows
    /// are consulted in insertion order; overlapping degradation windows
    /// compound multiplicatively.
    pub fn add_fault_window(&mut self, w: LinkFaultWindow) {
        assert!(
            (0.0..=1.0).contains(&w.bw_multiplier),
            "bw_multiplier must be in [0, 1], got {}",
            w.bw_multiplier
        );
        assert!(w.end > w.start, "empty fault window");
        self.fault_windows.push(w);
    }

    /// Install a per-reservation observer (at most one; the last call
    /// wins). Fired synchronously inside `reserve_with`, under whatever
    /// lock wraps the link — observers must not call back into it.
    pub fn set_observer(&mut self, f: LinkObserver) {
        self.observer = Some(f);
    }

    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Reserve the link for `bytes` starting no earlier than `now`.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> LinkGrant {
        self.reserve_with(now, bytes, self.spec.bandwidth)
    }

    /// Reserve the link with an *effective* bandwidth below the native one
    /// (e.g. a PCIe P2P transfer capped by the chipset, paper Table III).
    /// The link stays occupied for the slower transfer's full duration.
    pub fn reserve_with(&mut self, now: SimTime, bytes: u64, effective_bw: f64) -> LinkGrant {
        assert!(
            effective_bw.is_finite() && effective_bw > 0.0,
            "effective bandwidth must be positive and finite, got {effective_bw}"
        );
        let mut bw = effective_bw.min(self.spec.bandwidth);
        let mut start = now.max(self.next_free);
        if !self.fault_windows.is_empty() {
            // Blackouts first: push the start past every outage covering
            // it (repeat — the new start may land in a later window).
            let mut moved = true;
            while moved {
                moved = false;
                for w in &self.fault_windows {
                    if w.bw_multiplier == 0.0 && start >= w.start && start < w.end {
                        start = w.end;
                        moved = true;
                    }
                }
            }
            // Then degrade: every non-blackout window covering the start
            // scales the whole transfer's bandwidth.
            for w in &self.fault_windows {
                if w.bw_multiplier > 0.0 && start >= w.start && start < w.end {
                    bw *= w.bw_multiplier;
                }
            }
        }
        let occupy = SimDuration::for_bytes(bytes, bw);
        let depart = start + occupy;
        let arrive = depart + self.spec.latency;
        self.next_free = depart;
        self.bytes_total += bytes;
        self.busy += occupy;
        while self.pending.front().is_some_and(|&d| d <= now) {
            self.pending.pop_front();
        }
        self.pending.push_back(depart);
        if let Some(obs) = self.observer.as_mut() {
            obs(&LinkEvent {
                start,
                depart,
                arrive,
                bytes,
                queue_depth: self.pending.len() as u32,
                bytes_total: self.bytes_total,
                busy_total: self.busy,
            });
        }
        LinkGrant {
            start,
            depart,
            arrive,
        }
    }

    /// Earliest instant a new reservation could start.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("spec", &self.spec)
            .field("next_free", &self.next_free)
            .field("bytes_total", &self.bytes_total)
            .field("busy", &self.busy)
            .field("queued", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(lat_us: u64, gbps: f64) -> Link {
        Link::new(LinkSpec::new(SimDuration::from_us(lat_us), gbps * 1e9))
    }

    #[test]
    fn unloaded_transfer_time() {
        let mut l = mk(1, 1.0); // 1us latency, 1 GB/s
        let g = l.reserve(SimTime::ZERO, 1_000_000); // 1 MB -> 1 ms occupy
        assert_eq!(g.start, SimTime::ZERO);
        assert_eq!(g.depart.as_us_f64(), 1000.0);
        assert_eq!(g.arrive.as_us_f64(), 1001.0);
    }

    #[test]
    fn back_to_back_transfers_queue_fifo() {
        let mut l = mk(1, 1.0);
        let a = l.reserve(SimTime::ZERO, 1_000_000);
        let b = l.reserve(SimTime::ZERO, 1_000_000);
        assert_eq!(b.start, a.depart);
        assert_eq!(b.depart.as_us_f64(), 2000.0);
        // Latency is per-transfer, not occupying the link.
        assert_eq!(b.arrive.as_us_f64(), 2001.0);
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut l = mk(0, 1.0);
        let a = l.reserve(SimTime::ZERO, 1000);
        let later = a.depart + SimDuration::from_us(50);
        let b = l.reserve(later, 1000);
        assert_eq!(b.start, later);
    }

    #[test]
    fn zero_byte_transfer_costs_only_latency() {
        let mut l = mk(2, 1.0);
        let g = l.reserve(SimTime::ZERO, 0);
        assert_eq!(g.start, g.depart);
        assert_eq!(g.arrive.as_us_f64(), 2.0);
    }

    #[test]
    fn accounting_accumulates() {
        let mut l = mk(0, 1.0);
        l.reserve(SimTime::ZERO, 500);
        l.reserve(SimTime::ZERO, 1500);
        assert_eq!(l.bytes_total(), 2000);
        assert_eq!(l.busy_time(), SimDuration::for_bytes(2000, 1e9));
    }

    #[test]
    fn observer_sees_every_reservation_with_totals() {
        use std::sync::{Arc, Mutex};
        let mut l = mk(1, 1.0);
        let seen: Arc<Mutex<Vec<LinkEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        l.set_observer(Box::new(move |ev| seen2.lock().unwrap().push(*ev)));
        let a = l.reserve(SimTime::ZERO, 1000);
        let b = l.reserve(SimTime::ZERO, 2000);
        let evs = seen.lock().unwrap().clone();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].start, a.start);
        assert_eq!(evs[0].bytes, 1000);
        assert_eq!(evs[0].bytes_total, 1000);
        assert_eq!(evs[1].depart, b.depart);
        assert_eq!(evs[1].bytes_total, 3000);
        assert_eq!(evs[1].busy_total, SimDuration::for_bytes(3000, 1e9));
    }

    #[test]
    fn queue_depth_counts_overlapping_reservations() {
        use std::sync::{Arc, Mutex};
        let mut l = mk(0, 1.0);
        let depths: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let d2 = depths.clone();
        l.set_observer(Box::new(move |ev| d2.lock().unwrap().push(ev.queue_depth)));
        // three back-to-back reservations at t=0: each queues behind the
        // previous ones, so the depth climbs 1, 2, 3
        for _ in 0..3 {
            l.reserve(SimTime::ZERO, 1_000_000);
        }
        // after an idle gap the queue has drained back to just the new one
        let later = l.next_free() + SimDuration::from_us(10);
        l.reserve(later, 1000);
        assert_eq!(*depths.lock().unwrap(), vec![1, 2, 3, 1]);
    }

    #[test]
    fn degradation_window_scales_bandwidth_for_covered_starts() {
        let mut l = mk(0, 1.0); // 1 GB/s
        l.add_fault_window(LinkFaultWindow {
            start: SimTime::ZERO,
            end: SimTime(2_000_000_000), // 2 ms in ps
            bw_multiplier: 0.5,
        });
        // starts inside the window: half bandwidth
        let a = l.reserve(SimTime::ZERO, 1_000_000); // 1 MB -> 2 ms at 0.5 GB/s
        assert_eq!(a.depart.as_us_f64(), 2000.0);
        // starts after the window: full bandwidth again
        let b = l.reserve(a.depart + SimDuration::from_us(100), 1_000_000);
        assert_eq!((b.depart - b.start), SimDuration::for_bytes(1_000_000, 1e9));
    }

    #[test]
    fn blackout_window_defers_the_start() {
        let mut l = mk(1, 1.0);
        l.add_fault_window(LinkFaultWindow {
            start: SimTime::ZERO,
            end: SimTime(500_000_000), // 500 us outage
            bw_multiplier: 0.0,
        });
        let g = l.reserve(SimTime::ZERO, 1000);
        assert_eq!(g.start.as_us_f64(), 500.0, "must wait out the blackout");
        // a transfer requested after the outage is unaffected
        let h = l.reserve(SimTime(600_000_000), 1000);
        assert_eq!(h.start.as_us_f64(), 600.0);
    }

    #[test]
    fn chained_blackouts_push_past_every_window() {
        let mut l = mk(0, 1.0);
        l.add_fault_window(LinkFaultWindow {
            start: SimTime::ZERO,
            end: SimTime(100_000_000),
            bw_multiplier: 0.0,
        });
        l.add_fault_window(LinkFaultWindow {
            start: SimTime(100_000_000),
            end: SimTime(300_000_000),
            bw_multiplier: 0.0,
        });
        let g = l.reserve(SimTime::ZERO, 0);
        assert_eq!(g.start.as_us_f64(), 300.0);
    }

    #[test]
    fn no_windows_means_identical_schedule() {
        let mut a = mk(1, 6.4);
        let mut b = mk(1, 6.4);
        b.add_fault_window(LinkFaultWindow {
            start: SimTime(1_000_000_000_000),
            end: SimTime(2_000_000_000_000),
            bw_multiplier: 0.25,
        });
        // reservations entirely before the window see the same grants
        for i in 0..10u64 {
            let ga = a.reserve(SimTime(i * 1000), 10_000 + i);
            let gb = b.reserve(SimTime(i * 1000), 10_000 + i);
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn next_free_monotonic_under_random_loads() {
        let mut l = mk(1, 6.4);
        let mut now = SimTime::ZERO;
        let mut prev_free = SimTime::ZERO;
        for i in 0..100u64 {
            now += SimDuration::from_ns(i * 37 % 900);
            let g = l.reserve(now, (i * 7919) % 100_000);
            assert!(g.start >= now);
            assert!(g.depart >= g.start);
            assert!(g.arrive >= g.depart);
            assert!(l.next_free() >= prev_free, "next_free regressed");
            prev_free = l.next_free();
        }
    }
}
