//! # sim-core — deterministic virtual-time simulation engine
//!
//! The foundation of the GDR-aware OpenSHMEM reproduction: a conservative
//! discrete-event engine where processing elements run as real OS threads
//! against a shared **virtual clock**, and hardware (DMA engines, NICs,
//! proxies) runs as chains of scheduled events.
//!
//! ## Quick tour
//!
//! ```
//! use sim_core::{Sim, SimDuration, Completion};
//!
//! let sim = Sim::new();
//! let done = Completion::new();
//! let done2 = done.clone();
//! let times = sim.run(2, move |ctx| {
//!     if ctx.id().0 == 0 {
//!         ctx.wait(&done2);           // block until signalled
//!     } else {
//!         ctx.advance(SimDuration::from_us(3));   // "compute" 3us
//!         ctx.with_sched(|s| s.signal(&done2, 1));
//!     }
//!     ctx.now()
//! });
//! assert_eq!(times[0].as_us_f64(), 3.0);
//! ```
//!
//! See the crate-level modules:
//! - [`time`] — picosecond-resolution [`SimTime`]/[`SimDuration`];
//! - [`engine`] — [`Sim`], [`TaskCtx`], [`Sched`], [`Completion`];
//! - [`link`] — FIFO bandwidth/latency resources.

pub mod engine;
pub mod link;
pub mod time;

pub use engine::{Action, Completion, EngineStats, Sched, Sim, TaskCtx, TaskId};
pub use link::{Link, LinkEvent, LinkFaultWindow, LinkGrant, LinkObserver, LinkSpec};
pub use time::{SimDuration, SimTime, PS_PER_MS, PS_PER_NS, PS_PER_S, PS_PER_US};
