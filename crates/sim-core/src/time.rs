//! Virtual time representation.
//!
//! Simulated time is measured in integer **picoseconds**. Picosecond
//! resolution keeps bandwidth arithmetic exact enough that byte-level
//! transfer times on multi-GB/s links do not collapse to zero, while a
//! `u64` still covers ~213 days of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in picoseconds since start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    /// Duration elapsed since `earlier`; saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    #[inline]
    pub fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    #[inline]
    pub fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    #[inline]
    pub fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }
    /// Build a duration from a floating-point count of microseconds.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }
    /// Build a duration from a floating-point count of nanoseconds.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }
    /// Time to move `bytes` across a link of `bytes_per_sec` bandwidth.
    ///
    /// Bandwidths in this codebase are quoted in bytes/second (the paper
    /// quotes MB/s; 1 MB/s == 1e6 B/s there, matching Mellanox convention).
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        debug_assert!(bytes_per_sec > 0.0, "non-positive bandwidth");
        SimDuration(((bytes as f64) * (PS_PER_S as f64) / bytes_per_sec).round() as u64)
    }
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_us(3).as_ps(), 3 * PS_PER_US);
        assert_eq!(SimDuration::from_ns(5).as_ps(), 5 * PS_PER_NS);
        assert_eq!(SimDuration::from_ms(2).as_ps(), 2 * PS_PER_MS);
        assert_eq!(SimDuration::from_secs(1).as_ps(), PS_PER_S);
        assert!((SimDuration::from_us_f64(1.5).as_us_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_math() {
        // 6397 MB/s FDR: 4 MiB should take ~0.6556 ms.
        let d = SimDuration::for_bytes(4 << 20, 6397e6);
        let ms = d.as_ms_f64();
        assert!((ms - 0.6556).abs() < 0.01, "got {ms}");
        // 1 byte on a 1 B/s link is one second.
        assert_eq!(SimDuration::for_bytes(1, 1.0), SimDuration::from_secs(1));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_us(10);
        let t2 = t + SimDuration::from_us(5);
        assert_eq!(t2 - t, SimDuration::from_us(5));
        assert_eq!(t2.since(t), SimDuration::from_us(5));
        assert_eq!(t.since(t2), SimDuration::ZERO); // saturating
    }

    #[test]
    fn duration_ops() {
        let a = SimDuration::from_us(4);
        let b = SimDuration::from_us(6);
        assert_eq!(a + b, SimDuration::from_us(10));
        assert_eq!(b - a, SimDuration::from_us(2));
        assert_eq!(a * 3, SimDuration::from_us(12));
        assert_eq!(b / 2, SimDuration::from_us(3));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a), SimDuration::from_us(2));
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total, SimDuration::from_us(14));
    }

    #[test]
    fn display_formats_microseconds() {
        let t = SimTime::ZERO + SimDuration::from_ns(2500);
        assert_eq!(format!("{t}"), "2.500us");
    }
}
