//! True one-sidedness: the paper's central claim (§III, Fig. 10).
//!
//! With the Enhanced-GDR design, a put's remote completion time must not
//! depend on what the target PE is doing. With the Host-Pipeline
//! baseline, the final H2D copy waits for the target to enter the
//! library, so communication time tracks target compute time.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine, SimDuration};

/// Source puts `len` bytes D-D inter-node while the target computes for
/// `target_busy_us`; returns the source-observed put+quiet time in us.
fn comm_time(design: Design, len: u64, target_busy_us: u64) -> f64 {
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), RuntimeConfig::tuned(design));
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(len + 64, Domain::Gpu);
        let src = pe.malloc_dev(len + 64);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let t0 = pe.now();
            pe.putmem(dest, src, len, 1);
            pe.quiet();
            let dt = (pe.now() - t0).as_us_f64();
            pe.barrier_all();
            dt
        } else {
            // target: busy computing, then re-enters the library
            pe.compute(SimDuration::from_us(target_busy_us));
            pe.barrier_all();
            0.0
        }
    });
    out[0]
}

#[test]
fn enhanced_gdr_put_is_independent_of_target_compute() {
    for len in [8 * 1024, 1 << 20] {
        let idle = comm_time(Design::EnhancedGdr, len, 0);
        let busy = comm_time(Design::EnhancedGdr, len, 400);
        let ratio = busy / idle;
        assert!(
            ratio < 1.05,
            "{len}B: comm time grew with target compute ({idle:.2} -> {busy:.2}us)"
        );
    }
}

#[test]
fn host_pipeline_put_blocks_on_target_compute() {
    for len in [8 * 1024, 1 << 20] {
        let idle = comm_time(Design::HostPipeline, len, 0);
        let busy = comm_time(Design::HostPipeline, len, 400);
        // The final H2D waits for the target to stop computing: total
        // time must exceed the target's 400us busy period, and grow
        // substantially relative to the idle-target case.
        assert!(
            busy > 400.0 && busy > idle + 150.0,
            "{len}B: baseline should track target compute ({idle:.2} -> {busy:.2}us)"
        );
        assert!(idle < 400.0, "idle baseline already slower than compute");
    }
}

#[test]
fn enhanced_target_never_progresses_anything() {
    // The target's progress counter stays zero under Enhanced-GDR.
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let stats = m.run(|pe| {
        let dest = pe.shmalloc(1 << 20, Domain::Gpu);
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(1 << 20);
            pe.putmem(dest, src, 1 << 20, 1); // pipeline-GDR-write path
            pe.quiet();
        }
        pe.barrier_all();
        pe.stats().progressed
    });
    assert_eq!(stats[1], 0, "Enhanced-GDR target performed progress work");
}

#[test]
fn host_pipeline_target_does_progress_work() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::HostPipeline),
    );
    let stats = m.run(|pe| {
        let dest = pe.shmalloc(1 << 20, Domain::Gpu);
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(1 << 20);
            pe.putmem(dest, src, 1 << 20, 1);
            pe.quiet();
        }
        pe.barrier_all();
        pe.stats().progressed
    });
    assert!(stats[1] > 0, "baseline target should have progressed chunks");
}

#[test]
fn overlap_fraction_is_high_for_enhanced_gdr() {
    // Source issues a put then computes; total time should be ~max of
    // the two, not the sum (compute/communication overlap).
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let out = m.run(|pe| {
        let dest = pe.shmalloc(1 << 20, Domain::Gpu);
        let src = pe.malloc_dev(1 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // measure comm alone
            let t0 = pe.now();
            pe.putmem(dest, src, 1 << 20, 1);
            pe.quiet();
            let comm = pe.now() - t0;
            pe.barrier_all();
            // now comm + equal-length compute, overlapped
            let t1 = pe.now();
            pe.putmem(dest, src, 1 << 20, 1);
            pe.compute(comm);
            pe.quiet();
            let both = pe.now() - t1;
            pe.barrier_all();
            (comm.as_us_f64(), both.as_us_f64())
        } else {
            pe.barrier_all();
            pe.barrier_all();
            (0.0, 0.0)
        }
    });
    let (comm, both) = out[0];
    // Put returns once the last staging copy is done (a fraction of the
    // total quiet time), so the network portion overlaps the compute:
    // the combined run must be measurably cheaper than running the two
    // phases back-to-back (2x comm).
    let savings = 2.0 * comm - both;
    assert!(
        savings > 0.2 * comm,
        "poor overlap: comm={comm:.1}us comm+compute={both:.1}us savings={savings:.1}us"
    );
}

#[test]
fn service_thread_restores_baseline_overlap() {
    // paper §III: the reference implementation's service thread would
    // progress communication during target compute — at a CPU cost.
    let mut cfg = RuntimeConfig::tuned(Design::HostPipeline);
    cfg.service_thread = true;
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let out = m.run(|pe| {
        let dest = pe.shmalloc(16 << 10, Domain::Gpu);
        let src = pe.malloc_dev(16 << 10);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let t0 = pe.now();
            pe.putmem(dest, src, 8 << 10, 1);
            pe.quiet();
            let dt = (pe.now() - t0).as_us_f64();
            pe.barrier_all();
            dt
        } else {
            pe.compute(SimDuration::from_us(400));
            pe.barrier_all();
            0.0
        }
    });
    assert!(
        out[0] < 60.0,
        "service thread should decouple comm from target compute, got {:.1}us",
        out[0]
    );
}
