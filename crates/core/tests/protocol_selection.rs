//! Protocol-selection assertions: the hybrid design tables of §III must
//! route each operation to the protocol the paper describes.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, PlacementPolicy, Protocol, RuntimeConfig, ShmemMachine};

/// Run a single put (src domain -> dst domain) and return pe0's protocol
/// counter snapshot.
fn run_put(
    spec: ClusterSpec,
    cfg: RuntimeConfig,
    src_gpu: bool,
    dst_domain: Domain,
    len: u64,
) -> shmem_gdr::PeStats {
    let m = ShmemMachine::build(spec, cfg);
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(len + 64, dst_domain);
        if pe.my_pe() == 0 {
            let src = if src_gpu {
                pe.malloc_dev(len + 64)
            } else {
                pe.malloc_host(len + 64)
            };
            pe.putmem(dest, src, len, 1);
            pe.quiet();
        }
        pe.barrier_all();
        pe.stats()
    });
    out[0].clone()
}

fn run_get(
    spec: ClusterSpec,
    cfg: RuntimeConfig,
    src_domain: Domain,
    dst_gpu: bool,
    len: u64,
) -> shmem_gdr::PeStats {
    let m = ShmemMachine::build(spec, cfg);
    let out = m.run(move |pe| {
        let source = pe.shmalloc(len + 64, src_domain);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dst = if dst_gpu {
                pe.malloc_dev(len + 64)
            } else {
                pe.malloc_host(len + 64)
            };
            pe.getmem(dst, source, len, 1);
        }
        pe.barrier_all();
        pe.stats()
    });
    out[0].clone()
}

fn enhanced() -> RuntimeConfig {
    RuntimeConfig::tuned(Design::EnhancedGdr)
}

#[test]
fn intranode_small_puts_use_loopback_gdr() {
    let cfg = enhanced();
    // H-D and D-H loopback up to 16K; D-D uses the least threshold (2K)
    for (src_gpu, dst, len) in [
        (false, Domain::Gpu, 4096),
        (true, Domain::Gpu, 1024),
        (true, Domain::Host, 4096),
    ] {
        let st = run_put(ClusterSpec::intranode_pair(), cfg, src_gpu, dst, len);
        assert_eq!(st.of(Protocol::LoopbackGdr), 1, "src_gpu={src_gpu} dst={dst}");
    }
    // D-D above the least threshold falls back to IPC
    let st = run_put(ClusterSpec::intranode_pair(), cfg, true, Domain::Gpu, 4096);
    assert_eq!(st.of(Protocol::IpcCopy), 1);
}

#[test]
fn intranode_large_puts_switch_to_ipc() {
    let cfg = enhanced();
    // beyond loopback_put_limit (16K): CUDA copy paths
    let st = run_put(ClusterSpec::intranode_pair(), cfg, true, Domain::Gpu, 64 << 10);
    assert_eq!(st.of(Protocol::IpcCopy), 1);
    assert_eq!(st.of(Protocol::LoopbackGdr), 0);
}

#[test]
fn intranode_threshold_boundary_is_inclusive() {
    let cfg = enhanced();
    // H-D boundary: loopback_put_limit
    let at = run_put(
        ClusterSpec::intranode_pair(),
        cfg,
        false,
        Domain::Gpu,
        cfg.loopback_put_limit,
    );
    assert_eq!(at.of(Protocol::LoopbackGdr), 1);
    let above = run_put(
        ClusterSpec::intranode_pair(),
        cfg,
        false,
        Domain::Gpu,
        cfg.loopback_put_limit + 1,
    );
    assert_eq!(above.of(Protocol::IpcCopy), 1);
    // D-D boundary: the least threshold
    let at = run_put(
        ClusterSpec::intranode_pair(),
        cfg,
        true,
        Domain::Gpu,
        cfg.loopback_dd_limit,
    );
    assert_eq!(at.of(Protocol::LoopbackGdr), 1);
    let above = run_put(
        ClusterSpec::intranode_pair(),
        cfg,
        true,
        Domain::Gpu,
        cfg.loopback_dd_limit + 1,
    );
    assert_eq!(above.of(Protocol::IpcCopy), 1);
}

#[test]
fn internode_small_puts_use_direct_gdr() {
    let cfg = enhanced();
    for (src_gpu, dst) in [(false, Domain::Gpu), (true, Domain::Gpu), (true, Domain::Host)] {
        let st = run_put(ClusterSpec::internode_pair(), cfg, src_gpu, dst, 2048);
        assert_eq!(st.of(Protocol::DirectGdr), 1, "src_gpu={src_gpu} dst={dst}");
    }
}

#[test]
fn internode_large_gpu_source_puts_use_pipeline_gdr_write() {
    let cfg = enhanced();
    for dst in [Domain::Gpu, Domain::Host] {
        let st = run_put(ClusterSpec::internode_pair(), cfg, true, dst, 2 << 20);
        assert_eq!(st.of(Protocol::PipelineGdrWrite), 1, "dst={dst}");
    }
}

#[test]
fn internode_large_host_to_gpu_put_stays_direct_when_intra_socket() {
    // H-D put: gather at wire speed, scatter at full intra-socket P2P
    // write speed -> direct GDR for every size.
    let cfg = enhanced();
    let st = run_put(ClusterSpec::internode_pair(), cfg, false, Domain::Gpu, 2 << 20);
    assert_eq!(st.of(Protocol::DirectGdr), 1);
}

#[test]
fn cross_socket_large_puts_divert_to_proxy() {
    let cfg = enhanced();
    let spec = ClusterSpec::internode_pair().with_placement(PlacementPolicy::CrossSocket);
    let st = run_put(spec, cfg, true, Domain::Gpu, 2 << 20);
    assert_eq!(st.of(Protocol::ProxyPipeline), 1);
}

#[test]
fn internode_h_h_uses_plain_host_rdma() {
    let cfg = enhanced();
    let st = run_put(ClusterSpec::internode_pair(), cfg, false, Domain::Host, 2 << 20);
    assert_eq!(st.of(Protocol::HostRdma), 1);
}

#[test]
fn internode_small_gets_use_direct_gdr() {
    let cfg = enhanced();
    let st = run_get(ClusterSpec::internode_pair(), cfg, Domain::Gpu, true, 4096);
    assert_eq!(st.of(Protocol::DirectGdr), 1);
}

#[test]
fn internode_large_gets_from_gpu_use_proxy() {
    let cfg = enhanced();
    let st = run_get(ClusterSpec::internode_pair(), cfg, Domain::Gpu, true, 2 << 20);
    assert_eq!(st.of(Protocol::ProxyPipeline), 1);
}

#[test]
fn proxy_disable_falls_back_to_chunked_direct_reads() {
    let mut cfg = enhanced();
    cfg.proxy_enabled = false;
    let st = run_get(ClusterSpec::internode_pair(), cfg, Domain::Gpu, true, 2 << 20);
    assert_eq!(st.of(Protocol::ProxyPipeline), 0);
    assert_eq!(st.of(Protocol::DirectGdr), 1);
}

#[test]
fn internode_gets_from_host_are_direct_any_size() {
    let cfg = enhanced();
    let st = run_get(ClusterSpec::internode_pair(), cfg, Domain::Host, true, 4 << 20);
    assert_eq!(st.of(Protocol::DirectGdr), 1);
}

#[test]
fn proxy_counters_account_served_traffic() {
    let cfg = enhanced();
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let m2 = m.clone();
    m.run(move |pe| {
        let source = pe.shmalloc(2 << 20, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dst = pe.malloc_dev(2 << 20);
            pe.getmem(dst, source, 2 << 20, 1);
        }
        pe.barrier_all();
    });
    use std::sync::atomic::Ordering;
    let node1 = pcie_sim::NodeId(1);
    assert_eq!(m2.proxy(node1).gets_served.load(Ordering::Relaxed), 1);
    assert_eq!(m2.proxy(node1).bytes.load(Ordering::Relaxed), 2 << 20);
}

#[test]
fn baseline_intranode_uses_ipc_and_two_copy_paths() {
    let cfg = RuntimeConfig::tuned(Design::HostPipeline);
    // H-D put: single IPC copy
    let st = run_put(ClusterSpec::intranode_pair(), cfg, false, Domain::Gpu, 4096);
    assert_eq!(st.of(Protocol::IpcCopy), 1);
    // D-H put: the unoptimized two-copy staged path
    let st = run_put(ClusterSpec::intranode_pair(), cfg, true, Domain::Host, 4096);
    assert_eq!(st.of(Protocol::TwoCopyStaged), 1);
    // H-D get (remote device -> local host): two-copy
    let st = run_get(ClusterSpec::intranode_pair(), cfg, Domain::Gpu, false, 4096);
    assert_eq!(st.of(Protocol::TwoCopyStaged), 1);
}

#[test]
fn baseline_internode_dd_uses_host_pipeline() {
    let cfg = RuntimeConfig::tuned(Design::HostPipeline);
    let st = run_put(ClusterSpec::internode_pair(), cfg, true, Domain::Gpu, 4096);
    assert_eq!(st.of(Protocol::HostPipelineStaged), 1);
}

#[test]
fn registration_cache_makes_second_private_put_cheaper() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let out = m.run(|pe| {
        let dest = pe.shmalloc(8192, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_host(8192); // never used before: cold
            let t0 = pe.now();
            pe.putmem(dest, src, 4096, 1);
            pe.quiet();
            let cold = pe.now() - t0;
            let t1 = pe.now();
            pe.putmem(dest, src, 4096, 1);
            pe.quiet();
            let warm = pe.now() - t1;
            pe.barrier_all();
            (cold.as_us_f64(), warm.as_us_f64())
        } else {
            pe.barrier_all();
            (0.0, 0.0)
        }
    });
    let (cold, warm) = out[0];
    assert!(
        cold > warm + 20.0,
        "registration cache: cold {cold:.2}us should exceed warm {warm:.2}us by the reg cost"
    );
}

#[test]
fn nbi_and_signal_routing_matches_blocking_dispatch() {
    // the regression this guards: do_put_nbi / do_put_signal previously
    // carried private copies of the routing table and drifted (D-D
    // intranode used the wrong threshold). Protocol counters of the nbi
    // and fused forms must match the blocking put's choice everywhere.
    let cfg = enhanced();
    // D-D intranode just above the least threshold: blocking picks IPC
    let st = run_put(
        ClusterSpec::intranode_pair(),
        cfg,
        true,
        Domain::Gpu,
        cfg.loopback_dd_limit + 64,
    );
    assert_eq!(st.of(Protocol::IpcCopy), 1);
    // nbi form of the same transfer must not take the loopback fast path
    let m = ShmemMachine::build(ClusterSpec::intranode_pair(), cfg);
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(64 << 10, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(64 << 10);
            pe.putmem_nbi(dest, src, cfg.loopback_dd_limit + 64, 1);
            pe.quiet();
        }
        pe.barrier_all();
        pe.stats()
    });
    assert_eq!(out[0].of(Protocol::LoopbackGdr), 0, "nbi drifted from put");
    assert_eq!(out[0].of(Protocol::IpcCopy), 1);

    // same-node get above loopback_get_limit must not use loopback read
    let m = ShmemMachine::build(ClusterSpec::intranode_pair(), cfg);
    let out = m.run(move |pe| {
        let source = pe.shmalloc(64 << 10, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dst = pe.malloc_host(64 << 10);
            pe.getmem_nbi(dst, source, cfg.loopback_get_limit + 64, 1);
            pe.quiet();
        }
        pe.barrier_all();
        pe.stats()
    });
    assert_eq!(out[0].of(Protocol::LoopbackGdr), 0, "get_nbi drifted from get");
}
