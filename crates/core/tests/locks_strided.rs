//! Lock routines and strided/scalar RMA.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, Pod, RuntimeConfig, ShmemMachine, SimDuration};

fn machine(nodes: usize, ppn: usize) -> std::sync::Arc<ShmemMachine> {
    ShmemMachine::build(
        ClusterSpec::wilkes(nodes, ppn),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    )
}

#[test]
fn lock_provides_mutual_exclusion() {
    let m = machine(2, 2); // 4 PEs
    let out = m.run(|pe| {
        let lock = pe.shmalloc(8, Domain::Host);
        let shared = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();
        for _ in 0..8 {
            pe.set_lock(lock);
            // non-atomic read-modify-write on pe0's cell under the lock
            let cur = pe.get_one::<u64>(shared, 0);
            pe.compute(SimDuration::from_ns(700));
            pe.put_one::<u64>(shared, cur + 1, 0);
            pe.quiet();
            pe.clear_lock(lock);
        }
        pe.barrier_all();
        pe.get_one::<u64>(shared, 0)
    });
    assert!(out.iter().all(|&v| v == 32), "lost updates: {out:?}");
}

#[test]
fn test_lock_fails_when_held() {
    let m = machine(2, 1);
    m.run(|pe| {
        let lock = pe.shmalloc(8, Domain::Host);
        let flag = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            pe.set_lock(lock);
            pe.put_u64(flag, 1, 1);
            pe.quiet();
            // hold it long enough for pe1 to try
            pe.compute(SimDuration::from_us(60));
            pe.clear_lock(lock);
        } else {
            pe.wait_until(flag, shmem_gdr::Cmp::Ge, 1);
            assert!(!pe.test_lock(lock), "lock should be held by pe0");
            // eventually acquirable
            pe.set_lock(lock);
            pe.clear_lock(lock);
        }
        pe.barrier_all();
    });
}

#[test]
#[should_panic(expected = "clear_lock")]
fn clearing_an_unheld_lock_panics() {
    let m = machine(2, 1);
    m.run(|pe| {
        let lock = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 1 {
            pe.clear_lock(lock); // never acquired
        }
        pe.barrier_all();
    });
}

#[test]
fn scalar_p_and_g_round_trip() {
    let m = machine(2, 1);
    m.run(|pe| {
        let cell = pe.shmalloc_slice::<f64>(4, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            pe.put_one::<f64>(cell.at(2), 6.75, 1);
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            assert_eq!(pe.read_sym(&cell)[2], 6.75);
        }
        pe.barrier_all();
        // g: read back remotely
        if pe.my_pe() == 0 {
            assert_eq!(pe.get_one::<f64>(cell.at(2), 1), 6.75);
        }
        pe.barrier_all();
    });
}

#[test]
fn iput_scatters_with_strides() {
    let m = machine(2, 1);
    m.run(|pe| {
        let dest = pe.shmalloc_slice::<u32>(32, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_host(64);
            let vals: Vec<u32> = (0..8).map(|i| 100 + i).collect();
            pe.write_raw(src, &Pod::to_bytes(&vals));
            // every 2nd source element into every 3rd dest element
            pe.iput::<u32>(dest.addr(), src, 3, 2, 4, 1);
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            let got = pe.read_sym(&dest);
            assert_eq!(got[0], 100);
            assert_eq!(got[3], 102);
            assert_eq!(got[6], 104);
            assert_eq!(got[9], 106);
            assert_eq!(got[1], 0, "untouched cells stay zero");
        }
        pe.barrier_all();
    });
}

#[test]
fn iget_gathers_with_strides() {
    let m = machine(1, 2); // intra-node too
    m.run(|pe| {
        let source = pe.shmalloc_slice::<u64>(16, Domain::Host);
        let me = pe.my_pe() as u64;
        let vals: Vec<u64> = (0..16).map(|i| me * 1000 + i).collect();
        pe.write_sym(&source, &vals);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dst = pe.malloc_host(256);
            // every 4th element of pe1's copy, packed
            pe.iget::<u64>(dst, source.addr(), 1, 4, 4, 1);
            let got = u64::from_bytes(&pe.read_raw(dst, 32));
            assert_eq!(got, vec![1000, 1004, 1008, 1012]);
        }
        pe.barrier_all();
    });
}
