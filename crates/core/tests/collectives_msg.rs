//! Collectives (broadcast, reduce) and the CUDA-aware two-sided layer.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, Pod, RuntimeConfig, ShmemMachine};

fn machine(nodes: usize, ppn: usize) -> std::sync::Arc<ShmemMachine> {
    ShmemMachine::build(
        ClusterSpec::wilkes(nodes, ppn),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    )
}

#[test]
fn broadcast_reaches_every_pe_from_any_root() {
    for root in [0usize, 3, 5] {
        let m = machine(3, 2); // 6 PEs
        m.run(move |pe| {
            let data = pe.shmalloc_slice::<u64>(32, Domain::Host);
            if pe.my_pe() == root {
                let vals: Vec<u64> = (0..32).map(|i| i + 1000 * root as u64).collect();
                pe.write_sym(&data, &vals);
            }
            pe.broadcast(data.addr(), data.byte_len(), root);
            let got = pe.read_sym(&data);
            let expect: Vec<u64> = (0..32).map(|i| i + 1000 * root as u64).collect();
            assert_eq!(got, expect, "pe{} root{root}", pe.my_pe());
            pe.barrier_all();
        });
    }
}

#[test]
fn broadcast_of_gpu_domain_data() {
    let m = machine(2, 2);
    m.run(|pe| {
        let data = pe.shmalloc_slice::<f32>(64, Domain::Gpu);
        if pe.my_pe() == 0 {
            pe.write_sym(&data, &vec![2.5f32; 64]);
        }
        pe.broadcast(data.addr(), data.byte_len(), 0);
        assert_eq!(pe.read_sym(&data), vec![2.5f32; 64]);
        pe.barrier_all();
    });
}

#[test]
fn reduce_sum_f64_is_exact() {
    let m = machine(4, 2); // 8 PEs
    m.run(|pe| {
        let src = pe.shmalloc_slice::<f64>(4, Domain::Host);
        let dst = pe.shmalloc_slice::<f64>(4, Domain::Host);
        let me = pe.my_pe() as f64;
        pe.write_sym(&src, &[me, me * 2.0, 1.0, -me]);
        pe.reduce_sum_f64(&src, &dst, 2);
        let got = pe.read_sym(&dst);
        // sum over pe=0..8
        let s: f64 = (0..8).map(|i| i as f64).sum();
        assert_eq!(got, vec![s, 2.0 * s, 8.0, -s], "pe{}", pe.my_pe());
        pe.barrier_all();
    });
}

#[test]
fn allreduce_single_value() {
    let m = machine(2, 1);
    m.run(|pe| {
        let src = pe.shmalloc_slice::<f64>(1, Domain::Host);
        let dst = pe.shmalloc_slice::<f64>(1, Domain::Host);
        pe.write_sym(&src, &[pe.my_pe() as f64 + 1.0]);
        pe.allreduce_sum_f64(&src, &dst);
        assert_eq!(pe.read_sym(&dst), vec![3.0]);
        pe.barrier_all();
    });
}

#[test]
fn repeated_collectives_stay_consistent() {
    let m = machine(2, 2);
    m.run(|pe| {
        let v = pe.shmalloc_slice::<u64>(1, Domain::Host);
        for round in 0..10u64 {
            if pe.my_pe() == (round % 4) as usize {
                pe.write_sym(&v, &[round * 11]);
            }
            pe.broadcast(v.addr(), 8, (round % 4) as usize);
            assert_eq!(pe.read_sym(&v), vec![round * 11], "round {round}");
            pe.barrier_all();
        }
    });
}

// ---------- two-sided (MPI-like) layer ----------

#[test]
fn host_send_recv_round_trip() {
    let m = machine(2, 1);
    m.run(|pe| {
        let buf = pe.malloc_host(4096);
        if pe.my_pe() == 0 {
            pe.write_raw(buf, &u64::to_bytes(&[11, 22, 33]));
            pe.send(1, buf, 24);
        } else {
            pe.recv(0, buf, 4096);
            assert_eq!(u64::from_bytes(&pe.read_raw(buf, 24)), vec![11, 22, 33]);
        }
    });
}

#[test]
fn device_send_recv_stages_through_host() {
    let m = machine(2, 1);
    m.run(|pe| {
        let dev = pe.malloc_dev(1 << 20);
        if pe.my_pe() == 0 {
            pe.write_raw(dev, &vec![0x3C; 1 << 20]);
            pe.send(1, dev, 1 << 20);
        } else {
            pe.recv(0, dev, 1 << 20);
            assert!(pe.read_raw(dev, 1 << 20).iter().all(|&b| b == 0x3C));
        }
    });
}

#[test]
fn bidirectional_exchange_with_isend_irecv() {
    // The LBM halo pattern: both sides post irecv + isend, then waitall.
    let m = machine(2, 1);
    m.run(|pe| {
        let me = pe.my_pe();
        let other = 1 - me;
        let send_buf = pe.malloc_dev(64 << 10);
        let recv_buf = pe.malloc_dev(64 << 10);
        pe.write_raw(send_buf, &vec![me as u8 + 1; 64 << 10]);
        let r = pe.irecv(other, recv_buf, 64 << 10);
        let s = pe.isend(other, send_buf, 64 << 10);
        pe.msg_waitall(vec![r, s]);
        assert!(
            pe.read_raw(recv_buf, 64 << 10)
                .iter()
                .all(|&b| b == other as u8 + 1),
            "pe{me} exchange corrupted"
        );
    });
}

#[test]
fn intranode_send_recv_works_too() {
    let m = machine(1, 2);
    m.run(|pe| {
        let buf = pe.malloc_host(256);
        if pe.my_pe() == 0 {
            pe.write_raw(buf, b"node-local send/recv");
            pe.send(1, buf, 20);
        } else {
            pe.recv(0, buf, 256);
            assert_eq!(pe.read_raw(buf, 20), b"node-local send/recv");
        }
    });
}

#[test]
fn many_small_messages_in_order() {
    let m = machine(2, 1);
    m.run(|pe| {
        let buf = pe.malloc_host(8 * 64);
        if pe.my_pe() == 0 {
            for i in 0..64u64 {
                pe.write_raw(buf.add(i * 8), &i.to_le_bytes());
                pe.send(1, buf.add(i * 8), 8);
            }
        } else {
            let mut handles = Vec::new();
            for i in 0..64u64 {
                handles.push(pe.irecv(0, buf.add(i * 8), 8));
            }
            pe.msg_waitall(handles);
            for i in 0..64u64 {
                let b = pe.read_raw(buf.add(i * 8), 8);
                assert_eq!(u64::from_le_bytes(b.try_into().unwrap()), i);
            }
        }
    });
}

#[test]
fn fcollect_gathers_all_blocks_everywhere() {
    let m = machine(2, 2); // 4 PEs
    m.run(|pe| {
        let n = pe.n_pes();
        let src = pe.shmalloc_slice::<u64>(3, Domain::Gpu);
        let dest = pe.shmalloc_slice::<u64>(3 * n, Domain::Gpu);
        let me = pe.my_pe() as u64;
        pe.write_sym(&src, &[me * 10, me * 10 + 1, me * 10 + 2]);
        pe.barrier_all();
        pe.fcollect(&dest, &src);
        let got = pe.read_sym(&dest);
        for p in 0..n as u64 {
            assert_eq!(
                &got[(p as usize) * 3..(p as usize) * 3 + 3],
                &[p * 10, p * 10 + 1, p * 10 + 2],
                "pe{} block {p}",
                pe.my_pe()
            );
        }
        pe.barrier_all();
    });
}

#[test]
fn alltoall_transposes_blocks() {
    let m = machine(2, 2); // 4 PEs
    m.run(|pe| {
        let n = pe.n_pes();
        let per = 2usize;
        let src = pe.shmalloc_slice::<u32>(n * per, Domain::Host);
        let dest = pe.shmalloc_slice::<u32>(n * per, Domain::Host);
        let me = pe.my_pe() as u32;
        // src block j holds (me, j) markers
        let vals: Vec<u32> = (0..n as u32)
            .flat_map(|j| [me * 100 + j, me * 100 + j + 50])
            .collect();
        pe.write_sym(&src, &vals);
        pe.barrier_all();
        pe.alltoall(&dest, &src, per);
        let got = pe.read_sym(&dest);
        // dest block i must hold what PE i sent to me: (i, me)
        for i in 0..n as u32 {
            assert_eq!(got[(i as usize) * per], i * 100 + me, "pe{me} from {i}");
            assert_eq!(got[(i as usize) * per + 1], i * 100 + me + 50);
        }
        pe.barrier_all();
    });
}

#[test]
fn typed_reductions_min_max_prod() {
    use shmem_gdr::RedOp;
    let m = machine(2, 2);
    m.run(|pe| {
        let src = pe.shmalloc_slice::<i64>(2, Domain::Host);
        let dst = pe.shmalloc_slice::<i64>(2, Domain::Host);
        let me = pe.my_pe() as i64;
        pe.write_sym(&src, &[me + 1, -(me + 1)]);
        pe.reduce(&src, &dst, RedOp::Max, 0);
        assert_eq!(pe.read_sym(&dst), vec![4, -1]);
        pe.barrier_all();
        pe.reduce(&src, &dst, RedOp::Min, 1);
        assert_eq!(pe.read_sym(&dst), vec![1, -4]);
        pe.barrier_all();
        pe.reduce(&src, &dst, RedOp::Prod, 2);
        assert_eq!(pe.read_sym(&dst), vec![24, 24]);
        pe.barrier_all();
    });
}

#[test]
fn repeated_fcollects_with_changing_data() {
    let m = machine(2, 1);
    m.run(|pe| {
        let n = pe.n_pes();
        let src = pe.shmalloc_slice::<u64>(1, Domain::Host);
        let dest = pe.shmalloc_slice::<u64>(n, Domain::Host);
        for round in 0..5u64 {
            pe.write_sym(&src, &[round * 100 + pe.my_pe() as u64]);
            pe.barrier_all();
            pe.fcollect(&dest, &src);
            let got = pe.read_sym(&dest);
            for p in 0..n as u64 {
                assert_eq!(got[p as usize], round * 100 + p, "round {round}");
            }
            pe.barrier_all();
        }
    });
}

#[test]
fn oversized_device_recv_preserves_bytes_beyond_the_message() {
    // a 64 KiB posted capacity receiving a 1 KiB message must only
    // overwrite the first 1 KiB of the device buffer
    let m = machine(2, 1);
    m.run(|pe| {
        let dev = pe.malloc_dev(64 << 10);
        if pe.my_pe() == 0 {
            pe.write_raw(dev, &vec![0x11; 1 << 10]);
            pe.send(1, dev, 1 << 10);
        } else {
            pe.write_raw(dev, &vec![0xEE; 64 << 10]); // pre-existing data
            pe.recv(0, dev, 64 << 10);
            let got = pe.read_raw(dev, 64 << 10);
            assert!(got[..1024].iter().all(|&b| b == 0x11), "message lost");
            assert!(
                got[1024..].iter().all(|&b| b == 0xEE),
                "bytes beyond the message were clobbered"
            );
        }
    });
}

#[test]
fn symmetric_put_signal_exchange_under_baseline_does_not_deadlock() {
    // regression: put_signal's decomposed fallback used to quiet without
    // the in-library flag, deadlocking symmetric exchanges whose acks
    // need target-side progress
    let m = ShmemMachine::build(
        pcie_sim::ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::HostPipeline),
    );
    m.run(|pe| {
        let data = pe.shmalloc(64 << 10, Domain::Gpu);
        let sig = pe.shmalloc(8, Domain::Host);
        let src = pe.malloc_dev(64 << 10);
        pe.barrier_all();
        let other = 1 - pe.my_pe();
        // both sides put_signal to each other simultaneously
        pe.put_signal(data, src, 64 << 10, sig, 1, other);
        pe.wait_until(sig, shmem_gdr::Cmp::Ge, 1);
        pe.barrier_all();
    });
}
