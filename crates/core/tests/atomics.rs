//! Atomics: IB hardware atomics on host and (via GDR) GPU symmetric
//! memory, the <64-bit mask technique, and lock construction (§III-D).

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};

fn machine(nodes: usize, ppn: usize) -> std::sync::Arc<ShmemMachine> {
    ShmemMachine::build(
        ClusterSpec::wilkes(nodes, ppn),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    )
}

#[test]
fn fetch_add_on_host_and_gpu_domains() {
    for domain in [Domain::Host, Domain::Gpu] {
        let m = machine(2, 1);
        m.run(move |pe| {
            let ctr = pe.shmalloc(8, domain);
            pe.barrier_all();
            if pe.my_pe() == 0 {
                let old = pe.atomic_fetch_add(ctr, 5, 1);
                assert_eq!(old, 0);
                let old = pe.atomic_fetch_add(ctr, 3, 1);
                assert_eq!(old, 5);
            }
            pe.barrier_all();
            if pe.my_pe() == 1 {
                assert_eq!(pe.local_u64(ctr), 8, "{domain}");
            }
        });
    }
}

#[test]
fn concurrent_fetch_adds_from_all_pes_sum_exactly() {
    let m = machine(4, 2); // 8 PEs
    m.run(|pe| {
        let ctr = pe.shmalloc(8, Domain::Gpu);
        pe.barrier_all();
        for _ in 0..25 {
            pe.atomic_fetch_add(ctr, 1, 0);
        }
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // counter lives in pe0's GPU heap
            let v = pe.local_u64(ctr);
            assert_eq!(v, 8 * 25);
        }
    });
}

#[test]
fn compare_swap_builds_a_working_spinlock() {
    let m = machine(2, 2); // 4 PEs
    let out = m.run(|pe| {
        let lock = pe.shmalloc(8, Domain::Host);
        let shared = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();
        // critical section: read-modify-write a non-atomic cell under the lock
        for _ in 0..10 {
            // acquire
            loop {
                let got = pe.atomic_compare_swap(lock, 0, pe.my_pe() as u64 + 1, 0);
                if got == 0 {
                    break;
                }
                pe.compute(shmem_gdr::SimDuration::from_us(1));
            }
            // critical section on pe0's copy of `shared`
            let cur = {
                let b = pe.read_raw(pe.addr_of(shared, 0), 8);
                u64::from_le_bytes(b.try_into().unwrap())
            };
            pe.compute(shmem_gdr::SimDuration::from_ns(300));
            pe.write_raw(pe.addr_of(shared, 0), &(cur + 1).to_le_bytes());
            // release
            let prev = pe.atomic_compare_swap(lock, pe.my_pe() as u64 + 1, 0, 0);
            assert_eq!(prev, pe.my_pe() as u64 + 1, "lock stolen");
        }
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let b = pe.read_raw(pe.addr_of(shared, 0), 8);
            u64::from_le_bytes(b.try_into().unwrap())
        } else {
            0
        }
    });
    assert_eq!(out[0], 40, "lost updates under the lock");
}

#[test]
fn masked_32bit_fetch_add_updates_only_its_half() {
    let m = machine(2, 1);
    m.run(|pe| {
        let word = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // prime the full word: hi = 0x1111_1111, lo = 0x2222_2222
            pe.put_u64(word, 0x1111_1111_2222_2222, 1);
            pe.quiet();
            let old_lo = pe.atomic_fetch_add32(word, 1, 1);
            assert_eq!(old_lo, 0x2222_2222);
            let old_hi = pe.atomic_fetch_add32(word.add(4), 2, 1);
            assert_eq!(old_hi, 0x1111_1111);
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            assert_eq!(pe.local_u64(word), 0x1111_1113_2222_2223);
        }
    });
}

#[test]
fn gpu_atomics_unsupported_under_host_pipeline() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::HostPipeline),
    );
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run(|pe| {
            let ctr = pe.shmalloc(8, Domain::Gpu);
            pe.barrier_all();
            if pe.my_pe() == 0 {
                pe.atomic_fetch_add(ctr, 1, 1);
            }
            pe.barrier_all();
        });
    }));
    assert!(r.is_err(), "GPU atomics need GDR");
}

#[test]
fn host_atomics_work_under_host_pipeline() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::HostPipeline),
    );
    m.run(|pe| {
        let ctr = pe.shmalloc(8, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            assert_eq!(pe.atomic_fetch_add(ctr, 9, 1), 0);
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            assert_eq!(pe.local_u64(ctr), 9);
        }
    });
}

#[test]
fn intranode_atomic_latency_below_internode() {
    let lat = |spec: ClusterSpec| {
        let m = ShmemMachine::build(spec, RuntimeConfig::tuned(Design::EnhancedGdr));
        let out = m.run(|pe| {
            let ctr = pe.shmalloc(8, Domain::Gpu);
            pe.barrier_all();
            if pe.my_pe() == 0 {
                let t0 = pe.now();
                for _ in 0..10 {
                    pe.atomic_fetch_add(ctr, 1, 1);
                }
                let dt = (pe.now() - t0).as_us_f64() / 10.0;
                pe.barrier_all();
                dt
            } else {
                pe.barrier_all();
                0.0
            }
        });
        out[0]
    };
    let near = lat(ClusterSpec::intranode_pair());
    let far = lat(ClusterSpec::internode_pair());
    assert!(near < far, "loopback atomic {near:.2}us vs internode {far:.2}us");
}
