//! Calibration: the paper's headline latencies must come out of the
//! default Wilkes profile within tolerance bands.
//!
//! Paper anchors (§I, §V-B):
//! - intra-node 8 B H-D put ≈ 2.2 us (4 B put 2.4 us, 4 B get 2.02 us);
//! - baseline intra-node 4 B ≈ 6.2 us (cudaMemcpy/IPC overhead);
//! - inter-node 8 B D-D put: 20.9 us (baseline) → 3.13 us (GDR);
//! - inter-node 2 KB D-D put < 4 us;
//! - inter-node 8 B H-D put ≈ 2.81 us; 4 KB ≈ 3.7 us.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};

/// Average put+quiet latency over a few iterations (OMB style).
fn put_latency(design: Design, intra: bool, src_gpu: bool, dst_domain: Domain, len: u64) -> f64 {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    let m = ShmemMachine::build(spec, RuntimeConfig::tuned(design));
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(len + 4096, dst_domain);
        let src = if src_gpu {
            pe.malloc_dev(len + 4096)
        } else {
            pe.malloc_host(len + 4096)
        };
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // warmup (registration etc.)
            for _ in 0..3 {
                pe.putmem(dest, src, len, 1);
                pe.quiet();
            }
            let iters = 20;
            let t0 = pe.now();
            for _ in 0..iters {
                pe.putmem(dest, src, len, 1);
                pe.quiet();
            }
            let dt = (pe.now() - t0).as_us_f64() / iters as f64;
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    out[0]
}

fn get_latency(design: Design, intra: bool, src_domain: Domain, dst_gpu: bool, len: u64) -> f64 {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    let m = ShmemMachine::build(spec, RuntimeConfig::tuned(design));
    let out = m.run(move |pe| {
        let source = pe.shmalloc(len + 4096, src_domain);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dst = if dst_gpu {
                pe.malloc_dev(len + 4096)
            } else {
                pe.malloc_host(len + 4096)
            };
            for _ in 0..3 {
                pe.getmem(dst, source, len, 1);
            }
            let iters = 20;
            let t0 = pe.now();
            for _ in 0..iters {
                pe.getmem(dst, source, len, 1);
            }
            let dt = (pe.now() - t0).as_us_f64() / iters as f64;
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    out[0]
}

fn assert_band(name: &str, value: f64, lo: f64, hi: f64) {
    assert!(
        (lo..=hi).contains(&value),
        "{name}: {value:.2}us outside calibration band [{lo}, {hi}]"
    );
}

#[test]
fn intranode_small_put_hd_near_2_2us() {
    let v = put_latency(Design::EnhancedGdr, true, false, Domain::Gpu, 8);
    assert_band("intra H-D 8B put (GDR loopback)", v, 1.7, 2.7);
}

#[test]
fn intranode_small_get_near_2us() {
    let v = get_latency(Design::EnhancedGdr, true, Domain::Gpu, false, 4);
    assert_band("intra H-D 4B get (GDR loopback)", v, 1.6, 2.5);
}

#[test]
fn baseline_intranode_small_put_near_6_2us() {
    let v = put_latency(Design::HostPipeline, true, false, Domain::Gpu, 4);
    assert_band("baseline intra H-D 4B put (IPC)", v, 5.2, 7.2);
}

#[test]
fn internode_dd_8b_put_near_3_13us() {
    let v = put_latency(Design::EnhancedGdr, false, true, Domain::Gpu, 8);
    assert_band("inter D-D 8B put (direct GDR)", v, 2.6, 3.6);
}

#[test]
fn internode_dd_2kb_put_under_4us() {
    let v = put_latency(Design::EnhancedGdr, false, true, Domain::Gpu, 2048);
    assert!(v < 4.0, "inter D-D 2KB put {v:.2}us (paper: <4us)");
}

#[test]
fn baseline_internode_dd_8b_put_near_20_9us() {
    let v = put_latency(Design::HostPipeline, false, true, Domain::Gpu, 8);
    assert_band("baseline inter D-D 8B put (host pipeline)", v, 16.0, 26.0);
}

#[test]
fn internode_hd_8b_put_near_2_81us() {
    let v = put_latency(Design::EnhancedGdr, false, false, Domain::Gpu, 8);
    assert_band("inter H-D 8B put (direct GDR)", v, 2.3, 3.3);
}

#[test]
fn internode_hd_4kb_put_near_3_7us() {
    let v = put_latency(Design::EnhancedGdr, false, false, Domain::Gpu, 4096);
    assert_band("inter H-D 4KB put", v, 3.0, 4.4);
}

#[test]
fn small_message_speedup_factors_match_paper_shape() {
    // ~2.5x intra-node, ~7x inter-node (paper abstract)
    let intra_base = put_latency(Design::HostPipeline, true, false, Domain::Gpu, 4);
    let intra_gdr = put_latency(Design::EnhancedGdr, true, false, Domain::Gpu, 4);
    let r_intra = intra_base / intra_gdr;
    assert!(
        (2.0..3.8).contains(&r_intra),
        "intra-node speedup {r_intra:.2}x (paper ~2.5x)"
    );

    let inter_base = put_latency(Design::HostPipeline, false, true, Domain::Gpu, 8);
    let inter_gdr = put_latency(Design::EnhancedGdr, false, true, Domain::Gpu, 8);
    let r_inter = inter_base / inter_gdr;
    assert!(
        (5.0..9.0).contains(&r_inter),
        "inter-node speedup {r_inter:.2}x (paper ~7x)"
    );
}

#[test]
fn large_intranode_dh_put_beats_baseline_by_about_40pct() {
    // Paper Fig 7(b): shared-memory design cuts large D-H put latency ~40%.
    let base = put_latency(Design::HostPipeline, true, true, Domain::Host, 1 << 20);
    let gdr = put_latency(Design::EnhancedGdr, true, true, Domain::Host, 1 << 20);
    let gain = 1.0 - gdr / base;
    assert!(
        (0.25..0.55).contains(&gain),
        "large D-H put gain {gain:.2} (paper ~0.40): base {base:.0}us vs {gdr:.0}us"
    );
}

#[test]
fn large_internode_put_bandwidth_matches_pipeline() {
    // 4 MiB D-D put should sustain close to the host-pipeline bandwidth
    // (~6 GB/s), i.e. ~700us, rather than the P2P-read-limited 1.2ms.
    let v = put_latency(Design::EnhancedGdr, false, true, Domain::Gpu, 4 << 20);
    assert!(
        v < 950.0,
        "4MiB inter D-D put {v:.0}us — pipeline GDR write should avoid the P2P read cap"
    );
}

#[test]
fn proxy_get_avoids_p2p_read_bottleneck() {
    // Paper Fig 8(d): proposed design's large gets show no overhead vs
    // the pipeline. Without the proxy, chunked direct reads pay the
    // 3421 MB/s P2P read cap.
    let with_proxy = get_latency(Design::EnhancedGdr, false, Domain::Gpu, true, 4 << 20);
    let mut cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
    cfg.proxy_enabled = false;
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    let out = m.run(move |pe| {
        let source = pe.shmalloc((4 << 20) + 64, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dst = pe.malloc_dev((4 << 20) + 64);
            let t0 = pe.now();
            pe.getmem(dst, source, 4 << 20, 1);
            let dt = (pe.now() - t0).as_us_f64();
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    let without = out[0];
    assert!(
        with_proxy < without * 0.75,
        "proxy {with_proxy:.0}us should clearly beat direct-read {without:.0}us"
    );
}
