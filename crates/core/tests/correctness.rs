//! Data-integrity matrix: every design × configuration × locality × size.
//!
//! Every put/get must deliver byte-exact payloads regardless of which
//! protocol path (shm, IPC, loopback GDR, direct GDR, pipelines, proxy)
//! services it.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};

/// Deterministic, size- and seed-dependent payload.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(31).wrapping_add(i as u64).wrapping_mul(2654435761) >> 16) as u8)
        .collect()
}

fn spec_for(intra: bool) -> ClusterSpec {
    if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    }
}

/// Run one put + one get round-trip for a (design, locality, domains, size)
/// combination and verify the bytes.
fn check_combo(design: Design, intra: bool, src_gpu: bool, dst_gpu: bool, len: usize) {
    let m = ShmemMachine::build(spec_for(intra), RuntimeConfig::tuned(design));
    let src_domain = if src_gpu { Domain::Gpu } else { Domain::Host };
    let dst_domain = if dst_gpu { Domain::Gpu } else { Domain::Host };
    let data = payload(len, len as u64 + intra as u64);
    let data2 = data.clone();
    m.run(move |pe| {
        // symmetric objects: source-side buffer and destination buffer
        let dest = pe.shmalloc(len as u64 + 64, dst_domain);
        let src_sym = pe.shmalloc(len as u64 + 64, src_domain);
        if pe.my_pe() == 0 {
            pe.write_raw(pe.addr_of(src_sym, 0), &data2);
            // ---- put: pe0 (src domain) -> pe1 (dst domain)
            pe.putmem_sym(dest, src_sym, len as u64, 1);
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            let got = pe.read_raw(pe.addr_of(dest, 1), len as u64);
            assert_eq!(got, data2, "put corrupted payload");
            // scribble a derived pattern for the get check
            let derived: Vec<u8> = data2.iter().map(|b| b.wrapping_add(13)).collect();
            pe.write_raw(pe.addr_of(dest, 1), &derived);
        }
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // ---- get: read pe1's dest (dst domain) into local src-domain memory
            let local = pe.addr_of(src_sym, 0);
            pe.getmem(local, dest, len as u64, 1);
            let got = pe.read_raw(local, len as u64);
            let expect: Vec<u8> = data2.iter().map(|b| b.wrapping_add(13)).collect();
            assert_eq!(got, expect, "get corrupted payload");
        }
        pe.barrier_all();
    });
}

const SIZES: &[usize] = &[1, 4, 8, 1000, 4096, 65536, 1 << 20, 3 << 20];

#[test]
fn enhanced_gdr_intranode_all_configs_all_sizes() {
    for &(s, d) in &[(false, false), (false, true), (true, false), (true, true)] {
        for &len in SIZES {
            check_combo(Design::EnhancedGdr, true, s, d, len);
        }
    }
}

#[test]
fn enhanced_gdr_internode_all_configs_all_sizes() {
    for &(s, d) in &[(false, false), (false, true), (true, false), (true, true)] {
        for &len in SIZES {
            check_combo(Design::EnhancedGdr, false, s, d, len);
        }
    }
}

#[test]
fn host_pipeline_intranode_all_configs_all_sizes() {
    for &(s, d) in &[(false, false), (false, true), (true, false), (true, true)] {
        for &len in SIZES {
            check_combo(Design::HostPipeline, true, s, d, len);
        }
    }
}

#[test]
fn host_pipeline_internode_supported_configs() {
    // inter-node: the baseline supports H-H and D-D only (paper Table I)
    for &(s, d) in &[(false, false), (true, true)] {
        for &len in SIZES {
            check_combo(Design::HostPipeline, false, s, d, len);
        }
    }
}

#[test]
fn naive_host_to_host_both_localities() {
    for intra in [true, false] {
        for &len in SIZES {
            check_combo(Design::Naive, intra, false, false, len);
        }
    }
}

#[test]
fn naive_design_rejects_device_buffers() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::Naive),
    );
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run(|pe| {
            let dest = pe.shmalloc(256, Domain::Gpu);
            if pe.my_pe() == 0 {
                let src = pe.malloc_host(256);
                pe.putmem(dest, src, 64, 1);
            }
        });
    }));
    assert!(r.is_err(), "Naive design must refuse GPU buffers");
}

#[test]
fn host_pipeline_rejects_internode_inter_domain() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::HostPipeline),
    );
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run(|pe| {
            let dest = pe.shmalloc(256, Domain::Gpu);
            if pe.my_pe() == 0 {
                let src = pe.malloc_host(256);
                pe.putmem(dest, src, 64, 1); // H-D inter-node: unsupported
            }
        });
    }));
    assert!(r.is_err());
}

#[test]
fn naive_with_manual_staging_matches_enhanced_results() {
    // What a Naive user must write by hand: cudaMemcpy D2H, put H-H,
    // then the *target* cudaMemcpy H2D after synchronization.
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::Naive),
    );
    let data = payload(4096, 7);
    let d2 = data.clone();
    m.run(move |pe| {
        let host_sym = pe.shmalloc(8192, Domain::Host);
        let dev = pe.malloc_dev(8192);
        if pe.my_pe() == 0 {
            pe.write_raw(dev, &d2);
            let bounce = pe.malloc_host(8192);
            pe.cuda_memcpy(dev, bounce, 4096); // D2H
            pe.putmem(host_sym, bounce, 4096, 1); // H-H
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            pe.cuda_memcpy(pe.addr_of(host_sym, 1), dev, 4096); // H2D
            assert_eq!(pe.read_raw(dev, 4096), d2);
        }
    });
}

#[test]
fn self_put_and_get_work_in_all_domains() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    m.run(|pe| {
        let me = pe.my_pe();
        for domain in [Domain::Host, Domain::Gpu] {
            let sym = pe.shmalloc(1024, domain);
            let local = pe.malloc_host(1024);
            pe.write_raw(local, &payload(512, me as u64));
            pe.putmem(sym, local, 512, me);
            pe.quiet();
            let back = pe.malloc_host(1024);
            pe.getmem(back, sym, 512, me);
            assert_eq!(pe.read_raw(back, 512), payload(512, me as u64));
        }
    });
}

#[test]
fn zero_length_ops_are_noops() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    m.run(|pe| {
        let sym = pe.shmalloc(64, Domain::Gpu);
        if pe.my_pe() == 0 {
            let local = pe.malloc_host(64);
            let t0 = pe.now();
            pe.putmem(sym, local, 0, 1);
            pe.getmem(local, sym, 0, 1);
            assert_eq!(pe.now(), t0, "zero-length ops must cost nothing");
        }
        pe.barrier_all();
    });
}

#[test]
fn many_outstanding_puts_then_quiet() {
    let m = ShmemMachine::build(
        ClusterSpec::internode_pair(),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    m.run(|pe| {
        let sym = pe.shmalloc(64 * 512, Domain::Gpu);
        if pe.my_pe() == 0 {
            let local = pe.malloc_host(64 * 512);
            for i in 0..512u64 {
                pe.write_raw(local.add(i * 64), &payload(64, i));
                pe.putmem(sym.add(i * 64), local.add(i * 64), 64, 1);
            }
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            for i in 0..512u64 {
                let got = pe.read_raw(pe.addr_of(sym, 1).add(i * 64), 64);
                assert_eq!(got, payload(64, i), "slot {i}");
            }
        }
    });
}

#[test]
fn cross_socket_placement_still_correct() {
    use shmem_gdr::PlacementPolicy;
    let spec = ClusterSpec::internode_pair().with_placement(PlacementPolicy::CrossSocket);
    let m = ShmemMachine::build(spec, RuntimeConfig::tuned(Design::EnhancedGdr));
    let data = payload(2 << 20, 99);
    let d2 = data.clone();
    m.run(move |pe| {
        let dest = pe.shmalloc(2 << 20, Domain::Gpu);
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(2 << 20);
            pe.write_raw(src, &d2);
            pe.putmem(dest, src, 2 << 20, 1);
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            assert_eq!(pe.read_raw(pe.addr_of(dest, 1), 2 << 20), d2);
        }
    });
}
