//! OpenSHMEM semantics: ordering, synchronization, wait_until, shmem_ptr,
//! symmetric allocation discipline.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Cmp, Design, Domain, RuntimeConfig, ShmemMachine, SimDuration};

fn machine(intra: bool) -> std::sync::Arc<ShmemMachine> {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    ShmemMachine::build(spec, RuntimeConfig::tuned(Design::EnhancedGdr))
}

#[test]
fn shmalloc_is_symmetric_across_pes() {
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(2, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let addrs = m.run(|pe| {
        let a = pe.shmalloc(100, Domain::Host);
        let b = pe.shmalloc(200, Domain::Gpu);
        let c = pe.shmalloc(300, Domain::Host);
        (a, b, c)
    });
    for w in addrs.windows(2) {
        assert_eq!(w[0], w[1], "symmetric offsets must match across PEs");
    }
}

#[test]
fn put_then_flag_then_wait_until_delivers_data_before_flag() {
    // The classic producer/consumer: data put, quiet, flag put; consumer
    // wait_until(flag) then reads data — must always see the payload.
    for intra in [true, false] {
        let m = machine(intra);
        m.run(|pe| {
            let data = pe.shmalloc(4096, Domain::Gpu);
            let flag = pe.shmalloc(8, Domain::Host);
            if pe.my_pe() == 0 {
                let src = pe.malloc_host(4096);
                pe.write_raw(src, &[0x77; 4096]);
                pe.putmem(data, src, 4096, 1);
                pe.quiet(); // data delivered
                pe.put_u64(flag, 1, 1);
                pe.quiet();
            } else {
                pe.wait_until(flag, Cmp::Ge, 1);
                let got = pe.read_raw(pe.addr_of(data, 1), 4096);
                assert!(got.iter().all(|&b| b == 0x77), "flag overtook data");
            }
        });
    }
}

#[test]
fn quiet_waits_for_remote_completion() {
    let m = machine(false);
    m.run(|pe| {
        let dest = pe.shmalloc(1 << 20, Domain::Gpu);
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(1 << 20);
            let t0 = pe.now();
            pe.putmem(dest, src, 1 << 20, 1);
            let put_return = pe.now() - t0;
            pe.quiet();
            let total = pe.now() - t0;
            // put returns early (local completion), quiet adds the rest
            assert!(
                total > put_return,
                "quiet added nothing: put={put_return} total={total}"
            );
        }
        pe.barrier_all();
    });
}

#[test]
fn barrier_all_synchronizes_everyone() {
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(4, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let times = m.run(|pe| {
        // everyone computes a different amount, then barriers
        pe.compute(SimDuration::from_us(10 * (pe.my_pe() as u64 + 1)));
        pe.barrier_all();
        pe.now()
    });
    let max = times.iter().max().unwrap();
    for t in &times {
        // all PEs leave the barrier within a small window
        assert!(
            (*max - *t).as_us_f64() < 10.0,
            "barrier skew too large: {t} vs {max}"
        );
    }
    // and nobody left before the slowest PE arrived (80us of compute)
    assert!(times.iter().all(|t| t.as_us_f64() >= 80.0));
}

#[test]
fn repeated_barriers_do_not_interfere() {
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(2, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    m.run(|pe| {
        for i in 0..20u64 {
            pe.compute(SimDuration::from_us((pe.my_pe() as u64 * 7 + i) % 13));
            pe.barrier_all();
        }
        pe.stats().barriers
    })
    .iter()
    .for_each(|&b| assert_eq!(b, 20));
}

#[test]
fn wait_until_all_comparisons() {
    let m = machine(true);
    m.run(|pe| {
        let flag = pe.shmalloc(8, Domain::Host);
        if pe.my_pe() == 0 {
            pe.compute(SimDuration::from_us(5));
            pe.put_u64(flag, 7, 1);
            pe.quiet();
        } else {
            pe.wait_until(flag, Cmp::Ne, 0);
            assert_eq!(pe.local_u64(flag), 7);
            pe.wait_until(flag, Cmp::Eq, 7);
            pe.wait_until(flag, Cmp::Ge, 3);
            pe.wait_until(flag, Cmp::Le, 9);
        }
        pe.barrier_all();
    });
}

#[test]
fn shmem_ptr_rules() {
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(2, 2),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    m.run(|pe| {
        let h = pe.shmalloc(64, Domain::Host);
        let g = pe.shmalloc(64, Domain::Gpu);
        let me = pe.my_pe();
        let node_peer = me ^ 1; // same node under 2 ppn
        let far_peer = (me + 2) % 4; // other node
        assert!(pe.shmem_ptr(h, me).is_some());
        assert!(pe.shmem_ptr(h, node_peer).is_some());
        assert!(pe.shmem_ptr(h, far_peer).is_none(), "remote host ptr");
        assert!(pe.shmem_ptr(g, node_peer).is_none(), "GPU memory has no shmem_ptr");
    });
}

#[test]
fn shmem_ptr_store_is_visible_to_owner() {
    let m = machine(true);
    m.run(|pe| {
        let h = pe.shmalloc(64, Domain::Host);
        if pe.my_pe() == 0 {
            let p = pe.shmem_ptr(h, 1).expect("node-local host ptr");
            pe.write_raw(p, b"direct-store");
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            assert_eq!(pe.read_raw(pe.addr_of(h, 1), 12), b"direct-store");
        }
    });
}

#[test]
fn fence_orders_puts_to_same_target() {
    let m = machine(false);
    m.run(|pe| {
        let a = pe.shmalloc(1 << 20, Domain::Gpu);
        let b = pe.shmalloc(8, Domain::Host);
        if pe.my_pe() == 0 {
            let big = pe.malloc_dev(1 << 20);
            pe.write_raw(big, &vec![0xEE; 1 << 20]);
            pe.putmem(a, big, 1 << 20, 1);
            pe.fence(); // order: big put before flag
            pe.put_u64(b, 1, 1);
            pe.quiet();
        } else {
            pe.wait_until(b, Cmp::Ge, 1);
            let got = pe.read_raw(pe.addr_of(a, 1), 1 << 20);
            assert!(got.iter().all(|&x| x == 0xEE), "fence ordering violated");
        }
    });
}

#[test]
fn heap_exhaustion_panics_with_context() {
    let m = machine(true);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.run(|pe| {
            // default GPU heap is 8 MiB
            let _ = pe.shmalloc(64 << 20, Domain::Gpu);
        });
    }));
    assert!(r.is_err());
}

#[test]
fn shfree_allows_reuse() {
    let m = machine(true);
    m.run(|pe| {
        let a = pe.shmalloc(1 << 20, Domain::Gpu);
        pe.shfree(a, 1 << 20);
        let b = pe.shmalloc(1 << 20, Domain::Gpu);
        assert_eq!(a.offset, b.offset, "freed block should be reused");
    });
}

#[test]
fn put_u64_and_local_u64_round_trip() {
    let m = machine(false);
    m.run(|pe| {
        let cell = pe.shmalloc(8, Domain::Host);
        if pe.my_pe() == 0 {
            pe.put_u64(cell, 0xDEAD_BEEF_CAFE, 1);
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            assert_eq!(pe.local_u64(cell), 0xDEAD_BEEF_CAFE);
        }
    });
}

#[test]
fn typed_slices_put_get() {
    let m = machine(false);
    m.run(|pe| {
        let v = pe.shmalloc_slice::<f64>(128, Domain::Gpu);
        if pe.my_pe() == 0 {
            let vals: Vec<f64> = (0..128).map(|i| i as f64 * 0.5).collect();
            let src = pe.malloc_host(v.byte_len());
            pe.write_raw(src, &shmem_gdr::Pod::to_bytes(&vals));
            pe.put_slice(&v, src, 1);
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            let got = pe.read_sym(&v);
            assert_eq!(got[64], 32.0);
            assert_eq!(got.len(), 128);
        }
    });
}

#[test]
fn nbi_puts_post_faster_and_quiet_completes_them() {
    let m = machine(false);
    m.run(|pe| {
        let dest = pe.shmalloc(4096 * 64, Domain::Gpu);
        if pe.my_pe() == 0 {
            let src = pe.malloc_dev(4096 * 64);
            // warm registration
            pe.putmem(dest, src, 64, 1);
            pe.quiet();
            // blocking puts
            let t0 = pe.now();
            for i in 0..32u64 {
                pe.putmem(dest.add(i * 4096), src.add(i * 4096), 64, 1);
            }
            pe.quiet();
            let blocking = pe.now() - t0;
            // nbi puts
            let t1 = pe.now();
            for i in 0..32u64 {
                pe.putmem_nbi(dest.add(i * 4096), src.add(i * 4096), 64, 1);
            }
            pe.quiet();
            let nbi = pe.now() - t1;
            assert!(
                nbi < blocking,
                "nbi burst {nbi} should beat blocking burst {blocking}"
            );
        }
        pe.barrier_all();
    });
}

#[test]
fn nbi_data_is_delivered_after_quiet() {
    let m = machine(false);
    m.run(|pe| {
        let dest = pe.shmalloc(1024, Domain::Gpu);
        let local = pe.malloc_host(1024);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            pe.write_raw(local, &[0x42; 512]);
            pe.putmem_nbi(dest, local, 512, 1);
            pe.quiet();
        }
        pe.barrier_all();
        if pe.my_pe() == 1 {
            assert!(pe
                .read_raw(pe.addr_of(dest, 1), 512)
                .iter()
                .all(|&b| b == 0x42));
            // nbi get of it back
            pe.getmem_nbi(local, dest, 512, 1);
            pe.quiet();
            assert!(pe.read_raw(local, 512).iter().all(|&b| b == 0x42));
        }
        pe.barrier_all();
    });
}

#[test]
fn put_signal_delivers_data_before_signal() {
    for (intra, len) in [(false, 2048u64), (false, 2 << 20), (true, 1024), (true, 64 << 10)] {
        let m = machine(intra);
        m.run(move |pe| {
            let data = pe.shmalloc(len + 64, Domain::Gpu);
            let sig = pe.shmalloc(8, Domain::Host);
            pe.barrier_all();
            if pe.my_pe() == 0 {
                let src = pe.malloc_dev(len + 64);
                pe.write_raw(src, &vec![0xAD; len as usize]);
                pe.put_signal(data, src, len, sig, 7, 1);
                pe.quiet();
            } else {
                pe.wait_until(sig, Cmp::Ge, 7);
                let got = pe.read_raw(pe.addr_of(data, 1), len);
                assert!(
                    got.iter().all(|&b| b == 0xAD),
                    "signal overtook data (intra={intra}, len={len})"
                );
            }
            pe.barrier_all();
        });
    }
}

#[test]
fn fused_put_signal_beats_put_quiet_flag() {
    // the fused one-sided form saves the origin-side quiet round
    let m = machine(false);
    let out = m.run(|pe| {
        let data = pe.shmalloc(8 << 10, Domain::Gpu);
        let sig = pe.shmalloc(16, Domain::Host);
        let src = pe.malloc_dev(8 << 10);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // warm
            pe.put_signal(data, src, 2048, sig, 1, 1);
            pe.quiet();
            let t0 = pe.now();
            for i in 0..10u64 {
                pe.put_signal(data, src, 2048, sig, 2 + i, 1);
            }
            pe.quiet();
            let fused = pe.now() - t0;
            let t1 = pe.now();
            for i in 0..10u64 {
                pe.putmem(data, src, 2048, 1);
                pe.fence();
                pe.put_u64(sig.add(8), 2 + i, 1);
            }
            pe.quiet();
            let split = pe.now() - t1;
            pe.barrier_all();
            (fused.as_us_f64(), split.as_us_f64())
        } else {
            pe.barrier_all();
            (0.0, 0.0)
        }
    });
    let (fused, split) = out[0];
    assert!(
        fused < split,
        "fused put_signal {fused:.1}us should beat put+fence+flag {split:.1}us"
    );
}
