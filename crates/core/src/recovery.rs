//! Chunk-level fault recovery for event-context posts.
//!
//! The chunked protocols (pipeline GDR write, host staging pipeline,
//! proxy puts/gets, serve-get replies) issue their RDMA posts inside
//! `Sched` callbacks — there is no `TaskCtx` to run
//! `post_with_retry`'s blocking draw → detect → backoff loop. This
//! module rebuilds the same sequence out of scheduled events:
//! [`ShmemMachine::chunk_post_with_retry`] draws from the seeded CQE
//! stream before firing a post closure, re-scheduling the attempt after
//! the plan's detect latency and backoff on a fault, and running a
//! failure closure once the retry budget is spent. [`ChunkRecovery`]
//! is the per-op bookkeeping that turns individual chunk failures into
//! one typed [`TransferError::PartialDelivery`] at the op level.
//!
//! Recovery is whole-chunk and idempotent: a retried post re-sends the
//! complete chunk (the destination offset is fixed, so a replay lands
//! on the same bytes), and a chunk that exhausts its budget leaves no
//! bytes and no staging credits behind — every failure closure releases
//! the credits its chunk held and poisons the completions the op (and
//! `quiet`) would otherwise wait on forever.

use crate::error::TransferError;
use crate::machine::{OpToken, ShmemMachine};
use pcie_sim::ProcId;
use sim_core::{Action, Sched, SimDuration};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-op outcome accounting for a chunked transfer, shared by the
/// task-side driver and the event-context chunk callbacks.
///
/// `armed` is false when the fault plan cannot fault chunk posts
/// (`!cqe_armed()`: no per-post permille and no burst windows): then
/// every method is a no-op and the protocols take exactly their
/// pre-fault code paths, so an unfaulted run's trace is byte-identical
/// to one built without recovery.
pub(crate) struct ChunkRecovery {
    /// Total payload bytes of the transfer.
    total: u64,
    /// Bytes whose chunk resolved successfully.
    delivered: AtomicU64,
    /// Chunks that exhausted their retry budget.
    failed: AtomicU64,
    armed: bool,
}

impl ChunkRecovery {
    pub(crate) fn new(total: u64, armed: bool) -> Arc<ChunkRecovery> {
        Arc::new(ChunkRecovery {
            total,
            delivered: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            armed,
        })
    }

    /// Whether chunk posts of this op draw from the fault stream.
    pub(crate) fn armed(&self) -> bool {
        self.armed
    }

    /// Account one successfully resolved chunk of `len` bytes.
    pub(crate) fn chunk_ok(&self, len: u64) {
        if self.armed {
            self.delivered.fetch_add(len, Ordering::Relaxed);
        }
    }

    /// Account one chunk that gave up after exhausting its retries.
    pub(crate) fn chunk_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// The typed partial-delivery outcome, if any chunk failed.
    pub(crate) fn partial_error(&self) -> Option<TransferError> {
        if self.failed.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(TransferError::PartialDelivery {
            delivered: self.delivered(),
            total: self.total,
        })
    }
}

impl ShmemMachine {
    /// Event-context counterpart of `post_with_retry`: run `post` once
    /// the chunk's CQE draw comes up clean, retrying with the plan's
    /// detect latency and seeded backoff in between, or run `on_fail`
    /// (once, after the last detect latency) when the budget is spent.
    ///
    /// `poster` selects the per-process fault stream — it must be the
    /// process whose HCA issues the post (the serving/proxying side for
    /// gets), matching what a task-context `post_with_retry` on that
    /// process would draw. With no plan or an unarmed CQE stream
    /// (`!cqe_armed()`) the draw short-circuits and `post` runs
    /// synchronously, preserving the exact unfaulted event order.
    pub(crate) fn chunk_post_with_retry(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        poster: ProcId,
        protocol: &'static str,
        token: OpToken,
        post: Action,
        on_fail: Action,
    ) {
        self.chunk_attempt(s, poster, protocol, token, 0, post, on_fail);
    }

    #[allow(clippy::too_many_arguments)]
    fn chunk_attempt(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        poster: ProcId,
        protocol: &'static str,
        token: OpToken,
        attempt: u32,
        post: Action,
        on_fail: Action,
    ) {
        let plan = self.cfg().faults;
        if !plan.cqe_armed() {
            post(s);
            return;
        }
        match self.ib().inject_transient_cqe(poster, s.now()) {
            None => {
                if let Some(p) = crate::state::Protocol::from_name(protocol) {
                    self.health_on_success(poster, s.now(), p, token);
                }
                if attempt > 0 {
                    self.obs().fault_tally_at("chunk-recovered", protocol, s.now());
                }
                post(s);
            }
            Some(f) => {
                self.obs_fault(poster, s.now(), f.kind, protocol, token);
                if let Some(p) = crate::state::Protocol::from_name(protocol) {
                    self.health_on_failure(poster, s.now(), p, token);
                }
                if attempt >= plan.max_retries {
                    self.obs().fault_tally_at("exhausted", protocol, s.now());
                    // the failure is acted on once the CQE error is
                    // detected, like the blocking loop's final advance
                    s.schedule_in(f.detect, on_fail);
                } else {
                    let backoff = plan.backoff_ns(token.id, attempt);
                    let m = self.clone();
                    s.schedule_in(
                        f.detect,
                        Box::new(move |s| {
                            m.obs_chunk_retry(poster, s.now(), protocol, attempt + 1, backoff, token);
                            let m2 = m.clone();
                            s.schedule_in(
                                SimDuration::from_ns(backoff),
                                Box::new(move |s| {
                                    m2.chunk_attempt(
                                        s,
                                        poster,
                                        protocol,
                                        token,
                                        attempt + 1,
                                        post,
                                        on_fail,
                                    );
                                }),
                            );
                        }),
                    );
                }
            }
        }
    }
}
