//! Typed transfer errors — the recoverable face of the fault-injection
//! subsystem.
//!
//! Under a [`faults::FaultPlan`] the RDMA protocol paths stop panicking
//! on anomalies: transient CQE errors are retried with seeded backoff,
//! capability faults re-route to a fallback protocol, and anything that
//! remains unrecoverable surfaces as a [`TransferError`] through the
//! `try_*` API of [`crate::pe::Pe`]. The panicking wrappers
//! (`putmem`/`getmem`/atomics) keep their historic fail-loud behaviour
//! by unwrapping these.

use ib_sim::MrError;

/// Why an RMA/atomic operation could not be completed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransferError {
    /// Every post attempt (1 initial + `max_retries` re-posts) drew a
    /// transient CQE error from the fault plan.
    RetriesExhausted {
        /// CQE status of the last failing attempt.
        kind: &'static str,
        /// Total attempts made.
        attempts: u32,
    },
    /// The completion did not arrive within the plan's per-op timeout
    /// (or the [`crate::RuntimeConfig::quiesce_ns`] watchdog deadline).
    /// The transfer may still be in flight: destination bytes can land
    /// after this error is returned. `diag` carries the watchdog's
    /// diagnostic dump — the stuck op's token and protocol plus the
    /// engine's blocked-task snapshot — and is empty when no dump was
    /// taken.
    Timeout { after_ns: u64, diag: String },
    /// A chunked transfer exhausted the per-chunk retry budget part-way
    /// through: `delivered` of `total` bytes reached the destination.
    /// Delivered chunks are final (chunk replay is idempotent and
    /// whole-chunk); failed chunks left no bytes and no staging credits
    /// behind.
    PartialDelivery { delivered: u64, total: u64 },
    /// A capability fault (e.g. GDR administratively disabled on a node)
    /// rules out every protocol that could service the operation.
    CapabilityDisabled { what: &'static str, node: u32 },
    /// The target PE is fail-stopped: the membership layer evicted it
    /// from the view (`epoch` is the view epoch that recorded the
    /// eviction). The op blocked until the lease-expiry detection
    /// instant before failing, so no bytes were delivered and none can
    /// land later — unlike `Timeout`, this outcome is certain.
    PeerDead { pe: u32, epoch: u64 },
    /// The target PE is on the other side of a quorum-fenced network
    /// partition (or the caller itself is on the fenced minority side —
    /// then `pe` names the caller). `epoch` is the view epoch stamped
    /// when the fence landed. No bytes were delivered and none can land
    /// later: fenced ops fail before posting, which is what keeps the
    /// minority side free of split-brain writes.
    Partitioned { pe: u32, epoch: u64 },
    /// Memory-registration / protection error from the fabric.
    Mr(MrError),
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::RetriesExhausted { kind, attempts } => write!(
                f,
                "transient fault persisted: {attempts} attempts all failed (last: {kind})"
            ),
            TransferError::Timeout { after_ns, diag } => {
                write!(f, "operation timed out after {after_ns} ns of virtual time")?;
                if !diag.is_empty() {
                    write!(f, "\n{diag}")?;
                }
                Ok(())
            }
            TransferError::PartialDelivery { delivered, total } => write!(
                f,
                "partial delivery: only {delivered} of {total} bytes were delivered \
                 (chunk retries exhausted mid-transfer)"
            ),
            TransferError::CapabilityDisabled { what, node } => {
                write!(f, "{what} is disabled on node {node} and no fallback applies")
            }
            TransferError::PeerDead { pe, epoch } => {
                write!(f, "peer pe{pe} is dead (evicted from membership view at epoch {epoch})")
            }
            TransferError::Partitioned { pe, epoch } => {
                write!(f, "peer pe{pe} is unreachable (network partition fenced at epoch {epoch})")
            }
            TransferError::Mr(e) => write!(f, "memory registration error: {e}"),
        }
    }
}

impl std::error::Error for TransferError {}

impl From<MrError> for TransferError {
    fn from(e: MrError) -> Self {
        TransferError::Mr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = TransferError::RetriesExhausted {
            kind: "cqe-flush-err",
            attempts: 5,
        };
        assert!(e.to_string().contains("cqe-flush-err"));
        assert!(e.to_string().contains("5 attempts"));
        let t = TransferError::Timeout {
            after_ns: 1_000,
            diag: String::new(),
        };
        assert!(t.to_string().contains("1000 ns"));
        let t = TransferError::Timeout {
            after_ns: 1_000,
            diag: "op 0x1 (direct-gdr) stuck".into(),
        };
        assert!(t.to_string().contains("op 0x1 (direct-gdr)"));
        let p = TransferError::PartialDelivery {
            delivered: 1_048_576,
            total: 4_194_304,
        };
        assert!(p.to_string().contains("1048576 of 4194304 bytes"));
        let c = TransferError::CapabilityDisabled {
            what: "GDR",
            node: 3,
        };
        assert!(c.to_string().contains("node 3"));
    }

    /// Every variant must render its token/diagnostic fields — chaos
    /// repro logs are grepped by these strings, so a silent field would
    /// make a failure class unsearchable. Exhaustive: the match below
    /// stops compiling when a variant is added without a case here.
    #[test]
    fn display_renders_every_variant_field() {
        let variants = vec![
            TransferError::RetriesExhausted { kind: "cqe-retry-exceeded", attempts: 3 },
            TransferError::Timeout { after_ns: 2_000_000, diag: "engine blocked-task dump".into() },
            TransferError::PartialDelivery { delivered: 7, total: 9 },
            TransferError::CapabilityDisabled { what: "GDR", node: 1 },
            TransferError::PeerDead { pe: 5, epoch: 2 },
            TransferError::Partitioned { pe: 3, epoch: 4 },
            TransferError::Mr(MrError::InvalidRkey(ib_sim::Rkey(42))),
        ];
        for e in &variants {
            let s = e.to_string();
            let expected: Vec<String> = match e {
                TransferError::RetriesExhausted { kind, attempts } => {
                    vec![kind.to_string(), format!("{attempts} attempts")]
                }
                TransferError::Timeout { after_ns, diag } => {
                    vec![format!("{after_ns} ns"), diag.clone()]
                }
                TransferError::PartialDelivery { delivered, total } => {
                    vec![format!("{delivered} of {total} bytes")]
                }
                TransferError::CapabilityDisabled { what, node } => {
                    vec![what.to_string(), format!("node {node}")]
                }
                TransferError::PeerDead { pe, epoch } => {
                    vec![format!("pe{pe}"), format!("epoch {epoch}")]
                }
                TransferError::Partitioned { pe, epoch } => {
                    vec![format!("pe{pe}"), format!("epoch {epoch}"), "partition".to_string()]
                }
                TransferError::Mr(m) => vec![m.to_string()],
            };
            for frag in expected {
                assert!(s.contains(&frag), "{e:?} display {s:?} lacks {frag:?}");
            }
        }
    }
}
