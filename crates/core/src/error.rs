//! Typed transfer errors — the recoverable face of the fault-injection
//! subsystem.
//!
//! Under a [`faults::FaultPlan`] the RDMA protocol paths stop panicking
//! on anomalies: transient CQE errors are retried with seeded backoff,
//! capability faults re-route to a fallback protocol, and anything that
//! remains unrecoverable surfaces as a [`TransferError`] through the
//! `try_*` API of [`crate::pe::Pe`]. The panicking wrappers
//! (`putmem`/`getmem`/atomics) keep their historic fail-loud behaviour
//! by unwrapping these.

use ib_sim::MrError;

/// Why an RMA/atomic operation could not be completed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransferError {
    /// Every post attempt (1 initial + `max_retries` re-posts) drew a
    /// transient CQE error from the fault plan.
    RetriesExhausted {
        /// CQE status of the last failing attempt.
        kind: &'static str,
        /// Total attempts made.
        attempts: u32,
    },
    /// The completion did not arrive within the plan's per-op timeout
    /// (or the [`crate::RuntimeConfig::quiesce_ns`] watchdog deadline).
    /// The transfer may still be in flight: destination bytes can land
    /// after this error is returned. `diag` carries the watchdog's
    /// diagnostic dump — the stuck op's token and protocol plus the
    /// engine's blocked-task snapshot — and is empty when no dump was
    /// taken.
    Timeout { after_ns: u64, diag: String },
    /// A chunked transfer exhausted the per-chunk retry budget part-way
    /// through: `delivered` of `total` bytes reached the destination.
    /// Delivered chunks are final (chunk replay is idempotent and
    /// whole-chunk); failed chunks left no bytes and no staging credits
    /// behind.
    PartialDelivery { delivered: u64, total: u64 },
    /// A capability fault (e.g. GDR administratively disabled on a node)
    /// rules out every protocol that could service the operation.
    CapabilityDisabled { what: &'static str, node: u32 },
    /// Memory-registration / protection error from the fabric.
    Mr(MrError),
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::RetriesExhausted { kind, attempts } => write!(
                f,
                "transient fault persisted: {attempts} attempts all failed (last: {kind})"
            ),
            TransferError::Timeout { after_ns, diag } => {
                write!(f, "operation timed out after {after_ns} ns of virtual time")?;
                if !diag.is_empty() {
                    write!(f, "\n{diag}")?;
                }
                Ok(())
            }
            TransferError::PartialDelivery { delivered, total } => write!(
                f,
                "partial delivery: only {delivered} of {total} bytes were delivered \
                 (chunk retries exhausted mid-transfer)"
            ),
            TransferError::CapabilityDisabled { what, node } => {
                write!(f, "{what} is disabled on node {node} and no fallback applies")
            }
            TransferError::Mr(e) => write!(f, "memory registration error: {e}"),
        }
    }
}

impl std::error::Error for TransferError {}

impl From<MrError> for TransferError {
    fn from(e: MrError) -> Self {
        TransferError::Mr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = TransferError::RetriesExhausted {
            kind: "cqe-flush-err",
            attempts: 5,
        };
        assert!(e.to_string().contains("cqe-flush-err"));
        assert!(e.to_string().contains("5 attempts"));
        let t = TransferError::Timeout {
            after_ns: 1_000,
            diag: String::new(),
        };
        assert!(t.to_string().contains("1000 ns"));
        let t = TransferError::Timeout {
            after_ns: 1_000,
            diag: "op 0x1 (direct-gdr) stuck".into(),
        };
        assert!(t.to_string().contains("op 0x1 (direct-gdr)"));
        let p = TransferError::PartialDelivery {
            delivered: 1_048_576,
            total: 4_194_304,
        };
        assert!(p.to_string().contains("1048576 of 4194304 bytes"));
        let c = TransferError::CapabilityDisabled {
            what: "GDR",
            node: 3,
        };
        assert!(c.to_string().contains("node 3"));
    }
}
