//! CUDA-aware two-sided messaging (the "MPI send/recv" layer).
//!
//! The original GPULBM application is CUDA-aware MPI (paper §IV); the
//! LBM baseline in this reproduction runs over this layer. Device
//! buffers are staged through the registered host staging areas exactly
//! like a host-based-pipeline MPI: D2H before the send, H2D after the
//! receive. Host buffers go straight over the two-sided verbs.

use crate::machine::ShmemMachine;
use crate::pe::Pe;
use pcie_sim::mem::MemRef;
use pcie_sim::ProcId;
use sim_core::Completion;
use std::sync::Arc;

/// Handle of a pending two-sided operation; wait with [`Pe::msg_wait`].
pub struct MsgHandle {
    done: Completion,
    /// Staging to free once done (offset, len, owner).
    staging: Option<(u64, u64, ProcId)>,
}

impl Pe {
    /// Non-blocking send (`MPI_Isend` analogue). The handle completes
    /// when the source buffer is reusable.
    pub fn isend(&self, to: usize, src: MemRef, len: u64) -> MsgHandle {
        let m = self.machine().clone();
        let me = self.proc_id();
        let to = ProcId(to as u32);
        if src.is_device() {
            // stage D2H into app memory, then copy into the MPI
            // library's registered (pinned) pool — the original
            // application's buffers are plain cudaMalloc/malloc, so the
            // CUDA-aware MPI path pays this extra copy — then send.
            let off = m
                .alloc_staging_blocking(self.ctx(), me, len)
                .unwrap_or_else(|e| panic!("isend: {e}"));
            let stg = m.layout().staging_base(me).add(off);
            let d2h = m.gpus().memcpy_async(self.ctx(), src, stg, len);
            let local = Completion::new();
            let m2 = m.clone();
            let local2 = local.clone();
            self.ctx().with_sched(|s| {
                s.call_on(
                    &d2h,
                    1,
                    Box::new(move |s| {
                        // pinned-pool copy on the library's progress thread
                        let grant = m2.pe_state(me).pin_engine.lock().reserve(s.now(), len);
                        let m3 = m2.clone();
                        let local3 = local2.clone();
                        s.schedule_at(
                            grant.arrive,
                            Box::new(move |s| {
                                m3.ib()
                                    .send_start(s, me, to, stg, len, &local3)
                                    .unwrap_or_else(|e| panic!("isend: {e}"));
                            }),
                        );
                    }),
                );
            });
            MsgHandle {
                done: local,
                staging: Some((off, len, me)),
            }
        } else {
            m.ensure_registered(self.ctx(), me, src, len);
            let local = m
                .ib()
                .post_send(self.ctx(), me, to, src, len)
                .unwrap_or_else(|e| panic!("isend: {e}"));
            MsgHandle {
                done: local,
                staging: None,
            }
        }
    }

    /// Non-blocking receive (`MPI_Irecv` analogue). The handle completes
    /// when the payload is in `dst` (including the H2D stage for device
    /// destinations).
    pub fn irecv(&self, from: usize, dst: MemRef, cap: u64) -> MsgHandle {
        let m = self.machine().clone();
        let me = self.proc_id();
        let from = ProcId(from as u32);
        if dst.is_device() {
            let off = m
                .alloc_staging_blocking(self.ctx(), me, cap)
                .unwrap_or_else(|e| panic!("irecv: {e}"));
            let stg = m.layout().staging_base(me).add(off);
            let landed = Completion::new();
            let done = Completion::new();
            let matched_len = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let ml = matched_len.clone();
            self.ctx().with_sched(|s| {
                m.ib()
                    .recv_start_sized(s, me, from, stg, cap, &landed, &ml)
                    .unwrap_or_else(|e| panic!("irecv: {e}"));
            });
            // chain: recv landed in the pinned pool -> copy to the app
            // staging -> H2D -> done (the reverse pinned-pool copy).
            // Only the matched message length moves to the device; a
            // larger posted capacity must not clobber bytes beyond it.
            let m2 = m.clone();
            let done2 = done.clone();
            self.ctx().with_sched(|s| {
                s.call_on(
                    &landed,
                    1,
                    Box::new(move |s| {
                        let n = matched_len.load(std::sync::atomic::Ordering::SeqCst);
                        // reverse pinned-pool copy on the progress thread
                        let grant = m2.pe_state(me).pin_engine.lock().reserve(s.now(), n);
                        let m3 = m2.clone();
                        let done3 = done2.clone();
                        s.schedule_at(
                            grant.arrive,
                            Box::new(move |s| {
                                let h2d = Completion::new();
                                m3.gpus().dma_start(s, stg, dst, n, &h2d);
                                let done4 = done3.clone();
                                s.call_on(&h2d, 1, Box::new(move |s| s.signal(&done4, 1)));
                            }),
                        );
                    }),
                );
            });
            MsgHandle {
                done,
                staging: Some((off, cap, me)),
            }
        } else {
            m.ensure_registered(self.ctx(), me, dst, cap);
            let done = m
                .ib()
                .post_recv(self.ctx(), me, from, dst, cap)
                .unwrap_or_else(|e| panic!("irecv: {e}"));
            MsgHandle {
                done,
                staging: None,
            }
        }
    }

    /// Wait for one handle (`MPI_Wait`).
    pub fn msg_wait(&self, h: MsgHandle) {
        self.ctx().wait(&h.done);
        if let Some((off, len, owner)) = h.staging {
            self.free_staging(owner, off, len);
        }
    }

    /// Wait for a set of handles (`MPI_Waitall`).
    pub fn msg_waitall(&self, hs: Vec<MsgHandle>) {
        for h in hs {
            self.msg_wait(h);
        }
    }

    /// Blocking send.
    pub fn send(&self, to: usize, src: MemRef, len: u64) {
        let h = self.isend(to, src, len);
        self.msg_wait(h);
    }

    /// Blocking receive.
    pub fn recv(&self, from: usize, dst: MemRef, cap: u64) {
        let h = self.irecv(from, dst, cap);
        self.msg_wait(h);
    }

    fn free_staging(&self, owner: ProcId, off: u64, len: u64) {
        let m: &Arc<ShmemMachine> = self.machine();
        m.pe_state(owner).staging_alloc.lock().free(off, len);
    }
}
